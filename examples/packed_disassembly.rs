//! Dynamic disassembly of packed code — the RC-CC use case (§3.1.3).
//!
//! The guest decrypts its own payload at runtime (exercising the
//! translator's self-modifying-code invalidation); the disassembler runs
//! the unpacking stub under LC, switches to CFG consistency (RC-CC) on
//! entry to the decrypted region, and forces every branch edge to recover
//! the full listing — including blocks no consistent execution reaches.
//!
//! Run with: `cargo run --example packed_disassembly`

use s2e::guests::kernel::boot;
use s2e::guests::packed;
use s2e::tools::rev::dynamic_disassemble;

fn main() {
    let guest = packed::build(false);
    println!(
        "packed payload: {} instructions at {:#x}..{:#x} (stored XOR {:#x})",
        guest.payload_instrs,
        guest.payload_range.start,
        guest.payload_range.end,
        packed::KEY
    );

    let (mut machine, _kernel) = boot();
    machine.load(&guest.program);
    let report = dynamic_disassemble(machine, guest.payload_range.clone(), 100_000);

    println!(
        "disassembled {}/{} instructions across {} blocks and {} paths ({:.0}% recovery)",
        report.listing.len(),
        guest.payload_instrs,
        report.covered_blocks.len(),
        report.paths,
        100.0 * report.recovery(guest.payload_instrs),
    );
    println!("\nrecovered listing:");
    for (pc, instr) in &report.listing {
        println!("  {pc:#010x}: {instr:?}");
    }
}
