//! PROFS walk-through (paper §6.1.3): multi-path in-vivo performance
//! profiling — performance *envelopes* instead of single-run numbers.
//!
//! Run with: `cargo run --example performance_profiling`

use s2e::tools::profs::{profile_ping, profile_url_parser, ProfsConfig};
use std::collections::BTreeMap;

fn main() {
    let config = ProfsConfig {
        max_steps: 300_000,
        path_fuel: 8_000,
        ..ProfsConfig::default()
    };

    // Experiment 1: the URL parser's instruction count as a function of
    // the URL's shape — over EVERY 4-character URL at once.
    println!("== URL parser: all 4-char URLs simultaneously ==");
    let rows = profile_url_parser(4, &config);
    let mut by_slash: BTreeMap<u32, u64> = BTreeMap::new();
    for (slashes, instrs, _) in &rows {
        let e = by_slash.entry(*slashes).or_insert(*instrs);
        *e = (*e).max(*instrs);
    }
    for (slashes, instrs) in &by_slash {
        println!("  {slashes} slash(es): {instrs} instructions");
    }
    println!("  -> every extra '/' costs exactly 10 instructions (the paper's law)\n");

    // Experiment 2: ping's performance envelope, and the unbounded path.
    println!("== ping: symbolic 4-byte ICMP reply ==");
    for (label, patched) in [("buggy", false), ("patched", true)] {
        let report = profile_ping(patched, 4, &config);
        let unbounded = report.unbounded_suspects().count();
        match report.instruction_envelope() {
            Some((lo, hi)) => println!(
                "  {label}: envelope {lo}..{hi} instructions, {unbounded} unbounded suspect(s)"
            ),
            None => println!("  {label}: no completed paths"),
        }
    }
    println!("  -> the buggy binary has a path with no upper bound: the record-route");
    println!("     option of length 3 loops forever (a denial-of-service bug found");
    println!("     by a *performance* analysis).");
}
