//! The six execution consistency models (paper §3) on one small system.
//!
//! A unit calls an environment function (`alloc`) and then branches both
//! on its own symbolic input and on the environment's result. Each model
//! admits a different set of paths:
//!
//! - SC-CE  — concrete only: one path.
//! - SC-UE  — symbolic input concretized (hard) at the env boundary.
//! - SC-SE  — the environment executes symbolically too.
//! - LC — env runs concretely; its result is re-symbolified within the
//!   API contract; env branches on unit data abort the path.
//! - RC-OC  — env results completely unconstrained.
//! - RC-CC  — all unit branch edges followed, no solver.
//!
//! Run with: `cargo run --example consistency_models`

use s2e::core::selectors::make_reg_symbolic;
use s2e::core::{CodeRanges, ConsistencyModel, Engine, EngineConfig};
use s2e::guests::kernel::{boot, standard_annotations, sys};
use s2e::guests::layout::APP_BASE;
use s2e::vm::asm::Assembler;
use s2e::vm::isa::reg;

fn build_unit() -> s2e::vm::asm::Program {
    let mut a = Assembler::new(APP_BASE);
    // Branch on our own symbolic input x (r7)...
    a.movi(reg::R1, 100);
    a.bltu(reg::R7, reg::R1, "small_input");
    a.label("small_input");
    // ...then call the environment and branch on its result.
    a.movi(reg::R0, 64);
    a.syscall(sys::ALLOC);
    a.movi(reg::R1, 0);
    a.beq(reg::R0, reg::R1, "alloc_failed");
    a.halt_code(1); // got memory
    a.label("alloc_failed");
    a.halt_code(2); // contract says this can happen
    a.finish()
}

fn main() {
    println!("{:<7} {:>6} {:>6} {:>8}  note", "model", "paths", "forks", "queries");
    for model in ConsistencyModel::ALL {
        let (mut machine, _k) = boot();
        machine.load(&build_unit());
        let mut config = EngineConfig::with_model(model);
        config.code_ranges = CodeRanges::all().include(APP_BASE..APP_BASE + 0x1000);
        if model == ConsistencyModel::Lc {
            config.annotations = standard_annotations();
        }
        let mut engine = Engine::new(machine, config);
        if model != ConsistencyModel::ScCe {
            let id = engine.sole_state().unwrap();
            let b = engine.builder_arc();
            make_reg_symbolic(engine.state_mut(id).unwrap(), &b, reg::R7, "x");
        }
        engine.run(50_000);
        let note = match model {
            ConsistencyModel::ScCe => "concrete execution only",
            ConsistencyModel::ScUe => "input forks; alloc result stays concrete",
            ConsistencyModel::ScSe => "kernel explored symbolically too",
            ConsistencyModel::Lc => "alloc-failure path via the API contract",
            ConsistencyModel::RcOc => "alloc result unconstrained",
            ConsistencyModel::RcCc => "all CFG edges, solver never consulted",
        };
        println!(
            "{:<7} {:>6} {:>6} {:>8}  {}",
            model.name(),
            engine.terminated().len(),
            engine.stats().forks,
            engine.solver_stats().queries,
            note
        );
    }
}
