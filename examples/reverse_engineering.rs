//! REV+ walk-through (paper §6.1.2): trace a driver binary under RC-OC,
//! rebuild its CFG offline, and synthesize equivalent driver code.
//!
//! Run with: `cargo run --example reverse_engineering`

use s2e::guests::drivers::rtl8139;
use s2e::tools::rev::{
    revnic_baseline, synthesize, trace_driver, validate_against_static, RevConfig,
};
use std::collections::BTreeSet;

fn main() {
    let driver = rtl8139::build();

    // Online phase: multi-path tracing with overapproximate consistency.
    let report = trace_driver(&driver, &RevConfig::default());
    println!(
        "traced {} paths; recovered {}/{} basic blocks ({:.0}%), {} edges, {} port ops",
        report.paths,
        report.recovered.blocks.len(),
        report.total_blocks,
        100.0 * report.coverage(),
        report.recovered.edges.len(),
        report.recovered.port_ops.len(),
    );

    // Offline validation: everything we traced exists in the binary.
    let async_targets = BTreeSet::from([driver.entry("irq")]);
    validate_against_static(&report.recovered, &driver.static_cfg(), &async_targets)
        .expect("recovered CFG consistent with the binary");
    println!("recovered CFG validates against the binary ✓");

    // Synthesis: emit driver code implementing the same hardware protocol.
    let code = synthesize(&driver, &report.recovered);
    println!("\n--- synthesized driver (first 25 lines) ---");
    for line in code.lines().take(25) {
        println!("{line}");
    }
    println!("--- ({} lines total) ---\n", code.lines().count());

    // Compare against the single-path RevNIC baseline.
    let baseline = revnic_baseline(&driver, 8, 7);
    println!(
        "coverage: RevNIC baseline {}/{} blocks vs REV+ {}/{} blocks",
        baseline.len(),
        report.total_blocks,
        report.recovered.blocks.len(),
        report.total_blocks,
    );
}
