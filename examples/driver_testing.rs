//! DDT+ walk-through (paper §6.1.1): test a buggy closed-source-style
//! driver under two consistency models and compare what each finds.
//!
//! Run with: `cargo run --example driver_testing`

use s2e::core::ConsistencyModel;
use s2e::guests::drivers::{pcnet, rtl8029};
use s2e::tools::ddt::{test_driver, DdtConfig};

fn main() {
    for driver in [pcnet::build(), rtl8029::build()] {
        println!("=== {} ===", driver.name);
        for model in [ConsistencyModel::ScSe, ConsistencyModel::Lc] {
            let report = test_driver(
                &driver,
                &DdtConfig {
                    model,
                    max_steps: 60_000,
                    ..DdtConfig::default()
                },
            );
            println!(
                "{}: {} distinct bug(s) in {:.1}s across {} paths ({:.0}% block coverage)",
                model.name(),
                report.distinct_bugs.len(),
                report.duration.as_secs_f64(),
                report.paths,
                100.0 * report.coverage(),
            );
            for bug in &report.distinct_bugs {
                println!("   - {:?} at pc {:#010x}", bug.kind, bug.pc);
            }
            // Every crash report ships with inputs that reproduce it.
            if let Some(b) = report.raw_bugs.iter().find(|b| b.inputs.is_some()) {
                println!(
                    "   e.g. {:?} reproduced by a concrete assignment of {} symbolic input(s)",
                    b.kind,
                    b.inputs.as_ref().unwrap().len()
                );
            }
        }
        println!();
    }
    println!("expected shape (paper): hardware-input bugs under SC-SE;");
    println!("registry/annotation-dependent bugs appear only under LC.");
}
