//! Quickstart: the paper's license-key scenario (§1).
//!
//! "One may want to verify the code that handles license keys in a
//! proprietary program ... S2E then automatically explores the code paths
//! that are influenced by the value of the license key."
//!
//! We load the license-checker guest, replace the key bytes with symbolic
//! values, explore every path, and read a *valid key* out of the
//! accepting path's constraints.
//!
//! Run with: `cargo run --example quickstart`

use s2e::core::selectors::make_mem_symbolic;
use s2e::core::{ConsistencyModel, Engine, EngineConfig, TerminationReason};
use s2e::expr::eval;
use s2e::guests::kernel::boot;
use s2e::guests::layout::INPUT_BUF;
use s2e::guests::license;

fn main() {
    // 1. Boot a machine with the guest kernel and load the target binary.
    let (mut machine, _kernel) = boot();
    machine.load(&license::program());

    // 2. Create the engine and make the 8 key bytes symbolic — the
    //    data-based selector step.
    let mut engine = Engine::new(machine, EngineConfig::with_model(ConsistencyModel::ScSe));
    engine.set_retain_terminated(true);
    let id = engine.sole_state().unwrap();
    let builder = engine.builder_arc();
    let key_vars = make_mem_symbolic(
        engine.state_mut(id).unwrap(),
        &builder,
        INPUT_BUF,
        license::KEY_LEN,
        "key",
    );

    // 3. Explore all paths through the checker.
    engine.run(100_000);
    println!(
        "explored {} paths, {} forks, {} solver queries",
        engine.terminated().len(),
        engine.stats().forks,
        engine.solver_stats().queries
    );

    // 4. Find the accepting path and solve its constraints for a key.
    let accepting: Vec<_> = engine
        .terminated_states()
        .iter()
        .filter(|s| s.status == Some(TerminationReason::Halted(license::VALID)))
        .cloned()
        .collect();
    assert!(!accepting.is_empty(), "no accepting path found");
    let model = match engine.solver_mut().check(&accepting[0].constraints) {
        s2e::solver::SatResult::Sat(m) => m,
        other => panic!("accepting path unsat: {other:?}"),
    };
    let key: Vec<u8> = key_vars
        .iter()
        .map(|v| eval(v, &model).unwrap() as u8)
        .collect();
    println!("generated license key: {:?}", String::from_utf8_lossy(&key));

    // 5. Double-check against the host-side reference checker.
    assert!(license::is_valid_key(&key), "generated key must validate");
    println!("key validates against the reference checker ✓");
}
