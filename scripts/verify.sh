#!/usr/bin/env bash
# Tier-1 verification, fully offline, plus the std-only dependency gate
# (DESIGN.md §7). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# Gate 1: no Cargo.toml may carry a non-path (registry) dependency.
# Path deps are written `foo = { path = ... }` / `foo.workspace = true`;
# registry deps need a version requirement, which is what we reject:
#   foo = "1.2"            (bare version string)
#   foo = { version = .. } (inline table with version)
# `[workspace.package] version = "..."` (the crates' own version) and
# `version.workspace = true` stay legal.
fail=0
while IFS= read -r manifest; do
    if grep -nE '^[A-Za-z0-9_-]+ *= *"[0-9^~<>=*]' "$manifest" \
       | grep -vE '^[0-9]+:(version|edition|rust-version|resolver) *=' ; then
        echo "error: $manifest declares a registry dependency (bare version)" >&2
        fail=1
    fi
    if grep -nE '^[A-Za-z0-9_-]+ *= *\{[^}]*version' "$manifest"; then
        echo "error: $manifest declares a registry dependency (inline version)" >&2
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')
if [ "$fail" -ne 0 ]; then
    echo "std-only policy violated: only path dependencies are allowed" >&2
    exit 1
fi
echo "dependency gate: ok (path-only)"

# Gate 2: tier-1 build and tests, offline — the registry must never be
# needed.
cargo build --release --offline
cargo test -q --offline

# Gate 3: solver-stack smoke — on a fixed seeded corpus the sliced +
# subsuming configuration must agree with the exact-match baseline and
# issue no more SAT-core solves (exits nonzero otherwise).
cargo run -q --release --offline -p bench --bin solver_opt -- --smoke

# Gate 4: static pre-pass smoke — a warnings-clean build, then the
# dataflow ablation under a small budget: identical path counts and
# block coverage with the pre-pass on vs off, every analysis within its
# worklist iteration bound (exits nonzero otherwise).
RUSTFLAGS="-D warnings" cargo build --release --offline --workspace
cargo run -q --release --offline -p bench --bin static_prepass -- --smoke

# Gate 5: observability smoke — identical path counts across the
# baseline/off/on arms (recording must never perturb exploration) and a
# well-formed unified run report. Smoke mode skips the 2% overhead
# assertion (CI containers are too noisy); the emitted report must parse
# back and carry a phase breakdown plus per-worker timelines, which the
# trace-report renderer then consumes as a final self-check.
cargo run -q --release --offline -p bench --bin obs_overhead -- --smoke
test -s results/run_report.json
cargo run -q --release --offline -p s2e-tools --bin trace-report -- \
    results/run_report.json > /dev/null

# Gate 6: scheduler-ablation smoke — the per-worker-deque scheduler and
# the injector-queue baseline must explore the identical path set (same
# count, same covered blocks) at every worker count, with state
# conservation (exports == steals + reclaims + leftover) holding on
# every run; emits results/parallel_scaling.json with both arms (exits
# nonzero otherwise).
cargo run -q --release --offline -p bench --bin parallel_scaling -- --smoke
test -s results/parallel_scaling.json

# Gate 7: replay-identity smoke — on the 91C111-LC corpus, aggressive
# eviction (every exported state shipped as compact
# `{checkpoint, journal}` and rehydrated by deterministic replay, with
# per-state fingerprint verification on) must explore the identical
# path set as live shipping while holding materially fewer resident
# bytes in scheduler queues; emits results/fig8_checkpoint.json (exits
# nonzero otherwise).
cargo run -q --release --offline -p bench --bin fig8_consistency_memory -- --smoke
test -s results/fig8_checkpoint.json

# Gate 8: DBT dispatch smoke — superblock chaining + direct-threaded
# dispatch + the per-worker L1 front must be a pure optimization: the
# chained arm terminates the bit-identical path sequence, fork count,
# and block coverage as the unchained arm on both corpora, the chained
# arm actually forms/traverses chains and serves lookups from the L1,
# and under explore_parallel the majority of steady-state lookups never
# touch the shared-cache mutex; emits results/dbt_dispatch.json (exits
# nonzero otherwise).
cargo run -q --release --offline -p bench --bin dbt_dispatch -- --smoke
test -s results/dbt_dispatch.json

# Gate 9: interprocedural-refinement smoke — the value-range pipeline
# must be a pure optimization (identical path counts and block coverage
# across off/base/refined on both corpora) while provably tightening
# the static model: UNKNOWN_SINK edges drop, the refined arm
# instruments strictly fewer instructions than the base pre-pass, and
# every dynamically retired indirect target is classified (resolved /
# escaped / discovered — nothing silently absorbed); exits nonzero
# otherwise.
cargo run -q --release --offline -p bench --bin static_refine -- --smoke

# Gate 10: live-telemetry smoke — the sharded registry, delta sampler,
# and scrape endpoint must never perturb exploration: bit-identical
# path sets across off/sampling/endpoint arms on both schedulers, and
# the final run_live.jsonl line's cumulative counters must exactly
# equal their RunReport twins (plus the documented composites). Smoke
# mode skips the 2% overhead assertion (single-core CI noise); emits
# results/telemetry_overhead.json and results/run_live.jsonl (exits
# nonzero otherwise).
cargo run -q --release --offline -p bench --bin telemetry_overhead -- --smoke
test -s results/telemetry_overhead.json
test -s results/run_live.jsonl

# Gate 11: distributed-identity smoke — a coordinator plus two worker
# *processes* on localhost must explore the bit-identical path-digest
# multiset, fork count, and covered-block set as in-process
# `explore_parallel` on the 91C111-LC corpus, with the global state
# ledger conserved (exports == steals + reclaims + leftover, leftover 0
# on an exhaustive run) and every relayed telemetry snapshot reaching
# the merged feed; emits results/dist_explore.json (exits nonzero
# otherwise).
cargo run -q --release --offline -p bench --bin dist_explore -- --smoke
test -s results/dist_explore.json
echo "verify: ok"
