//! Property test: the symbolic-capable engine and the concrete reference
//! interpreter agree instruction-for-instruction on concrete programs.
//!
//! This is the reproduction's analog of S2E's core soundness argument:
//! the "native" fast path and the symbolic executor share one semantics
//! (§5's shared state representation) and must never diverge.
//!
//! Programs are drawn from a seeded SplitMix64 stream: the same corpus
//! of 64 random straight-line programs is checked on every run.

use s2e::core::{ConsistencyModel, Engine, EngineConfig};
use s2e_prng::SplitMix64;
use s2e::vm::asm::Assembler;
use s2e::vm::interp::{run_concrete, RunOutcome};
use s2e::vm::isa::reg;
use s2e::vm::machine::Machine;

/// A recipe for one straight-line instruction over registers r0..r7.
#[derive(Clone, Debug)]
enum Op {
    MovI(u8, u32),
    Alu(u8, u8, u8, u8),
    AluI(u8, u8, u8, u32),
    Store(u8, u32),
    Load(u8, u32),
}

fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.below(5) {
        0 => Op::MovI(rng.index(8) as u8, rng.next_u32()),
        1 => Op::Alu(
            rng.index(8) as u8,
            rng.index(8) as u8,
            rng.index(8) as u8,
            rng.index(13) as u8,
        ),
        2 => Op::AluI(
            rng.index(8) as u8,
            rng.index(8) as u8,
            rng.index(9) as u8,
            rng.next_u32(),
        ),
        3 => Op::Store(rng.index(8) as u8, rng.below(256) as u32),
        _ => Op::Load(rng.index(8) as u8, rng.below(256) as u32),
    }
}

fn emit(a: &mut Assembler, op: &Op) {
    use s2e::vm::isa::{Instr, Opcode};
    match op {
        Op::MovI(r, v) => a.movi(*r, *v),
        Op::Alu(d, x, y, k) => {
            let ops = [
                Opcode::Add,
                Opcode::Sub,
                Opcode::Mul,
                Opcode::Divu,
                Opcode::Divs,
                Opcode::Remu,
                Opcode::Rems,
                Opcode::And,
                Opcode::Or,
                Opcode::Xor,
                Opcode::Shl,
                Opcode::Shr,
                Opcode::Sar,
            ];
            a.emit(Instr::new(ops[*k as usize % ops.len()], *d, *x, *y, 0));
        }
        Op::AluI(d, x, k, v) => {
            let ops = [
                Opcode::AddI,
                Opcode::SubI,
                Opcode::MulI,
                Opcode::AndI,
                Opcode::OrI,
                Opcode::XorI,
                Opcode::ShlI,
                Opcode::ShrI,
                Opcode::SarI,
            ];
            a.emit(Instr::new(ops[*k as usize % ops.len()], *d, *x, 0, *v));
        }
        Op::Store(r, off) => {
            a.movi(reg::R9, 0x8000);
            a.st32(reg::R9, *off & !3, *r);
        }
        Op::Load(r, off) => {
            a.movi(reg::R9, 0x8000);
            a.ld32(*r, reg::R9, *off & !3);
        }
    }
}

fn final_regs_interp(prog: &s2e::vm::asm::Program) -> Vec<u32> {
    let mut m = Machine::new();
    m.load(prog);
    let out = run_concrete(&mut m, 100_000).unwrap();
    assert_eq!(out, RunOutcome::Halted(0));
    (0..8).map(|r| m.cpu.reg(r).as_concrete().unwrap()).collect()
}

fn final_regs_engine(prog: &s2e::vm::asm::Program) -> Vec<u32> {
    let mut m = Machine::new();
    m.load(prog);
    let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScSe));
    e.set_retain_terminated(true);
    e.run(100_000);
    assert_eq!(e.terminated().len(), 1);
    let st = &e.terminated_states()[0];
    (0..8)
        .map(|r| st.machine.cpu.reg(r).as_concrete().unwrap())
        .collect()
}

#[test]
fn engine_matches_interpreter_on_concrete_programs() {
    let mut rng = SplitMix64::new(0xe0);
    for case in 0..64u64 {
        let ops: Vec<Op> = (0..1 + rng.index(39)).map(|_| gen_op(&mut rng)).collect();
        let mut a = Assembler::new(0x4000);
        for op in &ops {
            emit(&mut a, op);
        }
        a.halt();
        let prog = a.finish();
        assert_eq!(
            final_regs_interp(&prog),
            final_regs_engine(&prog),
            "case {case}: engine diverged from interpreter on {ops:?}"
        );
    }
}
