//! End-to-end tests of the §6.1.4 "other uses": privacy-leak detection
//! and energy profiling, run through the whole stack (guest kernel,
//! drivers' NIC, engine, plugins).

use s2e::core::analyzers::{EnergyModel, EnergyProfile, PrivacyLeakDetector};
use s2e::core::selectors::{make_config_symbolic, make_cstring_symbolic};
use s2e::core::{BugKind, ConsistencyModel, Engine, EngineConfig};
use s2e::guests::kernel::{boot, sys};
use s2e::guests::layout::{APP_BASE, INPUT_BUF};
use s2e::vm::asm::Assembler;
use s2e::vm::device::ports;
use s2e::vm::isa::reg;

/// A guest that reads a credit-card-like secret from the configuration
/// store, "encrypts" it with xor, and transmits it — a privacy leak even
/// though the raw value never leaves.
fn leaky_guest(leak: bool) -> s2e::vm::asm::Program {
    let mut a = Assembler::new(APP_BASE);
    // Fetch the secret (registry key 0x99).
    a.movi(reg::R0, 0x99);
    a.syscall(sys::GETCFG);
    // "Encrypt".
    a.xori(reg::R4, reg::R0, 0x5a5a);
    // Build a 4-byte frame: either the encrypted secret or a constant.
    a.movi(reg::R5, INPUT_BUF);
    if leak {
        a.st32(reg::R5, 0, reg::R4);
    } else {
        a.movi(reg::R6, 0x1234_5678);
        a.st32(reg::R5, 0, reg::R6);
    }
    a.movi(reg::R0, INPUT_BUF);
    a.movi(reg::R1, 4);
    a.syscall(sys::SEND);
    a.halt_code(0);
    a.finish()
}

fn run_privacy(leak: bool) -> Vec<BugKind> {
    let (mut machine, _k) = boot();
    machine.load(&leaky_guest(leak));
    let mut engine = Engine::new(machine, EngineConfig::with_model(ConsistencyModel::ScSe));
    engine.add_plugin(Box::new(PrivacyLeakDetector::new(
        "secret_",
        [ports::NIC_DATA],
    )));
    let id = engine.sole_state().unwrap();
    let b = engine.builder_arc();
    make_config_symbolic(engine.state_mut(id).unwrap(), &b, 0x99, "secret_card");
    engine.run(50_000);
    engine.bugs().iter().map(|b| b.kind).collect()
}

#[test]
fn encrypted_secret_reaching_the_nic_is_flagged() {
    let kinds = run_privacy(true);
    assert!(
        kinds.contains(&BugKind::PrivacyLeak),
        "xor-obfuscated secret must still be flagged: {kinds:?}"
    );
}

#[test]
fn unrelated_traffic_is_not_flagged() {
    let kinds = run_privacy(false);
    assert!(
        !kinds.contains(&BugKind::PrivacyLeak),
        "constant frame must not be flagged: {kinds:?}"
    );
}

#[test]
fn energy_envelope_varies_with_path_family() {
    // URL parser over all 3-char URLs: slash-heavy paths burn more
    // charge, so the per-path energy figures form a non-trivial envelope.
    let (mut machine, _k) = boot();
    machine.load(&s2e::guests::url_parser::program());
    let mut engine = Engine::new(machine, EngineConfig::with_model(ConsistencyModel::ScSe));
    let (energy, results) = EnergyProfile::new(EnergyModel::default());
    engine.add_plugin(Box::new(energy));
    let id = engine.sole_state().unwrap();
    let b = engine.builder_arc();
    make_cstring_symbolic(engine.state_mut(id).unwrap(), &b, INPUT_BUF, 3, "url");
    engine.run(200_000);

    let r = results.lock().unwrap();
    assert!(r.len() >= 4, "expected several completed paths, got {}", r.len());
    let charges: Vec<u64> = r.iter().map(|(_, _, c)| *c).collect();
    let (lo, hi) = (
        *charges.iter().min().unwrap(),
        *charges.iter().max().unwrap(),
    );
    assert!(hi > lo, "envelope must be non-degenerate: {lo}..{hi}");
    // Slash path costs more charge than the ordinary path by a fixed
    // amount per slash (the instruction-count law carries over).
    assert!(hi - lo >= 10, "{lo}..{hi}");
}

#[test]
fn crash_dump_for_a_driver_bug_is_complete() {
    use s2e::tools::ddt::{render_crash_dump, test_driver, DdtConfig};
    let d = s2e::guests::drivers::rtl8029::build();
    let report = test_driver(
        &d,
        &DdtConfig {
            model: ConsistencyModel::ScSe,
            max_steps: 60_000,
            max_states: 128,
            ..DdtConfig::default()
        },
    );
    let bug = report
        .raw_bugs
        .iter()
        .find(|b| b.kind == BugKind::HeapOutOfBounds)
        .expect("B5 found");
    let dump = render_crash_dump(bug);
    assert!(dump.contains("HeapOutOfBounds"));
    assert!(dump.contains("registers:"));
    assert!(dump.contains("constraints"));
    // The overflow is driven by symbolic hardware: inputs present.
    assert!(dump.contains("reproducing inputs"));
}
