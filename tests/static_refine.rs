//! End-to-end value-range refinement on the jump-table guest
//! (DESIGN.md §15): static resolution of computed dispatch, dynamic
//! discovery of memory-laundered dispatch, incremental absorption, and
//! the bit-identity contract with refinement on vs. off.

use s2e::analysis::{analyze_refined, RefinedAnalysis, TaintSeed};
use s2e::core::search::{Bfs, Dfs, SearchStrategy};
use s2e::core::{ConsistencyModel, Engine, EngineConfig, RefinementUpdate};
use s2e::guests::jumptable::{build, JumpTableGuest, STUBS};
use s2e::guests::kernel::boot;
use s2e::tools::deadcode::driver_analysis_config;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// The refined whole-image analysis over kernel + guest.
fn refined(g: &JumpTableGuest) -> RefinedAnalysis {
    let (_, kernel) = boot();
    let roots = [
        (kernel.entry, TaintSeed::all()),
        (g.program.entry, TaintSeed::clean()),
    ];
    analyze_refined(&[&kernel, &g.program], &roots, &driver_analysis_config()).unwrap()
}

fn engine(g: &JumpTableGuest) -> Engine {
    let (mut m, _k) = boot();
    m.load(&g.program);
    Engine::new(m, EngineConfig::with_model(ConsistencyModel::Lc))
}

/// Everything exploration-visible: termination reasons in order (fork
/// and scheduling order are encoded in it) plus the covered block set.
fn run_fingerprint(e: &mut Engine) -> (Vec<String>, BTreeSet<u32>) {
    e.run(200_000);
    let reasons = e.terminated().iter().map(|(_, r)| format!("{r:?}")).collect();
    (reasons, e.seen_blocks().iter().copied().collect())
}

#[test]
fn computed_dispatch_is_resolved_statically() {
    let g = build(false);
    let ra = refined(&g);
    let r = &ra.prepass.refinement;
    assert!(
        r.unknown_edges_after < r.unknown_edges_before,
        "refinement must remove unknown edges: {} -> {}",
        r.unknown_edges_before,
        r.unknown_edges_after
    );
    let preds = ra.predictions();
    let site = preds
        .sites
        .get(&g.dispatch_site)
        .expect("dispatch site must carry a prediction");
    let expected: BTreeSet<u32> = g.stub_targets.iter().copied().collect();
    assert_eq!(site.targets, expected, "range analysis must enumerate the stub table");
    // The stubs only become CFG blocks through refinement — check they
    // were actually decoded, not just predicted.
    for &t in &g.stub_targets {
        assert!(
            r.graph.cfg.blocks.contains_key(&t),
            "stub {t:#x} must be a block in the refined CFG"
        );
    }
}

#[test]
fn resolved_predictions_classify_every_retirement() {
    let g = build(false);
    let ra = refined(&g);
    let mut e = engine(&g);
    e.set_predictions(Some(Arc::new(ra.predictions())));
    e.run(200_000);
    let st = e.stats();
    assert!(st.indirect_retirements > 0, "dispatch loop must retire indirects");
    assert_eq!(
        st.indirect_retirements,
        st.indirect_targets_resolved + st.indirect_targets_escaped + st.indirect_targets_discovered,
        "every retirement must be classified"
    );
    assert_eq!(
        st.indirect_targets_discovered, 0,
        "computed dispatch is fully predicted: nothing to discover"
    );
    assert!(st.indirect_targets_resolved >= STUBS as u64);
}

#[test]
fn laundered_dispatch_is_discovered_and_absorbed() {
    let g = build(true);
    let ra = refined(&g);
    // The memory-laundered table is opaque to the range domain: the
    // site must NOT claim the stub targets statically.
    let static_preds = ra.predictions();
    let statically_predicted = static_preds
        .sites
        .get(&g.dispatch_site)
        .map(|s| s.targets.clone())
        .unwrap_or_default();
    for &t in &g.stub_targets {
        assert!(
            !statically_predicted.contains(&t),
            "laundered target {t:#x} must not be statically predicted"
        );
    }

    let shared = Arc::new(Mutex::new(ra));
    let absorbed: Arc<Mutex<Vec<(u32, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut e = engine(&g);
    e.set_predictions(Some(Arc::new(static_preds)));
    {
        let shared = Arc::clone(&shared);
        let absorbed = Arc::clone(&absorbed);
        e.set_refiner(Some(Box::new(move |site, target| {
            let mut ra = shared.lock().unwrap();
            ra.absorb(site, target).expect("incremental restart within bound");
            let bound = ra.prepass.refinement.graph.bound();
            assert!(
                ra.prepass.last_incremental_iterations <= bound,
                "incremental restart used {} pops, bound is {bound}",
                ra.prepass.last_incremental_iterations
            );
            absorbed.lock().unwrap().push((site, target));
            Some(RefinementUpdate {
                annotator: Arc::new(ra.annotator()),
                predictions: Arc::new(ra.predictions()),
            })
        })));
    }
    e.run(200_000);

    let st = e.stats();
    assert!(
        st.indirect_targets_discovered > 0,
        "laundered dispatch must surface discoveries"
    );
    assert_eq!(
        st.indirect_retirements,
        st.indirect_targets_resolved + st.indirect_targets_escaped + st.indirect_targets_discovered
    );
    let absorbed = absorbed.lock().unwrap();
    let seen: BTreeSet<u32> = absorbed.iter().map(|&(_, t)| t).collect();
    let expected: BTreeSet<u32> = g.stub_targets.iter().copied().collect();
    assert_eq!(seen, expected, "every stub must be discovered exactly once");
    for &(site, _) in absorbed.iter() {
        assert_eq!(site, g.dispatch_site);
    }
    // After absorption the model predicts all four stubs, and the
    // landing pads are real blocks in the grown CFG.
    let ra = shared.lock().unwrap();
    let preds = ra.predictions();
    assert_eq!(preds.sites[&g.dispatch_site].targets, expected);
    for &t in &g.stub_targets {
        assert!(ra.prepass.refinement.graph.cfg.blocks.contains_key(&t));
    }
}

/// Refinement is a pure optimization: path order, termination reasons,
/// and block coverage are bit-identical with it on and off, under both
/// schedulers, for both guest variants.
#[test]
fn refinement_preserves_exploration_across_schedulers() {
    for laundered in [false, true] {
        let g = build(laundered);
        let ra = Arc::new(Mutex::new(refined(&g)));
        let schedulers: [fn() -> Box<dyn SearchStrategy>; 2] =
            [|| Box::new(Dfs::new()), || Box::new(Bfs::new())];
        for make in schedulers {
            let mut off = engine(&g);
            off.set_strategy(make());
            let base = run_fingerprint(&mut off);

            let mut on = engine(&g);
            on.set_strategy(make());
            on.set_annotator(Some(Arc::new(ra.lock().unwrap().annotator())));
            on.set_predictions(Some(Arc::new(ra.lock().unwrap().predictions())));
            {
                let ra = Arc::clone(&ra);
                on.set_refiner(Some(Box::new(move |site, target| {
                    let mut ra = ra.lock().unwrap();
                    ra.absorb(site, target).unwrap();
                    Some(RefinementUpdate {
                        annotator: Arc::new(ra.annotator()),
                        predictions: Arc::new(ra.predictions()),
                    })
                })));
            }
            let refined_fp = run_fingerprint(&mut on);

            assert_eq!(base.0, refined_fp.0, "termination order diverged (laundered={laundered})");
            assert_eq!(base.1, refined_fp.1, "block coverage diverged (laundered={laundered})");
        }
    }
}
