//! Work-stealing determinism: exploration outcome is a property of the
//! guest, not of the schedule. The same guest explored with any worker
//! count, and with either migration scheduler (per-worker deques or the
//! injector-queue baseline), must produce the same total path count and
//! the same bug set — even though which worker runs which state, and in
//! what order, differs run to run.

use s2e::core::analyzers::BugCheck;
use s2e::core::parallel::{
    explore_parallel, EvictionPolicy, ParallelConfig, SchedulerKind, WorkerContext,
};
use s2e::core::selectors::{constrain_range, make_config_symbolic, make_mem_symbolic};
use s2e::core::{
    build_run_report, BugKind, CodeRanges, ConsistencyModel, Engine, EngineConfig,
};
use s2e::guests::drivers::{build_exerciser, smc91c111};
use s2e::guests::kernel::{boot, standard_annotations};
use s2e::guests::layout::cfg_keys;
use s2e::obs::{merge_timelines, ObsConfig};
use s2e::vm::asm::{Assembler, Program};
use s2e::vm::isa::reg;
use s2e::vm::machine::Machine;

const INPUT: u32 = 0x8000;

/// A deliberately imbalanced path tree over 6 symbolic input bytes:
///
/// - byte 0 gates everything — values ≥ 8 halt immediately, values < 8
///   enter a full binary subtree over bytes 1..=5 (32 leaves);
/// - the one leaf where all five bytes are ≥ 128 dereferences null.
///
/// 33 feasible paths total, >95% of them behind the gate — the shape
/// static input-space partitioning handles worst.
fn imbalanced_guest() -> Program {
    let mut a = Assembler::new(0x2000);
    a.movi(reg::R1, INPUT);
    a.movi(reg::R6, 128);
    a.movi(reg::R7, 0);
    a.ld8(reg::R2, reg::R1, 0);
    a.movi(reg::R3, 8);
    a.bltu(reg::R2, reg::R3, "deep");
    a.halt_code(1);
    a.label("deep");
    for i in 1..=5u32 {
        a.ld8(reg::R2, reg::R1, i);
        a.bltu(reg::R2, reg::R6, &format!("skip{i}"));
        a.addi(reg::R7, reg::R7, 1);
        a.label(&format!("skip{i}"));
    }
    // All five subtree bytes high: the buggy leaf.
    a.movi(reg::R4, 5);
    a.bltu(reg::R7, reg::R4, "ok");
    a.movi(reg::R0, 0);
    a.ld32(reg::R5, reg::R0, 0);
    a.label("ok");
    a.halt_code(2);
    a.finish()
}

fn worker_engine(ctx: &WorkerContext) -> Engine {
    let mut m = Machine::new();
    m.load(&imbalanced_guest());
    let mut e = ctx.engine(m, EngineConfig::with_model(ConsistencyModel::ScSe));
    e.add_plugin(Box::new(BugCheck::new()));
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    make_mem_symbolic(e.state_mut(id).unwrap(), &b, INPUT, 6, "in");
    e
}

/// Bugs compared by what they are, not which worker/state found them.
fn bug_set(report: &s2e::core::ParallelReport) -> Vec<(BugKind, u32, String)> {
    let mut bugs: Vec<_> = report
        .bugs
        .iter()
        .map(|b| (b.kind, b.pc, b.description.clone()))
        .collect();
    bugs.sort();
    bugs
}

/// Every exported state must be accounted for — taken by another worker,
/// reclaimed by its exporter, or (on budget-truncated runs only) left in
/// a queue.
fn assert_conserved(r: &s2e::core::ParallelReport) {
    assert_eq!(
        r.exports,
        r.steals + r.reclaims + r.queue_leftover,
        "state conservation"
    );
}

#[test]
fn path_count_identical_across_worker_counts() {
    let baseline = explore_parallel(&ParallelConfig::new(1, 100_000), worker_engine);
    assert_eq!(baseline.total_paths, 33, "gate + 32 subtree leaves");
    assert_eq!(bug_set(&baseline).len(), 1);
    assert_eq!(bug_set(&baseline)[0].0, BugKind::NullDereference);
    assert_conserved(&baseline);

    for workers in [2usize, 3, 8] {
        // Small batches and a tiny hoard cap force real migration.
        let mut cfg = ParallelConfig::new(workers, 100_000);
        cfg.batch = 8;
        cfg.max_local_states = 2;
        let parallel = explore_parallel(&cfg, worker_engine);
        assert_eq!(
            parallel.total_paths, baseline.total_paths,
            "path count must not depend on worker count ({workers} workers)"
        );
        assert_eq!(
            bug_set(&parallel),
            bug_set(&baseline),
            "bug set must not depend on worker count ({workers} workers)"
        );
        // The imbalanced tree cannot be explored by one engine alone
        // when overflow is capped this aggressively: surplus states
        // must have moved through the scheduler. (Whether another
        // worker stole them or the exporter popped them back is
        // timing-dependent; that they migrated is not.)
        assert!(
            parallel.exports > 0,
            "expected migration at {workers} workers: {parallel:?}"
        );
        assert_conserved(&parallel);
    }
}

/// The harshest migration schedule the config space allows: every batch
/// is one block, and a worker may hoard exactly one state — every other
/// live state is exported the moment it exists, so states cross the
/// scheduler constantly (including mid-path, between two blocks of the
/// same state).
#[test]
fn migration_stress_single_state_batches() {
    let baseline = explore_parallel(&ParallelConfig::new(1, 100_000), worker_engine);
    for scheduler in [SchedulerKind::Deque, SchedulerKind::Injector] {
        let mut cfg = ParallelConfig::new(4, 100_000).with_scheduler(scheduler);
        cfg.batch = 1;
        cfg.max_local_states = 1;
        let stressed = explore_parallel(&cfg, worker_engine);
        assert_eq!(
            stressed.total_paths, baseline.total_paths,
            "{scheduler:?}: path count survives per-block migration"
        );
        assert_eq!(
            bug_set(&stressed),
            bug_set(&baseline),
            "{scheduler:?}: bug set survives per-block migration"
        );
        assert!(stressed.exports > 0, "{scheduler:?}: stress must migrate");
        assert_eq!(
            stressed.queue_leftover, 0,
            "{scheduler:?}: exhaustive runs strand nothing"
        );
        assert_conserved(&stressed);
    }
}

/// A worker engine over the paper's 91C111 network-driver corpus under
/// local consistency: kernel boot image + driver + entry exerciser with
/// symbolic CardType/Flags config and symbolic hardware.
fn driver_worker(ctx: &WorkerContext) -> Engine {
    let driver = smc91c111::build();
    let (mut machine, _kernel) = boot();
    machine.load_aux(&driver.program);
    let exerciser = build_exerciser(&driver, true);
    machine.load(&exerciser);
    let mut ec = EngineConfig::with_model(ConsistencyModel::Lc);
    ec.code_ranges = CodeRanges::all().include(driver.code_range.clone());
    ec.annotations = standard_annotations();
    let mut e = ctx.engine(machine, ec);
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    let state = e.state_mut(id).unwrap();
    let card = make_config_symbolic(state, &b, cfg_keys::CARD_TYPE, "CardType");
    constrain_range(state, &b, &card, 0, 7);
    let flags = make_config_symbolic(state, &b, cfg_keys::FLAGS, "Flags");
    constrain_range(state, &b, &flags, 0, 3);
    e.apply_model_hardware_policy();
    e
}

/// Scheduler ablation on a real corpus: the per-worker-deque scheduler
/// and the injector baseline must exhaust the identical path set on the
/// 91C111 driver, from a single worker up past the physical core count.
#[test]
fn deque_and_injector_agree_on_91c111() {
    let baseline = explore_parallel(&ParallelConfig::new(1, 5_000_000), driver_worker);
    assert!(baseline.total_paths > 100, "corpus is nontrivial: {}", baseline.total_paths);
    assert_eq!(baseline.queue_leftover, 0, "baseline runs to exhaustion");
    for workers in [2usize, 4] {
        for scheduler in [SchedulerKind::Deque, SchedulerKind::Injector] {
            let cfg = ParallelConfig::new(workers, 5_000_000).with_scheduler(scheduler);
            let r = explore_parallel(&cfg, driver_worker);
            assert_eq!(
                r.total_paths, baseline.total_paths,
                "{scheduler:?} at {workers} workers diverged from sequential"
            );
            assert_eq!(
                r.covered_blocks, baseline.covered_blocks,
                "{scheduler:?} at {workers} workers covered different blocks"
            );
            assert_eq!(r.queue_leftover, 0);
            assert_conserved(&r);
        }
    }
}

/// Observability is a read-only passenger: recording the run must not
/// change what gets explored, and the timelines it produces must merge
/// deterministically — ordered by (worker, per-worker sequence number),
/// never by timestamp, so the merged view is stable run to run even
/// though raw clock values are not.
#[test]
fn observed_runs_explore_identically_and_merge_deterministically() {
    let mut cfg = ParallelConfig::new(4, 100_000);
    cfg.batch = 8;
    cfg.max_local_states = 2;
    let plain = explore_parallel(&cfg, worker_engine);

    cfg.obs = ObsConfig::enabled();
    let observed = explore_parallel(&cfg, worker_engine);

    assert_eq!(
        observed.total_paths, plain.total_paths,
        "recording must not change the path count"
    );
    assert_eq!(
        bug_set(&observed),
        bug_set(&plain),
        "recording must not change the bug set"
    );
    assert!(
        plain.workers.iter().all(|w| w.timeline.events.is_empty()),
        "no events recorded when observability is disabled"
    );
    let timelines: Vec<_> = observed.workers.iter().map(|w| w.timeline.clone()).collect();
    assert_eq!(timelines.len(), 4, "one timeline per worker");

    let merged = merge_timelines(&timelines);
    assert!(!merged.is_empty(), "an observed run produces events");
    for pair in merged.windows(2) {
        assert!(
            (pair[0].worker, pair[0].event.seq) < (pair[1].worker, pair[1].event.seq),
            "merge order is (worker, seq), strictly increasing"
        );
    }
    // Per-worker sequence numbers are dense from 0 even if the ring
    // dropped nothing; with drops the retained tail stays contiguous.
    for t in &timelines {
        let seqs: Vec<u64> = merged
            .iter()
            .filter(|m| m.worker == t.worker)
            .map(|m| m.event.seq)
            .collect();
        for pair in seqs.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "worker {} seqs contiguous", t.worker);
        }
    }

    // The unified report reflects the same run the reports agree on.
    let report = build_run_report(&observed, None);
    let paths = report
        .section("parallel")
        .and_then(|s| s.get("total_paths"))
        .expect("parallel section carries total_paths");
    assert_eq!(paths as usize, observed.total_paths);
    assert!(report.phases.busy().as_nanos() > 0, "phases populated");
}

/// Replay identity (§13): with every export evicted to compact
/// `{checkpoint, journal}` form and rehydrated by deterministic replay —
/// with `verify_replay` fingerprint-checking each reconstruction against
/// the evicted original — exploration must reach the same path count and
/// bug set as live shipping, under both schedulers and any worker count.
#[test]
fn eviction_replay_reaches_identical_outcome() {
    let baseline = explore_parallel(&ParallelConfig::new(1, 100_000), worker_engine);
    assert_eq!(baseline.total_paths, 33);
    for scheduler in [SchedulerKind::Deque, SchedulerKind::Injector] {
        for workers in [1usize, 2, 3, 8] {
            let mut cfg = ParallelConfig::new(workers, 100_000).with_scheduler(scheduler);
            cfg.batch = 4;
            cfg.max_local_states = 1;
            cfg.eviction = EvictionPolicy::Aggressive;
            cfg.verify_replay = true;
            let r = explore_parallel(&cfg, worker_engine);
            assert_eq!(
                r.total_paths, baseline.total_paths,
                "{scheduler:?}/{workers}w: replayed exploration diverged"
            );
            assert_eq!(
                bug_set(&r),
                bug_set(&baseline),
                "{scheduler:?}/{workers}w: bug set diverged under eviction"
            );
            assert!(r.stats.evictions > 0, "{scheduler:?}/{workers}w: nothing evicted");
            assert!(
                r.stats.rehydrations > 0,
                "{scheduler:?}/{workers}w: nothing rehydrated"
            );
            assert_eq!(
                r.stats.evictions,
                r.stats.rehydrations + r.evicted_leftover,
                "{scheduler:?}/{workers}w: eviction conservation"
            );
            assert_conserved(&r);
        }
    }
}

/// The same replay-identity property on the real 91C111 driver corpus
/// under local consistency — annotations concretize through the journal,
/// so this exercises every journal event kind the corpus produces.
#[test]
fn eviction_replay_matches_on_91c111() {
    let baseline = explore_parallel(&ParallelConfig::new(2, 5_000_000), driver_worker);
    assert_eq!(baseline.queue_leftover, 0, "baseline runs to exhaustion");
    let mut cfg = ParallelConfig::new(2, 5_000_000);
    cfg.eviction = EvictionPolicy::Aggressive;
    cfg.verify_replay = true;
    let r = explore_parallel(&cfg, driver_worker);
    assert_eq!(r.total_paths, baseline.total_paths, "91C111 path set diverged");
    assert_eq!(r.covered_blocks, baseline.covered_blocks);
    assert!(r.stats.evictions > 0 && r.stats.rehydrations > 0);
    assert_eq!(r.stats.evictions, r.stats.rehydrations + r.evicted_leftover);
    assert_conserved(&r);
}

/// Superblock chaining + direct-threaded dispatch (DESIGN.md §14) are
/// pure performance arms: switching both off must leave the explored
/// path set, bug set, coverage, and fork count bit-identical, under
/// both schedulers and any worker count.
#[test]
fn chained_and_unchained_dispatch_agree() {
    let arm = |chain: bool| {
        move |ctx: &WorkerContext| {
            let mut m = Machine::new();
            m.load(&imbalanced_guest());
            let mut ec = EngineConfig::with_model(ConsistencyModel::ScSe);
            ec.chain_blocks = chain;
            ec.threaded_dispatch = chain;
            let mut e = ctx.engine(m, ec);
            e.add_plugin(Box::new(BugCheck::new()));
            let id = e.sole_state().unwrap();
            let b = e.builder_arc();
            make_mem_symbolic(e.state_mut(id).unwrap(), &b, INPUT, 6, "in");
            e
        }
    };
    let unchained = explore_parallel(&ParallelConfig::new(1, 100_000), arm(false));
    assert_eq!(unchained.total_paths, 33);
    for scheduler in [SchedulerKind::Deque, SchedulerKind::Injector] {
        for workers in [1usize, 2, 3, 8] {
            let mut cfg = ParallelConfig::new(workers, 100_000).with_scheduler(scheduler);
            cfg.batch = 4;
            cfg.max_local_states = 1;
            let r = explore_parallel(&cfg, arm(true));
            assert_eq!(
                r.total_paths, unchained.total_paths,
                "{scheduler:?}/{workers}w: chained arm changed the path set"
            );
            assert_eq!(
                bug_set(&r),
                bug_set(&unchained),
                "{scheduler:?}/{workers}w: chained arm changed the bug set"
            );
            assert_eq!(
                r.covered_blocks, unchained.covered_blocks,
                "{scheduler:?}/{workers}w: chained arm changed coverage"
            );
            assert_eq!(
                r.stats.forks, unchained.stats.forks,
                "{scheduler:?}/{workers}w: chained arm changed the fork tree"
            );
            assert_conserved(&r);
        }
    }
}

/// The same dispatch ablation on the 91C111 driver corpus, whose
/// concrete-heavy boot and polling code actually takes the fast path:
/// the chained arm must form and traverse chains (and serve lookups
/// from the per-worker L1) yet reach the identical exploration outcome.
#[test]
fn chained_dispatch_agrees_on_91c111() {
    let arm = |chain: bool| {
        move |ctx: &WorkerContext| {
            let driver = smc91c111::build();
            let (mut machine, _kernel) = boot();
            machine.load_aux(&driver.program);
            let exerciser = build_exerciser(&driver, true);
            machine.load(&exerciser);
            let mut ec = EngineConfig::with_model(ConsistencyModel::Lc);
            ec.code_ranges = CodeRanges::all().include(driver.code_range.clone());
            ec.annotations = standard_annotations();
            ec.chain_blocks = chain;
            ec.threaded_dispatch = chain;
            let mut e = ctx.engine(machine, ec);
            let id = e.sole_state().unwrap();
            let b = e.builder_arc();
            let state = e.state_mut(id).unwrap();
            let card = make_config_symbolic(state, &b, cfg_keys::CARD_TYPE, "CardType");
            constrain_range(state, &b, &card, 0, 7);
            let flags = make_config_symbolic(state, &b, cfg_keys::FLAGS, "Flags");
            constrain_range(state, &b, &flags, 0, 3);
            e.apply_model_hardware_policy();
            e
        }
    };
    let unchained = explore_parallel(&ParallelConfig::new(2, 5_000_000), arm(false));
    assert_eq!(unchained.queue_leftover, 0, "baseline runs to exhaustion");
    let chained = explore_parallel(&ParallelConfig::new(2, 5_000_000), arm(true));
    assert_eq!(chained.total_paths, unchained.total_paths, "91C111 path set diverged");
    assert_eq!(chained.covered_blocks, unchained.covered_blocks);
    assert_eq!(chained.stats.forks, unchained.stats.forks);
    assert!(
        chained.dbt.chains_formed > 0 && chained.dbt.chain_entries > 0,
        "chained arm never chained: {:?}",
        chained.dbt
    );
    assert!(
        chained.dbt.l1_hits > 0,
        "chained arm never hit the L1: {:?}",
        chained.dbt
    );
    assert_eq!(
        unchained.dbt.chain_entries, 0,
        "unchained arm must not chain: {:?}",
        unchained.dbt
    );
    assert_conserved(&chained);
}

#[test]
fn repeated_runs_are_stable() {
    let mut cfg = ParallelConfig::new(3, 100_000);
    cfg.batch = 4;
    cfg.max_local_states = 1;
    let a = explore_parallel(&cfg, worker_engine);
    let b = explore_parallel(&cfg, worker_engine);
    assert_eq!(a.total_paths, b.total_paths);
    assert_eq!(bug_set(&a), bug_set(&b));
}
