//! Work-stealing determinism: exploration outcome is a property of the
//! guest, not of the schedule. The same guest and seed explored with 1
//! worker and with 4 workers must produce the same total path count and
//! the same bug set, even though which worker runs which state — and in
//! what order — differs run to run.

use s2e::core::analyzers::BugCheck;
use s2e::core::parallel::{explore_parallel, ParallelConfig, WorkerContext};
use s2e::core::selectors::make_mem_symbolic;
use s2e::core::{build_run_report, BugKind, ConsistencyModel, Engine, EngineConfig};
use s2e::obs::{merge_timelines, ObsConfig};
use s2e::vm::asm::{Assembler, Program};
use s2e::vm::isa::reg;
use s2e::vm::machine::Machine;

const INPUT: u32 = 0x8000;

/// A deliberately imbalanced path tree over 6 symbolic input bytes:
///
/// - byte 0 gates everything — values ≥ 8 halt immediately, values < 8
///   enter a full binary subtree over bytes 1..=5 (32 leaves);
/// - the one leaf where all five bytes are ≥ 128 dereferences null.
///
/// 33 feasible paths total, >95% of them behind the gate — the shape
/// static input-space partitioning handles worst.
fn imbalanced_guest() -> Program {
    let mut a = Assembler::new(0x2000);
    a.movi(reg::R1, INPUT);
    a.movi(reg::R6, 128);
    a.movi(reg::R7, 0);
    a.ld8(reg::R2, reg::R1, 0);
    a.movi(reg::R3, 8);
    a.bltu(reg::R2, reg::R3, "deep");
    a.halt_code(1);
    a.label("deep");
    for i in 1..=5u32 {
        a.ld8(reg::R2, reg::R1, i);
        a.bltu(reg::R2, reg::R6, &format!("skip{i}"));
        a.addi(reg::R7, reg::R7, 1);
        a.label(&format!("skip{i}"));
    }
    // All five subtree bytes high: the buggy leaf.
    a.movi(reg::R4, 5);
    a.bltu(reg::R7, reg::R4, "ok");
    a.movi(reg::R0, 0);
    a.ld32(reg::R5, reg::R0, 0);
    a.label("ok");
    a.halt_code(2);
    a.finish()
}

fn worker_engine(ctx: &WorkerContext) -> Engine {
    let mut m = Machine::new();
    m.load(&imbalanced_guest());
    let mut e = ctx.engine(m, EngineConfig::with_model(ConsistencyModel::ScSe));
    e.add_plugin(Box::new(BugCheck::new()));
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    make_mem_symbolic(e.state_mut(id).unwrap(), &b, INPUT, 6, "in");
    e
}

/// Bugs compared by what they are, not which worker/state found them.
fn bug_set(report: &s2e::core::ParallelReport) -> Vec<(BugKind, u32, String)> {
    let mut bugs: Vec<_> = report
        .bugs
        .iter()
        .map(|b| (b.kind, b.pc, b.description.clone()))
        .collect();
    bugs.sort();
    bugs
}

#[test]
fn one_and_four_workers_agree() {
    let sequential = explore_parallel(&ParallelConfig::new(1, 100_000), worker_engine);

    // Small batches and a tiny hoard cap force real migration.
    let mut cfg = ParallelConfig::new(4, 100_000);
    cfg.batch = 8;
    cfg.max_local_states = 2;
    let parallel = explore_parallel(&cfg, worker_engine);

    assert_eq!(sequential.total_paths, 33, "gate + 32 subtree leaves");
    assert_eq!(
        parallel.total_paths, sequential.total_paths,
        "path count must not depend on worker count"
    );
    assert_eq!(
        bug_set(&parallel),
        bug_set(&sequential),
        "bug set must not depend on worker count"
    );
    assert_eq!(bug_set(&sequential).len(), 1);
    assert_eq!(bug_set(&sequential)[0].0, BugKind::NullDereference);

    // The imbalanced tree cannot be explored by one worker alone when
    // migration is forced this aggressively.
    assert!(parallel.steals > 0, "expected migration: {parallel:?}");
}

/// Observability is a read-only passenger: recording the run must not
/// change what gets explored, and the timelines it produces must merge
/// deterministically — ordered by (worker, per-worker sequence number),
/// never by timestamp, so the merged view is stable run to run even
/// though raw clock values are not.
#[test]
fn observed_runs_explore_identically_and_merge_deterministically() {
    let mut cfg = ParallelConfig::new(4, 100_000);
    cfg.batch = 8;
    cfg.max_local_states = 2;
    let plain = explore_parallel(&cfg, worker_engine);

    cfg.obs = ObsConfig::enabled();
    let observed = explore_parallel(&cfg, worker_engine);

    assert_eq!(
        observed.total_paths, plain.total_paths,
        "recording must not change the path count"
    );
    assert_eq!(
        bug_set(&observed),
        bug_set(&plain),
        "recording must not change the bug set"
    );
    assert!(
        plain.workers.iter().all(|w| w.timeline.events.is_empty()),
        "no events recorded when observability is disabled"
    );
    let timelines: Vec<_> = observed.workers.iter().map(|w| w.timeline.clone()).collect();
    assert_eq!(timelines.len(), 4, "one timeline per worker");

    let merged = merge_timelines(&timelines);
    assert!(!merged.is_empty(), "an observed run produces events");
    for pair in merged.windows(2) {
        assert!(
            (pair[0].worker, pair[0].event.seq) < (pair[1].worker, pair[1].event.seq),
            "merge order is (worker, seq), strictly increasing"
        );
    }
    // Per-worker sequence numbers are dense from 0 even if the ring
    // dropped nothing; with drops the retained tail stays contiguous.
    for t in &timelines {
        let seqs: Vec<u64> = merged
            .iter()
            .filter(|m| m.worker == t.worker)
            .map(|m| m.event.seq)
            .collect();
        for pair in seqs.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "worker {} seqs contiguous", t.worker);
        }
    }

    // The unified report reflects the same run the reports agree on.
    let report = build_run_report(&observed, None);
    let paths = report
        .section("parallel")
        .and_then(|s| s.get("total_paths"))
        .expect("parallel section carries total_paths");
    assert_eq!(paths as usize, observed.total_paths);
    assert!(report.phases.busy().as_nanos() > 0, "phases populated");
}

#[test]
fn repeated_runs_are_stable() {
    let mut cfg = ParallelConfig::new(3, 100_000);
    cfg.batch = 4;
    cfg.max_local_states = 1;
    let a = explore_parallel(&cfg, worker_engine);
    let b = explore_parallel(&cfg, worker_engine);
    assert_eq!(a.total_paths, b.total_paths);
    assert_eq!(bug_set(&a), bug_set(&b));
}
