//! Cross-crate integration tests: the platform driven through the public
//! umbrella API, exactly as the examples do.

use s2e::core::selectors::{make_mem_symbolic, make_reg_symbolic};
use s2e::core::{CodeRanges, ConsistencyModel, Engine, EngineConfig, TerminationReason};
use s2e::expr::eval;
use s2e::guests::drivers::pcnet;
use s2e::guests::kernel::{boot, standard_annotations, sys};
use s2e::guests::layout::{APP_BASE, INPUT_BUF};
use s2e::guests::license;
use s2e::tools::ddt::{test_driver, DdtConfig};
use s2e::vm::asm::Assembler;
use s2e::vm::isa::reg;

/// The paper's §1 scenario end to end: symbolic license key, explore,
/// synthesize a valid key from the accepting path.
#[test]
fn license_key_synthesis() {
    let (mut machine, _k) = boot();
    machine.load(&license::program());
    let mut engine = Engine::new(machine, EngineConfig::with_model(ConsistencyModel::ScSe));
    engine.set_retain_terminated(true);
    let id = engine.sole_state().unwrap();
    let b = engine.builder_arc();
    let key_vars = make_mem_symbolic(
        engine.state_mut(id).unwrap(),
        &b,
        INPUT_BUF,
        license::KEY_LEN,
        "key",
    );
    engine.run(100_000);

    let accepting: Vec<_> = engine
        .terminated_states()
        .iter()
        .filter(|s| s.status == Some(TerminationReason::Halted(license::VALID)))
        .cloned()
        .collect();
    assert_eq!(accepting.len(), 1, "exactly one accepting path family");
    let model = match engine.solver_mut().check(&accepting[0].constraints) {
        s2e::solver::SatResult::Sat(m) => m,
        other => panic!("unsat accepting path: {other:?}"),
    };
    let key: Vec<u8> = key_vars
        .iter()
        .map(|v| eval(v, &model).unwrap() as u8)
        .collect();
    assert!(license::is_valid_key(&key), "{key:?}");
}

fn unit_with_env_call() -> s2e::vm::asm::Program {
    let mut a = Assembler::new(APP_BASE);
    a.movi(reg::R1, 100);
    a.bltu(reg::R7, reg::R1, "small");
    a.label("small");
    a.movi(reg::R0, 64);
    a.syscall(sys::ALLOC);
    a.movi(reg::R1, 0);
    a.beq(reg::R0, reg::R1, "failed");
    a.halt_code(1);
    a.label("failed");
    a.halt_code(2);
    a.finish()
}

fn run_under(model: ConsistencyModel) -> usize {
    let (mut machine, _k) = boot();
    machine.load(&unit_with_env_call());
    let mut config = EngineConfig::with_model(model);
    config.code_ranges = CodeRanges::all().include(APP_BASE..APP_BASE + 0x1000);
    if model == ConsistencyModel::Lc {
        config.annotations = standard_annotations();
    }
    let mut engine = Engine::new(machine, config);
    if model != ConsistencyModel::ScCe {
        let id = engine.sole_state().unwrap();
        let b = engine.builder_arc();
        make_reg_symbolic(engine.state_mut(id).unwrap(), &b, reg::R7, "x");
    }
    engine.run(50_000);
    engine.terminated().len()
}

/// The admitted-path ordering across models on a fixture unit (paper
/// Fig. 3's inclusion relationships, observed dynamically).
#[test]
fn consistency_model_path_ordering() {
    let sc_ce = run_under(ConsistencyModel::ScCe);
    let sc_ue = run_under(ConsistencyModel::ScUe);
    let sc_se = run_under(ConsistencyModel::ScSe);
    let lc = run_under(ConsistencyModel::Lc);
    let rc_oc = run_under(ConsistencyModel::RcOc);

    assert_eq!(sc_ce, 1, "concrete execution is single-path");
    assert!(sc_ue >= sc_ce);
    assert!(sc_se >= sc_ue, "SC-SE admits at least SC-UE's paths");
    // LC and RC-OC admit the alloc-failure path that the strict models'
    // concrete environment never produces.
    assert!(lc > sc_se, "LC {lc} should exceed SC-SE {sc_se}");
    assert!(rc_oc >= lc);
}

/// The paper's DDT+ claim shape on PCnet: LC finds strictly more bugs
/// than SC-SE, and every SC-SE bug class is hardware-triggered.
#[test]
fn ddt_model_bug_hierarchy() {
    let d = pcnet::build();
    let sc = test_driver(
        &d,
        &DdtConfig {
            model: ConsistencyModel::ScSe,
            max_steps: 30_000,
            ..DdtConfig::default()
        },
    );
    let lc = test_driver(
        &d,
        &DdtConfig {
            model: ConsistencyModel::Lc,
            max_steps: 80_000,
            ..DdtConfig::default()
        },
    );
    assert!(!sc.distinct_bugs.is_empty());
    assert!(
        lc.distinct_bugs.len() > sc.distinct_bugs.len(),
        "LC {:?} vs SC-SE {:?}",
        lc.distinct_bugs,
        sc.distinct_bugs
    );
}

/// Selective symbolic execution's headline property: the concrete domain
/// dominates the instruction mix even while the unit runs symbolically
/// (the paper reports 4 orders of magnitude for ping; our kernel is
/// smaller, so we only require a clear majority).
#[test]
fn concrete_domain_dominates() {
    let d = pcnet::build();
    let report = test_driver(
        &d,
        &DdtConfig {
            model: ConsistencyModel::Lc,
            max_steps: 20_000,
            ..DdtConfig::default()
        },
    );
    let _ = report;
    // Re-run cheaply through a plain engine to read the stats.
    let (mut machine, _k) = boot();
    machine.load_aux(&d.program);
    machine.load(&s2e::guests::drivers::build_exerciser(&d, true));
    let mut config = EngineConfig::with_model(ConsistencyModel::Lc);
    config.code_ranges = CodeRanges::all().include(d.code_range.clone());
    config.annotations = standard_annotations();
    let mut engine = Engine::new(machine, config);
    {
        let id = engine.sole_state().unwrap();
        let b = engine.builder_arc();
        s2e::core::selectors::make_config_symbolic(
            engine.state_mut(id).unwrap(),
            &b,
            s2e::guests::layout::cfg_keys::CARD_TYPE,
            "CardType",
        );
    }
    engine.run(20_000);
    let st = engine.stats();
    assert!(
        st.concrete_ratio() > 0.5,
        "concrete ratio {:.2} (concrete {} / symbolic {})",
        st.concrete_ratio(),
        st.instrs_concrete,
        st.instrs_symbolic
    );
}

/// Symbolic data passes through the kernel's write path unconcretized
/// (lazy concretization, §2.2): a symbolic buffer sent through the NIC
/// arrives in the transmit queue still symbolic.
#[test]
fn lazy_concretization_through_the_kernel() {
    let (mut machine, _k) = boot();
    let mut a = Assembler::new(APP_BASE);
    a.movi(reg::R0, INPUT_BUF);
    a.movi(reg::R1, 4);
    a.syscall(sys::SEND);
    a.halt_code(0);
    machine.load(&a.finish());

    let mut engine = Engine::new(machine, EngineConfig::with_model(ConsistencyModel::ScSe));
    engine.set_retain_terminated(true);
    let id = engine.sole_state().unwrap();
    let b = engine.builder_arc();
    make_mem_symbolic(engine.state_mut(id).unwrap(), &b, INPUT_BUF, 4, "payload");
    engine.run(10_000);

    let st = &engine.terminated_states()[0];
    let frames = st.machine.devices.nic().unwrap().sent_frames();
    assert_eq!(frames.len(), 1);
    assert!(
        frames[0].iter().any(|v| v.is_symbolic()),
        "payload should remain symbolic end to end"
    );
    // And no solver involvement was needed to carry it through.
    assert_eq!(engine.stats().concretizations, 0);
}

/// The whole stack survives the reverse-engineering + synthesis round
/// trip for every driver.
#[test]
fn rev_synthesis_round_trip_all_drivers() {
    use s2e::tools::rev::{synthesize, trace_driver, validate_against_static, RevConfig};
    for d in s2e::guests::drivers::all_drivers() {
        let report = trace_driver(
            &d,
            &RevConfig {
                max_steps: 15_000,
                ..RevConfig::default()
            },
        );
        assert!(report.recovered.blocks.len() > 5, "{}", d.name);
        let async_targets = std::collections::BTreeSet::from([d.entry("irq")]);
        validate_against_static(&report.recovered, &d.static_cfg(), &async_targets)
            .unwrap_or_else(|e| panic!("{}: {e}", d.name));
        let code = synthesize(&d, &report.recovered);
        assert!(code.contains(d.name));
    }
}
