//! Static pre-pass vs. dynamic execution: the contracts that make the
//! `s2e-analysis` results safe to act on at run time.
//!
//! 1. Every translation block the engine actually executes on the driver
//!    corpora is covered by some block of the static CFGs (kernel,
//!    driver, exerciser) — the annotator's range lookup never faces code
//!    the pre-pass did not see.
//! 2. No instruction inside a block the taint pass proved concrete-only
//!    ever observes a symbolic operand during exploration — the lean
//!    dispatch path the annotation enables is sound.
//! 3. Installing the annotations does not change what is explored: path
//!    counts and the set of executed blocks are identical with the
//!    pre-pass on and off, while the lean-dispatch counters show it
//!    actually engaged.
//! 4. With the refined prediction table installed, every dynamically
//!    retired indirect target is accounted for — statically predicted,
//!    explicitly escaping, or reported through the discovery counter.
//!    Nothing is silently absorbed into `UNKNOWN_SINK`.

use s2e::analysis::{
    analyze, analyze_refined, PrepassBuilder, ProgramAnalysis, RefinedAnalysis, RegSet, TaintSeed,
};
use s2e::core::exec::touches_symbolic;
use s2e::core::selectors::make_config_symbolic;
use s2e::core::{
    CodeRanges, ConsistencyModel, Engine, EngineConfig, ExecCtx, ExecState, Plugin,
};
use s2e::dbt::cfg::{build_cfg, StaticCfg};
use s2e::guests::drivers::{all_drivers, build_exerciser, Driver, ENTRY_ORDER};
use s2e::guests::kernel::{boot, standard_annotations};
use s2e::guests::layout::cfg_keys;
use s2e::solver::SolverConfig;
use s2e::tools::deadcode::driver_analysis_config;
use s2e::vm::asm::Program;
use s2e::vm::isa::{reg, Instr};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// Boots the standard LC driver corpus: kernel + driver + symbolic-args
/// exerciser, forking confined to the driver's code range, CardType
/// hardware config symbolic. Returns the engine plus the exerciser
/// program (needed for its static CFG).
fn lc_corpus(d: &Driver) -> (Engine, Program, Program) {
    let (mut machine, kernel) = boot();
    machine.load_aux(&d.program);
    let exerciser = build_exerciser(d, true);
    machine.load(&exerciser);
    let mut config = EngineConfig::with_model(ConsistencyModel::Lc);
    config.code_ranges = CodeRanges::all().include(d.code_range.clone());
    config.annotations = standard_annotations();
    let mut engine = Engine::new(machine, config);
    // Pin the solver to the bare SAT core so both pre-pass arms of the
    // equivalence test see identical answer provenance.
    engine.solver_mut().set_config(SolverConfig {
        model_pool_size: 0,
        enable_subsumption: false,
        ..SolverConfig::default()
    });
    {
        let id = engine.sole_state().unwrap();
        let b = engine.builder_arc();
        make_config_symbolic(engine.state_mut(id).unwrap(), &b, cfg_keys::CARD_TYPE, "CardType");
    }
    (engine, kernel, exerciser)
}

/// Range-containment lookup: interrupt and syscall resumption create
/// dynamic blocks that start mid-static-block, so coverage means "inside
/// some block", not "at a block start".
fn covered(cfg: &StaticCfg, pc: u32) -> bool {
    cfg.blocks
        .range(..=pc)
        .next_back()
        .is_some_and(|(_, b)| pc < b.end())
}

/// The pre-pass over one corpus, mirroring the engine's setup: the
/// kernel is entered from arbitrary unit context (everything tainted),
/// driver entries get the harness calling convention (symbolic `r0`/`r1`
/// arguments, tainted memory), the IRQ handler preempts arbitrary code
/// (everything tainted), and the exerciser's own symbolic data enters
/// through `S2Op::Symbolic*` sites the taint pass seeds by itself.
fn corpus_analyses(d: &Driver, kernel: &Program, exerciser: &Program) -> [ProgramAnalysis; 3] {
    let cfg = driver_analysis_config();
    let args = TaintSeed { regs: RegSet::single(reg::R0).with(reg::R1), mem: true };
    let roots: Vec<(u32, TaintSeed)> = ENTRY_ORDER
        .iter()
        .map(|e| (d.entry(e), args))
        .chain([(d.entry("irq"), TaintSeed::all())])
        .collect();
    [
        analyze(kernel, &[(kernel.entry, TaintSeed::all())], &cfg).unwrap(),
        analyze(&d.program, &roots, &cfg).unwrap(),
        analyze(exerciser, &[(exerciser.entry, TaintSeed::clean())], &cfg).unwrap(),
    ]
}

/// The refined whole-image analysis over one corpus, with the same
/// roots and seeds as [`corpus_analyses`].
fn corpus_refined(d: &Driver, kernel: &Program, exerciser: &Program) -> RefinedAnalysis {
    let cfg = driver_analysis_config();
    let args = TaintSeed { regs: RegSet::single(reg::R0).with(reg::R1), mem: true };
    let roots: Vec<(u32, TaintSeed)> = [(kernel.entry, TaintSeed::all())]
        .into_iter()
        .chain(ENTRY_ORDER.iter().map(|e| (d.entry(e), args)))
        .chain([(d.entry("irq"), TaintSeed::all())])
        .chain([(exerciser.entry, TaintSeed::clean())])
        .collect();
    analyze_refined(&[kernel, &d.program, exerciser], &roots, &cfg).unwrap()
}

/// Satellite checks 1 and 4: every dynamic block on the seeded corpora
/// lies inside a static CFG block of one of the three loaded programs,
/// and — with the refined prediction table installed — every retired
/// indirect target is classified (resolved, escaped, or discovered),
/// never silently absorbed into `UNKNOWN_SINK`.
#[test]
fn dynamic_blocks_are_covered_by_the_static_cfg() {
    let mut any_retired = false;
    for d in all_drivers() {
        let (mut engine, kernel, exerciser) = lc_corpus(&d);
        engine.set_predictions(Some(Arc::new(
            corpus_refined(&d, &kernel, &exerciser).predictions(),
        )));
        engine.run(15_000);
        let cfgs = [
            build_cfg(&kernel, &[kernel.entry]),
            d.static_cfg(),
            build_cfg(&exerciser, &[exerciser.entry]),
        ];
        assert!(!engine.seen_blocks().is_empty(), "{}: corpus executed nothing", d.name);
        for &pc in engine.seen_blocks() {
            assert!(
                cfgs.iter().any(|c| covered(c, pc)),
                "{}: dynamic block at {pc:#x} is outside every static CFG",
                d.name
            );
        }
        // Retirement accounting: the three classes partition the
        // retirements — a target the static CFG missed must show up in
        // the discovery counter, not vanish into an unknown edge.
        let st = engine.stats();
        assert_eq!(
            st.indirect_retirements,
            st.indirect_targets_resolved
                + st.indirect_targets_escaped
                + st.indirect_targets_discovered,
            "{}: unaccounted indirect retirement",
            d.name
        );
        any_retired |= st.indirect_retirements > 0;
        assert!(
            st.indirect_targets_resolved > 0,
            "{}: refinement resolved nothing the corpus actually retired",
            d.name
        );
    }
    assert!(any_retired, "no corpus retired an indirect transfer");
}

/// Records every pc where the interpreter's own symbolic-operand check
/// fires. `touches_symbolic` is exactly the predicate the lean dispatch
/// path skips, so this is the ground truth the static claim must cover.
struct SymbolicPcRecorder {
    pcs: Arc<Mutex<BTreeSet<u32>>>,
}

impl Plugin for SymbolicPcRecorder {
    fn name(&self) -> &'static str {
        "symbolic-pc-recorder"
    }

    fn wants_all_instructions(&self) -> bool {
        true
    }

    fn on_instr_execution(
        &mut self,
        state: &mut ExecState,
        _ctx: &mut ExecCtx,
        pc: u32,
        instr: &Instr,
    ) {
        if touches_symbolic(state, instr) {
            self.pcs.lock().unwrap().insert(pc);
        }
    }
}

/// Satellite check 3: no instruction in a statically concrete-only block
/// observes a symbolic operand anywhere on the explored corpora.
#[test]
fn concrete_only_blocks_never_observe_symbolic_operands() {
    let mut any_symbolic = false;
    let mut any_concrete_only = false;
    for d in all_drivers() {
        let (mut engine, kernel, exerciser) = lc_corpus(&d);
        let pcs = Arc::new(Mutex::new(BTreeSet::new()));
        engine.add_plugin(Box::new(SymbolicPcRecorder { pcs: Arc::clone(&pcs) }));
        engine.run(15_000);

        let mut concrete_ranges: Vec<(u32, u32)> = Vec::new();
        for a in &corpus_analyses(&d, &kernel, &exerciser) {
            for &start in &a.taint.concrete_only {
                concrete_ranges.push((start, a.graph.cfg.blocks[&start].end()));
            }
        }
        any_concrete_only |= !concrete_ranges.is_empty();
        let observed = pcs.lock().unwrap();
        any_symbolic |= !observed.is_empty();
        for &pc in observed.iter() {
            if let Some(&(start, end)) =
                concrete_ranges.iter().find(|&&(s, e)| s <= pc && pc < e)
            {
                panic!(
                    "{}: symbolic operand observed at {pc:#x} inside \
                     concrete-only block {start:#x}..{end:#x}",
                    d.name
                );
            }
        }
    }
    // The check must not pass vacuously.
    assert!(any_symbolic, "no corpus ever observed a symbolic operand");
    assert!(any_concrete_only, "no corpus had a concrete-only block");
}

/// Tentpole contract: the pre-pass is a pure optimization. With the
/// annotator installed, exploration visits the same blocks and
/// terminates the same number of paths — while the lean-dispatch
/// counters prove the annotations actually took effect.
#[test]
fn prepass_annotations_preserve_exploration() {
    let d = all_drivers().into_iter().find(|d| d.name == "91c111").unwrap();
    let budget = 12_000;

    let (mut plain, kernel, exerciser) = lc_corpus(&d);
    plain.run(budget);
    let plain_paths = plain.terminated().len();
    let plain_blocks: BTreeSet<u32> = plain.seen_blocks().iter().copied().collect();

    let (mut annotated, _, _) = lc_corpus(&d);
    let mut builder = PrepassBuilder::new().allow_fork_range(d.code_range.clone());
    for a in &corpus_analyses(&d, &kernel, &exerciser) {
        builder = builder.add(a);
    }
    annotated.set_annotator(Some(Arc::new(builder.build())));
    annotated.run(budget);
    let annotated_paths = annotated.terminated().len();
    let annotated_blocks: BTreeSet<u32> = annotated.seen_blocks().iter().copied().collect();

    assert_eq!(plain_paths, annotated_paths, "path counts diverged");
    assert_eq!(plain_blocks, annotated_blocks, "block coverage diverged");
    let st = annotated.stats();
    assert!(st.concrete_only_blocks > 0, "no block ran on the lean path");
    assert!(st.lean_instrs > 0, "lean dispatch never engaged");
}
