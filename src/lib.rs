//! Umbrella crate for the S2E platform reproduction.
//!
//! Re-exports the public API of every workspace crate so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! - [`expr`] — symbolic bitvector expressions and the bitfield simplifier
//! - [`solver`] — CDCL SAT solver with bitvector bit-blasting
//! - [`vm`] — the guest machine: ISA, assembler, memory, devices
//! - [`dbt`] — dynamic binary translator and translation-block cache
//! - [`analysis`] — static dataflow pre-pass over the guest CFG
//!   (liveness, symbolic-reachability taint, constant propagation)
//! - [`cache`] — cache/TLB/page-fault performance models
//! - [`core`] — the platform: execution states, the path explorer,
//!   consistency models, selectors and analyzers
//! - [`obs`] — self-observability: phase timers, per-worker event
//!   timelines, and the unified run report (DESIGN.md §11)
//! - [`guests`] — the guest software stack (kernel, drivers, programs)
//! - [`tools`] — the three case-study tools: DDT+, REV+, PROFS

pub use s2e_analysis as analysis;
pub use s2e_cache as cache;
pub use s2e_core as core;
pub use s2e_dbt as dbt;
pub use s2e_expr as expr;
pub use s2e_guests as guests;
pub use s2e_obs as obs;
pub use s2e_solver as solver;
pub use s2e_tools as tools;
pub use s2e_vm as vm;
