//! An assembler for the guest ISA with label resolution.
//!
//! The guest software stack (kernel, drivers, applications) is authored
//! through this API. Programs are position-dependent: branch and call
//! targets are absolute addresses, resolved from labels at `finish()` time.

use crate::isa::{Instr, Opcode, S2Op, INSTR_SIZE};
use std::collections::HashMap;
use std::fmt;

/// A fully assembled program image.
#[derive(Clone, Debug)]
pub struct Program {
    /// Load address of the image.
    pub base: u32,
    /// Raw bytes (instructions and data).
    pub image: Vec<u8>,
    /// Entry point (defaults to `base`).
    pub entry: u32,
    /// Exported label addresses.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Address one past the end of the image.
    pub fn end(&self) -> u32 {
        self.base + self.image.len() as u32
    }

    /// Looks up a label address.
    ///
    /// # Panics
    ///
    /// Panics if the label was never defined (assembler bugs should fail
    /// loudly in tests).
    pub fn symbol(&self, name: &str) -> u32 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("undefined symbol {name:?}"))
    }

    /// Looks up a label address, if defined.
    pub fn try_symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }
}

#[derive(Clone, Debug)]
enum Fixup {
    /// Patch the imm field of the instruction at `offset` with the label
    /// address.
    Imm { offset: usize, label: String },
    /// Patch a 32-bit data word at `offset` with the label address.
    Word { offset: usize, label: String },
}

/// Error produced by [`Assembler::finish`] for unresolved labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// The undefined label.
    pub label: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "undefined label {:?}", self.label)
    }
}

impl std::error::Error for AsmError {}

/// Incremental assembler.
///
/// # Example
///
/// ```
/// use s2e_vm::asm::Assembler;
/// use s2e_vm::isa::reg;
///
/// let mut a = Assembler::new(0x1000);
/// a.movi(reg::R0, 0);
/// a.label("loop");
/// a.addi(reg::R0, reg::R0, 1);
/// a.movi(reg::R1, 10);
/// a.bltu(reg::R0, reg::R1, "loop");
/// a.halt();
/// let prog = a.finish();
/// assert_eq!(prog.symbol("loop"), 0x1008);
/// ```
#[derive(Debug)]
pub struct Assembler {
    base: u32,
    buf: Vec<u8>,
    labels: HashMap<String, u32>,
    fixups: Vec<Fixup>,
    entry: Option<u32>,
}

impl Assembler {
    /// Creates an assembler emitting at `base`.
    pub fn new(base: u32) -> Assembler {
        Assembler {
            base,
            buf: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            entry: None,
        }
    }

    /// Current emission address.
    pub fn here(&self) -> u32 {
        self.base + self.buf.len() as u32
    }

    /// Defines a label at the current address.
    ///
    /// # Panics
    ///
    /// Panics on duplicate definition.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.here());
        assert!(prev.is_none(), "duplicate label {name:?}");
    }

    /// Marks the current address as the program entry point.
    pub fn entry_here(&mut self) {
        self.entry = Some(self.here());
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        self.buf.extend_from_slice(&i.encode());
    }

    fn emit_label_imm(&mut self, op: Opcode, rd: u8, rs1: u8, rs2: u8, label: &str) {
        self.fixups.push(Fixup::Imm {
            offset: self.buf.len(),
            label: label.to_string(),
        });
        self.emit(Instr::new(op, rd, rs1, rs2, 0));
    }

    // ---- data directives -------------------------------------------------

    /// Emits raw bytes.
    pub fn bytes(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Emits a NUL-terminated ASCII string.
    pub fn asciiz(&mut self, s: &str) {
        self.buf.extend_from_slice(s.as_bytes());
        self.buf.push(0);
    }

    /// Emits a 32-bit little-endian word.
    pub fn word(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Emits a 32-bit word holding a label's address.
    pub fn word_label(&mut self, label: &str) {
        self.fixups.push(Fixup::Word {
            offset: self.buf.len(),
            label: label.to_string(),
        });
        self.word(0);
    }

    /// Pads with zero bytes to the given alignment.
    pub fn align(&mut self, alignment: u32) {
        while !self.here().is_multiple_of(alignment) {
            self.buf.push(0);
        }
    }

    /// Reserves `n` zero bytes.
    pub fn space(&mut self, n: usize) {
        self.buf.resize(self.buf.len() + n, 0);
    }

    // ---- moves and ALU ---------------------------------------------------

    /// `rd = imm`.
    pub fn movi(&mut self, rd: u8, imm: u32) {
        self.emit(Instr::new(Opcode::MovI, rd, 0, 0, imm));
    }

    /// `rd = address of label`.
    pub fn movi_label(&mut self, rd: u8, label: &str) {
        self.emit_label_imm(Opcode::MovI, rd, 0, 0, label);
    }

    /// `rd = rs1`.
    pub fn mov(&mut self, rd: u8, rs1: u8) {
        self.emit(Instr::new(Opcode::Mov, rd, rs1, 0, 0));
    }

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Add, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Sub, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Mul, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 / rs2` (unsigned).
    pub fn divu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Divu, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 / rs2` (signed).
    pub fn divs(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Divs, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 % rs2` (unsigned).
    pub fn remu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Remu, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 % rs2` (signed).
    pub fn rems(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Rems, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::And, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Or, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Xor, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 << rs2`.
    pub fn shl(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Shl, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 >> rs2` (logical).
    pub fn shr(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Shr, rd, rs1, rs2, 0));
    }

    /// `rd = rs1 >> rs2` (arithmetic).
    pub fn sar(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Sar, rd, rs1, rs2, 0));
    }

    /// `rd = !rs1`.
    pub fn not(&mut self, rd: u8, rs1: u8) {
        self.emit(Instr::new(Opcode::Not, rd, rs1, 0, 0));
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: u32) {
        self.emit(Instr::new(Opcode::AddI, rd, rs1, 0, imm));
    }

    /// `rd = rs1 - imm`.
    pub fn subi(&mut self, rd: u8, rs1: u8, imm: u32) {
        self.emit(Instr::new(Opcode::SubI, rd, rs1, 0, imm));
    }

    /// `rd = rs1 * imm`.
    pub fn muli(&mut self, rd: u8, rs1: u8, imm: u32) {
        self.emit(Instr::new(Opcode::MulI, rd, rs1, 0, imm));
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: u8, rs1: u8, imm: u32) {
        self.emit(Instr::new(Opcode::AndI, rd, rs1, 0, imm));
    }

    /// `rd = rs1 | imm`.
    pub fn ori(&mut self, rd: u8, rs1: u8, imm: u32) {
        self.emit(Instr::new(Opcode::OrI, rd, rs1, 0, imm));
    }

    /// `rd = rs1 ^ imm`.
    pub fn xori(&mut self, rd: u8, rs1: u8, imm: u32) {
        self.emit(Instr::new(Opcode::XorI, rd, rs1, 0, imm));
    }

    /// `rd = rs1 << imm`.
    pub fn shli(&mut self, rd: u8, rs1: u8, imm: u32) {
        self.emit(Instr::new(Opcode::ShlI, rd, rs1, 0, imm));
    }

    /// `rd = rs1 >> imm` (logical).
    pub fn shri(&mut self, rd: u8, rs1: u8, imm: u32) {
        self.emit(Instr::new(Opcode::ShrI, rd, rs1, 0, imm));
    }

    /// `rd = rs1 >> imm` (arithmetic).
    pub fn sari(&mut self, rd: u8, rs1: u8, imm: u32) {
        self.emit(Instr::new(Opcode::SarI, rd, rs1, 0, imm));
    }

    // ---- memory ----------------------------------------------------------

    /// `rd = mem8[rs1 + off]`.
    pub fn ld8(&mut self, rd: u8, rs1: u8, off: u32) {
        self.emit(Instr::new(Opcode::Ld8, rd, rs1, 0, off));
    }

    /// `rd = mem16[rs1 + off]`.
    pub fn ld16(&mut self, rd: u8, rs1: u8, off: u32) {
        self.emit(Instr::new(Opcode::Ld16, rd, rs1, 0, off));
    }

    /// `rd = mem32[rs1 + off]`.
    pub fn ld32(&mut self, rd: u8, rs1: u8, off: u32) {
        self.emit(Instr::new(Opcode::Ld32, rd, rs1, 0, off));
    }

    /// `mem8[rs1 + off] = rs2`.
    pub fn st8(&mut self, rs1: u8, off: u32, rs2: u8) {
        self.emit(Instr::new(Opcode::St8, 0, rs1, rs2, off));
    }

    /// `mem16[rs1 + off] = rs2`.
    pub fn st16(&mut self, rs1: u8, off: u32, rs2: u8) {
        self.emit(Instr::new(Opcode::St16, 0, rs1, rs2, off));
    }

    /// `mem32[rs1 + off] = rs2`.
    pub fn st32(&mut self, rs1: u8, off: u32, rs2: u8) {
        self.emit(Instr::new(Opcode::St32, 0, rs1, rs2, off));
    }

    /// `sp -= 4; mem32[sp] = rs1`.
    pub fn push(&mut self, rs1: u8) {
        self.emit(Instr::new(Opcode::Push, 0, rs1, 0, 0));
    }

    /// `rd = mem32[sp]; sp += 4`.
    pub fn pop(&mut self, rd: u8) {
        self.emit(Instr::new(Opcode::Pop, rd, 0, 0, 0));
    }

    // ---- control flow ----------------------------------------------------

    /// `pc = label`.
    pub fn jmp(&mut self, label: &str) {
        self.emit_label_imm(Opcode::Jmp, 0, 0, 0, label);
    }

    /// `pc = rs1`.
    pub fn jmpr(&mut self, rs1: u8) {
        self.emit(Instr::new(Opcode::JmpR, 0, rs1, 0, 0));
    }

    /// `lr = pc + 8; pc = label`.
    pub fn call(&mut self, label: &str) {
        self.emit_label_imm(Opcode::Call, 0, 0, 0, label);
    }

    /// `lr = pc + 8; pc = rs1`.
    pub fn callr(&mut self, rs1: u8) {
        self.emit(Instr::new(Opcode::CallR, 0, rs1, 0, 0));
    }

    /// `pc = lr`.
    pub fn ret(&mut self) {
        self.emit(Instr::new(Opcode::Ret, 0, 0, 0, 0));
    }

    /// `if rs1 == rs2 goto label`.
    pub fn beq(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.emit_label_imm(Opcode::Beq, 0, rs1, rs2, label);
    }

    /// `if rs1 != rs2 goto label`.
    pub fn bne(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.emit_label_imm(Opcode::Bne, 0, rs1, rs2, label);
    }

    /// `if rs1 < rs2 (unsigned) goto label`.
    #[allow(clippy::should_implement_trait)]
    pub fn bltu(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.emit_label_imm(Opcode::Bltu, 0, rs1, rs2, label);
    }

    /// `if rs1 >= rs2 (unsigned) goto label`.
    pub fn bgeu(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.emit_label_imm(Opcode::Bgeu, 0, rs1, rs2, label);
    }

    /// `if rs1 < rs2 (signed) goto label`.
    pub fn blts(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.emit_label_imm(Opcode::Blts, 0, rs1, rs2, label);
    }

    /// `if rs1 >= rs2 (signed) goto label`.
    pub fn bges(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.emit_label_imm(Opcode::Bges, 0, rs1, rs2, label);
    }

    // ---- system ----------------------------------------------------------

    /// Software trap with syscall number `num`.
    pub fn syscall(&mut self, num: u32) {
        self.emit(Instr::new(Opcode::Syscall, 0, 0, 0, num));
    }

    /// Return from trap/interrupt.
    pub fn iret(&mut self) {
        self.emit(Instr::new(Opcode::Iret, 0, 0, 0, 0));
    }

    /// Disable interrupts.
    pub fn cli(&mut self) {
        self.emit(Instr::new(Opcode::Cli, 0, 0, 0, 0));
    }

    /// Enable interrupts.
    pub fn sti(&mut self) {
        self.emit(Instr::new(Opcode::Sti, 0, 0, 0, 0));
    }

    /// `rd = port[rs1]`.
    pub fn inp(&mut self, rd: u8, rs1: u8) {
        self.emit(Instr::new(Opcode::In, rd, rs1, 0, 0));
    }

    /// `port[rs1] = rs2`.
    pub fn outp(&mut self, rs1: u8, rs2: u8) {
        self.emit(Instr::new(Opcode::Out, 0, rs1, rs2, 0));
    }

    /// Halt with exit code 0.
    pub fn halt(&mut self) {
        self.emit(Instr::new(Opcode::Halt, 0, 0, 0, 0));
    }

    /// Halt with the given exit code.
    pub fn halt_code(&mut self, code: u32) {
        self.emit(Instr::new(Opcode::Halt, 0, 0, 0, code));
    }

    /// Emits an S2E custom opcode.
    pub fn s2e(&mut self, op: S2Op) {
        self.emit(Instr::new(Opcode::S2eOp, 0, 0, 0, op as u32));
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.emit(Instr::new(Opcode::Nop, 0, 0, 0, 0));
    }

    // ---- finishing -------------------------------------------------------

    /// Resolves fixups and produces the program image.
    ///
    /// # Panics
    ///
    /// Panics on undefined labels — guest programs are compiled into the
    /// test binary, so this is a programming error. Use
    /// [`Assembler::try_finish`] for a fallible variant.
    pub fn finish(self) -> Program {
        self.try_finish().unwrap()
    }

    /// Resolves fixups and produces the program image.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] naming the first undefined label.
    pub fn try_finish(mut self) -> Result<Program, AsmError> {
        for fixup in &self.fixups {
            let (offset, label) = match fixup {
                Fixup::Imm { offset, label } => (*offset + 4, label),
                Fixup::Word { offset, label } => (*offset, label),
            };
            let addr = *self.labels.get(label).ok_or_else(|| AsmError {
                label: label.clone(),
            })?;
            self.buf[offset..offset + 4].copy_from_slice(&addr.to_le_bytes());
        }
        let entry = self.entry.unwrap_or(self.base);
        Ok(Program {
            base: self.base,
            image: self.buf,
            entry,
            symbols: self.labels,
        })
    }

    /// Number of instructions emitted so far, assuming no data directives
    /// were interleaved unaligned.
    pub fn instr_count(&self) -> usize {
        self.buf.len() / INSTR_SIZE as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::reg;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new(0x1000);
        a.jmp("fwd"); // forward reference
        a.label("back");
        a.halt();
        a.label("fwd");
        a.jmp("back"); // backward reference
        let p = a.finish();
        let jmp_fwd = Instr::decode(&p.image[0..8].try_into().unwrap()).unwrap();
        assert_eq!(jmp_fwd.imm, p.symbol("fwd"));
        let jmp_back = Instr::decode(&p.image[16..24].try_into().unwrap()).unwrap();
        assert_eq!(jmp_back.imm, p.symbol("back"));
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new(0);
        a.jmp("nowhere");
        let err = a.try_finish().unwrap_err();
        assert_eq!(err.label, "nowhere");
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new(0);
        a.label("x");
        a.label("x");
    }

    #[test]
    fn word_label_patches_data() {
        let mut a = Assembler::new(0x2000);
        a.word_label("target");
        a.label("target");
        a.halt();
        let p = a.finish();
        let w = u32::from_le_bytes(p.image[0..4].try_into().unwrap());
        assert_eq!(w, 0x2004);
    }

    #[test]
    fn align_pads_to_boundary() {
        let mut a = Assembler::new(0x1000);
        a.bytes(&[1, 2, 3]);
        a.align(8);
        assert_eq!(a.here() % 8, 0);
        assert_eq!(a.here(), 0x1008);
    }

    #[test]
    fn asciiz_terminates() {
        let mut a = Assembler::new(0);
        a.asciiz("hi");
        let p = a.finish();
        assert_eq!(p.image, vec![b'h', b'i', 0]);
    }

    #[test]
    fn entry_defaults_to_base() {
        let mut a = Assembler::new(0x4000);
        a.halt();
        assert_eq!(a.finish().entry, 0x4000);
        let mut a = Assembler::new(0x4000);
        a.nop();
        a.entry_here();
        a.halt();
        assert_eq!(a.finish().entry, 0x4008);
    }

    #[test]
    fn movi_label_loads_address() {
        let mut a = Assembler::new(0x3000);
        a.movi_label(reg::R1, "data");
        a.halt();
        a.label("data");
        a.word(99);
        let p = a.finish();
        let i = Instr::decode(&p.image[0..8].try_into().unwrap()).unwrap();
        assert_eq!(i.imm, p.symbol("data"));
        assert_eq!(i.rd, reg::R1);
    }

    #[test]
    fn program_end_and_symbols() {
        let mut a = Assembler::new(0x100);
        a.halt();
        a.label("tail");
        let p = a.finish();
        assert_eq!(p.end(), 0x108);
        assert_eq!(p.try_symbol("tail"), Some(0x108));
        assert_eq!(p.try_symbol("missing"), None);
    }
}
