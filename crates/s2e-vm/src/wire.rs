//! Portable binary encoding of machine state (DESIGN.md §17).
//!
//! The distributed tier ships whole checkpointed machines between
//! worker processes. This module flattens [`Machine`] — CPU, paged
//! memory with its symbolic overlay, and the standard device set — into
//! a self-describing byte stream built from the same varint/expression
//! primitives as `s2e_expr::wire`. Decoding reproduces the machine
//! *exactly*: register values, page contents, overlay expressions, and
//! device state all round-trip bit-identical, which is what keeps
//! cross-process state fingerprints stable.
//!
//! Malformed input always yields a clean [`std::io::Error`] — decoding
//! never panics, whatever the bytes.

use crate::cpu::{Cpu, FaultKind};
use crate::machine::Machine;
use crate::value::Value;
use s2e_expr::wire::{bad_data, decode_expr, encode_expr, write_varint, WireReader};
use std::io;

/// Appends a [`Value`] (concrete word or symbolic expression).
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Concrete(c) => {
            out.push(0);
            write_varint(out, u64::from(*c));
        }
        Value::Symbolic(e) => {
            out.push(1);
            encode_expr(e, out);
        }
    }
}

/// Decodes a [`Value`] written by [`encode_value`].
pub fn decode_value(r: &mut WireReader<'_>) -> io::Result<Value> {
    match r.read_u8()? {
        0 => {
            let v = r.read_varint()?;
            if v > u64::from(u32::MAX) {
                return Err(bad_data(format!("concrete value {v:#x} exceeds 32 bits")));
            }
            Ok(Value::Concrete(v as u32))
        }
        1 => Ok(Value::Symbolic(decode_expr(r)?)),
        t => Err(bad_data(format!("unknown value tag {t}"))),
    }
}

/// Appends a [`FaultKind`].
pub fn encode_fault(f: &FaultKind, out: &mut Vec<u8>) {
    match f {
        FaultKind::NullAccess { addr, pc } => {
            out.push(0);
            write_varint(out, u64::from(*addr));
            write_varint(out, u64::from(*pc));
        }
        FaultKind::InvalidOpcode { pc } => {
            out.push(1);
            write_varint(out, u64::from(*pc));
        }
        FaultKind::AssertFailed { pc } => {
            out.push(2);
            write_varint(out, u64::from(*pc));
        }
        FaultKind::SymbolicPc { pc } => {
            out.push(3);
            write_varint(out, u64::from(*pc));
        }
        FaultKind::KernelPanic { code, pc } => {
            out.push(4);
            write_varint(out, u64::from(*code));
            write_varint(out, u64::from(*pc));
        }
    }
}

fn read_u32(r: &mut WireReader<'_>, what: &str) -> io::Result<u32> {
    let v = r.read_varint()?;
    if v > u64::from(u32::MAX) {
        return Err(bad_data(format!("{what} {v:#x} exceeds 32 bits")));
    }
    Ok(v as u32)
}

/// Decodes a [`FaultKind`] written by [`encode_fault`].
pub fn decode_fault(r: &mut WireReader<'_>) -> io::Result<FaultKind> {
    Ok(match r.read_u8()? {
        0 => FaultKind::NullAccess { addr: read_u32(r, "fault addr")?, pc: read_u32(r, "fault pc")? },
        1 => FaultKind::InvalidOpcode { pc: read_u32(r, "fault pc")? },
        2 => FaultKind::AssertFailed { pc: read_u32(r, "fault pc")? },
        3 => FaultKind::SymbolicPc { pc: read_u32(r, "fault pc")? },
        4 => FaultKind::KernelPanic { code: read_u32(r, "panic code")?, pc: read_u32(r, "fault pc")? },
        t => return Err(bad_data(format!("unknown fault tag {t}"))),
    })
}

fn read_bool(r: &mut WireReader<'_>, what: &str) -> io::Result<bool> {
    match r.read_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(bad_data(format!("{what} flag byte {b} is not 0/1"))),
    }
}

/// Appends the full CPU state.
pub fn encode_cpu(cpu: &Cpu, out: &mut Vec<u8>) {
    for r in 0..crate::isa::reg::NUM_REGS as u8 {
        encode_value(cpu.reg(r), out);
    }
    write_varint(out, u64::from(cpu.pc));
    out.push(cpu.interrupts_enabled as u8);
    write_varint(out, u64::from(cpu.pending_irqs));
    match cpu.halted {
        None => out.push(0),
        Some(code) => {
            out.push(1);
            write_varint(out, u64::from(code));
        }
    }
    match &cpu.fault {
        None => out.push(0),
        Some(f) => {
            out.push(1);
            encode_fault(f, out);
        }
    }
}

/// Decodes a CPU written by [`encode_cpu`].
pub fn decode_cpu(r: &mut WireReader<'_>) -> io::Result<Cpu> {
    let mut cpu = Cpu::new();
    for reg in 0..crate::isa::reg::NUM_REGS as u8 {
        cpu.set_reg(reg, decode_value(r)?);
    }
    cpu.pc = read_u32(r, "pc")?;
    cpu.interrupts_enabled = read_bool(r, "interrupts_enabled")?;
    cpu.pending_irqs = read_u32(r, "pending_irqs")?;
    cpu.halted = match r.read_u8()? {
        0 => None,
        1 => Some(read_u32(r, "halt code")?),
        t => return Err(bad_data(format!("unknown halted tag {t}"))),
    };
    cpu.fault = match r.read_u8()? {
        0 => None,
        1 => Some(decode_fault(r)?),
        t => return Err(bad_data(format!("unknown fault-option tag {t}"))),
    };
    Ok(cpu)
}

/// Appends the whole machine: CPU, memory, devices, virtual time.
pub fn encode_machine(m: &Machine, out: &mut Vec<u8>) -> io::Result<()> {
    encode_cpu(&m.cpu, out);
    m.mem.encode_wire(out);
    m.devices.encode_wire(out)?;
    write_varint(out, m.vtime);
    Ok(())
}

/// Decodes a machine written by [`encode_machine`].
pub fn decode_machine(r: &mut WireReader<'_>) -> io::Result<Machine> {
    let cpu = decode_cpu(r)?;
    let mem = crate::mem::Memory::decode_wire(r)?;
    let devices = crate::device::DeviceSet::decode_wire(r)?;
    let vtime = r.read_varint()?;
    Ok(Machine { cpu, mem, devices, vtime })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::ports;
    use s2e_expr::{ExprBuilder, Width};

    fn sample_machine() -> Machine {
        let b = ExprBuilder::new();
        let mut m = Machine::new();
        m.cpu.pc = 0x2040;
        m.cpu.interrupts_enabled = true;
        m.cpu.pending_irqs = 0b101;
        m.cpu.set_reg(3, Value::Symbolic(b.var("r3", Width::W32)));
        m.cpu.set_reg(7, Value::Concrete(0xdead_beef));
        m.mem.write_u32(0x5000, 0x1234_5678).unwrap();
        m.mem.write_u8(0x5004, Value::Symbolic(b.var("byte", Width::W8))).unwrap();
        m.devices.write_port(ports::CONSOLE_OUT, &Value::Concrete(b'h' as u32), &b);
        m.devices.write_port(ports::NIC_DATA, &Value::Symbolic(b.var("tx", Width::W32)), &b);
        m.devices.write_port(ports::CFG_SELECT, &Value::Concrete(9), &b);
        m.devices.write_port(ports::CFG_DATA, &Value::Concrete(42), &b);
        m.vtime = 777;
        m
    }

    #[test]
    fn machine_round_trip_is_bit_identical() {
        let m = sample_machine();
        let mut buf = Vec::new();
        encode_machine(&m, &mut buf).unwrap();
        let mut r = WireReader::new(&buf);
        let back = decode_machine(&mut r).unwrap();
        assert!(r.is_empty());
        // Debug rendering covers every field (it feeds the state
        // fingerprint), so string equality is bit-level equality here.
        assert_eq!(format!("{:?}", m.cpu), format!("{:?}", back.cpu));
        assert_eq!(format!("{:?}", m.devices), format!("{:?}", back.devices));
        assert_eq!(m.vtime, back.vtime);
        assert_eq!(m.mem.page_count(), back.mem.page_count());
        assert_eq!(m.mem.symbolic_byte_count(), back.mem.symbolic_byte_count());
        let mut ha = std::collections::hash_map::DefaultHasher::new();
        let mut hb = std::collections::hash_map::DefaultHasher::new();
        use std::hash::Hasher as _;
        m.mem.digest(&mut ha);
        back.mem.digest(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn truncations_error_cleanly() {
        let m = sample_machine();
        let mut buf = Vec::new();
        encode_machine(&m, &mut buf).unwrap();
        for cut in [0, 1, buf.len() / 4, buf.len() / 2, buf.len() - 1] {
            assert!(decode_machine(&mut WireReader::new(&buf[..cut])).is_err());
        }
    }

    #[test]
    fn value_round_trip() {
        let b = ExprBuilder::new();
        for v in [Value::Concrete(0), Value::Concrete(u32::MAX), Value::Symbolic(b.var("v", Width::W32))] {
            let mut buf = Vec::new();
            encode_value(&v, &mut buf);
            let back = decode_value(&mut WireReader::new(&buf)).unwrap();
            assert_eq!(v, back);
        }
        assert!(decode_value(&mut WireReader::new(&[9])).is_err());
    }
}
