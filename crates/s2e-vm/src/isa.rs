//! The guest instruction set.
//!
//! A 32-bit RISC-style ISA with a fixed 8-byte instruction encoding:
//!
//! ```text
//! byte 0      1     2     3     4..7
//! [opcode] [rd] [rs1] [rs2] [imm: u32 little-endian]
//! ```
//!
//! Sixteen general registers; by convention `r13` is the stack pointer and
//! `r14` the link register. The program counter is architectural state, not
//! a register. Conditional branches take absolute targets in `imm`.
//!
//! The `S2eOp` opcode carries the paper's custom guest instructions
//! (§4.2): creating symbolic values, toggling multi-path execution,
//! logging, and killing paths. A plain VM treats them as cheap no-ops
//! (guests run unmodified outside the platform); the S2E engine interprets
//! them.


/// Size of one encoded instruction in bytes.
pub const INSTR_SIZE: u32 = 8;

/// Register names.
pub mod reg {
    /// General-purpose registers; `R0..=R3` carry syscall/function
    /// arguments and `R0` return values by software convention.
    pub const R0: u8 = 0;
    pub const R1: u8 = 1;
    pub const R2: u8 = 2;
    pub const R3: u8 = 3;
    pub const R4: u8 = 4;
    pub const R5: u8 = 5;
    pub const R6: u8 = 6;
    pub const R7: u8 = 7;
    pub const R8: u8 = 8;
    pub const R9: u8 = 9;
    pub const R10: u8 = 10;
    pub const R11: u8 = 11;
    pub const R12: u8 = 12;
    /// Stack pointer (software convention).
    pub const SP: u8 = 13;
    /// Link register written by `Call`.
    pub const LR: u8 = 14;
    /// Scratch register reserved for kernel trampolines.
    pub const KR: u8 = 15;

    /// Number of architectural registers.
    pub const NUM_REGS: usize = 16;
}

/// Fixed interrupt/trap vector table (physical addresses holding handler
/// pointers).
pub mod vector {
    /// Syscall trap handler pointer.
    pub const SYSCALL: u32 = 0x0000_1000;
    /// Timer IRQ handler pointer.
    pub const TIMER: u32 = 0x0000_1004;
    /// NIC IRQ handler pointer.
    pub const NIC: u32 = 0x0000_1008;
    /// Machine fault handler pointer (0 = fault halts the machine).
    pub const FAULT: u32 = 0x0000_100C;
}

/// IRQ line numbers.
pub mod irq {
    /// Interval timer.
    pub const TIMER: u32 = 0;
    /// Network interface.
    pub const NIC: u32 = 1;
    /// Number of IRQ lines.
    pub const NUM_IRQS: u32 = 2;
}

/// Instruction opcodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0,
    /// `rd = imm`.
    MovI,
    /// `rd = rs1`.
    Mov,
    /// `rd = rs1 + rs2`.
    Add,
    /// `rd = rs1 - rs2`.
    Sub,
    /// `rd = rs1 * rs2` (wrapping).
    Mul,
    /// `rd = rs1 / rs2` unsigned; division by zero yields all-ones.
    Divu,
    /// `rd = rs1 / rs2` signed.
    Divs,
    /// `rd = rs1 % rs2` unsigned; remainder by zero yields `rs1`.
    Remu,
    /// `rd = rs1 % rs2` signed.
    Rems,
    /// `rd = rs1 & rs2`.
    And,
    /// `rd = rs1 | rs2`.
    Or,
    /// `rd = rs1 ^ rs2`.
    Xor,
    /// `rd = rs1 << rs2` (zero when shift >= 32).
    Shl,
    /// `rd = rs1 >> rs2` logical.
    Shr,
    /// `rd = rs1 >> rs2` arithmetic.
    Sar,
    /// `rd = !rs1` (bitwise complement).
    Not,
    /// `rd = rs1 + imm`.
    AddI,
    /// `rd = rs1 - imm`.
    SubI,
    /// `rd = rs1 * imm`.
    MulI,
    /// `rd = rs1 & imm`.
    AndI,
    /// `rd = rs1 | imm`.
    OrI,
    /// `rd = rs1 ^ imm`.
    XorI,
    /// `rd = rs1 << imm`.
    ShlI,
    /// `rd = rs1 >> imm` logical.
    ShrI,
    /// `rd = rs1 >> imm` arithmetic.
    SarI,
    /// `rd = mem8[rs1 + imm]` zero-extended.
    Ld8,
    /// `rd = mem16[rs1 + imm]` zero-extended (little-endian).
    Ld16,
    /// `rd = mem32[rs1 + imm]` (little-endian).
    Ld32,
    /// `mem8[rs1 + imm] = rs2 & 0xff`.
    St8,
    /// `mem16[rs1 + imm] = rs2 & 0xffff`.
    St16,
    /// `mem32[rs1 + imm] = rs2`.
    St32,
    /// `pc = imm`.
    Jmp,
    /// `pc = rs1`.
    JmpR,
    /// `lr = pc + 8; pc = imm`.
    Call,
    /// `lr = pc + 8; pc = rs1`.
    CallR,
    /// `pc = lr`.
    Ret,
    /// `if rs1 == rs2 { pc = imm }`.
    Beq,
    /// `if rs1 != rs2 { pc = imm }`.
    Bne,
    /// `if rs1 < rs2 (unsigned) { pc = imm }`.
    Bltu,
    /// `if rs1 >= rs2 (unsigned) { pc = imm }`.
    Bgeu,
    /// `if rs1 < rs2 (signed) { pc = imm }`.
    Blts,
    /// `if rs1 >= rs2 (signed) { pc = imm }`.
    Bges,
    /// `sp -= 4; mem32[sp] = rs1`.
    Push,
    /// `rd = mem32[sp]; sp += 4`.
    Pop,
    /// Software trap: `sp -= 4; mem32[sp] = pc + 8; pc = mem32[SYSCALL
    /// vector]`; interrupts disabled. Syscall number in `imm`, copied to
    /// `KR` (r15).
    Syscall,
    /// Return from trap/interrupt: `pc = mem32[sp]; sp += 4`; interrupts
    /// re-enabled.
    Iret,
    /// Disable maskable interrupts.
    Cli,
    /// Enable maskable interrupts.
    Sti,
    /// `rd = port[rs1]` (port I/O read).
    In,
    /// `port[rs1] = rs2` (port I/O write).
    Out,
    /// Stop the machine with exit code `imm`.
    Halt,
    /// S2E custom opcode; sub-operation in `imm` (see [`S2Op`]).
    S2eOp,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        if b <= Opcode::S2eOp as u8 {
            // SAFETY in spirit: contiguous repr(u8) enum; use a match-free
            // decode via transmute-equivalent table to stay in safe code.
            Some(OPCODE_TABLE[b as usize])
        } else {
            None
        }
    }

    /// True for instructions that end a translation block.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::Jmp
                | Opcode::JmpR
                | Opcode::Call
                | Opcode::CallR
                | Opcode::Ret
                | Opcode::Beq
                | Opcode::Bne
                | Opcode::Bltu
                | Opcode::Bgeu
                | Opcode::Blts
                | Opcode::Bges
                | Opcode::Syscall
                | Opcode::Iret
                | Opcode::Halt
        )
    }

    /// True for the conditional branches.
    pub fn is_conditional_branch(self) -> bool {
        matches!(
            self,
            Opcode::Beq | Opcode::Bne | Opcode::Bltu | Opcode::Bgeu | Opcode::Blts | Opcode::Bges
        )
    }

    /// True for memory loads.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ld8 | Opcode::Ld16 | Opcode::Ld32 | Opcode::Pop)
    }

    /// True for memory stores.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::St8 | Opcode::St16 | Opcode::St32 | Opcode::Push)
    }
}

const OPCODE_TABLE: [Opcode; 54] = [
    Opcode::Nop,
    Opcode::MovI,
    Opcode::Mov,
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Divu,
    Opcode::Divs,
    Opcode::Remu,
    Opcode::Rems,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Sar,
    Opcode::Not,
    Opcode::AddI,
    Opcode::SubI,
    Opcode::MulI,
    Opcode::AndI,
    Opcode::OrI,
    Opcode::XorI,
    Opcode::ShlI,
    Opcode::ShrI,
    Opcode::SarI,
    Opcode::Ld8,
    Opcode::Ld16,
    Opcode::Ld32,
    Opcode::St8,
    Opcode::St16,
    Opcode::St32,
    Opcode::Jmp,
    Opcode::JmpR,
    Opcode::Call,
    Opcode::CallR,
    Opcode::Ret,
    Opcode::Beq,
    Opcode::Bne,
    Opcode::Bltu,
    Opcode::Bgeu,
    Opcode::Blts,
    Opcode::Bges,
    Opcode::Push,
    Opcode::Pop,
    Opcode::Syscall,
    Opcode::Iret,
    Opcode::Cli,
    Opcode::Sti,
    Opcode::In,
    Opcode::Out,
    Opcode::Halt,
    Opcode::S2eOp,
    // Padding entry so the table length covers `S2eOp as u8` (53).
    Opcode::Nop,
];

/// Sub-operations of [`Opcode::S2eOp`] — the paper's custom guest opcodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u32)]
pub enum S2Op {
    /// `r0 = fresh symbolic word` (name pointer in `r1`, 0 for anonymous).
    /// Equivalent of the paper's `S2SYM`.
    SymbolicReg = 1,
    /// Make `r1` bytes of memory at address `r0` symbolic.
    SymbolicMem = 2,
    /// Enable multi-path execution (paper: `S2ENA`).
    EnableForking = 3,
    /// Disable multi-path execution (paper: `S2DIS`).
    DisableForking = 4,
    /// Log the byte string at address `r0`, length `r1` (paper: `S2OUT`).
    LogMessage = 5,
    /// Kill the current path with status `r0`.
    KillPath = 6,
    /// Assert `r0 != 0`; analyzers report a bug otherwise.
    Assert = 7,
    /// Mark the unit/environment boundary: entering environment code.
    /// Used by consistency-model experiments.
    EnterEnv = 8,
    /// Mark the unit/environment boundary: returning to the unit.
    LeaveEnv = 9,
    /// Disable timer interrupts for a critical section (paper §5 notes an
    /// opcode to suppress interrupts during symbolic execution).
    NoInterrupts = 10,
    /// Re-enable timer interrupts.
    AllowInterrupts = 11,
}

impl S2Op {
    /// Decodes a sub-operation number.
    pub fn from_u32(v: u32) -> Option<S2Op> {
        Some(match v {
            1 => S2Op::SymbolicReg,
            2 => S2Op::SymbolicMem,
            3 => S2Op::EnableForking,
            4 => S2Op::DisableForking,
            5 => S2Op::LogMessage,
            6 => S2Op::KillPath,
            7 => S2Op::Assert,
            8 => S2Op::EnterEnv,
            9 => S2Op::LeaveEnv,
            10 => S2Op::NoInterrupts,
            11 => S2Op::AllowInterrupts,
            _ => return None,
        })
    }
}

/// A decoded instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Instr {
    /// Operation.
    pub op: Opcode,
    /// Destination register.
    pub rd: u8,
    /// First source register.
    pub rs1: u8,
    /// Second source register.
    pub rs2: u8,
    /// Immediate operand.
    pub imm: u32,
}

impl Instr {
    /// Creates an instruction; register fields must be < 16.
    pub fn new(op: Opcode, rd: u8, rs1: u8, rs2: u8, imm: u32) -> Instr {
        debug_assert!(rd < 16 && rs1 < 16 && rs2 < 16, "register out of range");
        Instr { op, rd, rs1, rs2, imm }
    }

    /// Encodes to the 8-byte wire format.
    pub fn encode(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0] = self.op as u8;
        out[1] = self.rd;
        out[2] = self.rs1;
        out[3] = self.rs2;
        out[4..8].copy_from_slice(&self.imm.to_le_bytes());
        out
    }

    /// Decodes from the wire format.
    ///
    /// Returns `None` for an invalid opcode or register field.
    pub fn decode(bytes: &[u8; 8]) -> Option<Instr> {
        let op = Opcode::from_u8(bytes[0])?;
        let (rd, rs1, rs2) = (bytes[1], bytes[2], bytes[3]);
        if rd >= 16 || rs1 >= 16 || rs2 >= 16 {
            return None;
        }
        let imm = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        Some(Instr { op, rd, rs1, rs2, imm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_round_trips() {
        for b in 0u8..=Opcode::S2eOp as u8 {
            let op = Opcode::from_u8(b).unwrap();
            assert_eq!(op as u8, b, "table entry {b} mismatched");
        }
        assert_eq!(Opcode::from_u8(Opcode::S2eOp as u8 + 1), None);
        assert_eq!(Opcode::from_u8(255), None);
    }

    #[test]
    fn instr_encode_decode_round_trip() {
        let i = Instr::new(Opcode::AddI, 3, 4, 0, 0xdead_beef);
        let enc = i.encode();
        assert_eq!(Instr::decode(&enc), Some(i));
    }

    #[test]
    fn decode_rejects_bad_registers() {
        let mut enc = Instr::new(Opcode::Add, 1, 2, 3, 0).encode();
        enc[1] = 16;
        assert_eq!(Instr::decode(&enc), None);
    }

    #[test]
    fn terminators_classified() {
        assert!(Opcode::Jmp.is_terminator());
        assert!(Opcode::Beq.is_terminator());
        assert!(Opcode::Halt.is_terminator());
        assert!(Opcode::Syscall.is_terminator());
        assert!(!Opcode::Add.is_terminator());
        assert!(!Opcode::Ld32.is_terminator());
    }

    #[test]
    fn branch_classification() {
        assert!(Opcode::Bltu.is_conditional_branch());
        assert!(!Opcode::Jmp.is_conditional_branch());
        assert!(Opcode::Ld8.is_load());
        assert!(Opcode::Pop.is_load());
        assert!(Opcode::St32.is_store());
        assert!(Opcode::Push.is_store());
    }

    #[test]
    fn s2op_round_trips() {
        for v in 1..=11u32 {
            let op = S2Op::from_u32(v).unwrap();
            assert_eq!(op as u32, v);
        }
        assert_eq!(S2Op::from_u32(0), None);
        assert_eq!(S2Op::from_u32(12), None);
    }

    #[test]
    fn imm_encoding_little_endian() {
        let i = Instr::new(Opcode::MovI, 0, 0, 0, 0x0102_0304);
        let enc = i.encode();
        assert_eq!(&enc[4..8], &[0x04, 0x03, 0x02, 0x01]);
    }
}
