//! Machine values that are either concrete or symbolic.

use s2e_expr::{ExprBuilder, ExprRef, Width};
use std::fmt;

/// A guest machine value: a concrete 32-bit word or a symbolic expression.
///
/// This is the type that makes the machine state *shared* between the
/// concrete and symbolic domains (§5 of the paper): registers and memory
/// cells store `Value`s, the translator checks concreteness per
/// instruction, and lazy concretization simply means leaving a `Symbolic`
/// in place until concretely-running code actually reads it.
///
/// Symbolic values always have width 32 in registers; memory stores 8-bit
/// `Value`s per byte cell.
#[derive(Clone, PartialEq, Eq)]
pub enum Value {
    /// A concrete word (width depends on context; registers use 32 bits).
    Concrete(u32),
    /// A symbolic expression.
    Symbolic(ExprRef),
}

impl Value {
    /// The concrete zero word.
    pub fn zero() -> Value {
        Value::Concrete(0)
    }

    /// True if the value is concrete.
    pub fn is_concrete(&self) -> bool {
        matches!(self, Value::Concrete(_))
    }

    /// True if the value is symbolic.
    pub fn is_symbolic(&self) -> bool {
        matches!(self, Value::Symbolic(_))
    }

    /// The concrete value, if any. A symbolic expression that folded to a
    /// constant also yields its value.
    pub fn as_concrete(&self) -> Option<u32> {
        match self {
            Value::Concrete(v) => Some(*v),
            Value::Symbolic(e) => e.as_const().map(|v| v as u32),
        }
    }

    /// Converts to an expression of the given width, building a constant
    /// node for concrete values.
    pub fn to_expr(&self, builder: &ExprBuilder, width: Width) -> ExprRef {
        match self {
            Value::Concrete(v) => builder.constant(*v as u64, width),
            Value::Symbolic(e) => {
                debug_assert_eq!(e.width(), width, "symbolic value width mismatch");
                e.clone()
            }
        }
    }

    /// Wraps an expression, collapsing constant expressions back to
    /// concrete values so the fast path stays fast.
    pub fn from_expr(e: ExprRef) -> Value {
        match e.as_const() {
            Some(v) => Value::Concrete(v as u32),
            None => Value::Symbolic(e),
        }
    }
}

impl Default for Value {
    fn default() -> Value {
        Value::zero()
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Concrete(v)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Concrete(v) => write!(f, "{v:#x}"),
            Value::Symbolic(e) => write!(f, "sym({})", **e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_accessors() {
        let v = Value::Concrete(7);
        assert!(v.is_concrete());
        assert_eq!(v.as_concrete(), Some(7));
    }

    #[test]
    fn symbolic_constant_collapses() {
        let b = ExprBuilder::new();
        let c = b.constant(9, Width::W32);
        let v = Value::from_expr(c);
        assert!(v.is_concrete());
        assert_eq!(v.as_concrete(), Some(9));
    }

    #[test]
    fn symbolic_stays_symbolic() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W32);
        let v = Value::from_expr(x);
        assert!(v.is_symbolic());
        assert_eq!(v.as_concrete(), None);
    }

    #[test]
    fn to_expr_round_trip() {
        let b = ExprBuilder::new();
        let v = Value::Concrete(0x1234);
        let e = v.to_expr(&b, Width::W32);
        assert_eq!(e.as_const(), Some(0x1234));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Value::default().as_concrete(), Some(0));
    }
}
