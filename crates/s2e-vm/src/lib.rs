//! The guest machine for the S2E platform.
//!
//! The original S2E runs a full x86 stack inside QEMU. This crate provides
//! the equivalent substrate for the reproduction: a 32-bit RISC-style guest
//! ISA with port-mapped I/O, software interrupts, and custom S2E opcodes
//! (the paper's §4.2 `S2SYM`/`S2ENA`/`S2DIS`/`S2OUT` instruction family);
//! an assembler with labels used to author the guest software stack; paged
//! physical memory with copy-on-write sharing and a per-byte symbolic
//! overlay (the paper's *shared representation of machine state* between
//! the concrete and symbolic domains, §5); and a set of virtual devices —
//! console, interval timer, a synthetic NIC with optional *symbolic
//! hardware* mode, and a configuration store standing in for the Windows
//! registry.
//!
//! The [`interp`] module is a concrete-only reference interpreter: it
//! defines the baseline semantics (the "vanilla QEMU" of the overhead
//! experiments in §6.2) and refuses to touch symbolic data.
//!
//! # Example: assemble and run a tiny guest
//!
//! ```
//! use s2e_vm::asm::Assembler;
//! use s2e_vm::isa::reg;
//! use s2e_vm::interp::{run_concrete, RunOutcome};
//! use s2e_vm::machine::Machine;
//!
//! let mut a = Assembler::new(0x1000);
//! a.movi(reg::R0, 2);
//! a.addi(reg::R0, reg::R0, 40);
//! a.halt();
//! let prog = a.finish();
//!
//! let mut m = Machine::new();
//! m.load(&prog);
//! let outcome = run_concrete(&mut m, 1_000).unwrap();
//! assert_eq!(outcome, RunOutcome::Halted(0));
//! assert_eq!(m.cpu.reg(reg::R0).as_concrete(), Some(42));
//! ```

pub mod asm;
pub mod cpu;
pub mod device;
pub mod interp;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod value;
pub mod wire;

pub use cpu::{Cpu, FaultKind};
pub use machine::Machine;
pub use mem::Memory;
pub use value::Value;
