//! Concrete reference interpreter.
//!
//! Defines the authoritative concrete semantics of the guest ISA and
//! serves as the "vanilla QEMU" baseline in the §6.2 overhead experiments:
//! no symbolic-memory checks, no event dispatch, no state forking — just
//! fetch/decode/execute. It refuses to operate on symbolic data; guests
//! that need symbolic execution run under the `s2e-core` engine instead.
//!
//! The instruction semantics here and in the engine both bottom out in
//! [`s2e_expr::fold`], so the two executors cannot drift apart.

use crate::cpu::FaultKind;
use crate::isa::{irq, reg, vector, Instr, Opcode, S2Op, INSTR_SIZE};
use crate::machine::Machine;
use crate::mem::MemError;
use crate::value::Value;
use s2e_expr::fold::apply_binop;
use s2e_expr::{BinOp, ExprBuilder, Width};
use std::fmt;

/// Why the concrete interpreter had to stop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// A symbolic value reached the concrete interpreter.
    SymbolicValue {
        /// PC of the instruction that read it.
        pc: u32,
        /// Description of where it surfaced.
        what: &'static str,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::SymbolicValue { pc, what } => {
                write!(f, "symbolic value in concrete interpreter: {what} (pc={pc:#010x})")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Result of running the interpreter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// `Halt` executed with this exit code.
    Halted(u32),
    /// A machine fault terminated execution.
    Faulted(FaultKind),
    /// The instruction budget ran out.
    OutOfFuel,
}

/// Maps an ALU opcode to its expression operator (shared with the
/// symbolic engine).
pub fn alu_binop(op: Opcode) -> Option<BinOp> {
    Some(match op {
        Opcode::Add | Opcode::AddI => BinOp::Add,
        Opcode::Sub | Opcode::SubI => BinOp::Sub,
        Opcode::Mul | Opcode::MulI => BinOp::Mul,
        Opcode::Divu => BinOp::UDiv,
        Opcode::Divs => BinOp::SDiv,
        Opcode::Remu => BinOp::URem,
        Opcode::Rems => BinOp::SRem,
        Opcode::And | Opcode::AndI => BinOp::And,
        Opcode::Or | Opcode::OrI => BinOp::Or,
        Opcode::Xor | Opcode::XorI => BinOp::Xor,
        Opcode::Shl | Opcode::ShlI => BinOp::Shl,
        Opcode::Shr | Opcode::ShrI => BinOp::LShr,
        Opcode::Sar | Opcode::SarI => BinOp::AShr,
        _ => return None,
    })
}

/// Evaluates a conditional branch on concrete operands.
pub fn branch_taken(op: Opcode, a: u32, b: u32) -> bool {
    let w = Width::W32;
    match op {
        Opcode::Beq => apply_binop(BinOp::Eq, a as u64, b as u64, w) == 1,
        Opcode::Bne => apply_binop(BinOp::Ne, a as u64, b as u64, w) == 1,
        Opcode::Bltu => apply_binop(BinOp::ULt, a as u64, b as u64, w) == 1,
        Opcode::Bgeu => apply_binop(BinOp::ULt, a as u64, b as u64, w) == 0,
        Opcode::Blts => apply_binop(BinOp::SLt, a as u64, b as u64, w) == 1,
        Opcode::Bges => apply_binop(BinOp::SLt, a as u64, b as u64, w) == 0,
        _ => unreachable!("not a branch: {op:?}"),
    }
}

/// Memory width in bytes for a load/store opcode.
pub fn mem_width(op: Opcode) -> u32 {
    match op {
        Opcode::Ld8 | Opcode::St8 => 1,
        Opcode::Ld16 | Opcode::St16 => 2,
        _ => 4,
    }
}

fn get_concrete(m: &Machine, r: u8, what: &'static str) -> Result<u32, VmError> {
    m.cpu
        .reg(r)
        .as_concrete()
        .ok_or(VmError::SymbolicValue { pc: m.cpu.pc, what })
}

fn fault(m: &mut Machine, f: FaultKind) {
    m.cpu.fault = Some(f);
}

fn mem_fault(m: &mut Machine, e: MemError) {
    let MemError::NullPage { addr } = e;
    let pc = m.cpu.pc;
    fault(m, FaultKind::NullAccess { addr, pc });
}

/// Dispatches a pending interrupt if the CPU accepts one. Returns true if
/// a handler was entered.
pub fn dispatch_interrupt(m: &mut Machine) -> bool {
    let Some(line) = m.cpu.take_irq() else {
        return false;
    };
    let vec_addr = match line {
        irq::TIMER => vector::TIMER,
        irq::NIC => vector::NIC,
        _ => return false,
    };
    let handler = m.mem.read_u32_concrete(vec_addr).unwrap_or(0);
    if handler == 0 {
        return false; // unhandled IRQ lines are dropped
    }
    let sp = m.cpu.reg(reg::SP).as_concrete().unwrap_or(0).wrapping_sub(4);
    if m.mem.write_u32(sp, m.cpu.pc).is_err() {
        return false;
    }
    m.cpu.set_reg(reg::SP, Value::Concrete(sp));
    m.cpu.pc = handler;
    m.cpu.interrupts_enabled = false;
    true
}

/// Executes one instruction concretely.
///
/// Faults are recorded in `m.cpu.fault` (the caller observes them via
/// [`RunOutcome::Faulted`]); the `Err` variant is reserved for symbolic
/// data reaching the interpreter.
///
/// # Errors
///
/// Returns [`VmError::SymbolicValue`] if any operand, address, or fetched
/// code byte is symbolic.
pub fn step_concrete(m: &mut Machine, builder: &ExprBuilder) -> Result<(), VmError> {
    debug_assert!(m.cpu.is_running());
    if m.cpu.interrupts_enabled {
        dispatch_interrupt(m);
    }

    // Fetch (possibly from the interrupt handler's address).
    let pc = m.cpu.pc;
    if m.mem.range_has_symbolic(pc, INSTR_SIZE) {
        return Err(VmError::SymbolicValue { pc, what: "instruction fetch" });
    }
    let raw = m.mem.read_bytes_concrete(pc, INSTR_SIZE);
    let bytes: [u8; 8] = raw.try_into().expect("fetched 8 bytes");
    let Some(i) = Instr::decode(&bytes) else {
        fault(m, FaultKind::InvalidOpcode { pc });
        return Ok(());
    };

    let mut next_pc = pc.wrapping_add(INSTR_SIZE);
    let w32 = Width::W32;

    match i.op {
        Opcode::Nop => {}
        Opcode::MovI => m.cpu.set_reg(i.rd, Value::Concrete(i.imm)),
        Opcode::Mov => {
            let v = m.cpu.reg(i.rs1).clone();
            m.cpu.set_reg(i.rd, v);
        }
        Opcode::Not => {
            let a = get_concrete(m, i.rs1, "ALU operand")?;
            m.cpu.set_reg(i.rd, Value::Concrete(!a));
        }
        op if alu_binop(op).is_some() => {
            let bop = alu_binop(op).unwrap();
            let a = get_concrete(m, i.rs1, "ALU operand")? as u64;
            let uses_imm = matches!(
                op,
                Opcode::AddI
                    | Opcode::SubI
                    | Opcode::MulI
                    | Opcode::AndI
                    | Opcode::OrI
                    | Opcode::XorI
                    | Opcode::ShlI
                    | Opcode::ShrI
                    | Opcode::SarI
            );
            let b = if uses_imm {
                i.imm as u64
            } else {
                get_concrete(m, i.rs2, "ALU operand")? as u64
            };
            let v = apply_binop(bop, a, b, w32) as u32;
            m.cpu.set_reg(i.rd, Value::Concrete(v));
        }
        Opcode::Ld8 | Opcode::Ld16 | Opcode::Ld32 => {
            let base = get_concrete(m, i.rs1, "load address")?;
            let addr = base.wrapping_add(i.imm);
            match m.mem.read(addr, mem_width(i.op), builder) {
                Ok(v) => {
                    if v.is_symbolic() {
                        return Err(VmError::SymbolicValue { pc, what: "load result" });
                    }
                    m.cpu.set_reg(i.rd, v);
                }
                Err(e) => mem_fault(m, e),
            }
        }
        Opcode::St8 | Opcode::St16 | Opcode::St32 => {
            let base = get_concrete(m, i.rs1, "store address")?;
            let addr = base.wrapping_add(i.imm);
            let v = m.cpu.reg(i.rs2).clone();
            if v.is_symbolic() {
                return Err(VmError::SymbolicValue { pc, what: "store value" });
            }
            if let Err(e) = m.mem.write(addr, mem_width(i.op), &v, builder) {
                mem_fault(m, e);
            }
        }
        Opcode::Push => {
            let sp = get_concrete(m, reg::SP, "stack pointer")?.wrapping_sub(4);
            let v = m.cpu.reg(i.rs1).clone();
            if v.is_symbolic() {
                return Err(VmError::SymbolicValue { pc, what: "push value" });
            }
            match m.mem.write(sp, 4, &v, builder) {
                Ok(()) => m.cpu.set_reg(reg::SP, Value::Concrete(sp)),
                Err(e) => mem_fault(m, e),
            }
        }
        Opcode::Pop => {
            let sp = get_concrete(m, reg::SP, "stack pointer")?;
            match m.mem.read(sp, 4, builder) {
                Ok(v) => {
                    if v.is_symbolic() {
                        return Err(VmError::SymbolicValue { pc, what: "pop value" });
                    }
                    m.cpu.set_reg(i.rd, v);
                    m.cpu.set_reg(reg::SP, Value::Concrete(sp.wrapping_add(4)));
                }
                Err(e) => mem_fault(m, e),
            }
        }
        Opcode::Jmp => next_pc = i.imm,
        Opcode::JmpR => next_pc = get_concrete(m, i.rs1, "jump target")?,
        Opcode::Call => {
            m.cpu.set_reg(reg::LR, Value::Concrete(next_pc));
            next_pc = i.imm;
        }
        Opcode::CallR => {
            let t = get_concrete(m, i.rs1, "call target")?;
            m.cpu.set_reg(reg::LR, Value::Concrete(next_pc));
            next_pc = t;
        }
        Opcode::Ret => next_pc = get_concrete(m, reg::LR, "return address")?,
        op if op.is_conditional_branch() => {
            let a = get_concrete(m, i.rs1, "branch operand")?;
            let b = get_concrete(m, i.rs2, "branch operand")?;
            if branch_taken(op, a, b) {
                next_pc = i.imm;
            }
        }
        Opcode::Syscall => {
            let handler = m.mem.read_u32_concrete(vector::SYSCALL).unwrap_or(0);
            if handler == 0 {
                fault(m, FaultKind::KernelPanic { code: i.imm, pc });
            } else {
                let sp = get_concrete(m, reg::SP, "stack pointer")?.wrapping_sub(4);
                match m.mem.write_u32(sp, next_pc) {
                    Ok(()) => {
                        m.cpu.set_reg(reg::SP, Value::Concrete(sp));
                        m.cpu.set_reg(reg::KR, Value::Concrete(i.imm));
                        m.cpu.interrupts_enabled = false;
                        next_pc = handler;
                    }
                    Err(e) => mem_fault(m, e),
                }
            }
        }
        Opcode::Iret => {
            let sp = get_concrete(m, reg::SP, "stack pointer")?;
            match m.mem.read(sp, 4, builder) {
                Ok(v) => match v.as_concrete() {
                    Some(ret) => {
                        m.cpu.set_reg(reg::SP, Value::Concrete(sp.wrapping_add(4)));
                        m.cpu.interrupts_enabled = true;
                        next_pc = ret;
                    }
                    None => {
                        return Err(VmError::SymbolicValue { pc, what: "iret address" })
                    }
                },
                Err(e) => mem_fault(m, e),
            }
        }
        Opcode::Cli => m.cpu.interrupts_enabled = false,
        Opcode::Sti => m.cpu.interrupts_enabled = true,
        Opcode::In => {
            let port = get_concrete(m, i.rs1, "port number")? as u16;
            let v = m.devices.read_port(port, builder);
            if v.is_symbolic() {
                return Err(VmError::SymbolicValue { pc, what: "port read" });
            }
            m.cpu.set_reg(i.rd, v);
        }
        Opcode::Out => {
            let port = get_concrete(m, i.rs1, "port number")? as u16;
            let v = m.cpu.reg(i.rs2).clone();
            if v.is_symbolic() {
                return Err(VmError::SymbolicValue { pc, what: "port write" });
            }
            m.devices.write_port(port, &v, builder);
        }
        Opcode::Halt => m.cpu.halted = Some(i.imm),
        Opcode::S2eOp => match S2Op::from_u32(i.imm) {
            // Outside the S2E engine the custom opcodes are inert, except
            // the ones with concrete architectural effects.
            Some(S2Op::Assert) => {
                if get_concrete(m, reg::R0, "assert operand")? == 0 {
                    fault(m, FaultKind::AssertFailed { pc });
                }
            }
            Some(S2Op::KillPath) => {
                m.cpu.halted = Some(get_concrete(m, reg::R0, "kill status")?);
            }
            Some(S2Op::NoInterrupts) => m.cpu.interrupts_enabled = false,
            Some(S2Op::AllowInterrupts) => m.cpu.interrupts_enabled = true,
            Some(_) => {}
            None => fault(m, FaultKind::InvalidOpcode { pc }),
        },
        _ => unreachable!("unhandled opcode {:?}", i.op),
    }

    if m.cpu.is_running() {
        m.cpu.pc = next_pc;
    }
    m.vtime += 1;
    for line in m.devices.tick(1) {
        m.cpu.raise_irq(line);
    }
    Ok(())
}

/// Runs until halt, fault, or `fuel` instructions.
///
/// # Errors
///
/// Returns [`VmError`] if symbolic data reaches the interpreter.
pub fn run_concrete(m: &mut Machine, fuel: u64) -> Result<RunOutcome, VmError> {
    let builder = ExprBuilder::new();
    for _ in 0..fuel {
        if let Some(code) = m.cpu.halted {
            return Ok(RunOutcome::Halted(code));
        }
        if let Some(f) = m.cpu.fault.clone() {
            return Ok(RunOutcome::Faulted(f));
        }
        step_concrete(m, &builder)?;
    }
    if let Some(code) = m.cpu.halted {
        return Ok(RunOutcome::Halted(code));
    }
    if let Some(f) = m.cpu.fault.clone() {
        return Ok(RunOutcome::Faulted(f));
    }
    Ok(RunOutcome::OutOfFuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::device::ports;

    fn run_prog(build: impl FnOnce(&mut Assembler)) -> (Machine, RunOutcome) {
        let mut a = Assembler::new(0x2000);
        build(&mut a);
        let p = a.finish();
        let mut m = Machine::new();
        m.load(&p);
        let out = run_concrete(&mut m, 100_000).unwrap();
        (m, out)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (m, out) = run_prog(|a| {
            a.movi(reg::R1, 6);
            a.movi(reg::R2, 7);
            a.mul(reg::R0, reg::R1, reg::R2);
            a.halt_code(5);
        });
        assert_eq!(out, RunOutcome::Halted(5));
        assert_eq!(m.cpu.reg(reg::R0).as_concrete(), Some(42));
    }

    #[test]
    fn loop_counts_to_ten() {
        let (m, _) = run_prog(|a| {
            a.movi(reg::R0, 0);
            a.movi(reg::R1, 10);
            a.label("loop");
            a.addi(reg::R0, reg::R0, 1);
            a.bltu(reg::R0, reg::R1, "loop");
            a.halt();
        });
        assert_eq!(m.cpu.reg(reg::R0).as_concrete(), Some(10));
    }

    #[test]
    fn signed_branches() {
        let (m, _) = run_prog(|a| {
            a.movi(reg::R1, (-5i32) as u32);
            a.movi(reg::R2, 3);
            a.movi(reg::R0, 0);
            a.blts(reg::R1, reg::R2, "neg_less");
            a.halt();
            a.label("neg_less");
            a.movi(reg::R0, 1);
            a.halt();
        });
        assert_eq!(m.cpu.reg(reg::R0).as_concrete(), Some(1));
    }

    #[test]
    fn memory_load_store() {
        let (m, _) = run_prog(|a| {
            a.movi(reg::R1, 0x8000);
            a.movi(reg::R2, 0xabcd_1234);
            a.st32(reg::R1, 0, reg::R2);
            a.ld32(reg::R3, reg::R1, 0);
            a.ld16(reg::R4, reg::R1, 0);
            a.ld8(reg::R5, reg::R1, 3);
            a.halt();
        });
        assert_eq!(m.cpu.reg(reg::R3).as_concrete(), Some(0xabcd_1234));
        assert_eq!(m.cpu.reg(reg::R4).as_concrete(), Some(0x1234));
        assert_eq!(m.cpu.reg(reg::R5).as_concrete(), Some(0xab));
    }

    #[test]
    fn call_and_ret() {
        let (m, _) = run_prog(|a| {
            a.movi(reg::R0, 1);
            a.call("double");
            a.call("double");
            a.halt();
            a.label("double");
            a.add(reg::R0, reg::R0, reg::R0);
            a.ret();
        });
        assert_eq!(m.cpu.reg(reg::R0).as_concrete(), Some(4));
    }

    #[test]
    fn push_pop_stack_discipline() {
        let (m, _) = run_prog(|a| {
            a.movi(reg::R1, 11);
            a.movi(reg::R2, 22);
            a.push(reg::R1);
            a.push(reg::R2);
            a.pop(reg::R3); // 22
            a.pop(reg::R4); // 11
            a.halt();
        });
        assert_eq!(m.cpu.reg(reg::R3).as_concrete(), Some(22));
        assert_eq!(m.cpu.reg(reg::R4).as_concrete(), Some(11));
        assert_eq!(
            m.cpu.reg(reg::SP).as_concrete(),
            Some(crate::machine::DEFAULT_STACK_TOP)
        );
    }

    #[test]
    fn null_store_faults() {
        let (_, out) = run_prog(|a| {
            a.movi(reg::R1, 0);
            a.st32(reg::R1, 4, reg::R2);
            a.halt();
        });
        match out {
            RunOutcome::Faulted(FaultKind::NullAccess { addr: 4, .. }) => {}
            other => panic!("expected null fault, got {other:?}"),
        }
    }

    #[test]
    fn invalid_opcode_faults() {
        let mut m = Machine::new();
        m.mem.load_image(0x2000, &[0xff; 8]);
        m.cpu.pc = 0x2000;
        let out = run_concrete(&mut m, 10).unwrap();
        assert!(matches!(
            out,
            RunOutcome::Faulted(FaultKind::InvalidOpcode { pc: 0x2000 })
        ));
    }

    #[test]
    fn console_output() {
        let (m, _) = run_prog(|a| {
            a.movi(reg::R1, ports::CONSOLE_OUT as u32);
            for &c in b"hi" {
                a.movi(reg::R2, c as u32);
                a.outp(reg::R1, reg::R2);
            }
            a.halt();
        });
        assert_eq!(m.devices.console().unwrap().output_string(), "hi");
    }

    #[test]
    fn syscall_traps_to_handler() {
        let (m, out) = run_prog(|a| {
            // Vector setup: store handler address at the syscall vector.
            a.movi_label(reg::R1, "handler");
            a.movi(reg::R2, vector::SYSCALL);
            a.st32(reg::R2, 0, reg::R1);
            a.syscall(7);
            // After iret, r3 must hold 99.
            a.halt_code(1);
            a.label("handler");
            // Syscall number arrives in KR.
            a.mov(reg::R3, reg::KR);
            a.movi(reg::R4, 99);
            a.iret();
        });
        // iret returns to the instruction after syscall: halt_code(1).
        assert_eq!(out, RunOutcome::Halted(1));
        assert_eq!(m.cpu.reg(reg::R3).as_concrete(), Some(7));
        assert!(m.cpu.interrupts_enabled);
    }

    #[test]
    fn syscall_without_handler_panics() {
        let (_, out) = run_prog(|a| {
            a.syscall(3);
            a.halt();
        });
        assert!(matches!(
            out,
            RunOutcome::Faulted(FaultKind::KernelPanic { code: 3, .. })
        ));
    }

    #[test]
    fn timer_interrupt_fires() {
        let (m, out) = run_prog(|a| {
            a.movi_label(reg::R1, "tick");
            a.movi(reg::R2, vector::TIMER);
            a.st32(reg::R2, 0, reg::R1);
            // Program the timer for a short period and enable interrupts.
            a.movi(reg::R3, ports::TIMER_LOAD as u32);
            a.movi(reg::R4, 16);
            a.outp(reg::R3, reg::R4);
            a.movi(reg::R3, ports::TIMER_CTRL as u32);
            a.movi(reg::R4, 1);
            a.outp(reg::R3, reg::R4);
            a.movi(reg::R5, 0); // tick counter
            a.sti();
            a.label("spin");
            a.movi(reg::R6, 3);
            a.bne(reg::R5, reg::R6, "spin");
            a.halt_code(0);
            a.label("tick");
            a.addi(reg::R5, reg::R5, 1);
            a.iret();
        });
        assert_eq!(out, RunOutcome::Halted(0));
        assert_eq!(m.cpu.reg(reg::R5).as_concrete(), Some(3));
    }

    #[test]
    fn s2e_opcodes_inert_concretely() {
        let (m, out) = run_prog(|a| {
            a.movi(reg::R0, 5);
            a.s2e(S2Op::EnableForking);
            a.s2e(S2Op::DisableForking);
            a.s2e(S2Op::Assert); // r0 != 0: passes
            a.halt();
        });
        assert_eq!(out, RunOutcome::Halted(0));
        assert_eq!(m.cpu.reg(reg::R0).as_concrete(), Some(5));
    }

    #[test]
    fn s2e_assert_fails_on_zero() {
        let (_, out) = run_prog(|a| {
            a.movi(reg::R0, 0);
            a.s2e(S2Op::Assert);
            a.halt();
        });
        assert!(matches!(
            out,
            RunOutcome::Faulted(FaultKind::AssertFailed { .. })
        ));
    }

    #[test]
    fn symbolic_register_rejected() {
        use s2e_expr::{ExprBuilder, Width};
        let mut a = Assembler::new(0x2000);
        a.addi(reg::R0, reg::R0, 1);
        a.halt();
        let p = a.finish();
        let mut m = Machine::new();
        m.load(&p);
        let b = ExprBuilder::new();
        m.cpu.set_reg(reg::R0, Value::Symbolic(b.var("x", Width::W32)));
        let err = run_concrete(&mut m, 10).unwrap_err();
        assert!(matches!(err, VmError::SymbolicValue { .. }));
    }

    #[test]
    fn out_of_fuel() {
        let (_, out) = run_prog(|a| {
            a.label("forever");
            a.jmp("forever");
        });
        assert_eq!(out, RunOutcome::OutOfFuel);
    }

    #[test]
    fn config_store_round_trip() {
        let (m, _) = run_prog(|a| {
            a.movi(reg::R1, ports::CFG_SELECT as u32);
            a.movi(reg::R2, 42); // key
            a.outp(reg::R1, reg::R2);
            a.movi(reg::R1, ports::CFG_DATA as u32);
            a.movi(reg::R2, 1234);
            a.outp(reg::R1, reg::R2); // write value
            a.inp(reg::R3, reg::R1); // read back
            a.halt();
        });
        assert_eq!(m.cpu.reg(reg::R3).as_concrete(), Some(1234));
    }
}
