//! Guest physical memory: copy-on-write pages with a symbolic overlay.
//!
//! Memory is the heart of the paper's *shared state representation* (§5):
//! both the concrete domain (the translator's fast path) and the symbolic
//! domain (the embedded symbolic executor) read and write the same pages.
//! Each page stores concrete bytes plus a sparse overlay of symbolic byte
//! expressions; a byte is symbolic iff it has an overlay entry.
//!
//! Pages are shared between forked execution states via `Arc` and copied
//! only on write, exactly like S2E's aggressive copy-on-write snapshots:
//! forking an execution state costs one shallow map clone, and two sibling
//! states share every page neither has written since the fork.

use crate::value::Value;
use s2e_expr::{ExprBuilder, ExprRef, Width};
use std::collections::HashMap;
use std::sync::Arc;

/// Bytes per page (4 KiB, like the guest's natural page size).
pub const PAGE_SIZE: u32 = 4096;

const PAGE_SHIFT: u32 = 12;
const PAGE_MASK: u32 = PAGE_SIZE - 1;

/// One physical page: concrete backing bytes plus symbolic overlay.
#[derive(Clone, Debug, Default)]
struct Page {
    bytes: Vec<u8>,
    /// Sparse symbolic overlay: offset → 8-bit expression.
    sym: HashMap<u16, ExprRef>,
}

impl Page {
    fn new() -> Page {
        Page {
            bytes: vec![0; PAGE_SIZE as usize],
            sym: HashMap::new(),
        }
    }
}

/// Access failures reported by memory operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Access to the unmapped null guard page.
    NullPage {
        /// Faulting address.
        addr: u32,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::NullPage { addr } => write!(f, "null-page access at {addr:#010x}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Guest physical memory.
///
/// Page zero is a null guard: loads and stores to it fault. All other pages
/// are allocated on demand and zero-filled.
///
/// # Example
///
/// ```
/// use s2e_vm::mem::Memory;
///
/// let mut m = Memory::new();
/// m.write_u32(0x1000, 0xdead_beef).unwrap();
/// assert_eq!(m.read_u32_concrete(0x1000).unwrap(), 0xdead_beef);
///
/// // Copy-on-write fork:
/// let fork = m.clone();
/// m.write_u32(0x1000, 0).unwrap();
/// assert_eq!(fork.read_u32_concrete(0x1000).unwrap(), 0xdead_beef);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u32, Arc<Page>>,
    /// Count of symbolic bytes currently stored (kept for statistics).
    sym_bytes: u64,
}

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn check(addr: u32) -> Result<(), MemError> {
        if addr >> PAGE_SHIFT == 0 {
            Err(MemError::NullPage { addr })
        } else {
            Ok(())
        }
    }

    fn page(&self, addr: u32) -> Option<&Arc<Page>> {
        self.pages.get(&(addr >> PAGE_SHIFT))
    }

    fn page_mut(&mut self, addr: u32) -> &mut Page {
        let p = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Arc::new(Page::new()));
        Arc::make_mut(p)
    }

    /// Number of pages materialized.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of symbolic bytes stored.
    pub fn symbolic_byte_count(&self) -> u64 {
        self.sym_bytes
    }

    /// Approximate number of pages *not* shared with any other memory
    /// snapshot (i.e., privately owned). Used for the memory-usage
    /// experiments (Fig. 8).
    pub fn private_page_count(&self) -> usize {
        self.pages
            .values()
            .filter(|p| Arc::strong_count(p) == 1)
            .count()
    }

    /// Reads one byte as a [`Value`].
    ///
    /// # Errors
    ///
    /// Faults on the null guard page.
    pub fn read_u8(&self, addr: u32) -> Result<Value, MemError> {
        Self::check(addr)?;
        match self.page(addr) {
            None => Ok(Value::Concrete(0)),
            Some(p) => {
                let off = (addr & PAGE_MASK) as u16;
                match p.sym.get(&off) {
                    Some(e) => Ok(Value::Symbolic(e.clone())),
                    None => Ok(Value::Concrete(p.bytes[off as usize] as u32)),
                }
            }
        }
    }

    /// Writes one byte. Symbolic values must be 8 bits wide.
    ///
    /// # Errors
    ///
    /// Faults on the null guard page.
    pub fn write_u8(&mut self, addr: u32, v: Value) -> Result<(), MemError> {
        Self::check(addr)?;
        let was_sym;
        let is_sym;
        {
            let page = self.page_mut(addr);
            let off = (addr & PAGE_MASK) as u16;
            was_sym = page.sym.contains_key(&off);
            match v {
                Value::Concrete(c) => {
                    page.bytes[off as usize] = c as u8;
                    page.sym.remove(&off);
                    is_sym = false;
                }
                Value::Symbolic(e) => {
                    debug_assert_eq!(e.width(), Width::W8, "memory bytes are 8-bit");
                    page.sym.insert(off, e);
                    is_sym = true;
                }
            }
        }
        match (was_sym, is_sym) {
            (false, true) => self.sym_bytes += 1,
            (true, false) => self.sym_bytes -= 1,
            _ => {}
        }
        Ok(())
    }

    /// Reads a little-endian word of `width` bytes (1, 2, or 4), composing
    /// symbolic bytes into a concat expression when needed.
    ///
    /// The result is always widened to 32 bits (zero-extension), matching
    /// register width.
    ///
    /// # Errors
    ///
    /// Faults on the null guard page.
    pub fn read(
        &self,
        addr: u32,
        width_bytes: u32,
        builder: &ExprBuilder,
    ) -> Result<Value, MemError> {
        debug_assert!(matches!(width_bytes, 1 | 2 | 4));
        let mut bytes = Vec::with_capacity(width_bytes as usize);
        let mut all_concrete = true;
        for i in 0..width_bytes {
            let b = self.read_u8(addr.wrapping_add(i))?;
            all_concrete &= b.is_concrete();
            bytes.push(b);
        }
        if all_concrete {
            let mut v: u32 = 0;
            for (i, b) in bytes.iter().enumerate() {
                v |= b.as_concrete().unwrap() << (8 * i);
            }
            return Ok(Value::Concrete(v));
        }
        // Compose: byte 0 is least significant.
        let mut expr = bytes[0].to_expr(builder, Width::W8);
        for b in &bytes[1..] {
            let hi = b.to_expr(builder, Width::W8);
            expr = builder.concat(hi, expr);
        }
        let expr = builder.zext(expr, Width::W32);
        Ok(Value::from_expr(expr))
    }

    /// Writes the low `width_bytes` bytes of `v` little-endian, splitting
    /// symbolic values into byte extracts (lazy concretization: symbolic
    /// data passes through memory without talking to the solver).
    ///
    /// # Errors
    ///
    /// Faults on the null guard page.
    pub fn write(
        &mut self,
        addr: u32,
        width_bytes: u32,
        v: &Value,
        builder: &ExprBuilder,
    ) -> Result<(), MemError> {
        debug_assert!(matches!(width_bytes, 1 | 2 | 4));
        match v {
            Value::Concrete(c) => {
                for i in 0..width_bytes {
                    self.write_u8(addr.wrapping_add(i), Value::Concrete(c >> (8 * i) & 0xff))?;
                }
            }
            Value::Symbolic(e) => {
                for i in 0..width_bytes {
                    let byte = builder.extract(e.clone(), 8 * i, Width::W8);
                    self.write_u8(addr.wrapping_add(i), Value::from_expr(byte))?;
                }
            }
        }
        Ok(())
    }

    /// Convenience: writes a concrete 32-bit word.
    ///
    /// # Errors
    ///
    /// Faults on the null guard page.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), MemError> {
        for i in 0..4 {
            self.write_u8(addr.wrapping_add(i), Value::Concrete(v >> (8 * i) & 0xff))?;
        }
        Ok(())
    }

    /// Convenience: reads a 32-bit word that must be concrete.
    ///
    /// Symbolic bytes read as 0 (their demand-zero shadow); callers that
    /// need exactness use [`Memory::read`]. Vector-table reads rely on
    /// this: a partially-symbolic vector degrades to "handler missing"
    /// rather than a garbage jump target.
    ///
    /// # Errors
    ///
    /// Faults on the null guard page.
    pub fn read_u32_concrete(&self, addr: u32) -> Result<u32, MemError> {
        let mut v = 0u32;
        for i in 0..4 {
            if let Value::Concrete(b) = self.read_u8(addr.wrapping_add(i))? {
                v |= b << (8 * i);
            }
        }
        Ok(v)
    }

    /// Loads a byte image at `base` (used by program loading; bypasses the
    /// null-page check for the vector table region).
    pub fn load_image(&mut self, base: u32, image: &[u8]) {
        for (i, &b) in image.iter().enumerate() {
            let addr = base.wrapping_add(i as u32);
            let page = self.page_mut(addr);
            let off = (addr & PAGE_MASK) as usize;
            page.bytes[off] = b;
            if page.sym.remove(&(off as u16)).is_some() {
                self.sym_bytes -= 1;
            }
        }
    }

    /// Reads `len` concrete bytes (symbolic bytes read as their concrete
    /// shadow 0). Used by tracers and loaders.
    pub fn read_bytes_concrete(&self, addr: u32, len: u32) -> Vec<u8> {
        (0..len)
            .map(|i| {
                let a = addr.wrapping_add(i);
                self.page(a)
                    .map(|p| {
                        let off = (a & PAGE_MASK) as usize;
                        if p.sym.contains_key(&(off as u16)) {
                            0
                        } else {
                            p.bytes[off]
                        }
                    })
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Reads a NUL-terminated string (max 256 bytes, lossy on symbolic
    /// bytes). Used by the S2E opcode handlers for log messages and names.
    pub fn read_cstr(&self, addr: u32) -> String {
        let mut out = Vec::new();
        for i in 0..256 {
            let b = self
                .page(addr.wrapping_add(i))
                .map(|p| p.bytes[(addr.wrapping_add(i) & PAGE_MASK) as usize])
                .unwrap_or(0);
            if b == 0 {
                break;
            }
            out.push(b);
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    /// True if any byte in `[addr, addr+len)` is symbolic.
    pub fn range_has_symbolic(&self, addr: u32, len: u32) -> bool {
        // The overlay counter makes the all-concrete case O(1) — this
        // runs once per executed block (the SMC code-window probe), so a
        // per-byte scan here would dominate concrete dispatch.
        if self.sym_bytes == 0 || len == 0 {
            return false;
        }
        let last = addr.wrapping_add(len - 1);
        if last < addr {
            // Wrapped range: rare, fall back to the byte scan.
            return (0..len).any(|i| {
                let a = addr.wrapping_add(i);
                self.page(a)
                    .map(|p| p.sym.contains_key(&((a & PAGE_MASK) as u16)))
                    .unwrap_or(false)
            });
        }
        ((addr >> PAGE_SHIFT)..=(last >> PAGE_SHIFT)).any(|no| {
            let Some(p) = self.pages.get(&no) else {
                return false;
            };
            if p.sym.is_empty() {
                return false;
            }
            let base = no << PAGE_SHIFT;
            // Sparse overlay: test the page's few symbolic offsets
            // against the range instead of probing every byte.
            p.sym
                .keys()
                .any(|&off| (base + off as u32) >= addr && (base + off as u32) <= last)
        })
    }

    /// Folds the full memory contents — concrete bytes and the symbolic
    /// overlay, in page order — into `h`. Two memories with identical
    /// contents digest identically regardless of page sharing or map
    /// iteration order; used by the replay-identity fingerprint (§13).
    pub fn digest(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        let mut page_nos: Vec<u32> = self.pages.keys().copied().collect();
        page_nos.sort_unstable();
        self.sym_bytes.hash(h);
        for no in page_nos {
            let p = &self.pages[&no];
            no.hash(h);
            p.bytes.hash(h);
            let mut offs: Vec<u16> = p.sym.keys().copied().collect();
            offs.sort_unstable();
            for off in offs {
                off.hash(h);
                format!("{:?}", p.sym[&off]).hash(h);
            }
        }
    }

    /// Appends a portable encoding of every materialized page — sorted
    /// page order, raw backing bytes, then the symbolic overlay — for
    /// cross-process state shipping (DESIGN.md §17). Lives here (not in
    /// `crate::wire`) because pages are private to this module.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        use s2e_expr::wire::{encode_expr, write_varint};
        let mut page_nos: Vec<u32> = self.pages.keys().copied().collect();
        page_nos.sort_unstable();
        write_varint(out, page_nos.len() as u64);
        for no in page_nos {
            let p = &self.pages[&no];
            write_varint(out, u64::from(no));
            out.extend_from_slice(&p.bytes);
            let mut offs: Vec<u16> = p.sym.keys().copied().collect();
            offs.sort_unstable();
            write_varint(out, offs.len() as u64);
            for off in offs {
                write_varint(out, u64::from(off));
                encode_expr(&p.sym[&off], out);
            }
        }
    }

    /// Decodes memory written by [`Memory::encode_wire`]. Malformed
    /// input errors cleanly; it never panics.
    pub fn decode_wire(r: &mut s2e_expr::wire::WireReader<'_>) -> std::io::Result<Memory> {
        use s2e_expr::wire::{bad_data, decode_expr};
        let count = r.read_len(1 << 20, "memory page table")?;
        let mut pages: HashMap<u32, Arc<Page>> = HashMap::with_capacity(count.min(1024));
        let mut sym_bytes = 0u64;
        for _ in 0..count {
            let no = r.read_varint()?;
            if no > u64::from(u32::MAX) || no == 0 {
                return Err(bad_data(format!("page number {no:#x} out of range")));
            }
            let bytes = r.read_bytes(PAGE_SIZE as usize)?.to_vec();
            let overlay = r.read_len(u64::from(PAGE_SIZE), "symbolic overlay")?;
            let mut sym = HashMap::with_capacity(overlay);
            for _ in 0..overlay {
                let off = r.read_varint()?;
                if off >= u64::from(PAGE_SIZE) {
                    return Err(bad_data(format!("overlay offset {off} out of range")));
                }
                let expr = decode_expr(r)?;
                if sym.insert(off as u16, expr).is_some() {
                    return Err(bad_data(format!("duplicate overlay offset {off}")));
                }
            }
            sym_bytes += sym.len() as u64;
            if pages.insert(no as u32, Arc::new(Page { bytes, sym })).is_some() {
                return Err(bad_data(format!("duplicate page number {no:#x}")));
            }
        }
        Ok(Memory { pages, sym_bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0x5000).unwrap().as_concrete(), Some(0));
    }

    #[test]
    fn null_page_faults() {
        let mut m = Memory::new();
        assert!(matches!(m.read_u8(0), Err(MemError::NullPage { .. })));
        assert!(matches!(m.read_u8(0xfff), Err(MemError::NullPage { .. })));
        assert!(matches!(
            m.write_u8(4, Value::Concrete(1)),
            Err(MemError::NullPage { .. })
        ));
        assert!(m.read_u8(0x1000).is_ok());
    }

    #[test]
    fn word_round_trip() {
        let mut m = Memory::new();
        m.write_u32(0x2000, 0x1234_5678).unwrap();
        assert_eq!(m.read_u32_concrete(0x2000).unwrap(), 0x1234_5678);
        // Little-endian byte order.
        assert_eq!(m.read_u8(0x2000).unwrap().as_concrete(), Some(0x78));
        assert_eq!(m.read_u8(0x2003).unwrap().as_concrete(), Some(0x12));
    }

    #[test]
    fn cross_page_word() {
        let mut m = Memory::new();
        m.write_u32(0x2ffe, 0xaabb_ccdd).unwrap();
        assert_eq!(m.read_u32_concrete(0x2ffe).unwrap(), 0xaabb_ccdd);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn cow_fork_isolation() {
        let mut m = Memory::new();
        m.write_u32(0x3000, 111).unwrap();
        let mut fork = m.clone();
        fork.write_u32(0x3000, 222).unwrap();
        assert_eq!(m.read_u32_concrete(0x3000).unwrap(), 111);
        assert_eq!(fork.read_u32_concrete(0x3000).unwrap(), 222);
    }

    #[test]
    fn unwritten_pages_stay_shared() {
        let mut m = Memory::new();
        for p in 0..10u32 {
            m.write_u32(0x10000 + p * PAGE_SIZE, p).unwrap();
        }
        let fork = m.clone();
        assert_eq!(m.private_page_count(), 0);
        assert_eq!(fork.private_page_count(), 0);
        let mut fork2 = fork.clone();
        fork2.write_u32(0x10000, 99).unwrap();
        assert_eq!(fork2.private_page_count(), 1);
    }

    #[test]
    fn symbolic_byte_round_trip() {
        let b = ExprBuilder::new();
        let mut m = Memory::new();
        let x = b.var("x", Width::W8);
        m.write_u8(0x4000, Value::Symbolic(x.clone())).unwrap();
        assert_eq!(m.symbolic_byte_count(), 1);
        match m.read_u8(0x4000).unwrap() {
            Value::Symbolic(e) => assert_eq!(e, x),
            other => panic!("expected symbolic, got {other:?}"),
        }
        // Concrete overwrite clears the overlay.
        m.write_u8(0x4000, Value::Concrete(5)).unwrap();
        assert_eq!(m.symbolic_byte_count(), 0);
        assert_eq!(m.read_u8(0x4000).unwrap().as_concrete(), Some(5));
    }

    #[test]
    fn symbolic_word_composes() {
        let b = ExprBuilder::new();
        let mut m = Memory::new();
        let x = b.var("x", Width::W32);
        m.write(0x5000, 4, &Value::Symbolic(x.clone()), &b).unwrap();
        assert_eq!(m.symbolic_byte_count(), 4);
        let v = m.read(0x5000, 4, &b).unwrap();
        // Reading back a symbolic word and constraining it to x must be a
        // tautology; check via evaluation.
        match v {
            Value::Symbolic(e) => {
                let mut asg = s2e_expr::Assignment::new();
                asg.set_by_name("x", 0xcafe_babe);
                assert_eq!(s2e_expr::eval(&e, &asg).unwrap(), 0xcafe_babe);
            }
            other => panic!("expected symbolic, got {other:?}"),
        }
    }

    #[test]
    fn mixed_word_partially_symbolic() {
        let b = ExprBuilder::new();
        let mut m = Memory::new();
        m.write_u32(0x6000, 0x0000_00ff).unwrap();
        let x = b.var("x", Width::W8);
        m.write_u8(0x6001, Value::Symbolic(x)).unwrap();
        let v = m.read(0x6000, 4, &b).unwrap();
        assert!(v.is_symbolic());
        match v {
            Value::Symbolic(e) => {
                let mut asg = s2e_expr::Assignment::new();
                asg.set_by_name("x", 0xab);
                assert_eq!(s2e_expr::eval(&e, &asg).unwrap(), 0x0000_abff);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn load_image_clears_symbolic_overlay_and_counter() {
        let b = ExprBuilder::new();
        let mut m = Memory::new();
        let x = b.var("x", Width::W8);
        m.write_u8(0x7000, Value::Symbolic(x)).unwrap();
        assert_eq!(m.symbolic_byte_count(), 1);
        m.load_image(0x7000, b"zz");
        assert_eq!(m.symbolic_byte_count(), 0);
        assert_eq!(m.read_u8(0x7000).unwrap().as_concrete(), Some(b'z' as u32));
    }

    #[test]
    fn load_image_and_cstr() {
        let mut m = Memory::new();
        m.load_image(0x7000, b"hello\0world");
        assert_eq!(m.read_cstr(0x7000), "hello");
        assert_eq!(m.read_bytes_concrete(0x7006, 5), b"world".to_vec());
    }

    #[test]
    fn range_has_symbolic_detects() {
        let b = ExprBuilder::new();
        let mut m = Memory::new();
        assert!(!m.range_has_symbolic(0x8000, 16));
        let x = b.var("x", Width::W8);
        m.write_u8(0x8008, Value::Symbolic(x)).unwrap();
        assert!(m.range_has_symbolic(0x8000, 16));
        assert!(!m.range_has_symbolic(0x8000, 8));
    }

    /// Brute-force recount of the overlay the `sym_bytes` counter tracks
    /// incrementally.
    fn recount(m: &Memory) -> u64 {
        m.pages.values().map(|p| p.sym.len() as u64).sum()
    }

    /// Property: across seeded random interleavings of concrete writes,
    /// symbolic writes, symbolic→concrete overwrites, image loads, and
    /// COW forks, `sym_bytes` equals a brute-force recount of the
    /// overlay — on both halves of every fork.
    #[test]
    fn sym_bytes_matches_recount_under_random_interleavings() {
        let b = ExprBuilder::new();
        for seed in 0..32u64 {
            let mut rng = s2e_prng::SplitMix64::new(0x5e1f_c0de ^ seed);
            let mut m = Memory::new();
            let mut forks: Vec<Memory> = Vec::new();
            for step in 0..400 {
                // A small address pool makes overwrites (both
                // concrete→symbolic and symbolic→concrete) common.
                let addr = 0x1000 + rng.below(3 * PAGE_SIZE as u64) as u32;
                match rng.below(100) {
                    0..=39 => {
                        m.write_u8(addr, Value::Concrete(rng.next_u8() as u32)).unwrap();
                    }
                    40..=79 => {
                        let x = b.var(&format!("s{seed}_{step}"), Width::W8);
                        m.write_u8(addr, Value::Symbolic(x)).unwrap();
                    }
                    80..=89 => {
                        let mut img = vec![0u8; rng.below(64) as usize + 1];
                        rng.fill_bytes(&mut img);
                        m.load_image(addr, &img);
                    }
                    90..=94 => forks.push(m.clone()),
                    _ => {
                        // Swap a fork back in: exercises counter state
                        // carried across COW boundaries in both directions.
                        if let Some(f) = forks.pop() {
                            forks.push(std::mem::replace(&mut m, f));
                        }
                    }
                }
                assert_eq!(
                    m.symbolic_byte_count(),
                    recount(&m),
                    "seed {seed} step {step}: live counter drifted"
                );
            }
            for (i, f) in forks.iter().enumerate() {
                assert_eq!(
                    f.symbolic_byte_count(),
                    recount(f),
                    "seed {seed} fork {i}: forked counter drifted"
                );
            }
        }
    }

    #[test]
    fn digest_ignores_sharing_but_sees_content() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        let d = |m: &Memory| {
            let mut h = DefaultHasher::new();
            m.digest(&mut h);
            h.finish()
        };
        let b = ExprBuilder::new();
        let mut m = Memory::new();
        m.write_u32(0x2000, 0xdead_beef).unwrap();
        m.write_u8(0x3000, Value::Symbolic(b.var("x", Width::W8))).unwrap();
        let fork = m.clone(); // shared pages, identical content
        assert_eq!(d(&m), d(&fork));
        let mut changed = m.clone();
        changed.write_u8(0x2000, Value::Concrete(1)).unwrap();
        assert_ne!(d(&m), d(&changed));
    }

    #[test]
    fn sub_word_widths() {
        let b = ExprBuilder::new();
        let mut m = Memory::new();
        m.write(0x9000, 2, &Value::Concrete(0xabcd), &b).unwrap();
        assert_eq!(m.read(0x9000, 2, &b).unwrap().as_concrete(), Some(0xabcd));
        assert_eq!(m.read(0x9000, 1, &b).unwrap().as_concrete(), Some(0xcd));
        // Writing 2 bytes must not clobber neighbors.
        m.write_u32(0xa000, 0xffff_ffff).unwrap();
        m.write(0xa001, 2, &Value::Concrete(0), &b).unwrap();
        assert_eq!(m.read_u32_concrete(0xa000).unwrap(), 0xff00_00ff);
    }
}
