//! Virtual devices with port-mapped I/O.
//!
//! Four devices model the hardware the paper's experiments need:
//!
//! - [`Console`] — byte output (the guest's debug channel);
//! - [`Timer`] — interval timer driving IRQ 0, used to exercise interrupt
//!   paths and per-state virtual time;
//! - [`Nic`] — a synthetic network interface with status/command/data
//!   ports, receive/transmit FIFOs, and a *symbolic hardware* mode: when
//!   enabled, reads return fresh unconstrained symbolic values, exactly how
//!   DDT/RevNIC model hardware inputs (paper §3.2, §6.1);
//! - [`ConfigStore`] — a key/value configuration space standing in for the
//!   Windows registry: the platform injects symbolic values here to
//!   implement data-based selectors like `MSWinRegistry`.
//!
//! Devices are cloned when an execution state forks, so all their state is
//! plain data.

use crate::value::Value;
use s2e_expr::{ExprBuilder, Width};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Well-known port numbers.
pub mod ports {
    /// Console byte output (write).
    pub const CONSOLE_OUT: u16 = 0x01;
    /// Console status (read; always ready).
    pub const CONSOLE_STATUS: u16 = 0x02;
    /// Timer reload value (write) / current count (read).
    pub const TIMER_LOAD: u16 = 0x10;
    /// Timer control: 1 = enable, 0 = disable (write).
    pub const TIMER_CTRL: u16 = 0x11;
    /// NIC status register (read).
    pub const NIC_STATUS: u16 = 0x20;
    /// NIC command register (write).
    pub const NIC_CMD: u16 = 0x21;
    /// NIC data FIFO (read pops RX, write pushes TX).
    pub const NIC_DATA: u16 = 0x22;
    /// NIC receive queue length (read).
    pub const NIC_RXLEN: u16 = 0x23;
    /// Config store: select key (write).
    pub const CFG_SELECT: u16 = 0x30;
    /// Config store: read/write value of the selected key.
    pub const CFG_DATA: u16 = 0x31;
}

/// NIC status bits.
pub mod nic_status {
    /// Device is initialized and ready.
    pub const READY: u32 = 1 << 0;
    /// At least one RX byte is available.
    pub const RX_AVAIL: u32 = 1 << 1;
    /// The last transmit completed.
    pub const TX_DONE: u32 = 1 << 2;
    /// Link is up.
    pub const LINK_UP: u32 = 1 << 3;
}

/// NIC commands.
pub mod nic_cmd {
    /// Reset the device.
    pub const RESET: u32 = 1;
    /// Enable the device (sets READY).
    pub const ENABLE: u32 = 2;
    /// Mark the TX FIFO contents as one sent frame.
    pub const SEND: u32 = 3;
    /// Acknowledge/clear pending NIC interrupt.
    pub const ACK_IRQ: u32 = 4;
}

/// A virtual device attached to the port bus.
///
/// `Sync` is required (not just `Send`) because checkpoints share whole
/// machines across workers as `Arc<ExecState>` (§13); devices are only
/// ever *mutated* through the owning state's `&mut`.
pub trait Device: fmt::Debug + Send + Sync {
    /// Device name for diagnostics.
    fn name(&self) -> &str;

    /// Upcast for typed access ([`DeviceSet::nic`] and friends).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast for typed access.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Handles a port read; `None` if this device does not own the port.
    fn read_port(&mut self, port: u16, builder: &ExprBuilder) -> Option<Value>;

    /// Handles a port write; `true` if this device owns the port.
    fn write_port(&mut self, port: u16, value: &Value, builder: &ExprBuilder) -> bool;

    /// Advances device time by `cycles` executed instructions; returns an
    /// IRQ line to raise, if any.
    fn tick(&mut self, cycles: u64) -> Option<u32>;

    /// Clones the device (object-safe `Clone`).
    fn box_clone(&self) -> Box<dyn Device>;
}

impl Clone for Box<dyn Device> {
    fn clone(&self) -> Box<dyn Device> {
        self.box_clone()
    }
}

/// Byte-output console.
#[derive(Clone, Debug, Default)]
pub struct Console {
    output: Vec<u8>,
}

impl Console {
    /// Creates a console with empty output.
    pub fn new() -> Console {
        Console::default()
    }

    /// The bytes written so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Output interpreted as UTF-8 (lossy).
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

impl Device for Console {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "console"
    }

    fn read_port(&mut self, port: u16, _b: &ExprBuilder) -> Option<Value> {
        match port {
            ports::CONSOLE_STATUS => Some(Value::Concrete(1)),
            _ => None,
        }
    }

    fn write_port(&mut self, port: u16, value: &Value, _b: &ExprBuilder) -> bool {
        if port == ports::CONSOLE_OUT {
            // Symbolic console bytes are recorded as '?' — the console is
            // a debug channel, not analysis input.
            self.output.push(value.as_concrete().map(|v| v as u8).unwrap_or(b'?'));
            true
        } else {
            false
        }
    }

    fn tick(&mut self, _cycles: u64) -> Option<u32> {
        None
    }

    fn box_clone(&self) -> Box<dyn Device> {
        Box::new(self.clone())
    }
}

/// Interval timer raising IRQ 0.
///
/// The S2E engine slows the timer down while executing symbolically
/// (paper §5: virtual time) by scaling the cycle counts it feeds to
/// `tick`.
#[derive(Clone, Debug)]
pub struct Timer {
    reload: u32,
    remaining: u64,
    enabled: bool,
}

impl Default for Timer {
    fn default() -> Timer {
        Timer::new()
    }
}

impl Timer {
    /// Creates a disabled timer with a 10 000-cycle period.
    pub fn new() -> Timer {
        Timer {
            reload: 10_000,
            remaining: 10_000,
            enabled: false,
        }
    }

    /// True if the timer is counting.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

impl Device for Timer {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "timer"
    }

    fn read_port(&mut self, port: u16, _b: &ExprBuilder) -> Option<Value> {
        match port {
            ports::TIMER_LOAD => Some(Value::Concrete(self.remaining as u32)),
            _ => None,
        }
    }

    fn write_port(&mut self, port: u16, value: &Value, _b: &ExprBuilder) -> bool {
        match port {
            ports::TIMER_LOAD => {
                let v = value.as_concrete().unwrap_or(10_000).max(1);
                self.reload = v;
                self.remaining = v as u64;
                true
            }
            ports::TIMER_CTRL => {
                self.enabled = value.as_concrete().unwrap_or(0) != 0;
                true
            }
            _ => false,
        }
    }

    fn tick(&mut self, cycles: u64) -> Option<u32> {
        if !self.enabled {
            return None;
        }
        if cycles >= self.remaining {
            self.remaining = self.reload as u64;
            Some(crate::isa::irq::TIMER)
        } else {
            self.remaining -= cycles;
            None
        }
    }

    fn box_clone(&self) -> Box<dyn Device> {
        Box::new(self.clone())
    }
}

/// Synthetic network interface.
#[derive(Clone, Debug, Default)]
pub struct Nic {
    ready: bool,
    link_up: bool,
    rx: VecDeque<Value>,
    tx: Vec<Value>,
    sent_frames: Vec<Vec<Value>>,
    irq_pending: bool,
    /// When set, port reads return fresh unconstrained symbolic values —
    /// the paper's *symbolic hardware*.
    pub symbolic_hardware: bool,
    sym_counter: u32,
}

impl Nic {
    /// Creates a NIC with link up and empty FIFOs.
    pub fn new() -> Nic {
        Nic {
            link_up: true,
            ..Nic::default()
        }
    }

    /// Queues bytes for the guest to receive.
    pub fn inject_rx(&mut self, bytes: impl IntoIterator<Item = Value>) {
        self.rx.extend(bytes);
    }

    /// Frames the guest transmitted (each `SEND` command flushes the TX
    /// FIFO into one frame).
    pub fn sent_frames(&self) -> &[Vec<Value>] {
        &self.sent_frames
    }

    /// True if an interrupt is pending (for tests).
    pub fn irq_pending(&self) -> bool {
        self.irq_pending
    }

    fn fresh_sym(&mut self, b: &ExprBuilder, what: &str) -> Value {
        self.sym_counter += 1;
        Value::Symbolic(b.var(&format!("hw_{what}_{}", self.sym_counter), Width::W32))
    }
}

impl Device for Nic {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "nic"
    }

    fn read_port(&mut self, port: u16, b: &ExprBuilder) -> Option<Value> {
        match port {
            ports::NIC_STATUS => {
                if self.symbolic_hardware {
                    return Some(self.fresh_sym(b, "status"));
                }
                let mut s = 0;
                if self.ready {
                    s |= nic_status::READY;
                }
                if !self.rx.is_empty() {
                    s |= nic_status::RX_AVAIL;
                }
                s |= nic_status::TX_DONE;
                if self.link_up {
                    s |= nic_status::LINK_UP;
                }
                Some(Value::Concrete(s))
            }
            ports::NIC_DATA => {
                if self.symbolic_hardware {
                    return Some(self.fresh_sym(b, "data"));
                }
                Some(self.rx.pop_front().unwrap_or(Value::Concrete(0)))
            }
            ports::NIC_RXLEN => {
                if self.symbolic_hardware {
                    return Some(self.fresh_sym(b, "rxlen"));
                }
                Some(Value::Concrete(self.rx.len() as u32))
            }
            _ => None,
        }
    }

    fn write_port(&mut self, port: u16, value: &Value, _b: &ExprBuilder) -> bool {
        match port {
            ports::NIC_CMD => {
                match value.as_concrete() {
                    Some(nic_cmd::RESET) => {
                        self.ready = false;
                        self.rx.clear();
                        self.tx.clear();
                        self.irq_pending = false;
                    }
                    Some(nic_cmd::ENABLE) => self.ready = true,
                    Some(nic_cmd::SEND) => {
                        self.sent_frames.push(std::mem::take(&mut self.tx));
                        self.irq_pending = true;
                    }
                    Some(nic_cmd::ACK_IRQ) => self.irq_pending = false,
                    _ => {}
                }
                true
            }
            ports::NIC_DATA => {
                self.tx.push(value.clone());
                true
            }
            _ => false,
        }
    }

    fn tick(&mut self, _cycles: u64) -> Option<u32> {
        if self.irq_pending {
            self.irq_pending = false;
            Some(crate::isa::irq::NIC)
        } else {
            None
        }
    }

    fn box_clone(&self) -> Box<dyn Device> {
        Box::new(self.clone())
    }
}

/// Key/value configuration store (the "registry").
#[derive(Clone, Default)]
pub struct ConfigStore {
    values: HashMap<u32, Value>,
    selected: u32,
}

// Manual Debug with entries sorted by key: the state fingerprint hashes
// the devices' Debug rendering, and a `HashMap` rebuilt from the wire
// (different insertion history) iterates in a different order than a
// cloned one. The rendering must be canonical or rehydrated states fail
// their fingerprint check across processes.
impl std::fmt::Debug for ConfigStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut entries: Vec<(&u32, &Value)> = self.values.iter().collect();
        entries.sort_unstable_by_key(|(k, _)| **k);
        f.debug_struct("ConfigStore")
            .field("values", &MapEntries(&entries))
            .field("selected", &self.selected)
            .finish()
    }
}

/// Renders sorted `(key, value)` pairs like a map literal.
struct MapEntries<'a>(&'a [(&'a u32, &'a Value)]);

impl std::fmt::Debug for MapEntries<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(self.0.iter().map(|(k, v)| (*k, *v)))
            .finish()
    }
}

impl ConfigStore {
    /// Creates an empty store.
    pub fn new() -> ConfigStore {
        ConfigStore::default()
    }

    /// Sets a key's value (possibly symbolic — this is how data-based
    /// selectors inject symbolic configuration).
    pub fn set(&mut self, key: u32, value: Value) {
        self.values.insert(key, value);
    }

    /// Reads a key's value.
    pub fn get(&self, key: u32) -> Value {
        self.values.get(&key).cloned().unwrap_or(Value::Concrete(0))
    }
}

impl Device for ConfigStore {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "config"
    }

    fn read_port(&mut self, port: u16, _b: &ExprBuilder) -> Option<Value> {
        match port {
            ports::CFG_DATA => Some(self.get(self.selected)),
            _ => None,
        }
    }

    fn write_port(&mut self, port: u16, value: &Value, _b: &ExprBuilder) -> bool {
        match port {
            ports::CFG_SELECT => {
                self.selected = value.as_concrete().unwrap_or(0);
                true
            }
            ports::CFG_DATA => {
                self.values.insert(self.selected, value.clone());
                true
            }
            _ => false,
        }
    }

    fn tick(&mut self, _cycles: u64) -> Option<u32> {
        None
    }

    fn box_clone(&self) -> Box<dyn Device> {
        Box::new(self.clone())
    }
}

/// The set of devices on the port bus.
#[derive(Clone, Debug, Default)]
pub struct DeviceSet {
    devices: Vec<Box<dyn Device>>,
}

impl DeviceSet {
    /// Creates the standard device complement: console, timer, NIC,
    /// config store.
    pub fn standard() -> DeviceSet {
        DeviceSet {
            devices: vec![
                Box::new(Console::new()),
                Box::new(Timer::new()),
                Box::new(Nic::new()),
                Box::new(ConfigStore::new()),
            ],
        }
    }

    /// Creates an empty bus.
    pub fn empty() -> DeviceSet {
        DeviceSet::default()
    }

    /// Attaches a device.
    pub fn attach(&mut self, dev: Box<dyn Device>) {
        self.devices.push(dev);
    }

    /// Reads a port; unclaimed ports read as 0.
    pub fn read_port(&mut self, port: u16, builder: &ExprBuilder) -> Value {
        for d in &mut self.devices {
            if let Some(v) = d.read_port(port, builder) {
                return v;
            }
        }
        Value::Concrete(0)
    }

    /// Writes a port; unclaimed ports swallow the write.
    pub fn write_port(&mut self, port: u16, value: &Value, builder: &ExprBuilder) {
        for d in &mut self.devices {
            if d.write_port(port, value, builder) {
                return;
            }
        }
    }

    /// Advances all devices; returns the IRQ lines raised.
    pub fn tick(&mut self, cycles: u64) -> Vec<u32> {
        self.devices.iter_mut().filter_map(|d| d.tick(cycles)).collect()
    }

    /// Mutable access to a device by downcasting its name.
    ///
    /// Devices are looked up by their `name()`; returns the first match.
    pub fn by_name_mut(&mut self, name: &str) -> Option<&mut Box<dyn Device>> {
        self.devices.iter_mut().find(|d| d.name() == name)
    }

    /// Typed accessor for the console (if attached as "console").
    pub fn console(&self) -> Option<&Console> {
        self.devices
            .iter()
            .find(|d| d.name() == "console")
            .and_then(|d| d.as_any().downcast_ref::<Console>())
    }

    /// Typed mutable accessor for the NIC.
    pub fn nic_mut(&mut self) -> Option<&mut Nic> {
        self.devices
            .iter_mut()
            .find(|d| d.name() == "nic")
            .and_then(|d| d.as_any_mut().downcast_mut::<Nic>())
    }

    /// Typed accessor for the NIC.
    pub fn nic(&self) -> Option<&Nic> {
        self.devices
            .iter()
            .find(|d| d.name() == "nic")
            .and_then(|d| d.as_any().downcast_ref::<Nic>())
    }

    /// Typed mutable accessor for the config store.
    pub fn config_mut(&mut self) -> Option<&mut ConfigStore> {
        self.devices
            .iter_mut()
            .find(|d| d.name() == "config")
            .and_then(|d| d.as_any_mut().downcast_mut::<ConfigStore>())
    }

    /// Typed mutable accessor for the timer.
    pub fn timer_mut(&mut self) -> Option<&mut Timer> {
        self.devices
            .iter_mut()
            .find(|d| d.name() == "timer")
            .and_then(|d| d.as_any_mut().downcast_mut::<Timer>())
    }
}

// --- Portable wire encoding (DESIGN.md §17) ---------------------------
//
// Device internals are private to this module, so the cross-process
// codec lives here. Each device is tagged by concrete type; a device
// the codec does not know about is a hard error at *encode* time — a
// state with unshippable hardware must never silently lose it.

const DEV_CONSOLE: u8 = 0;
const DEV_TIMER: u8 = 1;
const DEV_NIC: u8 = 2;
const DEV_CONFIG: u8 = 3;

fn encode_values<'a>(vals: impl ExactSizeIterator<Item = &'a Value>, out: &mut Vec<u8>) {
    use s2e_expr::wire::write_varint;
    write_varint(out, vals.len() as u64);
    for v in vals {
        crate::wire::encode_value(v, out);
    }
}

fn decode_values(r: &mut s2e_expr::wire::WireReader<'_>) -> std::io::Result<Vec<Value>> {
    let len = r.read_len(1 << 24, "value list")?;
    let mut vals = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        vals.push(crate::wire::decode_value(r)?);
    }
    Ok(vals)
}

impl DeviceSet {
    /// Appends a portable encoding of every attached device, in bus
    /// order.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` if a device on the bus has no wire
    /// encoding (only the standard complement is shippable).
    pub fn encode_wire(&self, out: &mut Vec<u8>) -> std::io::Result<()> {
        use s2e_expr::wire::{bad_data, write_varint};
        write_varint(out, self.devices.len() as u64);
        for d in &self.devices {
            let any = d.as_any();
            if let Some(c) = any.downcast_ref::<Console>() {
                out.push(DEV_CONSOLE);
                write_varint(out, c.output.len() as u64);
                out.extend_from_slice(&c.output);
            } else if let Some(t) = any.downcast_ref::<Timer>() {
                out.push(DEV_TIMER);
                write_varint(out, u64::from(t.reload));
                write_varint(out, t.remaining);
                out.push(t.enabled as u8);
            } else if let Some(n) = any.downcast_ref::<Nic>() {
                out.push(DEV_NIC);
                out.push(n.ready as u8);
                out.push(n.link_up as u8);
                out.push(n.irq_pending as u8);
                out.push(n.symbolic_hardware as u8);
                write_varint(out, u64::from(n.sym_counter));
                encode_values(n.rx.iter(), out);
                encode_values(n.tx.iter(), out);
                write_varint(out, n.sent_frames.len() as u64);
                for frame in &n.sent_frames {
                    encode_values(frame.iter(), out);
                }
            } else if let Some(c) = any.downcast_ref::<ConfigStore>() {
                out.push(DEV_CONFIG);
                write_varint(out, u64::from(c.selected));
                let mut keys: Vec<u32> = c.values.keys().copied().collect();
                keys.sort_unstable();
                write_varint(out, keys.len() as u64);
                for k in keys {
                    write_varint(out, u64::from(k));
                    crate::wire::encode_value(&c.values[&k], out);
                }
            } else {
                return Err(bad_data(format!(
                    "device '{}' has no wire encoding",
                    d.name()
                )));
            }
        }
        Ok(())
    }

    /// Decodes a device set written by [`DeviceSet::encode_wire`].
    pub fn decode_wire(r: &mut s2e_expr::wire::WireReader<'_>) -> std::io::Result<DeviceSet> {
        use s2e_expr::wire::bad_data;
        let read_u32 = |r: &mut s2e_expr::wire::WireReader<'_>, what: &str| {
            let v = r.read_varint()?;
            if v > u64::from(u32::MAX) {
                return Err(bad_data(format!("{what} {v:#x} exceeds 32 bits")));
            }
            Ok(v as u32)
        };
        let read_bool = |r: &mut s2e_expr::wire::WireReader<'_>, what: &str| match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(bad_data(format!("{what} flag byte {b} is not 0/1"))),
        };
        let count = r.read_len(256, "device table")?;
        let mut set = DeviceSet::empty();
        for _ in 0..count {
            let dev: Box<dyn Device> = match r.read_u8()? {
                DEV_CONSOLE => {
                    let len = r.read_len(1 << 24, "console output")?;
                    Box::new(Console { output: r.read_bytes(len)?.to_vec() })
                }
                DEV_TIMER => {
                    let reload = read_u32(r, "timer reload")?;
                    let remaining = r.read_varint()?;
                    let enabled = read_bool(r, "timer enabled")?;
                    Box::new(Timer { reload, remaining, enabled })
                }
                DEV_NIC => {
                    let ready = read_bool(r, "nic ready")?;
                    let link_up = read_bool(r, "nic link_up")?;
                    let irq_pending = read_bool(r, "nic irq_pending")?;
                    let symbolic_hardware = read_bool(r, "nic symbolic_hardware")?;
                    let sym_counter = read_u32(r, "nic sym_counter")?;
                    let rx: VecDeque<Value> = decode_values(r)?.into();
                    let tx = decode_values(r)?;
                    let frames = r.read_len(1 << 20, "sent frames")?;
                    let mut sent_frames = Vec::with_capacity(frames.min(1024));
                    for _ in 0..frames {
                        sent_frames.push(decode_values(r)?);
                    }
                    Box::new(Nic {
                        ready,
                        link_up,
                        rx,
                        tx,
                        sent_frames,
                        irq_pending,
                        symbolic_hardware,
                        sym_counter,
                    })
                }
                DEV_CONFIG => {
                    let selected = read_u32(r, "config selected")?;
                    let len = r.read_len(1 << 24, "config entries")?;
                    let mut values = HashMap::with_capacity(len.min(1024));
                    for _ in 0..len {
                        let k = read_u32(r, "config key")?;
                        let v = crate::wire::decode_value(r)?;
                        if values.insert(k, v).is_some() {
                            return Err(bad_data(format!("duplicate config key {k}")));
                        }
                    }
                    Box::new(ConfigStore { values, selected })
                }
                t => return Err(bad_data(format!("unknown device tag {t}"))),
            };
            set.attach(dev);
        }
        Ok(set)
    }
}
