//! The complete guest machine: CPU + memory + devices + virtual time.

use crate::asm::Program;
use crate::cpu::Cpu;
use crate::device::DeviceSet;
use crate::mem::Memory;

/// Default initial stack pointer (grows downward).
pub const DEFAULT_STACK_TOP: u32 = 0x00F0_0000;

/// One guest machine instance.
///
/// `Machine` is the unit of state forking: `Clone` produces an independent
/// snapshot in O(pages touched later) thanks to copy-on-write memory, with
/// devices and CPU copied eagerly (they are small). This mirrors S2E's use
/// of QEMU's snapshot mechanism plus aggressive CoW (§5 of the paper).
#[derive(Clone, Debug)]
pub struct Machine {
    /// CPU state.
    pub cpu: Cpu,
    /// Physical memory.
    pub mem: Memory,
    /// Port-mapped devices.
    pub devices: DeviceSet,
    /// Virtual time: instructions retired on this state's path. Freezes
    /// when the state is not being run, and advances at a reduced rate in
    /// symbolic mode (the engine scales it), per §5.
    pub vtime: u64,
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

impl Machine {
    /// Creates a machine with the standard devices, an initialized stack
    /// pointer, and nothing loaded.
    pub fn new() -> Machine {
        let mut cpu = Cpu::new();
        cpu.set_reg(crate::isa::reg::SP, crate::value::Value::Concrete(DEFAULT_STACK_TOP));
        Machine {
            cpu,
            mem: Memory::new(),
            devices: DeviceSet::standard(),
            vtime: 0,
        }
    }

    /// Loads a program image and points the PC at its entry.
    pub fn load(&mut self, prog: &Program) {
        self.mem.load_image(prog.base, &prog.image);
        self.cpu.pc = prog.entry;
    }

    /// Loads an additional image without changing the PC (e.g. the kernel
    /// before the application).
    pub fn load_aux(&mut self, prog: &Program) {
        self.mem.load_image(prog.base, &prog.image);
    }

    /// Estimated private state size in bytes (CoW-aware): used by the
    /// memory-watermark experiments (Fig. 8).
    pub fn private_state_bytes(&self) -> usize {
        self.mem.private_page_count() * crate::mem::PAGE_SIZE as usize
            + std::mem::size_of::<Cpu>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::isa::reg;

    #[test]
    fn new_machine_has_stack_pointer() {
        let m = Machine::new();
        assert_eq!(m.cpu.reg(reg::SP).as_concrete(), Some(DEFAULT_STACK_TOP));
    }

    #[test]
    fn load_sets_pc() {
        let mut a = Assembler::new(0x2000);
        a.halt();
        let p = a.finish();
        let mut m = Machine::new();
        m.load(&p);
        assert_eq!(m.cpu.pc, 0x2000);
        assert_eq!(m.mem.read_bytes_concrete(0x2000, 1)[0], p.image[0]);
    }

    #[test]
    fn load_aux_keeps_pc() {
        let mut a = Assembler::new(0x3000);
        a.halt();
        let p = a.finish();
        let mut m = Machine::new();
        m.cpu.pc = 0x1234;
        m.load_aux(&p);
        assert_eq!(m.cpu.pc, 0x1234);
    }

    #[test]
    fn clone_is_independent() {
        let mut m = Machine::new();
        m.mem.write_u32(0x5000, 7).unwrap();
        let mut f = m.clone();
        f.mem.write_u32(0x5000, 8).unwrap();
        f.cpu.pc = 99;
        assert_eq!(m.mem.read_u32_concrete(0x5000).unwrap(), 7);
        assert_ne!(m.cpu.pc, f.cpu.pc);
    }

    #[test]
    fn private_state_accounts_cow() {
        let mut m = Machine::new();
        m.mem.write_u32(0x5000, 7).unwrap();
        let base = m.private_state_bytes();
        let f = m.clone();
        // After cloning, the page is shared: both sides see less private
        // state.
        assert!(m.private_state_bytes() < base || f.private_state_bytes() < base);
    }
}
