//! The virtual CPU state.

use crate::isa::reg::NUM_REGS;
use crate::value::Value;
use std::fmt;

/// Machine faults. A fault terminates the current path; the platform's
/// bug-checking analyzers (the `WinBugCheck` analog) turn faults into bug
/// reports with the faulting address and program counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Load or store touched the null guard page.
    NullAccess {
        /// Faulting data address.
        addr: u32,
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// Undecodable instruction.
    InvalidOpcode {
        /// Program counter of the bad instruction.
        pc: u32,
    },
    /// An `S2Op::Assert` failed.
    AssertFailed {
        /// Program counter of the assertion.
        pc: u32,
    },
    /// Control transferred to a symbolic program counter that could not be
    /// resolved.
    SymbolicPc {
        /// Program counter of the jump.
        pc: u32,
    },
    /// The kernel reported an unrecoverable condition (guest "panic" /
    /// blue screen).
    KernelPanic {
        /// Panic code passed by the guest.
        code: u32,
        /// Program counter of the panic.
        pc: u32,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::NullAccess { addr, pc } => {
                write!(f, "null access at {addr:#010x} (pc={pc:#010x})")
            }
            FaultKind::InvalidOpcode { pc } => write!(f, "invalid opcode (pc={pc:#010x})"),
            FaultKind::AssertFailed { pc } => write!(f, "assertion failed (pc={pc:#010x})"),
            FaultKind::SymbolicPc { pc } => write!(f, "symbolic program counter (pc={pc:#010x})"),
            FaultKind::KernelPanic { code, pc } => {
                write!(f, "kernel panic {code:#x} (pc={pc:#010x})")
            }
        }
    }
}

/// The virtual CPU: sixteen general registers (each possibly symbolic), a
/// concrete program counter, and interrupt state.
///
/// The program counter is always concrete: a branch on a symbolic
/// condition is resolved by the execution engine (fork or concretize)
/// *before* the PC is updated — this is where the paper's state forking
/// happens.
#[derive(Clone, Debug)]
pub struct Cpu {
    regs: [Value; NUM_REGS],
    /// Program counter.
    pub pc: u32,
    /// Maskable-interrupt enable flag.
    pub interrupts_enabled: bool,
    /// Pending IRQ lines (bitmask).
    pub pending_irqs: u32,
    /// Exit code when halted.
    pub halted: Option<u32>,
    /// Terminal fault, if any.
    pub fault: Option<FaultKind>,
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu::new()
    }
}

impl Cpu {
    /// Creates a CPU with zeroed registers, PC 0, interrupts disabled.
    pub fn new() -> Cpu {
        Cpu {
            regs: Default::default(),
            pc: 0,
            interrupts_enabled: false,
            pending_irqs: 0,
            halted: None,
            fault: None,
        }
    }

    /// Reads a register.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 16` (encodings are validated at decode time).
    pub fn reg(&self, r: u8) -> &Value {
        &self.regs[r as usize]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: u8, v: Value) {
        self.regs[r as usize] = v;
    }

    /// True if the machine can make progress (not halted, not faulted).
    pub fn is_running(&self) -> bool {
        self.halted.is_none() && self.fault.is_none()
    }

    /// Raises an IRQ line.
    pub fn raise_irq(&mut self, line: u32) {
        self.pending_irqs |= 1 << line;
    }

    /// Takes (clears and returns) the lowest pending IRQ if interrupts are
    /// enabled.
    pub fn take_irq(&mut self) -> Option<u32> {
        if !self.interrupts_enabled || self.pending_irqs == 0 {
            return None;
        }
        let line = self.pending_irqs.trailing_zeros();
        self.pending_irqs &= !(1 << line);
        Some(line)
    }

    /// Number of registers currently holding symbolic values.
    pub fn symbolic_reg_count(&self) -> usize {
        self.regs.iter().filter(|v| v.is_symbolic()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_default_to_zero() {
        let c = Cpu::new();
        for r in 0..16 {
            assert_eq!(c.reg(r).as_concrete(), Some(0));
        }
    }

    #[test]
    fn reg_write_read() {
        let mut c = Cpu::new();
        c.set_reg(5, Value::Concrete(42));
        assert_eq!(c.reg(5).as_concrete(), Some(42));
    }

    #[test]
    fn irq_masking() {
        let mut c = Cpu::new();
        c.raise_irq(1);
        assert_eq!(c.take_irq(), None); // disabled
        c.interrupts_enabled = true;
        assert_eq!(c.take_irq(), Some(1));
        assert_eq!(c.take_irq(), None); // consumed
    }

    #[test]
    fn irq_priority_lowest_first() {
        let mut c = Cpu::new();
        c.interrupts_enabled = true;
        c.raise_irq(1);
        c.raise_irq(0);
        assert_eq!(c.take_irq(), Some(0));
        assert_eq!(c.take_irq(), Some(1));
    }

    #[test]
    fn running_state() {
        let mut c = Cpu::new();
        assert!(c.is_running());
        c.halted = Some(0);
        assert!(!c.is_running());
        let mut c = Cpu::new();
        c.fault = Some(FaultKind::InvalidOpcode { pc: 0 });
        assert!(!c.is_running());
    }

    #[test]
    fn symbolic_reg_count() {
        use s2e_expr::{ExprBuilder, Width};
        let b = ExprBuilder::new();
        let mut c = Cpu::new();
        assert_eq!(c.symbolic_reg_count(), 0);
        c.set_reg(0, Value::Symbolic(b.var("x", Width::W32)));
        c.set_reg(1, Value::Symbolic(b.var("y", Width::W32)));
        assert_eq!(c.symbolic_reg_count(), 2);
    }

    #[test]
    fn fault_display_nonempty() {
        let f = FaultKind::NullAccess { addr: 4, pc: 0x2000 };
        assert!(!f.to_string().is_empty());
    }
}
