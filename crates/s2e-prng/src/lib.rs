//! Seeded pseudo-random numbers for the S2E platform.
//!
//! The platform is built std-only: no external PRNG crates. This crate
//! provides the one generator everything shares — [`SplitMix64`] — used
//! by the `RandomSearch` path selector, the REV+ concolic input mutator,
//! and every seeded property-test loop in the workspace. SplitMix64 is
//! the generator Vigna published for seeding xoshiro: one 64-bit add and
//! three xor-shift-multiply rounds per output, passes BigCrush, and is
//! trivially reproducible from a single `u64` seed — exactly what
//! deterministic exploration and deterministic tests need.
//!
//! # Example
//!
//! ```
//! use s2e_prng::SplitMix64;
//!
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let roll = a.below(6) + 1;
//! assert!((1..=6).contains(&roll));
//! ```

/// A SplitMix64 pseudo-random generator.
///
/// Deterministic for a given seed; `Clone` gives an independent replay of
/// the remaining stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of [`SplitMix64::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 8-bit output.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniformly random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A value in `[0, n)`. Uses Lemire-style rejection so small moduli
    /// are unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Rejection sampling over the largest multiple of n that fits.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A `usize` in `[0, n)` — the index helper for `below`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Derives an independent child generator (the "split" in SplitMix):
    /// advances this stream once and seeds the child from the output, so
    /// parent and child streams do not overlap in practice.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0x632b_e593_04b4_dc17)
    }
}

/// A random stream that can be captured once and replayed exactly —
/// the PRNG half of the record/replay journal (s2e-core §13).
///
/// In *record* mode every draw comes from an inner [`SplitMix64`] and is
/// appended to a log; [`RandomStream::into_log`] yields the captured
/// draws, which `Journal::record_prng` encodes as `PrngDraw` events. In
/// *replay* mode draws are served from a previously captured log, so a
/// consumer re-executed deterministically sees the identical stream even
/// if the generator that produced it (or its seed) is long gone.
///
/// All the derived helpers (`below`, `index`, `shuffle`, ...) are built
/// on `next_u64`, so recording at that single point captures them all —
/// including the extra draws Lemire rejection sampling may consume.
#[derive(Clone, Debug)]
pub struct RandomStream {
    mode: StreamMode,
}

#[derive(Clone, Debug)]
enum StreamMode {
    Record { rng: SplitMix64, log: Vec<u64> },
    Replay { log: Vec<u64>, pos: usize },
}

impl RandomStream {
    /// A recording stream seeded like [`SplitMix64::new`].
    pub fn record(seed: u64) -> RandomStream {
        RandomStream {
            mode: StreamMode::Record {
                rng: SplitMix64::new(seed),
                log: Vec::new(),
            },
        }
    }

    /// A replaying stream serving exactly the captured draws.
    pub fn replay(log: Vec<u64>) -> RandomStream {
        RandomStream {
            mode: StreamMode::Replay { log, pos: 0 },
        }
    }

    /// True while in replay mode with draws still pending.
    pub fn replaying(&self) -> bool {
        matches!(&self.mode, StreamMode::Replay { log, pos } if *pos < log.len())
    }

    /// Draws the next 64-bit value, recording or replaying it.
    ///
    /// # Panics
    ///
    /// In replay mode, panics if the log is exhausted: the consumer
    /// diverged from the recorded run.
    pub fn next_u64(&mut self) -> u64 {
        match &mut self.mode {
            StreamMode::Record { rng, log } => {
                let v = rng.next_u64();
                log.push(v);
                v
            }
            StreamMode::Replay { log, pos } => {
                let v = *log.get(*pos).unwrap_or_else(|| {
                    panic!("random-stream replay diverged: {} draws exhausted", log.len())
                });
                *pos += 1;
                v
            }
        }
    }

    /// A value in `[0, n)` (Lemire rejection, same as [`SplitMix64::below`]).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Fisher–Yates shuffle over the recorded/replayed stream.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws captured so far (record mode) or total draws in the log
    /// (replay mode).
    pub fn log_len(&self) -> usize {
        match &self.mode {
            StreamMode::Record { log, .. } => log.len(),
            StreamMode::Replay { log, .. } => log.len(),
        }
    }

    /// Finishes recording and yields the captured draws.
    ///
    /// # Panics
    ///
    /// Panics in replay mode — a replayed stream has no new log.
    pub fn into_log(self) -> Vec<u64> {
        match self.mode {
            StreamMode::Record { log, .. } => log,
            StreamMode::Replay { .. } => panic!("replay stream has no captured log"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for seed 0, cross-checked against Vigna's C
        // reference implementation of splitmix64.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(g.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut g = SplitMix64::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = g.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn range_bounds() {
        let mut g = SplitMix64::new(2);
        for _ in 0..1000 {
            let v = g.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn fill_bytes_varies() {
        let mut g = SplitMix64::new(3);
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        g.fill_bytes(&mut a);
        g.fill_bytes(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut g = SplitMix64::new(4);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 4 should not produce identity");
    }

    #[test]
    fn choose_and_split() {
        let mut g = SplitMix64::new(5);
        assert!(g.choose::<u8>(&[]).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(g.choose(&items).unwrap()));
        let mut child = g.split();
        // Child stream differs from the parent's continuation.
        assert_ne!(child.next_u64(), g.clone().next_u64());
    }

    #[test]
    fn bool_is_balanced() {
        let mut g = SplitMix64::new(6);
        let trues = (0..10_000).filter(|_| g.next_bool()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }

    #[test]
    fn recorded_stream_replays_identically() {
        let mut rec = RandomStream::record(99);
        let mut drawn = Vec::new();
        let mut order: Vec<u32> = (0..20).collect();
        for _ in 0..50 {
            drawn.push(rec.below(13));
        }
        rec.shuffle(&mut order);
        assert!(!rec.replaying());
        let log = rec.into_log();

        // Replay reproduces every derived draw, not just raw u64s.
        let mut rep = RandomStream::replay(log.clone());
        assert!(rep.replaying());
        assert_eq!(rep.log_len(), log.len());
        let mut order2: Vec<u32> = (0..20).collect();
        for d in &drawn {
            assert_eq!(rep.below(13), *d);
        }
        rep.shuffle(&mut order2);
        assert_eq!(order2, order);
        assert!(!rep.replaying(), "log fully consumed");

        // The recorded stream matches a bare generator with the seed.
        let mut bare = SplitMix64::new(99);
        assert!(log.iter().all(|&v| v == bare.next_u64()));
    }

    #[test]
    #[should_panic(expected = "replay diverged")]
    fn exhausted_replay_panics() {
        let mut rec = RandomStream::record(1);
        rec.next_u64();
        let mut rep = RandomStream::replay(rec.into_log());
        rep.next_u64();
        rep.next_u64(); // one draw past the recording
    }
}
