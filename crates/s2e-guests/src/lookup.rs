//! Table-lookup utility — the symbolic-pointer workload (§6.2).
//!
//! The paper measures how the size of the memory regions passed to the
//! constraint solver ("we use small pages of configurable size, e.g. 128
//! bytes") affects path throughput and per-query solve time, using the
//! `unlink` coreutil. This guest is the distilled equivalent: it indexes
//! a 256-entry table with input bytes — every iteration is a symbolic
//! pointer dereference when the input is symbolic — then branches on the
//! looked-up value.

use crate::layout::{APP_BASE, INPUT_BUF};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::reg;

/// Number of input bytes consumed (= symbolic-pointer loads performed).
pub const DEFAULT_ROUNDS: u32 = 4;

/// Builds the guest with `rounds` table lookups.
pub fn program(rounds: u32) -> Program {
    let mut a = Assembler::new(APP_BASE);

    a.label("main");
    a.movi_label(reg::R4, "table");
    a.movi(reg::R5, INPUT_BUF);
    a.movi(reg::R6, 0); // accumulator
    for i in 0..rounds {
        a.ld8(reg::R7, reg::R5, i); // input byte
        a.shli(reg::R7, reg::R7, 2); // word index
        a.add(reg::R7, reg::R4, reg::R7);
        a.ld32(reg::R7, reg::R7, 0); // symbolic-pointer load
        a.add(reg::R6, reg::R6, reg::R7);
    }
    // Branch on the accumulated value's parity: two path families.
    a.andi(reg::R7, reg::R6, 1);
    a.movi(reg::R8, 0);
    a.beq(reg::R7, reg::R8, "even");
    a.halt_code(1);
    a.label("even");
    a.halt_code(0);

    a.align(4);
    a.label("table");
    for k in 0..256u32 {
        a.word(k.wrapping_mul(2654435761) >> 8);
    }
    a.finish()
}

/// Host-side reference of the guest's computation.
pub fn reference(inputs: &[u8]) -> u32 {
    let table: Vec<u32> = (0..256u32).map(|k| k.wrapping_mul(2654435761) >> 8).collect();
    let acc: u32 = inputs
        .iter()
        .fold(0u32, |acc, &b| acc.wrapping_add(table[b as usize]));
    acc & 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::boot;
    use s2e_core::{ConsistencyModel, Engine, EngineConfig, TerminationReason};

    #[test]
    fn concrete_lookup_matches_reference() {
        for input in [[0u8, 1, 2, 3], [9, 8, 7, 6], [255, 0, 128, 64]] {
            let (mut m, _) = boot();
            m.mem.load_image(INPUT_BUF, &input);
            m.load(&program(4));
            let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScCe));
            e.run(100_000);
            let code = match e.terminated()[0].1 {
                TerminationReason::Halted(c) => c,
                ref other => panic!("unexpected {other:?}"),
            };
            assert_eq!(code, reference(&input), "{input:?}");
        }
    }

    #[test]
    fn symbolic_input_uses_symbolic_pointers() {
        let (mut m, _) = boot();
        m.load(&program(1));
        let mut config = EngineConfig::with_model(ConsistencyModel::ScSe);
        config.symbolic_page_size = 64;
        let mut e = Engine::new(m, config);
        let id = e.sole_state().unwrap();
        let b = e.builder_arc();
        s2e_core::selectors::make_mem_symbolic(e.state_mut(id).unwrap(), &b, INPUT_BUF, 1, "in");
        e.run(50_000);
        assert!(e.stats().symbolic_ptr_accesses >= 1);
        // Both parity outcomes are reachable across table entries.
        assert!(e.terminated().len() >= 2);
    }
}
