//! The IIS/SSL analog (§6.1.3's page-fault experiment).
//!
//! A request handler that parses an HTTP-ish request line, runs a
//! fixed-footprint "cryptographic" mixing loop (the SSL module stand-in),
//! and writes a response. The crypto loop touches a constant set of pages
//! regardless of the request content, so the page-fault count in the
//! crypto region is input-independent — the property the paper checked
//! when probing IIS for page-fault side channels.

use crate::kernel::sys;
use crate::layout::{APP_BASE, INPUT_BUF};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::reg;

/// Number of mixing rounds in the crypto loop.
pub const CRYPTO_ROUNDS: u32 = 64;

/// Builds the web-handler guest. The request is read from
/// [`INPUT_BUF`]; the response goes to the console via `write`.
pub fn program() -> Program {
    let mut a = Assembler::new(APP_BASE);

    a.label("main");
    // Method check: first byte must be 'G'.
    a.movi(reg::R4, INPUT_BUF);
    a.ld8(reg::R5, reg::R4, 0);
    a.movi(reg::R6, b'G' as u32);
    a.beq(reg::R5, reg::R6, "method_ok");
    // 405 Method Not Allowed.
    a.movi_label(reg::R1, "resp405");
    a.movi(reg::R0, 1);
    a.movi(reg::R2, 3);
    a.syscall(sys::WRITE);
    a.halt_code(45);
    a.label("method_ok");

    // "TLS handshake": mix the key schedule. The table is 16 words in the
    // program image — every request touches exactly the same pages.
    a.movi_label(reg::R4, "key_schedule");
    a.movi(reg::R5, 0); // round
    a.movi(reg::R6, 0x5a5a); // state
    a.label("crypto_loop");
    a.movi(reg::R7, CRYPTO_ROUNDS);
    a.bgeu(reg::R5, reg::R7, "crypto_done");
    a.andi(reg::R7, reg::R5, 0xf);
    a.shli(reg::R7, reg::R7, 2);
    a.add(reg::R7, reg::R4, reg::R7);
    a.ld32(reg::R7, reg::R7, 0);
    a.muli(reg::R6, reg::R6, 33);
    a.add(reg::R6, reg::R6, reg::R7);
    a.xori(reg::R6, reg::R6, 0x1f2e);
    a.addi(reg::R5, reg::R5, 1);
    a.jmp("crypto_loop");
    a.label("crypto_done");

    // Route on the first path character: '/' 'a'..'z' are 200, others 404.
    a.ld8(reg::R5, reg::R4, 0); // dummy keep-alive read of the schedule
    a.movi(reg::R4, INPUT_BUF);
    a.ld8(reg::R5, reg::R4, 5); // first path byte after "GET /"
    a.movi(reg::R6, b'a' as u32);
    a.bltu(reg::R5, reg::R6, "not_found");
    a.movi(reg::R6, b'z' as u32 + 1);
    a.bgeu(reg::R5, reg::R6, "not_found");
    a.movi_label(reg::R1, "resp200");
    a.movi(reg::R0, 1);
    a.movi(reg::R2, 3);
    a.syscall(sys::WRITE);
    a.halt_code(0);
    a.label("not_found");
    a.movi_label(reg::R1, "resp404");
    a.movi(reg::R0, 1);
    a.movi(reg::R2, 3);
    a.syscall(sys::WRITE);
    a.halt_code(44);

    a.align(4);
    a.label("key_schedule");
    for k in 0..16u32 {
        a.word(0x9e37_79b9u32.wrapping_mul(k + 1));
    }
    a.label("resp200");
    a.asciiz("200");
    a.label("resp405");
    a.asciiz("405");
    a.label("resp404");
    a.asciiz("404");
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::boot;
    use s2e_core::{ConsistencyModel, Engine, EngineConfig, TerminationReason};

    fn run_req(req: &[u8]) -> (u32, String) {
        let (mut m, _) = boot();
        m.mem.load_image(INPUT_BUF, req);
        m.load(&program());
        let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScCe));
        e.set_retain_terminated(true);
        e.run(1_000_000);
        let code = match e.terminated()[0].1 {
            TerminationReason::Halted(c) => c,
            ref other => panic!("unexpected {other:?}"),
        };
        let out = e.terminated_states()[0]
            .machine
            .devices
            .console()
            .unwrap()
            .output_string();
        (code, out)
    }

    #[test]
    fn get_known_path_returns_200() {
        let (code, out) = run_req(b"GET /index");
        assert_eq!(code, 0);
        assert_eq!(out, "200");
    }

    #[test]
    fn get_bad_path_returns_404() {
        let (code, out) = run_req(b"GET /0dd");
        assert_eq!(code, 44);
        assert_eq!(out, "404");
    }

    #[test]
    fn non_get_returns_405() {
        let (code, out) = run_req(b"PUT /index");
        assert_eq!(code, 45);
        assert_eq!(out, "405");
    }
}
