//! The Apache URL-parser analog (§6.1.3's first PROFS experiment).
//!
//! Parses a NUL-terminated URL at [`crate::layout::INPUT_BUF`]: validates
//! characters, hashes the route, and does a fixed amount of extra
//! bookkeeping per `/` segment separator. The paper's finding — "for
//! every additional `/` character present in the URL, there are 10 extra
//! instructions being executed", with no upper bound on parsing time — is
//! engineered to hold exactly: the slash path executes
//! [`EXTRA_INSTRS_PER_SLASH`] more instructions than the ordinary-char
//! path.

use crate::layout::{APP_BASE, INPUT_BUF};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::reg;

/// Instructions executed on the `/` branch beyond the ordinary-character
/// branch.
pub const EXTRA_INSTRS_PER_SLASH: u64 = 10;

/// Exit status: the path's slash count is reported via `KillPath`.
pub fn program() -> Program {
    let mut a = Assembler::new(APP_BASE);

    a.label("main");
    a.movi(reg::R4, INPUT_BUF); // cursor
    a.movi(reg::R5, 0); // slash count
    a.movi(reg::R6, 0); // route hash

    a.label("loop");
    a.ld8(reg::R7, reg::R4, 0);
    a.movi(reg::R8, 0);
    a.beq(reg::R7, reg::R8, "done"); // NUL terminator
    a.movi(reg::R8, b'/' as u32);
    a.bne(reg::R7, reg::R8, "ordinary");

    // Segment separator: start a new route component. This block is the
    // ordinary-character block plus exactly EXTRA_INSTRS_PER_SLASH
    // additional instructions (count them: 10 before the shared "next").
    a.addi(reg::R5, reg::R5, 1); // 1
    a.muli(reg::R6, reg::R6, 31); // 2
    a.addi(reg::R6, reg::R6, 47); // 3
    a.andi(reg::R6, reg::R6, 0xffff); // 4
    a.shli(reg::R9, reg::R5, 2); // 5
    a.add(reg::R6, reg::R6, reg::R9); // 6
    a.xori(reg::R6, reg::R6, 0x55); // 7
    a.andi(reg::R6, reg::R6, 0xffff); // 8
    a.muli(reg::R9, reg::R5, 3); // 9
    a.add(reg::R6, reg::R6, reg::R9); // 10
    // Shared per-character hashing (same as the ordinary branch).
    a.muli(reg::R6, reg::R6, 31);
    a.add(reg::R6, reg::R6, reg::R7);
    a.andi(reg::R6, reg::R6, 0xffff);
    a.jmp("next");

    a.label("ordinary");
    a.muli(reg::R6, reg::R6, 31);
    a.add(reg::R6, reg::R6, reg::R7);
    a.andi(reg::R6, reg::R6, 0xffff);
    a.jmp("next");

    a.label("next");
    a.addi(reg::R4, reg::R4, 1);
    a.jmp("loop");

    a.label("done");
    // Report the slash count as the path status.
    a.mov(reg::R0, reg::R5);
    a.s2e(s2e_vm::isa::S2Op::KillPath);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::boot;
    use s2e_core::{ConsistencyModel, Engine, EngineConfig, TerminationReason};

    fn run_url(url: &[u8]) -> (u32, u64) {
        let (mut m, _) = boot();
        let p = program();
        m.mem.load_image(INPUT_BUF, url);
        m.mem.load_image(INPUT_BUF + url.len() as u32, &[0]);
        m.load(&p);
        let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScCe));
        e.set_retain_terminated(true);
        e.run(1_000_000);
        let status = match e.terminated()[0].1 {
            TerminationReason::Killed(c) => c,
            ref other => panic!("unexpected {other:?}"),
        };
        (status, e.terminated_states()[0].instrs_retired)
    }

    #[test]
    fn counts_slashes() {
        assert_eq!(run_url(b"/a/b/c").0, 3);
        assert_eq!(run_url(b"nosl").0, 0);
        assert_eq!(run_url(b"/").0, 1);
    }

    #[test]
    fn ten_extra_instructions_per_slash() {
        // Same length, different slash counts.
        let (_, i0) = run_url(b"aaaa");
        let (_, i1) = run_url(b"aaa/");
        let (_, i2) = run_url(b"aa//");
        let (_, i3) = run_url(b"a///");
        assert_eq!(i1 - i0, EXTRA_INSTRS_PER_SLASH);
        assert_eq!(i2 - i1, EXTRA_INSTRS_PER_SLASH);
        assert_eq!(i3 - i2, EXTRA_INSTRS_PER_SLASH);
    }

    #[test]
    fn no_upper_bound_in_length() {
        // Instruction count grows linearly with URL length: no bound.
        let (_, short) = run_url(b"/ab");
        let (_, long) = run_url(b"/ab/ab/ab/ab/ab/ab");
        assert!(long > short * 3);
    }
}
