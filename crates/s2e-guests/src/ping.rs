//! The `ping` analog with the record-route infinite-loop bug (§6.1.3).
//!
//! The paper's PROFS run on `ping` found a path that never terminates:
//! when the echo reply carries a record-route (RR) option whose length
//! field is 3 — too short to hold any address — the option parser
//! "does `continue` without updating the loop counter". This guest
//! reproduces that bug bit for bit, plus a patched variant whose
//! performance envelope is boundable.
//!
//! Reply layout at [`crate::layout::INPUT_BUF`]:
//!
//! ```text
//! +0  icmp type (0 = echo reply)
//! +1  option-block length in bytes (0 = no options)
//! +2.. option blocks: [type, len, payload...]; type 0 ends the list,
//!      type 7 is record-route whose payload holds 4-byte addresses.
//! ```

use crate::kernel::sys;
use crate::layout::{APP_BASE, INPUT_BUF};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::reg;

/// ICMP option type for record-route.
pub const OPT_RR: u32 = 7;
/// Option type terminating the list.
pub const OPT_END: u32 = 0;

/// Builds the guest; `patched` selects the fixed option parser.
pub fn program(patched: bool) -> Program {
    let mut a = Assembler::new(APP_BASE);

    a.label("main");
    // Build an 8-byte echo request in scratch space and send it.
    let scratch = INPUT_BUF + 0x100;
    a.movi(reg::R4, scratch);
    a.movi(reg::R5, 8); // icmp type: echo request
    a.st8(reg::R4, 0, reg::R5);
    a.movi(reg::R5, 0);
    a.st8(reg::R4, 1, reg::R5);
    a.movi(reg::R5, 0x1234); // id
    a.st16(reg::R4, 2, reg::R5);
    a.movi(reg::R5, 1); // seq
    a.st16(reg::R4, 4, reg::R5);
    a.movi(reg::R0, scratch);
    a.movi(reg::R1, 8);
    a.syscall(sys::SEND);

    // Parse the reply.
    a.movi(reg::R4, INPUT_BUF);
    a.ld8(reg::R5, reg::R4, 0); // icmp type
    a.movi(reg::R6, 0);
    a.beq(reg::R5, reg::R6, "parse_options");
    a.halt_code(2); // not an echo reply

    a.label("parse_options");
    a.ld8(reg::R5, reg::R4, 1); // option-block length
    a.movi(reg::R9, 2); // j: offset of the first option
    a.addi(reg::R5, reg::R5, 2); // end offset

    a.label("opt_loop");
    a.bgeu(reg::R9, reg::R5, "parse_done");
    a.add(reg::R6, reg::R4, reg::R9);
    a.ld8(reg::R7, reg::R6, 0); // option type
    a.movi(reg::R8, OPT_END);
    a.beq(reg::R7, reg::R8, "parse_done");
    a.movi(reg::R8, OPT_RR);
    a.beq(reg::R7, reg::R8, "opt_rr");
    // Unknown option: skip by its length byte (minimum 2).
    a.ld8(reg::R7, reg::R6, 1);
    a.movi(reg::R8, 2);
    a.bgeu(reg::R7, reg::R8, "skip_ok");
    a.movi(reg::R7, 2);
    a.label("skip_ok");
    a.add(reg::R9, reg::R9, reg::R7);
    a.jmp("opt_loop");

    // Record-route option: walk the address list.
    a.label("opt_rr");
    a.ld8(reg::R7, reg::R6, 1); // option length
    a.movi(reg::R8, 4);
    a.bgeu(reg::R7, reg::R8, "rr_walk");
    // Length < 4: "the list of addresses is empty".
    if patched {
        // Patched: skip the malformed option and keep scanning.
        a.movi(reg::R7, 2);
        a.add(reg::R9, reg::R9, reg::R7);
        a.jmp("opt_loop");
    } else {
        // THE BUG: `continue` without updating the loop counter.
        a.jmp("opt_loop");
    }

    a.label("rr_walk");
    // Sum the recorded addresses (entries of 4 bytes after the 2-byte
    // option header).
    a.movi(reg::R10, 2); // k: offset within the option
    a.movi(reg::R11, 0); // accumulator
    a.label("rr_addr_loop");
    a.bgeu(reg::R10, reg::R7, "rr_done");
    a.add(reg::R12, reg::R6, reg::R10);
    a.ld32(reg::R12, reg::R12, 0);
    a.add(reg::R11, reg::R11, reg::R12);
    a.addi(reg::R10, reg::R10, 4);
    a.jmp("rr_addr_loop");
    a.label("rr_done");
    a.add(reg::R9, reg::R9, reg::R7);
    a.jmp("opt_loop");

    a.label("parse_done");
    a.halt_code(0);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::boot;
    use s2e_core::{ConsistencyModel, Engine, EngineConfig, TerminationReason};

    fn run_reply(patched: bool, reply: &[u8], fuel: u64) -> (TerminationReason, u64) {
        let (mut m, _) = boot();
        m.mem.load_image(INPUT_BUF, reply);
        m.load(&program(patched));
        let mut config = EngineConfig::with_model(ConsistencyModel::ScCe);
        config.max_instrs_per_path = fuel;
        let mut e = Engine::new(m, config);
        e.set_retain_terminated(true);
        e.run(10_000_000);
        (
            e.terminated()[0].1.clone(),
            e.terminated_states()[0].instrs_retired,
        )
    }

    #[test]
    fn plain_reply_parses() {
        // Echo reply, no options.
        let (r, _) = run_reply(false, &[0, 0], 100_000);
        assert_eq!(r, TerminationReason::Halted(0));
    }

    #[test]
    fn valid_rr_option_parses() {
        // Option block: RR option, length 6 (one 4-byte address).
        let reply = [0u8, 6, 7, 6, 1, 2, 3, 4];
        let (r, _) = run_reply(false, &reply, 100_000);
        assert_eq!(r, TerminationReason::Halted(0));
        let (r, _) = run_reply(true, &reply, 100_000);
        assert_eq!(r, TerminationReason::Halted(0));
    }

    #[test]
    fn rr_length_3_hangs_buggy_ping() {
        // RR option with length 3: no room for addresses.
        let reply = [0u8, 4, 7, 3];
        let (r, instrs) = run_reply(false, &reply, 50_000);
        assert_eq!(r, TerminationReason::FuelExhausted);
        assert!(instrs >= 50_000);
    }

    #[test]
    fn rr_length_3_terminates_patched_ping() {
        let reply = [0u8, 4, 7, 3];
        let (r, instrs) = run_reply(true, &reply, 50_000);
        assert_eq!(r, TerminationReason::Halted(0));
        assert!(instrs < 1_000);
    }

    #[test]
    fn non_echo_reply_rejected() {
        let (r, _) = run_reply(false, &[8, 0], 100_000);
        assert_eq!(r, TerminationReason::Halted(2));
    }
}
