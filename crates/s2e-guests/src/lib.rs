//! The guest software stack for the S2E platform reproduction.
//!
//! Everything the paper's evaluation runs *inside* the VM is rebuilt here
//! as assembled guest programs:
//!
//! - [`kernel`] — a miniature operating system: syscall table (alloc,
//!   free, write, send, config lookup, panic), interrupt plumbing, and the
//!   LC interface annotations for its API contracts (the substitute for
//!   the Windows kernel + NDIS interface the paper instruments);
//! - [`drivers`] — four synthetic NIC drivers in the mold of the paper's
//!   RTL8029 / AMD PCnet / SMC 91C111 / RTL8139 targets, two of them with
//!   the seven injected bug classes DDT+ must find (§6.1.1);
//! - [`url_parser`] — the Apache URL-parser analog whose per-path
//!   instruction count grows by a fixed amount per `/` (§6.1.3);
//! - [`ping`] — the `ping` clone with the record-route infinite-loop bug
//!   (§6.1.3), in buggy and patched variants;
//! - [`webserver`] — the IIS/SSL analog with a constant-page-fault crypto
//!   kernel (§6.1.3);
//! - [`script`] — the Lua-interpreter analog: a lexer+parser front end
//!   (environment) feeding a bytecode interpreter (unit) (§6.3);
//! - [`license`] — the license-key checking example from the paper's
//!   introduction (§1), used as the quickstart;
//! - [`lookup`] — a table-lookup utility exercising symbolic pointers
//!   (§6.2's page-size experiments);
//! - [`packed`] — a self-decrypting (packed) binary for the RC-CC
//!   dynamic-disassembly use case (§3.1.3);
//! - [`jumptable`] — a computed-dispatch guest (register-arithmetic and
//!   memory-laundered jump tables) for the value-range refinement loop.

pub mod drivers;
pub mod jumptable;
pub mod kernel;
pub mod layout;
pub mod license;
pub mod lookup;
pub mod packed;
pub mod ping;
pub mod script;
pub mod url_parser;
pub mod webserver;
