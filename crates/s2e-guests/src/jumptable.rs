//! A jump-table guest for the value-range refinement loop (DESIGN.md §15).
//!
//! The dispatcher iterates `i = 0..4` and transfers through a computed
//! indirect jump into one of four 16-byte handler stubs. Two variants:
//!
//! - **computed** — the target is pure register arithmetic
//!   (`base + (i & 3) << 4`), so the interval analysis enumerates the
//!   exact four-stub set and the `jmpr` is statically resolved;
//! - **laundered** — the stub addresses are stored as words in a data
//!   table and fetched with `ld32`. Loads map to ⊤ in the range domain,
//!   so the site stays unresolved statically and every retired target
//!   surfaces as a *discovered* indirect — the dynamic feedback path.
//!
//! After the dispatch loop a symbolic tail branch forks the state, so
//! exploration produces multiple paths whose set must be bit-identical
//! with refinement on and off.

use crate::layout::APP_BASE;
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::reg;

/// Number of handler stubs (and loop iterations).
pub const STUBS: usize = 4;

/// The assembled guest plus the ground truth the tests assert against.
#[derive(Clone, Debug)]
pub struct JumpTableGuest {
    /// The program image.
    pub program: Program,
    /// PC of the `jmpr` dispatch instruction.
    pub dispatch_site: u32,
    /// The four stub entry points, in table order.
    pub stub_targets: Vec<u32>,
    /// Whether the table is memory-laundered (statically unresolvable).
    pub laundered: bool,
}

/// Builds the guest. `laundered` selects the memory-table variant.
pub fn build(laundered: bool) -> JumpTableGuest {
    let mut a = Assembler::new(APP_BASE);
    a.label("entry");
    a.movi(reg::R4, 0); // i
    a.movi(reg::R9, 0); // accumulator checked at exit
    a.label("loop");
    a.mov(reg::R1, reg::R4);
    a.andi(reg::R1, reg::R1, 3);
    if laundered {
        // Word-indexed load from the data table: opaque to the range
        // domain, resolved only by dynamic discovery.
        a.shli(reg::R1, reg::R1, 2);
        a.movi_label(reg::R2, "table");
        a.add(reg::R2, reg::R2, reg::R1);
        a.ld32(reg::R2, reg::R2, 0);
    } else {
        // Pure address arithmetic: stubs are 2 instructions = 16 bytes
        // apart, so the target is `stubs + (i & 3) * 16`.
        a.shli(reg::R1, reg::R1, 4);
        a.movi_label(reg::R2, "stubs");
        a.add(reg::R2, reg::R2, reg::R1);
    }
    a.label("dispatch");
    a.jmpr(reg::R2);
    a.label("join");
    a.addi(reg::R4, reg::R4, 1);
    a.movi(reg::R5, STUBS as u32);
    a.bltu(reg::R4, reg::R5, "loop");
    // Symbolic tail: fork after the dispatch loop so the explored path
    // set exercises scheduling order on top of the refinement machinery.
    a.s2e(s2e_vm::isa::S2Op::SymbolicReg);
    a.movi(reg::R6, 2);
    a.bltu(reg::R0, reg::R6, "low");
    a.halt_code(1);
    a.label("low");
    a.halt_code(2);
    // Handler stubs: exactly two instructions each (16 bytes), matching
    // the `<< 4` stride above.
    a.label("stubs");
    for k in 0..STUBS as u32 {
        a.label(&format!("stub{k}"));
        a.addi(reg::R9, reg::R9, k + 1);
        a.jmp("join");
    }
    a.label("table");
    for k in 0..STUBS {
        a.word_label(&format!("stub{k}"));
    }
    let program = a.finish();
    let dispatch_site = program.symbol("dispatch");
    let stub_targets = (0..STUBS)
        .map(|k| program.symbol(&format!("stub{k}")))
        .collect();
    JumpTableGuest {
        program,
        dispatch_site,
        stub_targets,
        laundered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::boot;
    use s2e_core::{ConsistencyModel, Engine, EngineConfig, TerminationReason};

    fn run(laundered: bool) -> Vec<u32> {
        let g = build(laundered);
        let (mut m, _k) = boot();
        m.load(&g.program);
        let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::Lc));
        e.run(200_000);
        let mut codes: Vec<u32> = e
            .terminated()
            .iter()
            .filter_map(|(_, r)| match r {
                TerminationReason::Halted(c) => Some(*c),
                _ => None,
            })
            .collect();
        codes.sort_unstable();
        codes
    }

    #[test]
    fn both_variants_fork_on_the_tail_branch() {
        // Each variant dispatches through all four stubs, then forks on
        // the symbolic tail: exactly one path per exit code.
        assert_eq!(run(false), vec![1, 2]);
        assert_eq!(run(true), vec![1, 2]);
    }

    #[test]
    fn stub_stride_matches_the_address_math() {
        let g = build(false);
        for w in g.stub_targets.windows(2) {
            assert_eq!(w[1] - w[0], 16, "stubs must be 16 bytes apart");
        }
        assert_eq!(g.stub_targets[0], g.program.symbol("stubs"));
    }
}
