//! The license-key checker from the paper's introduction (§1).
//!
//! "One may want to verify the code that handles license keys in a
//! proprietary program ... S2E then automatically explores the code paths
//! influenced by the value of the license key." This guest validates an
//! 8-byte key at [`crate::layout::INPUT_BUF`] through a cascade of
//! checks; the platform finds the accepting path and its constraints
//! yield a *valid key* — the quickstart demo.

use crate::layout::{APP_BASE, INPUT_BUF};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::reg;

/// Key length in bytes.
pub const KEY_LEN: u32 = 8;
/// Exit code of the accepting path.
pub const VALID: u32 = 1;
/// Exit code of rejecting paths.
pub const INVALID: u32 = 0;

/// A reference checker (host-side) used to validate generated keys.
pub fn is_valid_key(key: &[u8]) -> bool {
    key.len() == KEY_LEN as usize
        && key[0] == b'S'
        && key[1] == b'2'
        && key[2] == b'E'
        && key[3] == b'-'
        && key[4..8].iter().all(|c| c.is_ascii_digit())
        && (key[4..8].iter().map(|&c| (c - b'0') as u32).sum::<u32>()) % 7 == 3
}

/// Builds the checker guest.
pub fn program() -> Program {
    let mut a = Assembler::new(APP_BASE);

    a.label("main");
    a.movi(reg::R4, INPUT_BUF);
    // Prefix "S2E-".
    for (i, ch) in [b'S', b'2', b'E', b'-'].iter().enumerate() {
        a.ld8(reg::R5, reg::R4, i as u32);
        a.movi(reg::R6, *ch as u32);
        a.bne(reg::R5, reg::R6, "reject");
    }
    // Four digits whose sum ≡ 3 (mod 7).
    a.movi(reg::R7, 0); // digit sum
    for i in 4..8u32 {
        a.ld8(reg::R5, reg::R4, i);
        a.movi(reg::R6, b'0' as u32);
        a.bltu(reg::R5, reg::R6, "reject");
        a.movi(reg::R6, b'9' as u32 + 1);
        a.bgeu(reg::R5, reg::R6, "reject");
        a.subi(reg::R5, reg::R5, b'0' as u32);
        a.add(reg::R7, reg::R7, reg::R5);
    }
    a.movi(reg::R6, 7);
    a.remu(reg::R7, reg::R7, reg::R6);
    a.movi(reg::R6, 3);
    a.bne(reg::R7, reg::R6, "reject");
    a.halt_code(VALID);
    a.label("reject");
    a.halt_code(INVALID);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::boot;
    use s2e_core::{ConsistencyModel, Engine, EngineConfig, TerminationReason};

    fn run_key(key: &[u8]) -> u32 {
        let (mut m, _) = boot();
        m.mem.load_image(INPUT_BUF, key);
        m.load(&program());
        let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScCe));
        e.run(100_000);
        match e.terminated()[0].1 {
            TerminationReason::Halted(c) => c,
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reference_and_guest_agree() {
        let cases: [&[u8]; 5] = [
            b"S2E-1200", // 1+2+0+0 = 3 → valid
            b"S2E-0003",
            b"S2E-1111", // sum 4 → invalid
            b"X2E-1200",
            b"S2E-12a0",
        ];
        for key in cases {
            assert_eq!(
                run_key(key) == VALID,
                is_valid_key(key),
                "{}",
                String::from_utf8_lossy(key)
            );
        }
    }
}
