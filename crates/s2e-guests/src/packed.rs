//! A packed (self-decrypting) guest — the RC-CC use case (§3.1.3).
//!
//! "The RC-CC model is useful in disassembling obfuscated and/or
//! encrypted code: after letting the unit code decrypt itself under an LC
//! model (thus ensuring the correctness of decryption), a disassembler
//! can switch to the RC-CC model to reach high coverage of the decrypted
//! code."
//!
//! The guest carries an XOR-packed payload and a decryption stub. At
//! runtime the stub rewrites the payload region in place (exercising the
//! translator's self-modifying-code invalidation) and jumps into it. The
//! payload itself is branchy, so single-path execution leaves blocks
//! undisassembled — RC-CC's edge forcing recovers them.

use crate::layout::APP_BASE;
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::{reg, INSTR_SIZE};
use std::ops::Range;

/// XOR key baked into the stub.
pub const KEY: u32 = 0x5a;

/// The packed guest plus the payload's address range.
#[derive(Clone, Debug)]
pub struct PackedGuest {
    /// The program image (payload stored encrypted).
    pub program: Program,
    /// Where the decrypted payload executes.
    pub payload_range: Range<u32>,
    /// Number of instructions in the payload (disassembly ground truth).
    pub payload_instrs: usize,
}

/// Assembles the plaintext payload at its final address.
fn payload(at: u32) -> Program {
    let mut a = Assembler::new(at);
    a.label("p_entry");
    // Branch on r0: both sides must be disassembled.
    a.movi(reg::R1, 10);
    a.bltu(reg::R0, reg::R1, "p_low");
    a.movi(reg::R2, 0xbeef);
    a.jmp("p_join");
    a.label("p_low");
    a.movi(reg::R2, 0xcafe);
    a.label("p_join");
    // A second branch nested behind the first.
    a.movi(reg::R3, 0xbeef);
    a.bne(reg::R2, reg::R3, "p_alt");
    a.halt_code(1);
    a.label("p_alt");
    a.halt_code(2);
    a.finish()
}

/// Builds the packed guest. When `symbolic_key_name` is set, the stub
/// fetches the key via `S2Op::SymbolicReg` instead of an immediate —
/// decryption then *writes symbolic bytes into the code region*, and the
/// engine must concretize them (under the path constraints) before it
/// can translate the payload.
pub fn build(symbolic_key: bool) -> PackedGuest {
    // Payload is placed one page after the stub.
    let payload_at = APP_BASE + 0x1000;
    let plain = payload(payload_at);
    let encrypted: Vec<u8> = plain.image.iter().map(|b| b ^ KEY as u8).collect();
    let n = encrypted.len() as u32;

    let mut a = Assembler::new(APP_BASE);
    a.label("stub");
    if symbolic_key {
        // Key arrives as a symbolic value (r0); the caller constrains it.
        a.movi(reg::R1, 0);
        a.s2e(s2e_vm::isa::S2Op::SymbolicReg);
        a.mov(reg::R7, reg::R0);
    } else {
        a.movi(reg::R7, KEY);
    }
    a.movi(reg::R4, payload_at); // cursor
    a.movi(reg::R5, n); // remaining
    a.label("decrypt");
    a.movi(reg::R6, 0);
    a.beq(reg::R5, reg::R6, "run");
    a.ld8(reg::R6, reg::R4, 0);
    a.xor(reg::R6, reg::R6, reg::R7);
    a.st8(reg::R4, 0, reg::R6);
    a.addi(reg::R4, reg::R4, 1);
    a.subi(reg::R5, reg::R5, 1);
    a.jmp("decrypt");
    a.label("run");
    a.movi(reg::R8, payload_at);
    a.jmpr(reg::R8);
    // Encrypted payload bytes live at their execution address.
    a.align(0x1000);
    assert_eq!(a.here(), payload_at, "payload must land at its link address");
    a.bytes(&encrypted);
    let program = a.finish();
    PackedGuest {
        program,
        payload_range: payload_at..payload_at + n,
        payload_instrs: (n / INSTR_SIZE) as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::boot;
    use s2e_core::{ConsistencyModel, Engine, EngineConfig, TerminationReason};
    use s2e_expr::Width;

    #[test]
    fn stub_decrypts_and_runs_payload() {
        let g = build(false);
        let (mut m, _k) = boot();
        m.load(&g.program);
        let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScCe));
        e.run(100_000);
        // r0 = 0 initially → low branch → 0xcafe ≠ 0xbeef → exit 2.
        assert!(matches!(e.terminated()[0].1, TerminationReason::Halted(2)));
    }

    #[test]
    fn encrypted_payload_is_not_directly_executable() {
        let g = build(false);
        let (mut m, _k) = boot();
        m.load(&g.program);
        // Jump straight into the encrypted bytes: garbage.
        m.cpu.pc = g.payload_range.start;
        let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScCe));
        e.run(10_000);
        assert!(
            !matches!(e.terminated()[0].1, TerminationReason::Halted(1 | 2)),
            "encrypted code must not behave like the plaintext payload"
        );
    }

    #[test]
    fn symbolic_key_decryption_constrained_to_real_key() {
        // The paper's flow: decrypt under LC with the key symbolic but
        // constrained; the engine concretizes the symbolic code bytes
        // consistently with the constraints and execution proceeds.
        let g = build(true);
        let (mut m, _k) = boot();
        m.load(&g.program);
        let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::Lc));
        e.set_retain_terminated(true);
        // Constrain the injected key variable to the true key. The
        // variable is created by the stub's SymbolicReg at runtime, so
        // pin it by name through a plugin-free trick: run until the stub
        // created it, then add the constraint.
        let mut constrained = false;
        for _ in 0..200_000 {
            if !constrained {
                if let Some(id) = e.sole_state() {
                    let has_sym = e
                        .state(id)
                        .unwrap()
                        .machine
                        .cpu
                        .reg(s2e_vm::isa::reg::R7)
                        .is_symbolic();
                    if has_sym {
                        let b = e.builder_arc();
                        let st = e.state_mut(id).unwrap();
                        let key_expr = st
                            .machine
                            .cpu
                            .reg(s2e_vm::isa::reg::R7)
                            .to_expr(&b, Width::W32);
                        let eq = b.eq(key_expr, b.constant(KEY as u64, Width::W32));
                        st.add_constraint(eq);
                        constrained = true;
                    }
                }
            }
            if e.step().is_none() {
                break;
            }
        }
        assert!(constrained, "stub must have produced a symbolic key");
        // With the key pinned, decryption is correct and the payload
        // runs. (r0 still holds the key value 0x5a at payload entry, so
        // the payload's `r0 < 10` branch takes the high side: exit 1.)
        assert!(
            e.terminated()
                .iter()
                .any(|(_, r)| matches!(r, TerminationReason::Halted(1))),
            "payload must execute correctly: {:?}",
            e.terminated()
        );
    }
}
