//! Guest physical-memory layout conventions.

use std::ops::Range;

/// Kernel data page (heap pointer cell and scratch).
pub const KERNEL_DATA: u32 = 0x0000_1080;
/// Heap-pointer cell (holds the bump allocator's next free address).
pub const HEAP_PTR_CELL: u32 = KERNEL_DATA;
/// Kernel code.
pub const KERNEL_BASE: u32 = 0x0000_1100;
/// Application programs.
pub const APP_BASE: u32 = 0x0000_4000;
/// Driver code segment.
pub const DRIVER_BASE: u32 = 0x0002_0000;
/// Driver global data (shared between entry points and IRQ handlers;
/// the data-race detector watches this region).
pub const DRIVER_DATA: u32 = 0x0003_0000;
/// Driver data region size.
pub const DRIVER_DATA_SIZE: u32 = 0x100;
/// Test harness / exerciser programs.
pub const HARNESS_BASE: u32 = 0x0004_0000;
/// Input buffers (symbolic data is injected here).
pub const INPUT_BUF: u32 = 0x0008_0000;
/// Heap managed by the kernel's allocator.
pub const HEAP_BASE: u32 = 0x0010_0000;
/// One past the heap.
pub const HEAP_END: u32 = 0x0014_0000;

/// The heap as a range (for the memory checker).
pub fn heap_range() -> Range<u32> {
    HEAP_BASE..HEAP_END
}

/// The driver data region as a range (for the race detector).
pub fn driver_data_range() -> Range<u32> {
    DRIVER_DATA..DRIVER_DATA + DRIVER_DATA_SIZE
}

/// Well-known configuration-store ("registry") keys.
pub mod cfg_keys {
    /// NIC card type / variant selector.
    pub const CARD_TYPE: u32 = 0x10;
    /// Driver feature flags.
    pub const FLAGS: u32 = 0x11;
    /// Media/link speed selection.
    pub const MEDIA: u32 = 0x12;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let regions = [
            (KERNEL_DATA, KERNEL_BASE),
            (KERNEL_BASE, APP_BASE),
            (APP_BASE, DRIVER_BASE),
            (DRIVER_BASE, DRIVER_DATA),
            (DRIVER_DATA, HARNESS_BASE),
            (HARNESS_BASE, INPUT_BUF),
            (INPUT_BUF, HEAP_BASE),
            (HEAP_BASE, HEAP_END),
        ];
        for w in regions.windows(2) {
            assert!(w[0].1 <= w[1].0, "{w:?}");
        }
        for (lo, hi) in regions {
            assert!(lo < hi);
            assert!(lo >= 0x1000, "must stay off the null guard page");
        }
    }
}
