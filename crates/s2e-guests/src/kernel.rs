//! The guest kernel: syscall table, allocator, device services.
//!
//! Stands in for the OS layer the paper runs under its drivers (a Windows
//! kernel with the NDIS interface). The kernel is real guest code: it
//! executes inside the VM exactly like the unit under analysis, which is
//! what makes the platform's analyses *in-vivo* — environment effects are
//! produced by actually running the environment, never by a model.
//!
//! The kernel's API contracts (documented per syscall below) are what the
//! LC interface annotations in [`standard_annotations`] encode.

use crate::layout::{self, HEAP_BASE, HEAP_END, HEAP_PTR_CELL, KERNEL_BASE};
use s2e_core::analyzers::HeapConfig;
use s2e_core::selectors::concretize_reg_soft;
use s2e_core::Annotation;
use s2e_expr::Width;
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::device::{nic_cmd, ports};
use s2e_vm::isa::{reg, vector};
use s2e_vm::machine::Machine;
use s2e_vm::value::Value;

/// Syscall numbers (the kernel ABI).
pub mod sys {
    /// `alloc(size: r0) -> ptr: r0` — bump allocation; returns 0 when the
    /// heap is exhausted. Contract: result is 0 or a fresh heap pointer.
    pub const ALLOC: u32 = 1;
    /// `free(ptr: r0)` — releases an allocation (no-op in the bump
    /// allocator; tracked logically by the memory checker).
    pub const FREE: u32 = 2;
    /// `write(fd: r0, buf: r1, len: r2) -> r0` — writes to the console
    /// when `fd == 1`. Contract: returns −1 or 0..=len.
    pub const WRITE: u32 = 3;
    /// `send(buf: r0, len: r1) -> r0` — transmits a frame through the
    /// NIC. Contract: returns 0 (success) or −1.
    pub const SEND: u32 = 4;
    /// `getcfg(key: r0) -> r0` — reads a configuration-store value (the
    /// registry lookup).
    pub const GETCFG: u32 = 5;
    /// `panic(code: r0)` — unrecoverable kernel condition; never returns.
    pub const PANIC: u32 = 6;
}

/// Registers the kernel may clobber across a syscall (by ABI convention
/// guests keep nothing live in r10..r12).
pub const CLOBBERED: [u8; 3] = [reg::R10, reg::R11, reg::R12];

/// Assembles the kernel image.
pub fn kernel_program() -> Program {
    let mut a = Assembler::new(KERNEL_BASE);

    a.label("handler");
    // Dispatch on the syscall number in KR.
    let table = [
        (sys::ALLOC, "sys_alloc"),
        (sys::FREE, "sys_free"),
        (sys::WRITE, "sys_write"),
        (sys::SEND, "sys_send"),
        (sys::GETCFG, "sys_getcfg"),
        (sys::PANIC, "sys_panic"),
    ];
    for (num, label) in table {
        a.movi(reg::R11, num);
        a.beq(reg::KR, reg::R11, label);
    }
    a.iret(); // unknown syscall: ignore

    // alloc(size) -> ptr | 0
    a.label("sys_alloc");
    a.movi(reg::R11, HEAP_PTR_CELL);
    a.ld32(reg::R12, reg::R11, 0); // cur
    a.add(reg::R10, reg::R12, reg::R0); // new = cur + size
    a.addi(reg::R10, reg::R10, 3);
    a.andi(reg::R10, reg::R10, 0xffff_fffc); // align 4
    a.movi(reg::R11, HEAP_END);
    a.bgeu(reg::R10, reg::R11, "alloc_fail");
    a.movi(reg::R11, HEAP_PTR_CELL);
    a.st32(reg::R11, 0, reg::R10);
    a.mov(reg::R0, reg::R12);
    a.iret();
    a.label("alloc_fail");
    a.movi(reg::R0, 0);
    a.iret();

    // free(ptr): bump allocator — logical free only.
    a.label("sys_free");
    a.movi(reg::R0, 0);
    a.iret();

    // write(fd, buf, len) -> len
    a.label("sys_write");
    a.movi(reg::R11, 1);
    a.bne(reg::R0, reg::R11, "write_done");
    a.movi(reg::R11, 0); // i = 0
    a.label("write_loop");
    a.bgeu(reg::R11, reg::R2, "write_done");
    a.add(reg::R12, reg::R1, reg::R11);
    a.ld8(reg::R10, reg::R12, 0);
    a.movi(reg::R12, ports::CONSOLE_OUT as u32);
    a.outp(reg::R12, reg::R10);
    a.addi(reg::R11, reg::R11, 1);
    a.jmp("write_loop");
    a.label("write_done");
    a.mov(reg::R0, reg::R2);
    a.iret();

    // send(buf, len) -> 0
    a.label("sys_send");
    a.movi(reg::R11, 0); // i = 0
    a.label("send_loop");
    a.bgeu(reg::R11, reg::R1, "send_flush");
    a.add(reg::R12, reg::R0, reg::R11);
    a.ld8(reg::R10, reg::R12, 0);
    a.movi(reg::R12, ports::NIC_DATA as u32);
    a.outp(reg::R12, reg::R10);
    a.addi(reg::R11, reg::R11, 1);
    a.jmp("send_loop");
    a.label("send_flush");
    a.movi(reg::R12, ports::NIC_CMD as u32);
    a.movi(reg::R10, nic_cmd::SEND);
    a.outp(reg::R12, reg::R10);
    a.movi(reg::R0, 0);
    a.iret();

    // getcfg(key) -> value
    a.label("sys_getcfg");
    a.movi(reg::R11, ports::CFG_SELECT as u32);
    a.outp(reg::R11, reg::R0);
    a.movi(reg::R11, ports::CFG_DATA as u32);
    a.inp(reg::R0, reg::R11);
    a.iret();

    // panic(code): clear the syscall vector and re-trap — an unhandled
    // trap is the machine's "blue screen".
    a.label("sys_panic");
    a.movi(reg::R11, vector::SYSCALL);
    a.movi(reg::R12, 0);
    a.st32(reg::R11, 0, reg::R12);
    a.syscall(0xdead);

    a.finish()
}

/// Creates a machine with the kernel installed, vectors set, and the heap
/// initialized. Returns the machine and the kernel image (for symbol
/// lookups).
pub fn boot() -> (Machine, Program) {
    let k = kernel_program();
    let mut m = Machine::new();
    m.load_aux(&k);
    m.mem
        .write_u32(vector::SYSCALL, k.symbol("handler"))
        .expect("vector page mapped");
    m.mem
        .write_u32(HEAP_PTR_CELL, HEAP_BASE)
        .expect("kernel data mapped");
    (m, k)
}

/// Heap ABI description for the `MemoryChecker` analyzer.
pub fn heap_config() -> HeapConfig {
    HeapConfig {
        alloc_syscall: sys::ALLOC,
        free_syscall: sys::FREE,
        heap_range: layout::heap_range(),
    }
}

/// The kernel's LC interface annotations (paper §6.1.1: DDT+ "provides
/// the necessary kernel/driver interface annotations to implement LC").
///
/// - entry conversions concretize (softly) arguments the kernel's code
///   branches on, so symbolic unit data never reaches environment control
///   flow;
/// - return conversions re-symbolify results within each syscall's
///   documented contract.
pub fn standard_annotations() -> Vec<Annotation> {
    vec![
        // alloc: entry concretizes size; return λ ∈ {ptr, 0}.
        Annotation::on_return(sys::ALLOC, |state, ctx| {
            let Some(ptr) = state.machine.cpu.reg(reg::R0).as_concrete() else {
                return;
            };
            if ptr == 0 {
                return; // concretely failed: 0 is within the contract
            }
            let b = ctx.builder;
            let ok = b.var("alloc_ok", Width::BOOL);
            let v = b.ite(
                ok,
                b.constant(ptr as u64, Width::W32),
                b.constant(0, Width::W32),
            );
            state.machine.cpu.set_reg(reg::R0, Value::Symbolic(v));
        })
        .with_entry(|state, ctx| {
            concretize_reg_soft(state, ctx, reg::R0);
        }),
        // write: entry concretizes len; return λ ∈ {-1} ∪ [0, len].
        Annotation::on_return(sys::WRITE, |state, ctx| {
            let Some(len) = state.machine.cpu.reg(reg::R0).as_concrete() else {
                return;
            };
            let b = ctx.builder;
            let partial = b.var("write_ret", Width::W32);
            state.add_constraint(b.ule(partial.clone(), b.constant(len as u64, Width::W32)));
            let fail = b.var("write_fail", Width::BOOL);
            let v = b.ite(fail, b.constant(u32::MAX as u64, Width::W32), partial);
            state.machine.cpu.set_reg(reg::R0, Value::Symbolic(v));
        })
        .with_entry(|state, ctx| {
            concretize_reg_soft(state, ctx, reg::R2);
        }),
        // free: entry concretizes the pointer so the heap analyzers see
        // the concrete allocation being released.
        Annotation::on_entry(sys::FREE, |state, ctx| {
            concretize_reg_soft(state, ctx, reg::R0);
        }),
        // send: entry concretizes len; return λ ∈ {0, -1}.
        Annotation::on_return(sys::SEND, |state, ctx| {
            let b = ctx.builder;
            let fail = b.var("send_fail", Width::BOOL);
            let v = b.ite(
                fail,
                b.constant(u32::MAX as u64, Width::W32),
                b.constant(0, Width::W32),
            );
            state.machine.cpu.set_reg(reg::R0, Value::Symbolic(v));
        })
        .with_entry(|state, ctx| {
            concretize_reg_soft(state, ctx, reg::R1);
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::interp::{run_concrete, RunOutcome};

    fn run_user(build: impl FnOnce(&mut Assembler)) -> (Machine, RunOutcome) {
        let (mut m, _k) = boot();
        let mut a = Assembler::new(layout::APP_BASE);
        build(&mut a);
        let p = a.finish();
        m.load(&p);
        let out = run_concrete(&mut m, 1_000_000).unwrap();
        (m, out)
    }

    #[test]
    fn alloc_returns_heap_pointers() {
        let (m, out) = run_user(|a| {
            a.movi(reg::R0, 64);
            a.syscall(sys::ALLOC);
            a.mov(reg::R5, reg::R0); // first ptr
            a.movi(reg::R0, 32);
            a.syscall(sys::ALLOC);
            a.mov(reg::R6, reg::R0); // second ptr
            a.halt();
        });
        assert_eq!(out, RunOutcome::Halted(0));
        assert_eq!(m.cpu.reg(reg::R5).as_concrete(), Some(HEAP_BASE));
        assert_eq!(m.cpu.reg(reg::R6).as_concrete(), Some(HEAP_BASE + 64));
    }

    #[test]
    fn alloc_fails_when_heap_exhausted() {
        let (m, out) = run_user(|a| {
            a.movi(reg::R0, HEAP_END - HEAP_BASE + 64);
            a.syscall(sys::ALLOC);
            a.halt();
        });
        assert_eq!(out, RunOutcome::Halted(0));
        assert_eq!(m.cpu.reg(reg::R0).as_concrete(), Some(0));
    }

    #[test]
    fn write_echoes_to_console() {
        let (m, out) = run_user(|a| {
            a.movi(reg::R1, layout::INPUT_BUF);
            a.movi(reg::R2, b'h' as u32);
            a.st8(reg::R1, 0, reg::R2);
            a.movi(reg::R2, b'i' as u32);
            a.st8(reg::R1, 1, reg::R2);
            a.movi(reg::R0, 1); // fd = stdout
            a.movi(reg::R2, 2); // len
            a.syscall(sys::WRITE);
            a.halt();
        });
        assert_eq!(out, RunOutcome::Halted(0));
        assert_eq!(m.devices.console().unwrap().output_string(), "hi");
        assert_eq!(m.cpu.reg(reg::R0).as_concrete(), Some(2));
    }

    #[test]
    fn write_to_other_fd_is_silent() {
        let (m, _) = run_user(|a| {
            a.movi(reg::R0, 3);
            a.movi(reg::R1, layout::INPUT_BUF);
            a.movi(reg::R2, 4);
            a.syscall(sys::WRITE);
            a.halt();
        });
        assert!(m.devices.console().unwrap().output().is_empty());
    }

    #[test]
    fn send_transmits_frame() {
        let (m, out) = run_user(|a| {
            a.movi(reg::R5, layout::INPUT_BUF);
            for (i, b) in [0xaau32, 0xbb, 0xcc].iter().enumerate() {
                a.movi(reg::R6, *b);
                a.st8(reg::R5, i as u32, reg::R6);
            }
            a.movi(reg::R0, layout::INPUT_BUF);
            a.movi(reg::R1, 3);
            a.syscall(sys::SEND);
            a.halt();
        });
        assert_eq!(out, RunOutcome::Halted(0));
        let frames = m.devices.nic().unwrap().sent_frames();
        assert_eq!(frames.len(), 1);
        let bytes: Vec<u32> = frames[0].iter().map(|v| v.as_concrete().unwrap()).collect();
        assert_eq!(bytes, vec![0xaa, 0xbb, 0xcc]);
    }

    #[test]
    fn getcfg_reads_registry() {
        let (mut m, k) = boot();
        m.devices
            .config_mut()
            .unwrap()
            .set(layout::cfg_keys::CARD_TYPE, Value::Concrete(3));
        let mut a = Assembler::new(layout::APP_BASE);
        a.movi(reg::R0, layout::cfg_keys::CARD_TYPE);
        a.syscall(sys::GETCFG);
        a.halt();
        let p = a.finish();
        m.load(&p);
        let _ = k;
        let out = run_concrete(&mut m, 100_000).unwrap();
        assert_eq!(out, RunOutcome::Halted(0));
        assert_eq!(m.cpu.reg(reg::R0).as_concrete(), Some(3));
    }

    #[test]
    fn panic_bluescreens() {
        let (_, out) = run_user(|a| {
            a.movi(reg::R0, 0x7777);
            a.syscall(sys::PANIC);
            a.halt(); // unreachable
        });
        assert!(matches!(
            out,
            RunOutcome::Faulted(s2e_vm::cpu::FaultKind::KernelPanic { .. })
        ));
    }

    #[test]
    fn unknown_syscall_is_ignored() {
        let (m, out) = run_user(|a| {
            a.movi(reg::R5, 77);
            a.syscall(999);
            a.halt();
        });
        assert_eq!(out, RunOutcome::Halted(0));
        assert_eq!(m.cpu.reg(reg::R5).as_concrete(), Some(77));
    }

    #[test]
    fn annotations_cover_contracted_syscalls() {
        let anns = standard_annotations();
        let nums: Vec<u32> = anns.iter().map(|a| a.syscall).collect();
        assert!(nums.contains(&sys::ALLOC));
        assert!(nums.contains(&sys::FREE));
        assert!(nums.contains(&sys::WRITE));
        assert!(nums.contains(&sys::SEND));
        for a in &anns {
            assert!(a.on_return.is_some() || a.on_entry.is_some());
        }
    }

    #[test]
    fn heap_config_matches_layout() {
        let hc = heap_config();
        assert_eq!(hc.alloc_syscall, sys::ALLOC);
        assert_eq!(hc.heap_range, HEAP_BASE..HEAP_END);
    }
}
