//! Synthetic NIC drivers: the kernel-mode units under analysis.
//!
//! Four drivers mirror the paper's targets (§6.1, §6.3): AMD PCnet and
//! RTL8029 carry the seven injected bugs DDT+ must find — two reachable
//! under SC-SE (symbolic hardware only) and five more requiring LC's
//! symbolic registry/arguments — while SMC 91C111 and RTL8139 are clean
//! and exist for the coverage/consistency experiments.
//!
//! Every driver follows the same binary interface:
//!
//! - entry points `init`, `send(buf, len)`, `receive`, `query_info(id)`,
//!   `set_info(id, value)`, `unload`, called with the standard register
//!   convention and returning via `Ret`;
//! - an interrupt handler installed at the NIC vector by `init`;
//! - globals in the [`crate::layout::DRIVER_DATA`] region.

pub mod pcnet;
pub mod rtl8029;
pub mod rtl8139;
pub mod smc91c111;

use crate::layout::{DRIVER_BASE, DRIVER_DATA, HARNESS_BASE, INPUT_BUF};
use s2e_dbt::cfg::{build_cfg, StaticCfg};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::{reg, S2Op};
use std::collections::HashMap;
use std::ops::Range;

/// Driver global-data offsets (relative to [`DRIVER_DATA`]).
pub mod data {
    /// Packets received (shared with the IRQ handler — race detector
    /// target).
    pub const RX_COUNT: u32 = 0x00;
    /// Packets transmitted.
    pub const TX_COUNT: u32 = 0x04;
    /// Receive-buffer pointer (heap allocation).
    pub const BUF_PTR: u32 = 0x08;
    /// Card type read from the registry.
    pub const CARD_TYPE: u32 = 0x0c;
    /// Feature flags read from the registry.
    pub const FLAGS: u32 = 0x10;
    /// Interrupts serviced.
    pub const IRQ_COUNT: u32 = 0x14;
    /// Negotiated media speed.
    pub const MEDIA: u32 = 0x18;
}

/// The standard entry-point names, in exercise order.
pub const ENTRY_ORDER: [&str; 6] = ["init", "send", "receive", "query_info", "set_info", "unload"];

/// A built driver image plus its interface metadata.
#[derive(Clone, Debug)]
pub struct Driver {
    /// Driver name (matches the paper's target list).
    pub name: &'static str,
    /// The code image.
    pub program: Program,
    /// Entry-point addresses by name (includes `irq`).
    pub entries: HashMap<&'static str, u32>,
    /// Code range (the symbolic domain for driver analyses).
    pub code_range: Range<u32>,
    /// Receive-buffer size the driver allocates (bug-relevant).
    pub rx_buf_size: u32,
}

impl Driver {
    pub(crate) fn from_program(name: &'static str, program: Program, rx_buf_size: u32) -> Driver {
        let mut entries = HashMap::new();
        for e in ENTRY_ORDER {
            entries.insert(e, program.symbol(e));
        }
        entries.insert("irq", program.symbol("irq"));
        let code_range = program.base..program.end();
        Driver {
            name,
            program,
            entries,
            code_range,
            rx_buf_size,
        }
    }

    /// Address of an entry point.
    ///
    /// # Panics
    ///
    /// Panics on unknown names (driver-construction bug).
    pub fn entry(&self, name: &str) -> u32 {
        *self
            .entries
            .get(name)
            .unwrap_or_else(|| panic!("no entry point {name:?} in {}", self.name))
    }

    /// Static CFG over the driver, rooted at every entry point — the
    /// ground truth for basic-block coverage percentages.
    pub fn static_cfg(&self) -> StaticCfg {
        let roots: Vec<u32> = ENTRY_ORDER
            .iter()
            .map(|e| self.entry(e))
            .chain([self.entry("irq")])
            .collect();
        build_cfg(&self.program, &roots)
    }

    /// Total statically-reachable basic blocks.
    pub fn total_blocks(&self) -> usize {
        self.static_cfg().block_count()
    }
}

/// All four drivers.
pub fn all_drivers() -> Vec<Driver> {
    vec![
        pcnet::build(),
        rtl8029::build(),
        smc91c111::build(),
        rtl8139::build(),
    ]
}

/// Builds the exercise harness for a driver: calls every entry point in
/// order, supplying symbolic arguments when `symbolic_args` is set (the
/// DDT+/LC configuration) or fixed concrete defaults (the SC
/// configurations, where the only symbolic input is hardware).
pub fn build_exerciser(driver: &Driver, symbolic_args: bool) -> Program {
    let mut a = Assembler::new(HARNESS_BASE);
    let call = |a: &mut Assembler, target: u32| {
        a.movi(reg::R5, target);
        a.callr(reg::R5);
    };

    // init; then enable interrupts for the rest of the exercise.
    call(&mut a, driver.entry("init"));
    a.sti();

    // send(buf = INPUT_BUF, len = 16): the buffer *contents* are symbolic
    // under the relaxed models, but the length stays concrete — an
    // unconstrained symbolic length would make every loop in the stack
    // unbounded, which helps no analysis (the paper's tools inject
    // "suitably constrained" values at interfaces).
    if symbolic_args {
        a.movi(reg::R0, INPUT_BUF);
        a.movi(reg::R1, 16);
        a.s2e(S2Op::SymbolicMem);
    }
    a.movi(reg::R0, INPUT_BUF);
    a.movi(reg::R1, 16);
    call(&mut a, driver.entry("send"));

    // receive()
    call(&mut a, driver.entry("receive"));

    // query_info(id)
    if symbolic_args {
        a.movi(reg::R1, 0); // anonymous symbol name
        a.s2e(S2Op::SymbolicReg);
    } else {
        a.movi(reg::R0, 1);
    }
    call(&mut a, driver.entry("query_info"));

    // set_info(id, value)
    if symbolic_args {
        a.movi(reg::R1, 0);
        a.s2e(S2Op::SymbolicReg);
        a.mov(reg::R6, reg::R0); // id
        a.movi(reg::R1, 0);
        a.s2e(S2Op::SymbolicReg);
        a.mov(reg::R1, reg::R0); // value
        a.mov(reg::R0, reg::R6);
    } else {
        a.movi(reg::R0, 1);
        a.movi(reg::R1, 0);
    }
    call(&mut a, driver.entry("set_info"));

    // unload()
    call(&mut a, driver.entry("unload"));
    a.halt_code(0);
    a.finish()
}

/// Shared fragment: read a registry key into `r0` (clobbers the syscall
/// scratch registers).
pub(crate) fn emit_getcfg(a: &mut Assembler, key: u32) {
    a.movi(reg::R0, key);
    a.syscall(crate::kernel::sys::GETCFG);
}

/// Shared fragment: the standard interrupt handler — acknowledge the NIC,
/// bump `RX_COUNT` and `IRQ_COUNT`. Registers are preserved.
pub(crate) fn emit_irq_handler(a: &mut Assembler) {
    use s2e_vm::device::{nic_cmd, ports};
    a.label("irq");
    a.push(reg::R5);
    a.push(reg::R6);
    a.movi(reg::R5, ports::NIC_CMD as u32);
    a.movi(reg::R6, nic_cmd::ACK_IRQ);
    a.outp(reg::R5, reg::R6);
    a.movi(reg::R5, DRIVER_DATA);
    a.ld32(reg::R6, reg::R5, data::RX_COUNT);
    a.addi(reg::R6, reg::R6, 1);
    a.st32(reg::R5, data::RX_COUNT, reg::R6);
    a.ld32(reg::R6, reg::R5, data::IRQ_COUNT);
    a.addi(reg::R6, reg::R6, 1);
    a.st32(reg::R5, data::IRQ_COUNT, reg::R6);
    a.pop(reg::R6);
    a.pop(reg::R5);
    a.iret();
}

/// Shared fragment: install the `irq` label at the NIC vector, reset and
/// enable the NIC.
pub(crate) fn emit_nic_bringup(a: &mut Assembler) {
    use s2e_vm::device::{nic_cmd, ports};
    use s2e_vm::isa::vector;
    a.movi_label(reg::R6, "irq");
    a.movi(reg::R7, vector::NIC);
    a.st32(reg::R7, 0, reg::R6);
    a.movi(reg::R6, ports::NIC_CMD as u32);
    a.movi(reg::R7, nic_cmd::RESET);
    a.outp(reg::R6, reg::R7);
    a.movi(reg::R7, nic_cmd::ENABLE);
    a.outp(reg::R6, reg::R7);
}

/// Shared fragment: a card-type dispatch ladder with `n` variants, each
/// setting MEDIA to a distinct speed (coverage-relevant branching that
/// depends on the registry).
pub(crate) fn emit_card_type_dispatch(a: &mut Assembler, n: u32, speeds: &[u32]) {
    // Expects the card type in r5 and DRIVER_DATA in r4.
    for k in 0..n {
        a.movi(reg::R6, k);
        a.beq(reg::R5, reg::R6, &format!("ct{k}"));
    }
    a.movi(reg::R7, 0);
    a.st32(reg::R4, data::MEDIA, reg::R7);
    a.jmp("ct_done");
    for k in 0..n {
        a.label(&format!("ct{k}"));
        a.movi(reg::R7, speeds[k as usize % speeds.len()]);
        a.st32(reg::R4, data::MEDIA, reg::R7);
        a.jmp("ct_done");
    }
    a.label("ct_done");
}

/// Creates the assembler positioned at the driver code base.
pub(crate) fn driver_asm() -> Assembler {
    Assembler::new(DRIVER_BASE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_drivers_build_with_entries() {
        for d in all_drivers() {
            for e in ENTRY_ORDER {
                assert!(d.entries.contains_key(e), "{}: missing {e}", d.name);
                assert!(d.code_range.contains(&d.entry(e)));
            }
            assert!(d.entries.contains_key("irq"));
            assert!(d.total_blocks() > 10, "{} too small", d.name);
        }
    }

    #[test]
    fn drivers_have_distinct_sizes() {
        let sizes: Vec<usize> = all_drivers().iter().map(|d| d.total_blocks()).collect();
        // The coverage experiments need structural variety.
        let mut uniq = sizes.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() >= 3, "driver sizes too uniform: {sizes:?}");
    }

    #[test]
    fn exerciser_builds_for_both_modes() {
        let d = pcnet::build();
        let conc = build_exerciser(&d, false);
        let sym = build_exerciser(&d, true);
        assert!(sym.image.len() > conc.image.len());
        assert_eq!(conc.base, HARNESS_BASE);
    }
}
