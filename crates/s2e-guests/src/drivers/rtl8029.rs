//! The RTL8029 driver analog — carries three of the seven injected bugs.
//!
//! | Bug | Where | Trigger | Found under |
//! |-----|-------|---------|-------------|
//! | B5 heap overflow | `receive` | hardware RX length copied without clamping into a 32-byte buffer | SC-SE (symbolic hardware) |
//! | B6 double free | `query_info(4)` | registry card type 7 takes a "deep reset" path that frees the RX buffer twice | LC (symbolic registry) |
//! | B7 kernel panic | `set_info(2, 0xBAD)` | an unvalidated value is forwarded into a kernel panic | LC (symbolic arguments) |

use super::{data, emit_card_type_dispatch, emit_getcfg, emit_irq_handler, emit_nic_bringup};
use crate::kernel::sys;
use crate::layout::{cfg_keys, DRIVER_DATA};
use s2e_vm::device::ports;
use s2e_vm::isa::reg;

/// Receive-buffer size allocated by `init` (small, so the overflow is a
/// shallow path).
pub const RX_BUF_SIZE: u32 = 32;

/// Builds the driver image.
pub fn build() -> super::Driver {
    let mut a = super::driver_asm();

    // ---- init --------------------------------------------------------
    a.label("init");
    a.movi(reg::R4, DRIVER_DATA);
    emit_getcfg(&mut a, cfg_keys::CARD_TYPE);
    a.movi(reg::R4, DRIVER_DATA);
    a.st32(reg::R4, data::CARD_TYPE, reg::R0);
    a.mov(reg::R5, reg::R0);
    emit_card_type_dispatch(&mut a, 3, &[10, 100, 100]);
    // Allocate the receive buffer WITH a proper failure check.
    a.movi(reg::R0, RX_BUF_SIZE);
    a.syscall(sys::ALLOC);
    a.movi(reg::R4, DRIVER_DATA);
    a.st32(reg::R4, data::BUF_PTR, reg::R0);
    a.movi(reg::R5, 0);
    a.bne(reg::R0, reg::R5, "init_hw");
    a.movi(reg::R0, 0xffff_ffff); // alloc failed: report and bail
    a.ret();
    a.label("init_hw");
    emit_nic_bringup(&mut a);
    a.movi(reg::R0, 0);
    a.ret();

    // ---- send(buf: r0, len: r1) ---------------------------------------
    a.label("send");
    a.movi(reg::R4, DRIVER_DATA);
    // Forward straight to the kernel (no shadow buffer in this driver).
    a.syscall(sys::SEND);
    a.movi(reg::R4, DRIVER_DATA);
    a.cli();
    a.ld32(reg::R5, reg::R4, data::TX_COUNT);
    a.addi(reg::R5, reg::R5, 1);
    a.st32(reg::R4, data::TX_COUNT, reg::R5);
    a.sti();
    a.movi(reg::R0, 0);
    a.ret();

    // ---- receive() ----------------------------------------------------
    a.label("receive");
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R6, ports::NIC_RXLEN as u32);
    a.inp(reg::R5, reg::R6);
    // B5: NO clamp — the hardware-reported length is trusted, and the
    // copy below overruns the 32-byte heap buffer for lengths > 32.
    a.ld32(reg::R8, reg::R4, data::BUF_PTR);
    a.movi(reg::R7, 0);
    a.label("rx_loop");
    a.bgeu(reg::R7, reg::R5, "rx_done");
    a.movi(reg::R6, ports::NIC_DATA as u32);
    a.inp(reg::R6, reg::R6);
    a.add(reg::R3, reg::R8, reg::R7);
    a.st8(reg::R3, 0, reg::R6);
    a.addi(reg::R7, reg::R7, 1);
    a.jmp("rx_loop");
    a.label("rx_done");
    a.cli();
    a.ld32(reg::R5, reg::R4, data::RX_COUNT);
    a.addi(reg::R5, reg::R5, 1);
    a.st32(reg::R4, data::RX_COUNT, reg::R5);
    a.sti();
    a.movi(reg::R0, 0);
    a.ret();

    // ---- query_info(id: r0) -> r0 --------------------------------------
    a.label("query_info");
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R6, 1);
    a.beq(reg::R0, reg::R6, "qi_tx");
    a.movi(reg::R6, 2);
    a.beq(reg::R0, reg::R6, "qi_rx");
    a.movi(reg::R6, 4);
    a.beq(reg::R0, reg::R6, "qi_vendor");
    a.movi(reg::R0, 0);
    a.ret();
    a.label("qi_tx");
    a.ld32(reg::R0, reg::R4, data::TX_COUNT);
    a.ret();
    a.label("qi_rx");
    a.ld32(reg::R0, reg::R4, data::RX_COUNT);
    a.ret();
    // Vendor-specific query: card type 7 triggers a "deep reset" that
    // releases and reallocates the RX ring... except the legacy path
    // frees it twice (B6).
    a.label("qi_vendor");
    a.ld32(reg::R5, reg::R4, data::CARD_TYPE);
    a.movi(reg::R6, 7);
    a.bne(reg::R5, reg::R6, "qi_vendor_plain");
    a.ld32(reg::R7, reg::R4, data::BUF_PTR);
    a.mov(reg::R0, reg::R7);
    a.syscall(sys::FREE);
    a.mov(reg::R0, reg::R7);
    a.syscall(sys::FREE); // B6: double free
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R5, 0);
    a.st32(reg::R4, data::BUF_PTR, reg::R5);
    a.movi(reg::R0, 1);
    a.ret();
    a.label("qi_vendor_plain");
    a.ld32(reg::R0, reg::R4, data::CARD_TYPE);
    a.ret();

    // ---- set_info(id: r0, value: r1) ------------------------------------
    a.label("set_info");
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R6, 1);
    a.beq(reg::R0, reg::R6, "si_flags");
    a.movi(reg::R6, 2);
    a.beq(reg::R0, reg::R6, "si_power");
    a.movi(reg::R0, 0xffff_ffff);
    a.ret();
    a.label("si_flags");
    a.st32(reg::R4, data::FLAGS, reg::R1);
    a.movi(reg::R0, 0);
    a.ret();
    // Power-management command: the magic teardown value is forwarded to
    // the kernel unvalidated (B7).
    a.label("si_power");
    a.movi(reg::R6, 0xBAD);
    a.bne(reg::R1, reg::R6, "si_power_ok");
    a.mov(reg::R0, reg::R1);
    a.syscall(sys::PANIC); // B7: guest bluescreen
    a.label("si_power_ok");
    a.st32(reg::R4, data::MEDIA, reg::R1);
    a.movi(reg::R0, 0);
    a.ret();

    // ---- unload() -------------------------------------------------------
    a.label("unload");
    a.movi(reg::R4, DRIVER_DATA);
    a.ld32(reg::R0, reg::R4, data::BUF_PTR);
    a.movi(reg::R5, 0);
    a.beq(reg::R0, reg::R5, "ul_done");
    a.syscall(sys::FREE);
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R5, 0);
    a.st32(reg::R4, data::BUF_PTR, reg::R5);
    a.label("ul_done");
    a.movi(reg::R5, s2e_vm::isa::vector::NIC);
    a.movi(reg::R6, 0);
    a.st32(reg::R5, 0, reg::R6);
    a.movi(reg::R0, 0);
    a.ret();

    emit_irq_handler(&mut a);

    super::Driver::from_program("rtl8029", a.finish(), RX_BUF_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_exposes_interface() {
        let d = build();
        assert_eq!(d.name, "rtl8029");
        assert!(d.total_blocks() > 15);
    }
}
