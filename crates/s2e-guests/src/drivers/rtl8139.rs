//! The RTL8139 driver analog — bug-free, mid-sized.
//!
//! Distinguishing features: a software frame checksum computed in `send`
//! and a two-variant card dispatch, giving it a different coverage
//! profile from the other three drivers.

use super::{data, emit_card_type_dispatch, emit_getcfg, emit_irq_handler, emit_nic_bringup};
use crate::kernel::sys;
use crate::layout::{cfg_keys, DRIVER_DATA};
use s2e_vm::device::ports;
use s2e_vm::isa::reg;

/// Receive-buffer size.
pub const RX_BUF_SIZE: u32 = 96;

/// Builds the driver image.
pub fn build() -> super::Driver {
    let mut a = super::driver_asm();

    // ---- init --------------------------------------------------------
    a.label("init");
    a.movi(reg::R4, DRIVER_DATA);
    emit_getcfg(&mut a, cfg_keys::CARD_TYPE);
    a.movi(reg::R4, DRIVER_DATA);
    a.st32(reg::R4, data::CARD_TYPE, reg::R0);
    a.mov(reg::R5, reg::R0);
    emit_card_type_dispatch(&mut a, 2, &[100, 100]);
    a.movi(reg::R0, RX_BUF_SIZE);
    a.syscall(sys::ALLOC);
    a.movi(reg::R4, DRIVER_DATA);
    a.st32(reg::R4, data::BUF_PTR, reg::R0);
    a.movi(reg::R5, 0);
    a.bne(reg::R0, reg::R5, "init_hw");
    a.movi(reg::R0, 0xffff_ffff);
    a.ret();
    a.label("init_hw");
    emit_nic_bringup(&mut a);
    a.movi(reg::R0, 0);
    a.ret();

    // ---- send(buf: r0, len: r1) ---------------------------------------
    a.label("send");
    a.movi(reg::R4, DRIVER_DATA);
    a.mov(reg::R8, reg::R0);
    a.mov(reg::R9, reg::R1);
    // Software checksum over the frame.
    a.movi(reg::R7, 0); // sum
    a.movi(reg::R5, 0); // i
    a.label("ck_loop");
    a.bgeu(reg::R5, reg::R9, "ck_done");
    a.add(reg::R6, reg::R8, reg::R5);
    a.ld8(reg::R6, reg::R6, 0);
    a.add(reg::R7, reg::R7, reg::R6);
    a.addi(reg::R5, reg::R5, 1);
    a.jmp("ck_loop");
    a.label("ck_done");
    a.andi(reg::R7, reg::R7, 0xff);
    // Append the checksum byte after the frame.
    a.add(reg::R6, reg::R8, reg::R9);
    a.st8(reg::R6, 0, reg::R7);
    a.mov(reg::R0, reg::R8);
    a.addi(reg::R1, reg::R9, 1);
    a.syscall(sys::SEND);
    a.movi(reg::R4, DRIVER_DATA);
    a.cli();
    a.ld32(reg::R5, reg::R4, data::TX_COUNT);
    a.addi(reg::R5, reg::R5, 1);
    a.st32(reg::R4, data::TX_COUNT, reg::R5);
    a.sti();
    a.movi(reg::R0, 0);
    a.ret();

    // ---- receive() ----------------------------------------------------
    a.label("receive");
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R6, ports::NIC_RXLEN as u32);
    a.inp(reg::R5, reg::R6);
    a.movi(reg::R6, RX_BUF_SIZE);
    a.bltu(reg::R5, reg::R6, "rx_clamped");
    a.movi(reg::R5, RX_BUF_SIZE);
    a.label("rx_clamped");
    a.ld32(reg::R8, reg::R4, data::BUF_PTR);
    a.movi(reg::R7, 0);
    a.label("rx_loop");
    a.bgeu(reg::R7, reg::R5, "rx_done");
    a.movi(reg::R6, ports::NIC_DATA as u32);
    a.inp(reg::R6, reg::R6);
    a.add(reg::R3, reg::R8, reg::R7);
    a.st8(reg::R3, 0, reg::R6);
    a.addi(reg::R7, reg::R7, 1);
    a.jmp("rx_loop");
    a.label("rx_done");
    a.cli();
    a.ld32(reg::R5, reg::R4, data::RX_COUNT);
    a.addi(reg::R5, reg::R5, 1);
    a.st32(reg::R4, data::RX_COUNT, reg::R5);
    a.sti();
    a.movi(reg::R0, 0);
    a.ret();

    // ---- query_info(id: r0) -> r0 --------------------------------------
    a.label("query_info");
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R6, 1);
    a.beq(reg::R0, reg::R6, "qi_tx");
    a.movi(reg::R6, 2);
    a.beq(reg::R0, reg::R6, "qi_rx");
    a.movi(reg::R0, 0);
    a.ret();
    a.label("qi_tx");
    a.ld32(reg::R0, reg::R4, data::TX_COUNT);
    a.ret();
    a.label("qi_rx");
    a.ld32(reg::R0, reg::R4, data::RX_COUNT);
    a.ret();

    // ---- set_info(id: r0, value: r1) ------------------------------------
    a.label("set_info");
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R6, 1);
    a.beq(reg::R0, reg::R6, "si_flags");
    a.movi(reg::R0, 0xffff_ffff);
    a.ret();
    a.label("si_flags");
    a.st32(reg::R4, data::FLAGS, reg::R1);
    a.movi(reg::R0, 0);
    a.ret();

    // ---- unload() -------------------------------------------------------
    a.label("unload");
    a.movi(reg::R4, DRIVER_DATA);
    a.ld32(reg::R0, reg::R4, data::BUF_PTR);
    a.movi(reg::R5, 0);
    a.beq(reg::R0, reg::R5, "ul_done");
    a.syscall(sys::FREE);
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R5, 0);
    a.st32(reg::R4, data::BUF_PTR, reg::R5);
    a.label("ul_done");
    a.movi(reg::R5, s2e_vm::isa::vector::NIC);
    a.movi(reg::R6, 0);
    a.st32(reg::R5, 0, reg::R6);
    a.movi(reg::R0, 0);
    a.ret();

    emit_irq_handler(&mut a);

    super::Driver::from_program("rtl8139", a.finish(), RX_BUF_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_exposes_interface() {
        let d = build();
        assert_eq!(d.name, "rtl8139");
        assert!(d.total_blocks() > 15);
    }
}
