//! The SMC 91C111 driver analog — bug-free, structurally rich.
//!
//! Exists for the coverage and consistency-model experiments (Tables 5–6,
//! Figs 6–8): six card variants, PHY auto-negotiation, a wide
//! `query_info` surface. Its registry-dependent breadth is what makes the
//! coverage gap between strict and relaxed models visible.

use super::{data, emit_card_type_dispatch, emit_getcfg, emit_irq_handler, emit_nic_bringup};
use crate::kernel::sys;
use crate::layout::{cfg_keys, DRIVER_DATA};
use s2e_vm::device::ports;
use s2e_vm::isa::reg;

/// Receive-buffer size.
pub const RX_BUF_SIZE: u32 = 64;

/// Builds the driver image.
pub fn build() -> super::Driver {
    let mut a = super::driver_asm();

    // ---- init --------------------------------------------------------
    a.label("init");
    a.movi(reg::R4, DRIVER_DATA);
    emit_getcfg(&mut a, cfg_keys::CARD_TYPE);
    a.movi(reg::R4, DRIVER_DATA);
    a.st32(reg::R4, data::CARD_TYPE, reg::R0);
    a.mov(reg::R5, reg::R0);
    emit_card_type_dispatch(&mut a, 6, &[10, 100, 1000, 10, 100, 1000]);
    // Media override from the registry.
    emit_getcfg(&mut a, cfg_keys::MEDIA);
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R5, 0);
    a.beq(reg::R0, reg::R5, "no_media_override");
    a.st32(reg::R4, data::MEDIA, reg::R0);
    a.label("no_media_override");
    // PHY auto-negotiation: poll link-up a bounded number of times.
    a.movi(reg::R7, 0); // tries
    a.label("phy_poll");
    a.movi(reg::R6, ports::NIC_STATUS as u32);
    a.inp(reg::R5, reg::R6);
    a.andi(reg::R5, reg::R5, s2e_vm::device::nic_status::LINK_UP);
    a.movi(reg::R6, 0);
    a.bne(reg::R5, reg::R6, "phy_up");
    a.addi(reg::R7, reg::R7, 1);
    a.movi(reg::R6, 8);
    a.bltu(reg::R7, reg::R6, "phy_poll");
    // Link never came up: record half-duplex fallback.
    a.movi(reg::R5, 1);
    a.st32(reg::R4, data::FLAGS, reg::R5);
    a.jmp("phy_done");
    a.label("phy_up");
    a.movi(reg::R5, 2);
    a.st32(reg::R4, data::FLAGS, reg::R5);
    a.label("phy_done");
    // Receive buffer, checked.
    a.movi(reg::R0, RX_BUF_SIZE);
    a.syscall(sys::ALLOC);
    a.movi(reg::R4, DRIVER_DATA);
    a.st32(reg::R4, data::BUF_PTR, reg::R0);
    a.movi(reg::R5, 0);
    a.bne(reg::R0, reg::R5, "init_hw");
    a.movi(reg::R0, 0xffff_ffff);
    a.ret();
    a.label("init_hw");
    emit_nic_bringup(&mut a);
    a.movi(reg::R0, 0);
    a.ret();

    // ---- send(buf: r0, len: r1) ---------------------------------------
    a.label("send");
    a.movi(reg::R4, DRIVER_DATA);
    a.mov(reg::R8, reg::R0);
    a.mov(reg::R9, reg::R1);
    // Frames over 64 bytes are split into two transmissions.
    a.movi(reg::R6, 64);
    a.bgeu(reg::R9, reg::R6, "send_split");
    a.mov(reg::R0, reg::R8);
    a.mov(reg::R1, reg::R9);
    a.syscall(sys::SEND);
    a.jmp("send_count");
    a.label("send_split");
    a.mov(reg::R0, reg::R8);
    a.movi(reg::R1, 64);
    a.syscall(sys::SEND);
    a.movi(reg::R4, DRIVER_DATA);
    a.addi(reg::R0, reg::R8, 64);
    a.subi(reg::R1, reg::R9, 64);
    a.syscall(sys::SEND);
    a.label("send_count");
    a.movi(reg::R4, DRIVER_DATA);
    a.cli();
    a.ld32(reg::R5, reg::R4, data::TX_COUNT);
    a.addi(reg::R5, reg::R5, 1);
    a.st32(reg::R4, data::TX_COUNT, reg::R5);
    a.sti();
    a.movi(reg::R0, 0);
    a.ret();

    // ---- receive() ----------------------------------------------------
    a.label("receive");
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R6, ports::NIC_RXLEN as u32);
    a.inp(reg::R5, reg::R6);
    a.movi(reg::R6, RX_BUF_SIZE);
    a.bltu(reg::R5, reg::R6, "rx_clamped");
    a.movi(reg::R5, RX_BUF_SIZE);
    a.label("rx_clamped");
    a.ld32(reg::R8, reg::R4, data::BUF_PTR);
    a.movi(reg::R7, 0);
    a.label("rx_loop");
    a.bgeu(reg::R7, reg::R5, "rx_done");
    a.movi(reg::R6, ports::NIC_DATA as u32);
    a.inp(reg::R6, reg::R6);
    a.add(reg::R3, reg::R8, reg::R7);
    a.st8(reg::R3, 0, reg::R6);
    a.addi(reg::R7, reg::R7, 1);
    a.jmp("rx_loop");
    a.label("rx_done");
    a.cli();
    a.ld32(reg::R5, reg::R4, data::RX_COUNT);
    a.addi(reg::R5, reg::R5, 1);
    a.st32(reg::R4, data::RX_COUNT, reg::R5);
    a.sti();
    a.movi(reg::R0, 0);
    a.ret();

    // ---- query_info(id: r0) -> r0 --------------------------------------
    a.label("query_info");
    a.movi(reg::R4, DRIVER_DATA);
    for (id, label) in [(1u32, "qi_tx"), (2, "qi_rx"), (3, "qi_media"), (4, "qi_flags"), (5, "qi_irqs")]
    {
        a.movi(reg::R6, id);
        a.beq(reg::R0, reg::R6, label);
    }
    a.movi(reg::R0, 0);
    a.ret();
    a.label("qi_tx");
    a.ld32(reg::R0, reg::R4, data::TX_COUNT);
    a.ret();
    a.label("qi_rx");
    a.ld32(reg::R0, reg::R4, data::RX_COUNT);
    a.ret();
    a.label("qi_media");
    a.ld32(reg::R0, reg::R4, data::MEDIA);
    a.ret();
    a.label("qi_flags");
    a.ld32(reg::R0, reg::R4, data::FLAGS);
    a.ret();
    a.label("qi_irqs");
    a.ld32(reg::R0, reg::R4, data::IRQ_COUNT);
    a.ret();

    // ---- set_info(id: r0, value: r1) ------------------------------------
    a.label("set_info");
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R6, 1);
    a.beq(reg::R0, reg::R6, "si_flags");
    a.movi(reg::R6, 2);
    a.beq(reg::R0, reg::R6, "si_media");
    a.movi(reg::R6, 3);
    a.beq(reg::R0, reg::R6, "si_promisc");
    a.movi(reg::R0, 0xffff_ffff);
    a.ret();
    a.label("si_flags");
    a.st32(reg::R4, data::FLAGS, reg::R1);
    a.movi(reg::R0, 0);
    a.ret();
    a.label("si_media");
    // Validate the requested speed.
    for (v, label) in [(10u32, "media_ok"), (100, "media_ok"), (1000, "media_ok")] {
        a.movi(reg::R6, v);
        a.beq(reg::R1, reg::R6, label);
    }
    a.movi(reg::R0, 0xffff_ffff);
    a.ret();
    a.label("media_ok");
    a.st32(reg::R4, data::MEDIA, reg::R1);
    a.movi(reg::R0, 0);
    a.ret();
    a.label("si_promisc");
    a.ld32(reg::R5, reg::R4, data::FLAGS);
    a.ori(reg::R5, reg::R5, 4);
    a.st32(reg::R4, data::FLAGS, reg::R5);
    a.movi(reg::R0, 0);
    a.ret();

    // ---- unload() -------------------------------------------------------
    a.label("unload");
    a.movi(reg::R4, DRIVER_DATA);
    a.ld32(reg::R0, reg::R4, data::BUF_PTR);
    a.movi(reg::R5, 0);
    a.beq(reg::R0, reg::R5, "ul_done");
    a.syscall(sys::FREE);
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R5, 0);
    a.st32(reg::R4, data::BUF_PTR, reg::R5);
    a.label("ul_done");
    a.movi(reg::R5, s2e_vm::isa::vector::NIC);
    a.movi(reg::R6, 0);
    a.st32(reg::R5, 0, reg::R6);
    a.movi(reg::R0, 0);
    a.ret();

    emit_irq_handler(&mut a);

    super::Driver::from_program("91c111", a.finish(), RX_BUF_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_is_large() {
        let d = build();
        assert_eq!(d.name, "91c111");
        assert!(d.total_blocks() > 30, "{}", d.total_blocks());
    }
}
