//! The AMD PCnet driver analog — carries four of the seven injected bugs.
//!
//! | Bug | Where | Trigger | Found under |
//! |-----|-------|---------|-------------|
//! | B1 null write | `init` diag path | impossible NIC status bit 0x80 | SC-SE (symbolic hardware) |
//! | B2 null deref | `init` | alloc failure path used unchecked | LC (alloc annotation: ret ∈ {ptr, 0}) |
//! | B3 leak | `send` | registry FLAGS bit0 set skips the free | LC (symbolic registry) |
//! | B4 data race | `receive` vs IRQ | registry FLAGS bit1 selects the unlocked fast path | LC (symbolic registry) |

use super::{data, emit_card_type_dispatch, emit_getcfg, emit_irq_handler, emit_nic_bringup};
use crate::kernel::sys;
use crate::layout::{cfg_keys, DRIVER_DATA};
use s2e_vm::device::ports;
use s2e_vm::isa::reg;

/// Receive-buffer size allocated by `init`.
pub const RX_BUF_SIZE: u32 = 128;

/// Builds the driver image.
pub fn build() -> super::Driver {
    let mut a = super::driver_asm();

    // ---- init --------------------------------------------------------
    a.label("init");
    a.movi(reg::R4, DRIVER_DATA);
    // Card type from the registry.
    emit_getcfg(&mut a, cfg_keys::CARD_TYPE);
    a.movi(reg::R4, DRIVER_DATA);
    a.st32(reg::R4, data::CARD_TYPE, reg::R0);
    a.mov(reg::R5, reg::R0);
    emit_card_type_dispatch(&mut a, 4, &[10, 100, 1000, 2500]);
    // Feature flags from the registry.
    emit_getcfg(&mut a, cfg_keys::FLAGS);
    a.movi(reg::R4, DRIVER_DATA);
    a.st32(reg::R4, data::FLAGS, reg::R0);
    // Allocate the receive buffer.
    a.movi(reg::R0, RX_BUF_SIZE);
    a.syscall(sys::ALLOC);
    a.movi(reg::R4, DRIVER_DATA);
    a.st32(reg::R4, data::BUF_PTR, reg::R0);
    // B2: stamp a signature into the buffer WITHOUT checking for
    // allocation failure — a null dereference on the alloc-failed path.
    a.movi(reg::R6, 0x5043_4e54); // 'PCNT'
    a.st32(reg::R0, 0, reg::R6);
    // Bring up the hardware.
    emit_nic_bringup(&mut a);
    // Read the status register.
    a.movi(reg::R6, ports::NIC_STATUS as u32);
    a.inp(reg::R5, reg::R6);
    // B1: "diagnostic mode" on status bit 0x80 — a bit real hardware
    // never sets; only symbolic hardware reaches the buggy path.
    a.andi(reg::R6, reg::R5, 0x80);
    a.movi(reg::R7, 0);
    a.beq(reg::R6, reg::R7, "init_ok");
    a.movi(reg::R6, 0);
    a.st32(reg::R6, 4, reg::R5); // null write
    a.label("init_ok");
    a.movi(reg::R0, 0);
    a.ret();

    // ---- send(buf: r0, len: r1) ---------------------------------------
    a.label("send");
    a.movi(reg::R4, DRIVER_DATA);
    a.mov(reg::R8, reg::R0); // buf
    a.mov(reg::R9, reg::R1); // len
    // Hardware ready?
    a.movi(reg::R6, ports::NIC_STATUS as u32);
    a.inp(reg::R5, reg::R6);
    a.andi(reg::R5, reg::R5, s2e_vm::device::nic_status::READY);
    a.movi(reg::R6, 0);
    a.beq(reg::R5, reg::R6, "send_fail");
    // Shadow buffer for the frame.
    a.mov(reg::R0, reg::R9);
    a.syscall(sys::ALLOC);
    a.movi(reg::R4, DRIVER_DATA);
    a.mov(reg::R7, reg::R0);
    a.movi(reg::R6, 0);
    a.beq(reg::R7, reg::R6, "send_fail"); // correct null check here
    // Copy caller bytes into the shadow buffer.
    a.movi(reg::R5, 0);
    a.label("send_copy");
    a.bgeu(reg::R5, reg::R9, "send_go");
    a.add(reg::R6, reg::R8, reg::R5);
    a.ld8(reg::R6, reg::R6, 0);
    a.add(reg::R3, reg::R7, reg::R5);
    a.st8(reg::R3, 0, reg::R6);
    a.addi(reg::R5, reg::R5, 1);
    a.jmp("send_copy");
    a.label("send_go");
    a.mov(reg::R0, reg::R7);
    a.mov(reg::R1, reg::R9);
    a.syscall(sys::SEND);
    a.movi(reg::R4, DRIVER_DATA);
    // tx_count++ under the interrupt lock (correct).
    a.cli();
    a.ld32(reg::R5, reg::R4, data::TX_COUNT);
    a.addi(reg::R5, reg::R5, 1);
    a.st32(reg::R4, data::TX_COUNT, reg::R5);
    a.sti();
    // B3: the shadow buffer is freed only when FLAGS bit0 is clear; the
    // "zero-copy" configuration leaks one allocation per send.
    a.ld32(reg::R5, reg::R4, data::FLAGS);
    a.andi(reg::R5, reg::R5, 1);
    a.movi(reg::R6, 0);
    a.bne(reg::R5, reg::R6, "send_done"); // bit0 set → leak
    a.mov(reg::R0, reg::R7);
    a.syscall(sys::FREE);
    a.label("send_done");
    a.movi(reg::R0, 0);
    a.ret();
    a.label("send_fail");
    a.movi(reg::R0, 0xffff_ffff);
    a.ret();

    // ---- receive() ----------------------------------------------------
    a.label("receive");
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R6, ports::NIC_RXLEN as u32);
    a.inp(reg::R5, reg::R6);
    // Clamp to the buffer size (correct bounds handling in this driver).
    a.movi(reg::R6, RX_BUF_SIZE);
    a.bltu(reg::R5, reg::R6, "rx_clamped");
    a.movi(reg::R5, RX_BUF_SIZE);
    a.label("rx_clamped");
    a.ld32(reg::R8, reg::R4, data::BUF_PTR);
    a.movi(reg::R7, 0);
    a.label("rx_loop");
    a.bgeu(reg::R7, reg::R5, "rx_counted");
    a.movi(reg::R6, ports::NIC_DATA as u32);
    a.inp(reg::R6, reg::R6);
    a.add(reg::R3, reg::R8, reg::R7);
    a.st8(reg::R3, 0, reg::R6);
    a.addi(reg::R7, reg::R7, 1);
    a.jmp("rx_loop");
    a.label("rx_counted");
    // B4: FLAGS bit1 selects an "optimized" unlocked increment of
    // rx_count — which the IRQ handler also writes.
    a.ld32(reg::R5, reg::R4, data::FLAGS);
    a.andi(reg::R5, reg::R5, 2);
    a.movi(reg::R6, 0);
    a.beq(reg::R5, reg::R6, "rx_locked");
    a.sti();
    a.ld32(reg::R5, reg::R4, data::RX_COUNT);
    a.addi(reg::R5, reg::R5, 1);
    a.st32(reg::R4, data::RX_COUNT, reg::R5); // racy write
    a.jmp("rx_done");
    a.label("rx_locked");
    a.cli();
    a.ld32(reg::R5, reg::R4, data::RX_COUNT);
    a.addi(reg::R5, reg::R5, 1);
    a.st32(reg::R4, data::RX_COUNT, reg::R5);
    a.sti();
    a.label("rx_done");
    a.movi(reg::R0, 0);
    a.ret();

    // ---- query_info(id: r0) -> r0 --------------------------------------
    a.label("query_info");
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R6, 1);
    a.beq(reg::R0, reg::R6, "qi_tx");
    a.movi(reg::R6, 2);
    a.beq(reg::R0, reg::R6, "qi_rx");
    a.movi(reg::R6, 3);
    a.beq(reg::R0, reg::R6, "qi_media");
    a.movi(reg::R0, 0);
    a.ret();
    a.label("qi_tx");
    a.ld32(reg::R0, reg::R4, data::TX_COUNT);
    a.ret();
    a.label("qi_rx");
    a.ld32(reg::R0, reg::R4, data::RX_COUNT);
    a.ret();
    a.label("qi_media");
    a.ld32(reg::R0, reg::R4, data::MEDIA);
    a.ret();

    // ---- set_info(id: r0, value: r1) ------------------------------------
    a.label("set_info");
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R6, 1);
    a.beq(reg::R0, reg::R6, "si_flags");
    a.movi(reg::R6, 2);
    a.beq(reg::R0, reg::R6, "si_media");
    a.movi(reg::R0, 0xffff_ffff);
    a.ret();
    a.label("si_flags");
    a.st32(reg::R4, data::FLAGS, reg::R1);
    a.movi(reg::R0, 0);
    a.ret();
    a.label("si_media");
    a.st32(reg::R4, data::MEDIA, reg::R1);
    a.movi(reg::R0, 0);
    a.ret();

    // ---- unload() -------------------------------------------------------
    a.label("unload");
    a.movi(reg::R4, DRIVER_DATA);
    a.ld32(reg::R0, reg::R4, data::BUF_PTR);
    a.movi(reg::R5, 0);
    a.beq(reg::R0, reg::R5, "ul_done");
    a.syscall(sys::FREE);
    a.movi(reg::R4, DRIVER_DATA);
    a.movi(reg::R5, 0);
    a.st32(reg::R4, data::BUF_PTR, reg::R5);
    a.label("ul_done");
    // Mask our interrupt.
    a.movi(reg::R5, s2e_vm::isa::vector::NIC);
    a.movi(reg::R6, 0);
    a.st32(reg::R5, 0, reg::R6);
    a.movi(reg::R0, 0);
    a.ret();

    emit_irq_handler(&mut a);

    super::Driver::from_program("pcnet", a.finish(), RX_BUF_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_exposes_interface() {
        let d = build();
        assert_eq!(d.name, "pcnet");
        assert!(d.entry("init") < d.entry("send"));
        assert!(d.total_blocks() > 20);
    }
}
