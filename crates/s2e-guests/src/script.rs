//! The Lua-interpreter analog (§6.3's user-mode consistency target).
//!
//! A tiny scripting language: statements `x = expr ;` and `p x ;`
//! (print), expressions over `+ - *`, integer literals, and variables
//! `a`..`z`. The **lexer+parser** compiles source text to bytecode; the
//! **interpreter** executes the bytecode on an operand stack.
//!
//! The split matters because it reproduces the paper's experiment design:
//! "the concrete domain consists of the lexer+parser and the environment,
//! while the symbolic domain is the remaining code (e.g., the
//! interpreter). Parsers are the bane of symbolic execution engines."
//! Under SC-SE the *source string* is symbolic and exploration drowns in
//! the lexer; under LC the parser runs concretely and suitably
//! constrained symbolic *opcodes* are injected after the parsing stage;
//! under RC-OC the opcodes are unconstrained and exploration falls into
//! the interpreter's crash paths.

use crate::layout::{APP_BASE, INPUT_BUF};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::device::ports;
use s2e_vm::isa::reg;
use std::ops::Range;

/// Where the compiled bytecode lives.
pub const BYTECODE_BUF: u32 = INPUT_BUF + 0x400;
/// Variable slots (`a`..`z`, one word each).
pub const VARS_BUF: u32 = INPUT_BUF + 0x600;
/// Operand stack.
pub const STACK_BUF: u32 = INPUT_BUF + 0x700;

/// Bytecode opcodes (2-byte records: `[op, arg]`).
pub mod bc {
    /// Push an immediate (arg).
    pub const LOADI: u32 = 1;
    /// Push a variable (arg = index).
    pub const LOADV: u32 = 2;
    /// Pop two, push sum.
    pub const ADD: u32 = 3;
    /// Pop two, push difference.
    pub const SUB: u32 = 4;
    /// Pop two, push product.
    pub const MUL: u32 = 5;
    /// Pop into a variable (arg = index).
    pub const STORE: u32 = 6;
    /// Print a variable (arg = index).
    pub const PRINT: u32 = 7;
    /// Stop.
    pub const END: u32 = 9;
    /// Highest valid opcode value.
    pub const MAX: u32 = 9;
}

/// Exit codes for the interpreter's failure paths.
pub mod exit {
    /// Clean completion.
    pub const OK: u32 = 0;
    /// Parse error.
    pub const PARSE_ERROR: u32 = 0xE1;
    /// Invalid opcode.
    pub const BAD_OPCODE: u32 = 0xEE;
    /// Variable index out of range.
    pub const BAD_VAR: u32 = 0xEB;
    /// Operand-stack underflow.
    pub const UNDERFLOW: u32 = 0xEC;
}

/// The assembled guest plus its module boundaries.
#[derive(Clone, Debug)]
pub struct ScriptGuest {
    /// The program image.
    pub program: Program,
    /// Lexer+parser code range (the environment in the §6.3 experiment).
    pub parser_range: Range<u32>,
    /// Interpreter code range (the unit).
    pub interp_range: Range<u32>,
}

/// Builds the guest.
pub fn build() -> ScriptGuest {
    let mut a = Assembler::new(APP_BASE);
    let mut ws_tag = 0u32;

    // Skip spaces; leaves the current character in r6.
    let mut skipws = |a: &mut Assembler| {
        ws_tag += 1;
        let lbl = format!("ws{ws_tag}");
        let out = format!("ws_out{ws_tag}");
        a.label(&lbl);
        a.ld8(reg::R6, reg::R4, 0);
        a.movi(reg::R7, b' ' as u32);
        a.bne(reg::R6, reg::R7, &out);
        a.addi(reg::R4, reg::R4, 1);
        a.jmp(&lbl);
        a.label(&out);
    };
    // Emit a bytecode record [op, r8].
    let emit_bc = |a: &mut Assembler, op: u32| {
        a.movi(reg::R7, op);
        a.st8(reg::R5, 0, reg::R7);
        a.st8(reg::R5, 1, reg::R8);
        a.addi(reg::R5, reg::R5, 2);
    };

    a.label("main");
    a.call("parse");
    a.call("interp");
    a.halt_code(exit::OK);

    // ==== lexer + parser (environment) ==================================
    a.label("parse");
    a.push(reg::LR);
    a.movi(reg::R4, INPUT_BUF); // source cursor
    a.movi(reg::R5, BYTECODE_BUF); // bytecode cursor

    a.label("p_stmt");
    skipws(&mut a);
    a.movi(reg::R7, 0);
    a.beq(reg::R6, reg::R7, "p_end"); // NUL: done
    a.movi(reg::R7, b'p' as u32);
    a.beq(reg::R6, reg::R7, "p_print");
    // assignment: ident '=' expr ';'
    a.movi(reg::R7, b'a' as u32);
    a.bltu(reg::R6, reg::R7, "p_err");
    a.movi(reg::R7, b'z' as u32 + 1);
    a.bgeu(reg::R6, reg::R7, "p_err");
    a.subi(reg::R9, reg::R6, b'a' as u32); // target var index
    a.addi(reg::R4, reg::R4, 1);
    skipws(&mut a);
    a.movi(reg::R7, b'=' as u32);
    a.bne(reg::R6, reg::R7, "p_err");
    a.addi(reg::R4, reg::R4, 1);
    a.push(reg::R9);
    a.call("p_expr");
    a.pop(reg::R9);
    a.mov(reg::R8, reg::R9);
    emit_bc(&mut a, bc::STORE);
    skipws(&mut a);
    a.movi(reg::R7, b';' as u32);
    a.bne(reg::R6, reg::R7, "p_err");
    a.addi(reg::R4, reg::R4, 1);
    a.jmp("p_stmt");

    a.label("p_print");
    a.addi(reg::R4, reg::R4, 1);
    skipws(&mut a);
    a.movi(reg::R7, b'a' as u32);
    a.bltu(reg::R6, reg::R7, "p_err");
    a.movi(reg::R7, b'z' as u32 + 1);
    a.bgeu(reg::R6, reg::R7, "p_err");
    a.subi(reg::R8, reg::R6, b'a' as u32);
    a.addi(reg::R4, reg::R4, 1);
    emit_bc(&mut a, bc::PRINT);
    skipws(&mut a);
    a.movi(reg::R7, b';' as u32);
    a.bne(reg::R6, reg::R7, "p_err");
    a.addi(reg::R4, reg::R4, 1);
    a.jmp("p_stmt");

    a.label("p_end");
    a.movi(reg::R8, 0);
    emit_bc(&mut a, bc::END);
    a.pop(reg::LR);
    a.ret();

    a.label("p_err");
    a.halt_code(exit::PARSE_ERROR);

    // expr := operand ((+|-|*) operand)*
    a.label("p_expr");
    a.push(reg::LR);
    a.call("p_operand");
    a.label("e_loop");
    skipws(&mut a);
    a.movi(reg::R7, b'+' as u32);
    a.beq(reg::R6, reg::R7, "e_add");
    a.movi(reg::R7, b'-' as u32);
    a.beq(reg::R6, reg::R7, "e_sub");
    a.movi(reg::R7, b'*' as u32);
    a.beq(reg::R6, reg::R7, "e_mul");
    a.pop(reg::LR);
    a.ret();
    for (lbl, op) in [("e_add", bc::ADD), ("e_sub", bc::SUB), ("e_mul", bc::MUL)] {
        a.label(lbl);
        a.addi(reg::R4, reg::R4, 1);
        a.call("p_operand");
        a.movi(reg::R8, 0);
        emit_bc(&mut a, op);
        a.jmp("e_loop");
    }

    // operand := number | ident
    a.label("p_operand");
    skipws(&mut a);
    a.movi(reg::R7, b'0' as u32);
    a.bltu(reg::R6, reg::R7, "o_ident");
    a.movi(reg::R7, b'9' as u32 + 1);
    a.bgeu(reg::R6, reg::R7, "o_ident");
    a.movi(reg::R8, 0);
    a.label("o_num_loop");
    a.ld8(reg::R6, reg::R4, 0);
    a.movi(reg::R7, b'0' as u32);
    a.bltu(reg::R6, reg::R7, "o_num_done");
    a.movi(reg::R7, b'9' as u32 + 1);
    a.bgeu(reg::R6, reg::R7, "o_num_done");
    a.muli(reg::R8, reg::R8, 10);
    a.subi(reg::R6, reg::R6, b'0' as u32);
    a.add(reg::R8, reg::R8, reg::R6);
    a.addi(reg::R4, reg::R4, 1);
    a.jmp("o_num_loop");
    a.label("o_num_done");
    a.andi(reg::R8, reg::R8, 0xff);
    emit_bc(&mut a, bc::LOADI);
    a.ret();
    a.label("o_ident");
    a.movi(reg::R7, b'a' as u32);
    a.bltu(reg::R6, reg::R7, "p_err");
    a.movi(reg::R7, b'z' as u32 + 1);
    a.bgeu(reg::R6, reg::R7, "p_err");
    a.subi(reg::R8, reg::R6, b'a' as u32);
    a.addi(reg::R4, reg::R4, 1);
    emit_bc(&mut a, bc::LOADV);
    a.ret();

    a.align(16);
    a.label("parse_end");

    // ==== interpreter (unit) =============================================
    a.label("interp");
    a.movi(reg::R4, BYTECODE_BUF); // ip
    a.movi(reg::R5, STACK_BUF); // sp (grows upward)

    a.label("i_loop");
    a.ld8(reg::R6, reg::R4, 0); // opcode
    a.ld8(reg::R7, reg::R4, 1); // arg
    a.addi(reg::R4, reg::R4, 2);
    for (op, lbl) in [
        (bc::LOADI, "i_loadi"),
        (bc::LOADV, "i_loadv"),
        (bc::ADD, "i_add"),
        (bc::SUB, "i_sub"),
        (bc::MUL, "i_mul"),
        (bc::STORE, "i_store"),
        (bc::PRINT, "i_print"),
        (bc::END, "i_end"),
    ] {
        a.movi(reg::R8, op);
        a.beq(reg::R6, reg::R8, lbl);
    }
    a.halt_code(exit::BAD_OPCODE);

    a.label("i_loadi");
    a.st32(reg::R5, 0, reg::R7);
    a.addi(reg::R5, reg::R5, 4);
    a.jmp("i_loop");

    a.label("i_loadv");
    a.movi(reg::R8, 26);
    a.bgeu(reg::R7, reg::R8, "i_badvar");
    a.shli(reg::R7, reg::R7, 2);
    a.movi(reg::R8, VARS_BUF);
    a.add(reg::R7, reg::R8, reg::R7);
    a.ld32(reg::R7, reg::R7, 0);
    a.st32(reg::R5, 0, reg::R7);
    a.addi(reg::R5, reg::R5, 4);
    a.jmp("i_loop");

    for (lbl, is_add, is_sub) in [("i_add", true, false), ("i_sub", false, true), ("i_mul", false, false)] {
        a.label(lbl);
        // Stack underflow check: need two operands.
        a.movi(reg::R8, STACK_BUF + 8);
        a.bltu(reg::R5, reg::R8, "i_underflow");
        a.subi(reg::R5, reg::R5, 4);
        a.ld32(reg::R8, reg::R5, 0); // rhs
        a.subi(reg::R5, reg::R5, 4);
        a.ld32(reg::R9, reg::R5, 0); // lhs
        if is_add {
            a.add(reg::R9, reg::R9, reg::R8);
        } else if is_sub {
            a.sub(reg::R9, reg::R9, reg::R8);
        } else {
            a.mul(reg::R9, reg::R9, reg::R8);
        }
        a.st32(reg::R5, 0, reg::R9);
        a.addi(reg::R5, reg::R5, 4);
        a.jmp("i_loop");
    }

    a.label("i_store");
    a.movi(reg::R8, 26);
    a.bgeu(reg::R7, reg::R8, "i_badvar");
    a.movi(reg::R8, STACK_BUF + 4);
    a.bltu(reg::R5, reg::R8, "i_underflow");
    a.subi(reg::R5, reg::R5, 4);
    a.ld32(reg::R9, reg::R5, 0);
    a.shli(reg::R7, reg::R7, 2);
    a.movi(reg::R8, VARS_BUF);
    a.add(reg::R7, reg::R8, reg::R7);
    a.st32(reg::R7, 0, reg::R9);
    a.jmp("i_loop");

    a.label("i_print");
    a.movi(reg::R8, 26);
    a.bgeu(reg::R7, reg::R8, "i_badvar");
    a.shli(reg::R7, reg::R7, 2);
    a.movi(reg::R8, VARS_BUF);
    a.add(reg::R7, reg::R8, reg::R7);
    a.ld32(reg::R7, reg::R7, 0);
    a.andi(reg::R7, reg::R7, 0x7f);
    a.movi(reg::R8, ports::CONSOLE_OUT as u32);
    a.outp(reg::R8, reg::R7);
    a.jmp("i_loop");

    a.label("i_end");
    a.ret();

    a.label("i_badvar");
    a.halt_code(exit::BAD_VAR);
    a.label("i_underflow");
    a.halt_code(exit::UNDERFLOW);

    a.align(16);
    a.label("interp_end");

    let program = a.finish();
    let parser_range = program.symbol("parse")..program.symbol("parse_end");
    let interp_range = program.symbol("interp")..program.symbol("interp_end");
    ScriptGuest {
        program,
        parser_range,
        interp_range,
    }
}

/// Compiles `src` on the host (reference implementation) — used by tests
/// to validate the guest parser, and by tools that need a valid baseline
/// bytecode image.
pub fn reference_compile(src: &str) -> Result<Vec<u8>, String> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    let skip = |i: &mut usize| {
        while *i < b.len() && b[*i] == b' ' {
            *i += 1;
        }
    };
    let operand = |i: &mut usize, out: &mut Vec<u8>| -> Result<(), String> {
        skip(i);
        let c = *b.get(*i).ok_or("eof in operand")?;
        if c.is_ascii_digit() {
            let mut v: u32 = 0;
            while *i < b.len() && b[*i].is_ascii_digit() {
                v = v * 10 + (b[*i] - b'0') as u32;
                *i += 1;
            }
            out.push(bc::LOADI as u8);
            out.push((v & 0xff) as u8);
            Ok(())
        } else if c.is_ascii_lowercase() {
            *i += 1;
            out.push(bc::LOADV as u8);
            out.push(c - b'a');
            Ok(())
        } else {
            Err(format!("bad operand at {i:?}"))
        }
    };
    loop {
        skip(&mut i);
        let Some(&c) = b.get(i) else { break };
        if c == b'p' {
            i += 1;
            skip(&mut i);
            let v = *b.get(i).ok_or("eof")?;
            if !v.is_ascii_lowercase() {
                return Err("bad print target".into());
            }
            i += 1;
            out.push(bc::PRINT as u8);
            out.push(v - b'a');
        } else if c.is_ascii_lowercase() {
            let target = c - b'a';
            i += 1;
            skip(&mut i);
            if b.get(i) != Some(&b'=') {
                return Err("expected '='".into());
            }
            i += 1;
            operand(&mut i, &mut out)?;
            loop {
                skip(&mut i);
                let op = match b.get(i) {
                    Some(b'+') => bc::ADD,
                    Some(b'-') => bc::SUB,
                    Some(b'*') => bc::MUL,
                    _ => break,
                };
                i += 1;
                operand(&mut i, &mut out)?;
                out.push(op as u8);
                out.push(0);
            }
            out.push(bc::STORE as u8);
            out.push(target);
        } else {
            return Err(format!("bad statement at {i}"));
        }
        skip(&mut i);
        if b.get(i) != Some(&b';') {
            return Err("expected ';'".into());
        }
        i += 1;
    }
    out.push(bc::END as u8);
    out.push(0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::boot;
    use s2e_core::{ConsistencyModel, Engine, EngineConfig, TerminationReason};

    fn run_script(src: &str) -> (u32, String, Vec<u8>) {
        let g = build();
        let (mut m, _) = boot();
        m.mem.load_image(INPUT_BUF, src.as_bytes());
        m.mem.load_image(INPUT_BUF + src.len() as u32, &[0]);
        m.load(&g.program);
        let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScCe));
        e.set_retain_terminated(true);
        e.run(1_000_000);
        let code = match e.terminated()[0].1 {
            TerminationReason::Halted(c) => c,
            ref other => panic!("unexpected {other:?}"),
        };
        let st = &e.terminated_states()[0];
        let out = st.machine.devices.console().unwrap().output_string();
        let bc_len = reference_compile(src).map(|v| v.len()).unwrap_or(64);
        let bytecode = st.machine.mem.read_bytes_concrete(BYTECODE_BUF, bc_len as u32);
        (code, out, bytecode)
    }

    #[test]
    fn arithmetic_and_print() {
        // c = 2 + 3 * ... left-assoc: (2+3)*4 = 20 = 0x14 → printed & 0x7f
        let (code, out, _) = run_script("c = 2 + 3 * 4; p c;");
        assert_eq!(code, exit::OK);
        assert_eq!(out.as_bytes(), &[20]);
    }

    #[test]
    fn variables_flow_between_statements() {
        let (code, out, _) = run_script("a = 60; b = a + 5; p b;");
        assert_eq!(code, exit::OK);
        assert_eq!(out.as_bytes(), &[65]); // 'A'
    }

    #[test]
    fn subtraction_wraps_through_mask() {
        let (code, out, _) = run_script("x = 3 - 1; p x;");
        assert_eq!(code, exit::OK);
        assert_eq!(out.as_bytes(), &[2]);
    }

    #[test]
    fn parse_error_detected() {
        let (code, _, _) = run_script("= 5;");
        assert_eq!(code, exit::PARSE_ERROR);
        let (code, _, _) = run_script("a 5;");
        assert_eq!(code, exit::PARSE_ERROR);
    }

    #[test]
    fn guest_parser_matches_reference_compiler() {
        for src in ["a = 1;", "b = 2 + 3; p b;", "z = 9 * 9 - 1;", "a=5;b=a;p b;"] {
            let (code, _, guest_bc) = run_script(src);
            assert_eq!(code, exit::OK, "{src}");
            let reference = reference_compile(src).unwrap();
            assert_eq!(guest_bc, reference, "bytecode mismatch for {src:?}");
        }
    }

    #[test]
    fn invalid_opcode_is_a_crash_path() {
        // Hand-plant invalid bytecode and run only the interpreter.
        let g = build();
        let (mut m, _) = boot();
        m.mem.load_image(BYTECODE_BUF, &[0xff, 0x00]);
        m.load(&g.program);
        m.cpu.pc = g.program.symbol("interp");
        // Give `interp`'s final `ret` somewhere to go: halt at `main+16`.
        m.cpu
            .set_reg(reg::LR, s2e_vm::value::Value::Concrete(g.program.symbol("main") + 16));
        let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScCe));
        e.run(100_000);
        assert!(matches!(
            e.terminated()[0].1,
            TerminationReason::Halted(c) if c == exit::BAD_OPCODE
        ));
    }

    #[test]
    fn module_ranges_are_disjoint() {
        let g = build();
        assert!(g.parser_range.end <= g.interp_range.start);
        assert!(g.parser_range.contains(&g.program.symbol("p_expr")));
        assert!(g.interp_range.contains(&g.program.symbol("i_loop")));
    }
}
