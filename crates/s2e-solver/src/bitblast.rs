//! Tseitin bit-blasting of bitvector expressions into CNF.
//!
//! Every [`ExprRef`] node is lowered to a vector of SAT literals, one per
//! bit (LSB first), with shared sub-DAGs blasted once. Arithmetic uses
//! textbook circuits: ripple-carry adders, shift-add multipliers, restoring
//! dividers, and logarithmic barrel shifters for data-dependent shift
//! amounts. The circuits match the concrete semantics in `s2e_expr::fold`
//! bit for bit (division by zero yields all-ones, remainder by zero yields
//! the dividend, over-shifting yields zero / sign fill).

use crate::sat::{Lit, SatSolver, Var};
use s2e_expr::{BinOp, ExprKind, ExprRef, UnOp, VarId, Width};
use std::collections::HashMap;

/// Bit-blasting context layered over a [`SatSolver`].
///
/// The blaster owns the mapping from symbolic variables to SAT variable
/// ranges so a model can be decoded back into bitvector values.
#[derive(Debug)]
pub struct BitBlaster {
    /// The literal that is constant-true in every model.
    true_lit: Lit,
    memo: HashMap<usize, Vec<Lit>>,
    var_bits: HashMap<VarId, Vec<Var>>,
}

fn node_key(e: &ExprRef) -> usize {
    let p: &s2e_expr::Expr = e;
    p as *const _ as usize
}

impl BitBlaster {
    /// Creates a blaster, allocating the constant-true variable in `sat`.
    pub fn new(sat: &mut SatSolver) -> BitBlaster {
        let t = sat.new_var();
        sat.add_clause(&[Lit::pos(t)]);
        BitBlaster {
            true_lit: Lit::pos(t),
            memo: HashMap::new(),
            var_bits: HashMap::new(),
        }
    }

    /// The always-true literal.
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// The always-false literal.
    pub fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            !self.true_lit
        }
    }

    fn const_bits(&self, v: u64, w: Width) -> Vec<Lit> {
        (0..w.bits()).map(|i| self.const_lit(v >> i & 1 == 1)).collect()
    }

    /// SAT variables backing a symbolic variable, if it was blasted.
    pub fn bits_of_var(&self, id: VarId) -> Option<&[Var]> {
        self.var_bits.get(&id).map(|v| v.as_slice())
    }

    /// Iterates over all blasted symbolic variables.
    pub fn blasted_vars(&self) -> impl Iterator<Item = (VarId, &[Var])> {
        self.var_bits.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Asserts a boolean expression to be true.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not of boolean width.
    pub fn assert_true(&mut self, sat: &mut SatSolver, e: &ExprRef) {
        assert_eq!(e.width(), Width::BOOL, "can only assert boolean expressions");
        let bits = self.blast(sat, e);
        sat.add_clause(&[bits[0]]);
    }

    /// Lowers an expression to its bit literals (LSB first).
    pub fn blast(&mut self, sat: &mut SatSolver, e: &ExprRef) -> Vec<Lit> {
        if let Some(bits) = self.memo.get(&node_key(e)) {
            return bits.clone();
        }
        let w = e.width();
        let bits = match e.kind() {
            ExprKind::Const(v) => self.const_bits(*v, w),
            ExprKind::Var(id, _) => {
                // Keyed by `VarId`, not node identity: the pointer memo
                // cannot see that two distinct allocations (a wire-decoded
                // constraint and a journal-replay-minted node in a
                // rehydrated state) name the same variable. Allocating
                // fresh SAT variables for each would split one symbolic
                // variable into two unlinked copies and admit models that
                // satisfy no assignment of the real variable.
                let vars: Vec<Var> = match self.var_bits.get(id) {
                    Some(v) => v.clone(),
                    None => {
                        let v: Vec<Var> = (0..w.bits()).map(|_| sat.new_var()).collect();
                        self.var_bits.insert(*id, v.clone());
                        v
                    }
                };
                vars.into_iter().map(Lit::pos).collect()
            }
            ExprKind::Unary(UnOp::Not, a) => {
                let ab = self.blast(sat, a);
                ab.into_iter().map(|l| !l).collect()
            }
            ExprKind::Unary(UnOp::Neg, a) => {
                // -a == ~a + 1
                let ab = self.blast(sat, a);
                let nb: Vec<Lit> = ab.into_iter().map(|l| !l).collect();
                let one = self.const_bits(1, w);
                self.adder(sat, &nb, &one, self.false_lit()).0
            }
            ExprKind::Binary(op, a, b) => self.blast_binary(sat, *op, a, b, w),
            ExprKind::Extract { src, lo } => {
                let sb = self.blast(sat, src);
                sb[*lo as usize..(*lo + w.bits()) as usize].to_vec()
            }
            ExprKind::ZExt(src) => {
                let mut sb = self.blast(sat, src);
                sb.resize(w.bits() as usize, self.false_lit());
                sb
            }
            ExprKind::SExt(src) => {
                let sb = self.blast(sat, src);
                let sign = *sb.last().expect("non-empty");
                let mut out = sb;
                out.resize(w.bits() as usize, sign);
                out
            }
            ExprKind::Ite(c, t, f) => {
                let cb = self.blast(sat, c)[0];
                let tb = self.blast(sat, t);
                let fb = self.blast(sat, f);
                self.mux_vec(sat, cb, &tb, &fb)
            }
        };
        debug_assert_eq!(bits.len(), w.bits() as usize);
        self.memo.insert(node_key(e), bits.clone());
        bits
    }

    fn blast_binary(
        &mut self,
        sat: &mut SatSolver,
        op: BinOp,
        a: &ExprRef,
        b: &ExprRef,
        out_w: Width,
    ) -> Vec<Lit> {
        let ab = self.blast(sat, a);
        let bb = self.blast(sat, b);
        match op {
            BinOp::And => self.zip_gate(sat, &ab, &bb, Self::and_gate),
            BinOp::Or => self.zip_gate(sat, &ab, &bb, Self::or_gate),
            BinOp::Xor => self.zip_gate(sat, &ab, &bb, Self::xor_gate),
            BinOp::Add => self.adder(sat, &ab, &bb, self.false_lit()).0,
            BinOp::Sub => {
                let nb: Vec<Lit> = bb.iter().map(|&l| !l).collect();
                self.adder(sat, &ab, &nb, self.true_lit()).0
            }
            BinOp::Mul => self.multiplier(sat, &ab, &bb),
            BinOp::UDiv => self.divider(sat, &ab, &bb).0,
            BinOp::URem => self.divider(sat, &ab, &bb).1,
            BinOp::SDiv => self.signed_div_rem(sat, &ab, &bb).0,
            BinOp::SRem => self.signed_div_rem(sat, &ab, &bb).1,
            BinOp::Shl => self.barrel_shift(sat, &ab, &bb, ShiftKind::Left),
            BinOp::LShr => self.barrel_shift(sat, &ab, &bb, ShiftKind::LogicalRight),
            BinOp::AShr => self.barrel_shift(sat, &ab, &bb, ShiftKind::ArithRight),
            BinOp::Eq => vec![self.equals(sat, &ab, &bb)],
            BinOp::Ne => vec![!self.equals(sat, &ab, &bb)],
            BinOp::ULt => vec![self.ult(sat, &ab, &bb)],
            BinOp::ULe => vec![!self.ult(sat, &bb, &ab)],
            BinOp::SLt => {
                let (fa, fb) = (self.flip_sign(&ab), self.flip_sign(&bb));
                vec![self.ult(sat, &fa, &fb)]
            }
            BinOp::SLe => {
                let (fa, fb) = (self.flip_sign(&ab), self.flip_sign(&bb));
                vec![!self.ult(sat, &fb, &fa)]
            }
            BinOp::Concat => {
                // a is the high part.
                let mut out = bb;
                out.extend(ab);
                debug_assert_eq!(out.len(), out_w.bits() as usize);
                out
            }
        }
    }

    /// Flips the sign bit so unsigned comparison implements signed order.
    fn flip_sign(&self, a: &[Lit]) -> Vec<Lit> {
        let mut out = a.to_vec();
        let last = out.len() - 1;
        out[last] = !out[last];
        out
    }

    fn fresh(&self, sat: &mut SatSolver) -> Lit {
        Lit::pos(sat.new_var())
    }

    fn and_gate(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        // Constant short-circuits.
        if a == self.false_lit() || b == self.false_lit() {
            return self.false_lit();
        }
        if a == self.true_lit {
            return b;
        }
        if b == self.true_lit {
            return a;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.false_lit();
        }
        let o = self.fresh(sat);
        sat.add_clause(&[!a, !b, o]);
        sat.add_clause(&[a, !o]);
        sat.add_clause(&[b, !o]);
        o
    }

    fn or_gate(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        !self.and_gate(sat, !a, !b)
    }

    fn xor_gate(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        if a == self.false_lit() {
            return b;
        }
        if b == self.false_lit() {
            return a;
        }
        if a == self.true_lit {
            return !b;
        }
        if b == self.true_lit {
            return !a;
        }
        if a == b {
            return self.false_lit();
        }
        if a == !b {
            return self.true_lit;
        }
        let o = self.fresh(sat);
        sat.add_clause(&[!a, !b, !o]);
        sat.add_clause(&[a, b, !o]);
        sat.add_clause(&[!a, b, o]);
        sat.add_clause(&[a, !b, o]);
        o
    }

    /// `if c then t else f` for single literals.
    fn mux(&mut self, sat: &mut SatSolver, c: Lit, t: Lit, f: Lit) -> Lit {
        if c == self.true_lit {
            return t;
        }
        if c == self.false_lit() {
            return f;
        }
        if t == f {
            return t;
        }
        let o = self.fresh(sat);
        sat.add_clause(&[!c, !t, o]);
        sat.add_clause(&[!c, t, !o]);
        sat.add_clause(&[c, !f, o]);
        sat.add_clause(&[c, f, !o]);
        o
    }

    fn mux_vec(&mut self, sat: &mut SatSolver, c: Lit, t: &[Lit], f: &[Lit]) -> Vec<Lit> {
        t.iter()
            .zip(f)
            .map(|(&tb, &fb)| self.mux(sat, c, tb, fb))
            .collect()
    }

    fn zip_gate(
        &mut self,
        sat: &mut SatSolver,
        a: &[Lit],
        b: &[Lit],
        gate: fn(&mut Self, &mut SatSolver, Lit, Lit) -> Lit,
    ) -> Vec<Lit> {
        a.iter().zip(b).map(|(&x, &y)| gate(self, sat, x, y)).collect()
    }

    /// Ripple-carry adder; returns (sum bits, carry out).
    fn adder(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
        let mut out = Vec::with_capacity(a.len());
        let mut carry = cin;
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.xor_gate(sat, x, y);
            let sum = self.xor_gate(sat, xy, carry);
            // carry' = (x & y) | (carry & (x ^ y))
            let c1 = self.and_gate(sat, x, y);
            let c2 = self.and_gate(sat, carry, xy);
            carry = self.or_gate(sat, c1, c2);
            out.push(sum);
        }
        (out, carry)
    }

    /// Shift-add multiplier (width of `a`).
    fn multiplier(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc = vec![self.false_lit(); w];
        for (i, &bi) in b.iter().enumerate() {
            if i >= w {
                break;
            }
            // addend = (a << i) masked by bi
            let mut addend = vec![self.false_lit(); w];
            for j in 0..(w - i) {
                addend[i + j] = self.and_gate(sat, a[j], bi);
            }
            acc = self.adder(sat, &acc, &addend, self.false_lit()).0;
        }
        acc
    }

    /// Restoring divider; returns (quotient, remainder) with the
    /// divide-by-zero semantics of `s2e_expr` (q = all ones, r = dividend).
    fn divider(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        // The working remainder is w+1 bits wide: after the shift-in step it
        // can reach 2*(b-1)+1 which does not fit in w bits.
        let mut rem = vec![self.false_lit(); w + 1];
        let mut wb: Vec<Lit> = b.to_vec();
        wb.push(self.false_lit());
        let mut quo = vec![self.false_lit(); w];
        for i in (0..w).rev() {
            // rem = (rem << 1) | a[i]; the dropped top bit is provably zero
            // because rem < b <= 2^w - 1 before every shift.
            for j in (1..=w).rev() {
                rem[j] = rem[j - 1];
            }
            rem[0] = a[i];
            // ge = rem >= b  computed as !(rem < b)
            let lt = self.ult(sat, &rem, &wb);
            let ge = !lt;
            // if ge { rem -= b; q[i] = 1 }
            let nb: Vec<Lit> = wb.iter().map(|&l| !l).collect();
            let diff = self.adder(sat, &rem, &nb, self.true_lit()).0;
            rem = self.mux_vec(sat, ge, &diff, &rem);
            quo[i] = ge;
        }
        let rem: Vec<Lit> = rem.into_iter().take(w).collect();
        // Divide-by-zero fixup.
        let zero = vec![self.false_lit(); w];
        let b_is_zero = self.equals(sat, b, &zero);
        let all_ones = vec![self.true_lit; w];
        let quo = self.mux_vec(sat, b_is_zero, &all_ones, &quo);
        let rem = self.mux_vec(sat, b_is_zero, a, &rem);
        (quo, rem)
    }

    /// Signed division/remainder via absolute values and sign fixups.
    fn signed_div_rem(
        &mut self,
        sat: &mut SatSolver,
        a: &[Lit],
        b: &[Lit],
    ) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let sign_a = a[w - 1];
        let sign_b = b[w - 1];
        let abs_a = self.abs(sat, a);
        let abs_b = self.abs(sat, b);
        let (uq, ur) = self.divider(sat, &abs_a, &abs_b);
        // Quotient negative iff signs differ.
        let q_neg = self.xor_gate(sat, sign_a, sign_b);
        let neg_uq = self.negate(sat, &uq);
        let q_signed = self.mux_vec(sat, q_neg, &neg_uq, &uq);
        // Remainder takes the dividend's sign.
        let neg_ur = self.negate(sat, &ur);
        let r_signed = self.mux_vec(sat, sign_a, &neg_ur, &ur);
        // Divide-by-zero semantics are defined on the *raw* operands.
        let zero = vec![self.false_lit(); w];
        let b_is_zero = self.equals(sat, b, &zero);
        let all_ones = vec![self.true_lit; w];
        let q = self.mux_vec(sat, b_is_zero, &all_ones, &q_signed);
        let r = self.mux_vec(sat, b_is_zero, a, &r_signed);
        (q, r)
    }

    fn negate(&mut self, sat: &mut SatSolver, a: &[Lit]) -> Vec<Lit> {
        let nb: Vec<Lit> = a.iter().map(|&l| !l).collect();
        let one = {
            let mut v = vec![self.false_lit(); a.len()];
            v[0] = self.true_lit;
            v
        };
        self.adder(sat, &nb, &one, self.false_lit()).0
    }

    fn abs(&mut self, sat: &mut SatSolver, a: &[Lit]) -> Vec<Lit> {
        let sign = a[a.len() - 1];
        let neg = self.negate(sat, a);
        self.mux_vec(sat, sign, &neg, a)
    }

    fn equals(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.true_lit;
        for (&x, &y) in a.iter().zip(b) {
            let same = !self.xor_gate(sat, x, y);
            acc = self.and_gate(sat, acc, same);
        }
        acc
    }

    /// Unsigned `a < b` comparator, MSB downward.
    fn ult(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> Lit {
        let mut lt = self.false_lit();
        for (&x, &y) in a.iter().zip(b) {
            // From LSB to MSB: lt' = (¬x ∧ y) ∨ ((x ≡ y) ∧ lt)
            let xlty = self.and_gate(sat, !x, y);
            let eq = !self.xor_gate(sat, x, y);
            let keep = self.and_gate(sat, eq, lt);
            lt = self.or_gate(sat, xlty, keep);
        }
        lt
    }

    fn barrel_shift(
        &mut self,
        sat: &mut SatSolver,
        a: &[Lit],
        amount: &[Lit],
        kind: ShiftKind,
    ) -> Vec<Lit> {
        let w = a.len();
        let fill = match kind {
            ShiftKind::ArithRight => a[w - 1],
            _ => self.false_lit(),
        };
        let stages = (usize::BITS - (w - 1).leading_zeros()) as usize; // ceil(log2 w)
        let mut cur = a.to_vec();
        for (k, &amount_bit) in amount.iter().enumerate().take(stages) {
            let sh = 1usize << k;
            let shifted: Vec<Lit> = (0..w)
                .map(|i| match kind {
                    ShiftKind::Left => {
                        if i >= sh {
                            cur[i - sh]
                        } else {
                            self.false_lit()
                        }
                    }
                    ShiftKind::LogicalRight | ShiftKind::ArithRight => {
                        if i + sh < w {
                            cur[i + sh]
                        } else {
                            fill
                        }
                    }
                })
                .collect();
            cur = self.mux_vec(sat, amount_bit, &shifted, &cur);
        }
        // Any set bit at position >= ceil(log2 w) (or, for non-power-of-two
        // widths, a shift amount >= w within the staged bits) means
        // over-shift.
        let mut over = self.false_lit();
        for (k, &bit) in amount.iter().enumerate() {
            if (1u128 << k.min(127)) >= w as u128 {
                over = self.or_gate(sat, over, bit);
            }
        }
        if !w.is_power_of_two() {
            // staged amount can still be >= w: compare the low stage bits.
            let low: Vec<Lit> = amount.iter().copied().take(stages).collect();
            let w_bits: Vec<Lit> = (0..stages)
                .map(|i| self.const_lit(w >> i & 1 == 1))
                .collect();
            let lt_w = self.ult(sat, &low, &w_bits);
            over = self.or_gate(sat, over, !lt_w);
        }
        let fill_vec = vec![fill; w];
        self.mux_vec(sat, over, &fill_vec, &cur)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithRight,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatOutcome;
    use s2e_expr::{eval, Assignment, ExprBuilder};

    /// Blasts `expr == expected` for all 4-bit values of `x` and `y` and
    /// checks SAT/UNSAT against concrete evaluation.
    fn exhaustive_check(op: BinOp, w: Width) {
        let b = ExprBuilder::new();
        let x = b.var("x", w);
        let y = b.var("y", w);
        let e = b.binop(op, x.clone(), y.clone());
        for xv in 0..(1u64 << w.bits()) {
            for yv in 0..(1u64 << w.bits()) {
                let mut asg = Assignment::new();
                asg.set_by_name("x", xv);
                asg.set_by_name("y", yv);
                let expected = eval(&e, &asg).unwrap();
                // Assert x == xv, y == yv, e != expected: must be UNSAT.
                let mut sat = SatSolver::new();
                let mut bb = BitBlaster::new(&mut sat);
                let cx = b.eq(x.clone(), b.constant(xv, w));
                let cy = b.eq(y.clone(), b.constant(yv, w));
                let ew = e.width();
                let cne = b.ne(e.clone(), b.constant(expected, ew));
                bb.assert_true(&mut sat, &cx);
                bb.assert_true(&mut sat, &cy);
                bb.assert_true(&mut sat, &cne);
                assert_eq!(
                    sat.solve(u64::MAX),
                    SatOutcome::Unsat,
                    "{op:?}: {xv} op {yv} != {expected} should be unsat"
                );
            }
        }
    }

    /// Two distinct `Var` allocations naming the same `VarId` — exactly
    /// what a rehydrated state holds after wire-decoded constraints are
    /// mixed with journal-replay-minted nodes — must blast to the *same*
    /// SAT variables. A pointer-keyed memo alone would split the
    /// variable into two unlinked copies and admit `x == 0 && x == 1`.
    #[test]
    fn duplicate_var_allocations_share_sat_vars() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let id = x.var_ids()[0];
        // Re-mint the recorded id, as journal replay does: a fresh
        // allocation, not pointer-identical to `x`.
        s2e_expr::begin_var_replay(vec![id.0]);
        let x2 = b.var("x", Width::W8);
        assert_eq!(s2e_expr::end_var_replay(), 0, "replay id consumed");
        assert_eq!(x.var_ids(), x2.var_ids());
        assert!(!x.ptr_eq(&x2), "test needs two distinct allocations");

        let c1 = b.eq(x, b.constant(0, Width::W8));
        let c2 = b.eq(x2, b.constant(1, Width::W8));
        let mut sat = SatSolver::new();
        let mut bb = BitBlaster::new(&mut sat);
        bb.assert_true(&mut sat, &c1);
        bb.assert_true(&mut sat, &c2);
        assert_eq!(
            sat.solve(u64::MAX),
            SatOutcome::Unsat,
            "x == 0 && x == 1 must be unsat even across duplicate allocations"
        );
    }

    #[test]
    fn add_matches_semantics() {
        exhaustive_check(BinOp::Add, Width::new(4));
    }

    #[test]
    fn sub_matches_semantics() {
        exhaustive_check(BinOp::Sub, Width::new(4));
    }

    #[test]
    fn mul_matches_semantics() {
        exhaustive_check(BinOp::Mul, Width::new(4));
    }

    #[test]
    fn udiv_matches_semantics() {
        exhaustive_check(BinOp::UDiv, Width::new(3));
    }

    #[test]
    fn urem_matches_semantics() {
        exhaustive_check(BinOp::URem, Width::new(3));
    }

    #[test]
    fn sdiv_matches_semantics() {
        exhaustive_check(BinOp::SDiv, Width::new(3));
    }

    #[test]
    fn srem_matches_semantics() {
        exhaustive_check(BinOp::SRem, Width::new(3));
    }

    #[test]
    fn shl_matches_semantics() {
        exhaustive_check(BinOp::Shl, Width::new(4));
    }

    #[test]
    fn lshr_matches_semantics() {
        exhaustive_check(BinOp::LShr, Width::new(4));
    }

    #[test]
    fn ashr_matches_semantics() {
        exhaustive_check(BinOp::AShr, Width::new(4));
    }

    #[test]
    fn shifts_at_non_power_of_two_width() {
        exhaustive_check(BinOp::Shl, Width::new(3));
        exhaustive_check(BinOp::LShr, Width::new(3));
        exhaustive_check(BinOp::AShr, Width::new(3));
    }

    #[test]
    fn comparisons_match_semantics() {
        for op in [BinOp::Eq, BinOp::Ne, BinOp::ULt, BinOp::ULe, BinOp::SLt, BinOp::SLe] {
            exhaustive_check(op, Width::new(3));
        }
    }

    #[test]
    fn bitwise_match_semantics() {
        for op in [BinOp::And, BinOp::Or, BinOp::Xor] {
            exhaustive_check(op, Width::new(4));
        }
    }

    #[test]
    fn model_extraction_decodes_variables() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let c = b.eq(x.clone(), b.constant(0xa5, Width::W8));
        let mut sat = SatSolver::new();
        let mut bb = BitBlaster::new(&mut sat);
        bb.assert_true(&mut sat, &c);
        assert_eq!(sat.solve(u64::MAX), SatOutcome::Sat);
        let (id, bits) = bb.blasted_vars().next().unwrap();
        let mut v = 0u64;
        for (i, &bit) in bits.iter().enumerate() {
            if sat.model_value(bit).unwrap() {
                v |= 1 << i;
            }
        }
        assert_eq!(v, 0xa5);
        assert!(bb.bits_of_var(id).is_some());
    }

    #[test]
    fn concat_extract_blast() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let cat = b.concat(x.clone(), y.clone());
        // Assert concat == 0xab_cd, then x must be 0xab and y 0xcd.
        let c = b.eq(cat, b.constant(0xabcd, Width::W16));
        let cx = b.ne(x, b.constant(0xab, Width::W8));
        let mut sat = SatSolver::new();
        let mut bb = BitBlaster::new(&mut sat);
        bb.assert_true(&mut sat, &c);
        bb.assert_true(&mut sat, &cx);
        assert_eq!(sat.solve(u64::MAX), SatOutcome::Unsat);
    }

    #[test]
    fn sext_blast() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let wide = b.sext(x.clone(), Width::W16);
        // x == 0x80 (negative) forces the wide value to 0xff80.
        let c1 = b.eq(x, b.constant(0x80, Width::W8));
        let c2 = b.ne(wide, b.constant(0xff80, Width::W16));
        let mut sat = SatSolver::new();
        let mut bb = BitBlaster::new(&mut sat);
        bb.assert_true(&mut sat, &c1);
        bb.assert_true(&mut sat, &c2);
        assert_eq!(sat.solve(u64::MAX), SatOutcome::Unsat);
    }

    #[test]
    fn ite_blast() {
        let b = ExprBuilder::new();
        let c = b.var("c", Width::BOOL);
        let e = b.ite(c.clone(), b.constant(3, Width::W8), b.constant(7, Width::W8));
        // e == 7 forces c == 0.
        let q1 = b.eq(e, b.constant(7, Width::W8));
        let q2 = b.eq(c, b.true_());
        let mut sat = SatSolver::new();
        let mut bb = BitBlaster::new(&mut sat);
        bb.assert_true(&mut sat, &q1);
        bb.assert_true(&mut sat, &q2);
        assert_eq!(sat.solve(u64::MAX), SatOutcome::Unsat);
    }

    #[test]
    fn shared_subdag_blasted_once() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let shared = b.add(x.clone(), b.constant(1, Width::W8));
        let e = b.eq(shared.clone(), shared.clone());
        let mut sat = SatSolver::new();
        let mut bb = BitBlaster::new(&mut sat);
        let before = sat.num_vars();
        let bits = bb.blast(&mut sat, &e);
        // x (8 vars) plus gate vars; the shared add must not double the
        // count. (eq of identical vectors folds to true at the gate level.)
        assert_eq!(bits[0], bb.true_lit());
        assert!(sat.num_vars() <= before + 8 + 32);
    }
}
