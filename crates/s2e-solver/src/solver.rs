//! High-level constraint-solving interface with caching and statistics.

use crate::bitblast::BitBlaster;
use crate::sat::{SatOutcome, SatSolver};
use s2e_expr::{collect_vars, eval, simplify, Assignment, ExprBuilder, ExprRef};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Outcome of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a model assigning every variable in the query.
    Sat(Assignment),
    /// Definitely unsatisfiable.
    Unsat,
    /// The conflict budget ran out.
    Unknown,
}

impl SatResult {
    /// True for [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// What a query was issued for — used to attribute solver time in the
/// Fig. 9 reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QueryKind {
    /// Branch-feasibility check at a fork point.
    Feasibility,
    /// Concretization of a symbolic value at a symbolic→concrete boundary.
    Concretize,
    /// Other (tool-initiated) queries.
    Other,
}

/// Tunables for the solver frontend.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Conflict budget per SAT search before returning `Unknown`.
    pub max_conflicts: u64,
    /// How many recent models to keep for the counterexample-pool fast
    /// path.
    pub model_pool_size: usize,
    /// Whether to run the bitfield-theory simplifier on every constraint
    /// before solving (the paper's §5 optimization; an ablation bench
    /// toggles this).
    pub simplify_queries: bool,
    /// Whether to consult the query cache and model pool.
    pub enable_cache: bool,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            max_conflicts: 4_000_000,
            model_pool_size: 8,
            simplify_queries: true,
            enable_cache: true,
        }
    }
}

/// Aggregate statistics over all queries issued to a [`Solver`].
#[derive(Clone, Debug, Default)]
pub struct SolverStats {
    /// Queries answered (including cache hits).
    pub queries: u64,
    /// Queries answered satisfiable.
    pub sat: u64,
    /// Queries answered unsatisfiable.
    pub unsat: u64,
    /// Queries that exhausted the conflict budget.
    pub unknown: u64,
    /// Queries answered from the exact-match cache.
    pub cache_hits: u64,
    /// Queries answered from the cross-worker shared cache (always a
    /// local miss first, so every shared hit is work another solver
    /// instance did).
    pub shared_hits: u64,
    /// Queries answered by re-checking a pooled model.
    pub pool_hits: u64,
    /// Wall-clock time spent inside the solver (including cache lookups).
    pub total_time: Duration,
    /// Longest single query.
    pub max_query_time: Duration,
}

impl SolverStats {
    /// Mean time per query; zero if no queries ran.
    pub fn avg_query_time(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.queries as u32
        }
    }
}

#[derive(Clone, Debug)]
enum Cached {
    Sat(Assignment),
    Unsat,
}

/// A cache entry stores the constraint set it answers for, so a 64-bit
/// key collision between different queries cannot return a wrong cached
/// verdict (equality is cheap: `ExprRef` fast-rejects on cached hashes).
#[derive(Clone, Debug)]
struct CacheEntry {
    constraints: Vec<ExprRef>,
    outcome: Cached,
}

/// Aggregate counters for a [`SharedQueryCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups answered by the shared cache.
    pub hits: u64,
    /// Entries published into the shared cache.
    pub inserts: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// A query cache shared between solver instances — the warm cache the
/// parallel explorer hands every worker.
///
/// Exploration forks re-check near-identical constraint prefixes, and
/// with work-stealing those prefixes migrate between workers; a private
/// cold cache per worker would redo every solve the previous owner
/// already paid for. Entries verify full structural equality of the
/// constraint set on lookup, so a 64-bit key collision can never return
/// a wrong cached verdict. Clones share the same underlying storage.
#[derive(Clone, Debug, Default)]
pub struct SharedQueryCache {
    entries: Arc<Mutex<HashMap<u64, CacheEntry>>>,
    hits: Arc<AtomicU64>,
    inserts: Arc<AtomicU64>,
}

impl SharedQueryCache {
    /// Creates an empty shared cache.
    pub fn new() -> SharedQueryCache {
        SharedQueryCache::default()
    }

    fn get(&self, key: u64, query: &[ExprRef]) -> Option<CacheEntry> {
        let entries = self.entries.lock().unwrap();
        let hit = entries.get(&key)?;
        if !Solver::same_query(&hit.constraints, query) {
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(hit.clone())
    }

    fn insert(&self, key: u64, entry: CacheEntry) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().unwrap().insert(key, entry);
    }

    /// Counters (aggregated across every attached solver).
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap().len(),
        }
    }

    /// Lookups answered by the shared cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True if nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The constraint solver used by the execution engine.
///
/// Wraps the SAT core with the two optimizations KLEE made standard —
/// an exact query cache and a counterexample (model) pool — plus the
/// per-query timing needed to reproduce the paper's solver measurements.
///
/// # Example
///
/// ```
/// use s2e_expr::{ExprBuilder, Width};
/// use s2e_solver::Solver;
///
/// let b = ExprBuilder::new();
/// let x = b.var("x", Width::W8);
/// let c = b.ult(x.clone(), b.constant(10, Width::W8));
/// let mut solver = Solver::new();
/// assert!(solver.check(&[c.clone()]).is_sat());
/// // A value consistent with the constraints:
/// let (v, _model) = solver.concretize(&[c], &x).unwrap();
/// assert!(v < 10);
/// ```
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    cache: HashMap<u64, CacheEntry>,
    /// Cross-instance cache, consulted after a local miss and fed by
    /// every fresh solve (see [`SharedQueryCache`]).
    shared: Option<SharedQueryCache>,
    model_pool: VecDeque<Assignment>,
    stats: SolverStats,
    /// Private builder used only to materialize constants during
    /// simplification; it never creates variables.
    simp_builder: ExprBuilder,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            config,
            cache: HashMap::new(),
            shared: None,
            model_pool: VecDeque::new(),
            stats: SolverStats::default(),
            simp_builder: ExprBuilder::new(),
        }
    }

    /// Attaches a cross-instance shared query cache. Hits against it are
    /// counted separately ([`SolverStats::shared_hits`]) from local hits.
    pub fn attach_shared_cache(&mut self, shared: SharedQueryCache) {
        self.shared = Some(shared);
    }

    /// The attached shared cache, if any.
    pub fn shared_cache(&self) -> Option<&SharedQueryCache> {
        self.shared.as_ref()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Resets the statistics (the cache is kept).
    pub fn reset_stats(&mut self) {
        self.stats = SolverStats::default();
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Checks the conjunction of `constraints` for satisfiability.
    pub fn check(&mut self, constraints: &[ExprRef]) -> SatResult {
        self.check_kind(constraints, QueryKind::Other)
    }

    /// Checks satisfiability, attributing the query to `kind` for
    /// statistics.
    pub fn check_kind(&mut self, constraints: &[ExprRef], kind: QueryKind) -> SatResult {
        let _ = kind;
        let start = Instant::now();
        let result = self.check_inner(constraints);
        let elapsed = start.elapsed();
        self.stats.queries += 1;
        self.stats.total_time += elapsed;
        self.stats.max_query_time = self.stats.max_query_time.max(elapsed);
        match &result {
            SatResult::Sat(_) => self.stats.sat += 1,
            SatResult::Unsat => self.stats.unsat += 1,
            SatResult::Unknown => self.stats.unknown += 1,
        }
        result
    }

    fn check_inner(&mut self, constraints: &[ExprRef]) -> SatResult {
        // Simplify and strip trivially-true constraints.
        let mut simplified: Vec<ExprRef> = Vec::with_capacity(constraints.len());
        for c in constraints {
            debug_assert_eq!(c.width(), s2e_expr::Width::BOOL, "constraints are boolean");
            let s = if self.config.simplify_queries {
                simplify(c, &self.simp_builder)
            } else {
                c.clone()
            };
            match s.as_const() {
                Some(0) => return SatResult::Unsat,
                Some(_) => continue,
                // X ∧ X = X: dropping duplicates keeps the CNF smaller
                // and gives re-checks of an already-asserted condition
                // (a guest re-validating a bound) the same cache key as
                // the fork query that first solved this constraint set.
                None => {
                    if !simplified.contains(&s) {
                        simplified.push(s);
                    }
                }
            }
        }
        if simplified.is_empty() {
            return SatResult::Sat(Assignment::new());
        }

        let key = Self::cache_key(&simplified);
        if self.config.enable_cache {
            if let Some(hit) = self.cache.get(&key) {
                if Self::same_query(&hit.constraints, &simplified) {
                    self.stats.cache_hits += 1;
                    return match &hit.outcome {
                        Cached::Sat(m) => SatResult::Sat(m.clone()),
                        Cached::Unsat => SatResult::Unsat,
                    };
                }
            }
            // Cross-instance cache: another worker may have solved this
            // exact query already. Adopt the entry locally so repeats
            // stay off the shared lock.
            if let Some(shared) = &self.shared {
                if let Some(hit) = shared.get(key, &simplified) {
                    self.stats.shared_hits += 1;
                    let result = match &hit.outcome {
                        Cached::Sat(m) => SatResult::Sat(m.clone()),
                        Cached::Unsat => SatResult::Unsat,
                    };
                    if let Cached::Sat(m) = &hit.outcome {
                        self.model_pool.push_front(m.clone());
                        self.model_pool.truncate(self.config.model_pool_size);
                    }
                    self.cache.insert(key, hit);
                    return result;
                }
            }
            // Counterexample pool: a previous model (extended with zeros
            // for unseen variables) may already satisfy this query.
            if let Some(model) = self.try_model_pool(&simplified) {
                self.stats.pool_hits += 1;
                self.insert_both(
                    key,
                    CacheEntry {
                        constraints: simplified.clone(),
                        outcome: Cached::Sat(model.clone()),
                    },
                );
                return SatResult::Sat(model);
            }
        }

        let mut sat = SatSolver::new();
        let mut bb = BitBlaster::new(&mut sat);
        for c in &simplified {
            bb.assert_true(&mut sat, c);
        }
        match sat.solve(self.config.max_conflicts) {
            SatOutcome::Unsat => {
                if self.config.enable_cache {
                    self.insert_both(
                        key,
                        CacheEntry {
                            constraints: simplified.clone(),
                            outcome: Cached::Unsat,
                        },
                    );
                }
                SatResult::Unsat
            }
            SatOutcome::Unknown => SatResult::Unknown,
            SatOutcome::Sat => {
                let mut model = Assignment::new();
                for (id, bits) in bb.blasted_vars() {
                    let mut v = 0u64;
                    for (i, &bit) in bits.iter().enumerate() {
                        if sat.model_value(bit).unwrap_or(false) {
                            v |= 1 << i;
                        }
                    }
                    model.set(id, v);
                }
                if self.config.enable_cache {
                    self.insert_both(
                        key,
                        CacheEntry {
                            constraints: simplified.clone(),
                            outcome: Cached::Sat(model.clone()),
                        },
                    );
                    self.model_pool.push_front(model.clone());
                    self.model_pool.truncate(self.config.model_pool_size);
                }
                SatResult::Sat(model)
            }
        }
    }

    /// Inserts a finished query into the local cache and, when attached,
    /// publishes it to the shared cache.
    fn insert_both(&mut self, key: u64, entry: CacheEntry) {
        if let Some(shared) = &self.shared {
            shared.insert(key, entry.clone());
        }
        self.cache.insert(key, entry);
    }

    /// Structural equality of two queries as unordered constraint sets.
    fn same_query(a: &[ExprRef], b: &[ExprRef]) -> bool {
        a.len() == b.len() && b.iter().all(|c| a.contains(c))
    }

    fn cache_key(constraints: &[ExprRef]) -> u64 {
        let mut hashes: Vec<u64> = constraints.iter().map(|c| c.cached_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for h in hashes {
            acc ^= h;
            acc = acc.wrapping_mul(0x1000_0000_01b3);
        }
        acc
    }

    fn try_model_pool(&self, constraints: &[ExprRef]) -> Option<Assignment> {
        'pool: for model in &self.model_pool {
            let extended = Self::extend_model(model, constraints);
            for c in constraints {
                match eval(c, &extended) {
                    Ok(1) => {}
                    _ => continue 'pool,
                }
            }
            return Some(extended);
        }
        None
    }

    fn extend_model(model: &Assignment, constraints: &[ExprRef]) -> Assignment {
        let mut out = model.clone();
        for c in constraints {
            for (id, _, _) in collect_vars(c) {
                if out.get(id, "").is_none() {
                    out.set(id, 0);
                }
            }
        }
        out
    }

    /// True if `cond` can be true under the constraints; `None` if the
    /// solver gave up.
    pub fn may_be_true(&mut self, constraints: &[ExprRef], cond: &ExprRef) -> Option<bool> {
        let mut q = constraints.to_vec();
        q.push(cond.clone());
        match self.check_kind(&q, QueryKind::Feasibility) {
            SatResult::Sat(_) => Some(true),
            SatResult::Unsat => Some(false),
            SatResult::Unknown => None,
        }
    }

    /// True if `cond` holds on every solution of the constraints; `None`
    /// if the solver gave up.
    pub fn must_be_true(&mut self, constraints: &[ExprRef], cond: &ExprRef) -> Option<bool> {
        let not_cond = {
            let b = &self.simp_builder;
            b.eq(cond.clone(), b.constant(0, cond.width()))
        };
        self.may_be_true(constraints, &not_cond).map(|x| !x)
    }

    /// Finds a concrete value for `expr` consistent with the constraints,
    /// along with the model that produced it.
    ///
    /// This is the workhorse of the symbolic→concrete transition (§2.2 of
    /// the paper): the returned value becomes the soft constraint
    /// `expr == value` on the current path.
    ///
    /// Returns `None` if the constraints are unsatisfiable or the solver
    /// gave up.
    pub fn concretize(
        &mut self,
        constraints: &[ExprRef],
        expr: &ExprRef,
    ) -> Option<(u64, Assignment)> {
        if let Some(v) = expr.as_const() {
            return Some((v, Assignment::new()));
        }
        // Mention the expression in the query so its variables get blasted
        // and appear in the model: assert expr == expr-placeholder-free
        // trivial constraint `expr == expr` folds away, so instead add
        // `(expr == 0) or (expr != 0)`... simpler: solve constraints, then
        // extend the model with zeros for unmentioned variables.
        let start = Instant::now();
        let result = self.check_kind(constraints, QueryKind::Concretize);
        let _ = start;
        match result {
            SatResult::Sat(model) => {
                let mut extended = model;
                for (id, _, _) in collect_vars(expr) {
                    if extended.get(id, "").is_none() {
                        extended.set(id, 0);
                    }
                }
                let v = eval(expr, &extended).ok()?;
                Some((v, extended))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_expr::Width;

    fn setup() -> (ExprBuilder, Solver) {
        (ExprBuilder::new(), Solver::new())
    }

    #[test]
    fn empty_query_is_sat() {
        let (_, mut s) = setup();
        assert!(s.check(&[]).is_sat());
    }

    #[test]
    fn trivially_false_is_unsat() {
        let (b, mut s) = setup();
        assert_eq!(s.check(&[b.false_()]), SatResult::Unsat);
    }

    #[test]
    fn linear_equation_solved() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W16);
        // 3x + 7 == 100  =>  x == 31
        let lhs = b.add(
            b.mul(x.clone(), b.constant(3, Width::W16)),
            b.constant(7, Width::W16),
        );
        let c = b.eq(lhs, b.constant(100, Width::W16));
        match s.check(&[c]) {
            SatResult::Sat(m) => assert_eq!(eval(&x, &m).unwrap(), 31),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_constraints_unsat() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let c1 = b.ult(x.clone(), b.constant(5, Width::W8));
        let c2 = b.ult(b.constant(10, Width::W8), x);
        assert_eq!(s.check(&[c1, c2]), SatResult::Unsat);
    }

    #[test]
    fn cache_hits_on_repeat() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let c = b.eq(x, b.constant(3, Width::W8));
        s.check(std::slice::from_ref(&c));
        let before = s.stats().cache_hits;
        s.check(&[c]);
        assert_eq!(s.stats().cache_hits, before + 1);
    }

    #[test]
    fn model_pool_answers_weaker_query() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let eq = b.eq(x.clone(), b.constant(3, Width::W8));
        let lt = b.ult(x, b.constant(10, Width::W8));
        s.check(&[eq]);
        // The model x=3 also satisfies x<10; should be a pool hit.
        let before = s.stats().pool_hits;
        assert!(s.check(&[lt]).is_sat());
        assert_eq!(s.stats().pool_hits, before + 1);
    }

    #[test]
    fn may_and_must() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let c = b.ult(x.clone(), b.constant(5, Width::W8)); // x < 5
        let lt10 = b.ult(x.clone(), b.constant(10, Width::W8));
        let eq7 = b.eq(x.clone(), b.constant(7, Width::W8));
        assert_eq!(s.must_be_true(std::slice::from_ref(&c), &lt10), Some(true));
        assert_eq!(s.may_be_true(std::slice::from_ref(&c), &eq7), Some(false));
        let eq2 = b.eq(x, b.constant(2, Width::W8));
        assert_eq!(s.may_be_true(&[c], &eq2), Some(true));
    }

    #[test]
    fn concretize_respects_constraints() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let lo = b.ule(b.constant(100, Width::W8), x.clone());
        let hi = b.ule(x.clone(), b.constant(110, Width::W8));
        let (v, model) = s.concretize(&[lo, hi], &x).unwrap();
        assert!((100..=110).contains(&v), "v={v}");
        assert_eq!(eval(&x, &model).unwrap(), v);
    }

    #[test]
    fn concretize_constant_is_free() {
        let (b, mut s) = setup();
        let c = b.constant(42, Width::W8);
        let (v, _) = s.concretize(&[], &c).unwrap();
        assert_eq!(v, 42);
        assert_eq!(s.stats().queries, 0);
    }

    #[test]
    fn concretize_unconstrained_var_defaults() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let (v, model) = s.concretize(&[], &x).unwrap();
        assert_eq!(eval(&x, &model).unwrap(), v);
    }

    #[test]
    fn stats_track_time_and_outcomes() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        s.check(&[b.eq(x.clone(), b.constant(1, Width::W8))]);
        s.check(&[b.false_()]);
        let st = s.stats();
        assert_eq!(st.queries, 2);
        assert_eq!(st.sat, 1);
        assert_eq!(st.unsat, 1);
        assert!(st.avg_query_time() <= st.max_query_time.max(st.total_time));
    }

    #[test]
    fn shared_cache_crosses_solver_instances() {
        let b = ExprBuilder::new();
        let shared = SharedQueryCache::new();
        let x = b.var("x", Width::W8);
        let c = b.eq(x.clone(), b.constant(3, Width::W8));

        let mut s1 = Solver::new();
        s1.attach_shared_cache(shared.clone());
        assert!(s1.check(std::slice::from_ref(&c)).is_sat());
        assert_eq!(s1.stats().shared_hits, 0);
        assert_eq!(shared.stats().inserts, 1);

        // A different solver instance with a cold local cache answers the
        // same query from the shared cache without re-solving.
        let mut s2 = Solver::new();
        s2.attach_shared_cache(shared.clone());
        match s2.check(std::slice::from_ref(&c)) {
            SatResult::Sat(m) => assert_eq!(eval(&x, &m).unwrap(), 3),
            other => panic!("expected sat, got {other:?}"),
        }
        assert_eq!(s2.stats().shared_hits, 1);
        assert_eq!(shared.hits(), 1);

        // Repeat on s2 now hits locally, not the shared lock.
        s2.check(&[c]);
        assert_eq!(s2.stats().cache_hits, 1);
        assert_eq!(shared.hits(), 1);
    }

    #[test]
    fn shared_cache_unsat_and_stats() {
        let b = ExprBuilder::new();
        let shared = SharedQueryCache::new();
        let x = b.var("x", Width::W8);
        let c1 = b.ult(x.clone(), b.constant(5, Width::W8));
        let c2 = b.ult(b.constant(10, Width::W8), x);

        let mut s1 = Solver::new();
        s1.attach_shared_cache(shared.clone());
        assert_eq!(s1.check(&[c1.clone(), c2.clone()]), SatResult::Unsat);

        let mut s2 = Solver::new();
        s2.attach_shared_cache(shared.clone());
        // Constraint order must not matter for the shared hit.
        assert_eq!(s2.check(&[c2, c1]), SatResult::Unsat);
        assert_eq!(s2.stats().shared_hits, 1);
        assert!(!shared.is_empty());
        assert_eq!(shared.stats().entries, shared.len());
    }

    #[test]
    fn disabled_cache_still_correct() {
        let b = ExprBuilder::new();
        let mut s = Solver::with_config(SolverConfig {
            enable_cache: false,
            ..SolverConfig::default()
        });
        let x = b.var("x", Width::W8);
        let c = b.eq(x, b.constant(3, Width::W8));
        assert!(s.check(std::slice::from_ref(&c)).is_sat());
        assert!(s.check(&[c]).is_sat());
        assert_eq!(s.stats().cache_hits, 0);
    }

    #[test]
    fn unsimplified_queries_still_correct() {
        let b = ExprBuilder::new();
        let mut s = Solver::with_config(SolverConfig {
            simplify_queries: false,
            ..SolverConfig::default()
        });
        let x = b.var("x", Width::W8);
        let masked = b.and(x.clone(), b.constant(0x0f, Width::W8));
        let c = b.eq(masked, b.constant(0x05, Width::W8));
        match s.check(&[c]) {
            SatResult::Sat(m) => {
                let v = eval(&x, &m).unwrap();
                assert_eq!(v & 0x0f, 0x05);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn wide_constraint_64_bit() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W64);
        let c = b.eq(
            b.mul(x.clone(), b.constant(3, Width::W64)),
            b.constant(0x3fff_ffff_ffff_fffd, Width::W64),
        );
        // 3x == 0x3ffffffffffffffd (mod 2^64); x = inverse(3)*rhs.
        match s.check(&[c]) {
            SatResult::Sat(m) => {
                let v = eval(&x, &m).unwrap();
                assert_eq!(v.wrapping_mul(3), 0x3fff_ffff_ffff_fffd);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }
}
