//! High-level constraint-solving interface with caching and statistics.

use crate::bitblast::BitBlaster;
use crate::independence::{self, ConstraintPartition};
use crate::sat::{SatOutcome, SatSolver};
use s2e_expr::{eval, simplify, Assignment, ExprBuilder, ExprRef, VarId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Outcome of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a model assigning every variable in the query.
    Sat(Assignment),
    /// Definitely unsatisfiable.
    Unsat,
    /// The conflict budget ran out.
    Unknown,
}

impl SatResult {
    /// True for [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// What a query was issued for — used to attribute solver time in the
/// Fig. 9 reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QueryKind {
    /// Branch-feasibility check at a fork point.
    Feasibility,
    /// Concretization of a symbolic value at a symbolic→concrete boundary.
    Concretize,
    /// Other (tool-initiated) queries.
    Other,
}

impl QueryKind {
    /// Every kind, in display order.
    pub const ALL: [QueryKind; 3] = [QueryKind::Feasibility, QueryKind::Concretize, QueryKind::Other];

    /// Position in per-kind stats arrays ([`SolverStats::by_kind`]).
    pub fn index(self) -> usize {
        match self {
            QueryKind::Feasibility => 0,
            QueryKind::Concretize => 1,
            QueryKind::Other => 2,
        }
    }

    /// Short lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Feasibility => "feasibility",
            QueryKind::Concretize => "concretize",
            QueryKind::Other => "other",
        }
    }
}

/// Tunables for the solver frontend.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Conflict budget per SAT search before returning `Unknown`.
    pub max_conflicts: u64,
    /// How many recent models to keep for the counterexample-pool fast
    /// path.
    pub model_pool_size: usize,
    /// Whether to run the bitfield-theory simplifier on every constraint
    /// before solving (the paper's §5 optimization; an ablation bench
    /// toggles this).
    pub simplify_queries: bool,
    /// Whether to consult the query cache and model pool.
    pub enable_cache: bool,
    /// Whether to split queries into independent components (no shared
    /// variables) and solve/cache each separately (see
    /// [`crate::independence`]). Also gates the sliced entry points
    /// ([`Solver::may_be_true_in`] etc.), which fall back to the full
    /// constraint set when this is off.
    pub enable_slicing: bool,
    /// Whether cache lookups may answer from subsuming entries: a cached
    /// superset's SAT model (after an `eval` recheck) answers a subset
    /// query, and a cached subset's UNSAT verdict answers any superset.
    pub enable_subsumption: bool,
    /// Maximum entries held by the query cache. When an insert pushes the
    /// store past this cap, the coldest eighth — fewest exact hits,
    /// oldest insertion as the tie-break — is evicted in one batch and
    /// the subsumption indexes are pruned, so long explorations hold
    /// memory steady instead of accreting every constraint set they ever
    /// solved. Applies to the solver-local store; the cross-worker
    /// [`SharedQueryCache`] takes its own cap at construction.
    pub cache_capacity: usize,
    /// Debugging cross-check (set `S2E_SOLVER_PARANOID=1`): every
    /// waterfall verdict is re-derived by a fresh cache-free core solve
    /// and every sliced verdict re-checked against the full constraint
    /// set; any disagreement panics with the offending query. Orders of
    /// magnitude slower — never enabled in benches or gates.
    pub paranoid: bool,
}

/// Default query-cache capacity (entries), shared by the solver-local
/// store and [`SharedQueryCache::new`]. Sized so steady-state exploration
/// of the bundled guests never evicts, while a pathological workload
/// (fresh constraints every fork, no reuse) stays bounded.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            max_conflicts: 4_000_000,
            model_pool_size: 8,
            simplify_queries: true,
            enable_cache: true,
            enable_slicing: true,
            enable_subsumption: true,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            paranoid: std::env::var_os("S2E_SOLVER_PARANOID").is_some(),
        }
    }
}

/// Per-[`QueryKind`] slice of the solver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct KindStats {
    /// Queries of this kind.
    pub queries: u64,
    /// ... answered satisfiable.
    pub sat: u64,
    /// ... answered unsatisfiable.
    pub unsat: u64,
    /// ... that exhausted the conflict budget.
    pub unknown: u64,
    /// Wall-clock time spent on queries of this kind.
    pub time: Duration,
}

/// Aggregate statistics over all queries issued to a [`Solver`].
#[derive(Clone, Debug, Default)]
pub struct SolverStats {
    /// Queries answered (including cache hits).
    pub queries: u64,
    /// Queries answered satisfiable.
    pub sat: u64,
    /// Queries answered unsatisfiable.
    pub unsat: u64,
    /// Queries that exhausted the conflict budget.
    pub unknown: u64,
    /// Queries answered from the exact-match cache.
    pub cache_hits: u64,
    /// Queries answered from the cross-worker shared cache (always a
    /// local miss first, so every shared hit is work another solver
    /// instance did).
    pub shared_hits: u64,
    /// Queries answered by re-checking a pooled model.
    pub pool_hits: u64,
    /// Component queries answered by cache subsumption (a superset's SAT
    /// model or a subset's UNSAT verdict), local or shared, instead of an
    /// exact entry.
    pub subsumption_hits: u64,
    /// Component sets that reached the SAT core — every cache layer
    /// missed. This is the number the optimization stack exists to drive
    /// down.
    pub core_solves: u64,
    /// Queries where slicing changed the solved set: a `check` that
    /// split into more than one independent component, or a
    /// partition-aware query ([`Solver::check_relevant`] and friends)
    /// whose slice dropped at least one untouched component.
    pub sliced_queries: u64,
    /// Components solved separately on behalf of sliced queries.
    pub components_solved: u64,
    /// Entries the local exact-match cache has evicted under capacity
    /// pressure (snapshot of [`QueryStore`]'s counter).
    pub cache_evictions: u64,
    /// Entries currently held by the local exact-match cache (snapshot).
    pub cache_entries: u64,
    /// Wall-clock time spent inside the solver (including cache lookups).
    pub total_time: Duration,
    /// Longest single query.
    pub max_query_time: Duration,
    /// Per-[`QueryKind`] breakdown, indexed by [`QueryKind::index`].
    pub by_kind: [KindStats; 3],
}

impl SolverStats {
    /// Mean time per query; zero if no queries ran.
    pub fn avg_query_time(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.queries as u32
        }
    }

    /// The per-kind slice for `kind`.
    pub fn kind(&self, kind: QueryKind) -> &KindStats {
        &self.by_kind[kind.index()]
    }

    /// Folds another solver's statistics into this one (parallel
    /// workers' per-engine solvers merged into one report). Counters and
    /// times are summed — per-solver CPU time, like
    /// `EngineStats::cpu_time` — except `max_query_time`, which takes
    /// the maximum, and the two cache snapshots, which sum entries and
    /// evictions across the disjoint per-worker caches.
    pub fn merge(&mut self, other: &SolverStats) {
        self.queries += other.queries;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.unknown += other.unknown;
        self.cache_hits += other.cache_hits;
        self.shared_hits += other.shared_hits;
        self.pool_hits += other.pool_hits;
        self.subsumption_hits += other.subsumption_hits;
        self.core_solves += other.core_solves;
        self.sliced_queries += other.sliced_queries;
        self.components_solved += other.components_solved;
        self.cache_evictions += other.cache_evictions;
        self.cache_entries += other.cache_entries;
        self.total_time += other.total_time;
        self.max_query_time = self.max_query_time.max(other.max_query_time);
        for (mine, theirs) in self.by_kind.iter_mut().zip(other.by_kind.iter()) {
            mine.queries += theirs.queries;
            mine.sat += theirs.sat;
            mine.unsat += theirs.unsat;
            mine.unknown += theirs.unknown;
            mine.time += theirs.time;
        }
    }
}

#[derive(Clone, Debug)]
enum Cached {
    Sat(Assignment),
    Unsat,
}

/// A cache entry stores the constraint set it answers for, so a 64-bit
/// key collision between different queries cannot return a wrong cached
/// verdict (equality is cheap: `ExprRef` fast-rejects on cached hashes).
#[derive(Clone, Debug)]
struct CacheEntry {
    constraints: Vec<ExprRef>,
    outcome: Cached,
    /// Whether a SAT model is the *canonical* one — produced by a core
    /// solve of exactly this constraint set, which is deterministic
    /// across processes and schedules. Models adopted from the model
    /// pool or a subsuming entry are sound witnesses but depend on query
    /// history; concretization must not consume them, or the value an
    /// expression concretizes to (and every path decision downstream of
    /// it) would vary with scheduling and state placement. Verdicts are
    /// facts, so UNSAT entries are always canonical.
    canonical: bool,
}

/// How many indexed candidates a subsumption lookup may examine before
/// giving up — bounds the lookup cost on pathological stores where one
/// constraint appears in thousands of cached sets.
const MAX_SUBSUMPTION_CANDIDATES: usize = 32;

/// What a [`QueryStore`] lookup found beyond an exact match.
enum StoreAnswer {
    /// An exact entry's outcome, plus whether its model is canonical.
    Exact(Cached, bool),
    /// A cached SAT superset's model; the caller must still eval-recheck
    /// it against the query before trusting it.
    SupersetSat(Assignment),
    /// Some cached UNSAT set is a subset of the query.
    SubsetUnsat,
}

/// A [`CacheEntry`] plus the retention metadata eviction ranks on.
#[derive(Debug)]
struct StoredEntry {
    entry: CacheEntry,
    /// Exact-match lookups this entry has answered. Subsumption answers
    /// do not bump it: a useful subsuming entry gets promoted to an
    /// exact entry at the querying key anyway, and that promotion is
    /// what repeats will hit.
    hits: u64,
    /// Monotonic insertion counter; breaks hit-count ties so the oldest
    /// cold entry is evicted first.
    stamp: u64,
}

/// Cache storage shared by the local and cross-worker caches: exact
/// entries keyed by order-independent query hash, plus the two inverted
/// indexes subsumption lookups walk.
///
/// Both indexes store candidate *keys*; the lookup re-verifies the
/// subset/superset relation structurally against the live entry, so
/// stale index rows (an entry overwritten under its key) and 64-bit
/// constraint-hash collisions cost a wasted check, never a wrong answer.
///
/// The store is capacity-capped: inserts past `capacity` trigger a batch
/// eviction of the least-hit entries (see [`QueryStore::evict_cold`]).
#[derive(Debug)]
struct QueryStore {
    entries: HashMap<u64, StoredEntry>,
    /// constraint hash → keys of SAT entries containing that constraint.
    /// A superset of a query must contain every query constraint, so the
    /// query member with the smallest bucket anchors the candidate scan.
    by_member: HashMap<u64, Vec<u64>>,
    /// Representative constraint hash (minimum over the set) → keys of
    /// UNSAT entries. A superset query necessarily contains the
    /// representative, so scanning the buckets of the query's own
    /// members finds every subsumed core.
    unsat_by_rep: HashMap<u64, Vec<u64>>,
    /// Hard cap on `entries`; see [`SolverConfig::cache_capacity`].
    capacity: usize,
    next_stamp: u64,
    /// Entries removed by [`QueryStore::evict_cold`] so far.
    evictions: u64,
}

impl Default for QueryStore {
    fn default() -> QueryStore {
        QueryStore {
            entries: HashMap::new(),
            by_member: HashMap::new(),
            unsat_by_rep: HashMap::new(),
            capacity: DEFAULT_CACHE_CAPACITY,
            next_stamp: 0,
            evictions: 0,
        }
    }
}

impl QueryStore {
    fn get_exact(&mut self, key: u64, query: &[ExprRef]) -> Option<&CacheEntry> {
        let hit = self.entries.get_mut(&key)?;
        if !Solver::same_query(&hit.entry.constraints, query) {
            return None;
        }
        hit.hits += 1;
        Some(&hit.entry)
    }

    fn insert(&mut self, key: u64, entry: CacheEntry) {
        // A zero-capacity store caches nothing; inserting just to evict
        // the same entry one line later would churn the inverted
        // indexes for no retention at all.
        if self.capacity == 0 {
            return;
        }
        match &entry.outcome {
            Cached::Sat(_) => {
                for c in &entry.constraints {
                    let bucket = self.by_member.entry(c.cached_hash()).or_default();
                    if bucket.last() != Some(&key) {
                        bucket.push(key);
                    }
                }
            }
            Cached::Unsat => {
                if let Some(rep) = entry.constraints.iter().map(|c| c.cached_hash()).min() {
                    let bucket = self.unsat_by_rep.entry(rep).or_default();
                    if bucket.last() != Some(&key) {
                        bucket.push(key);
                    }
                }
            }
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.entries.insert(key, StoredEntry { entry, hits: 0, stamp });
        if self.entries.len() > self.capacity {
            self.evict_cold();
        }
    }

    /// Replaces the capacity cap, evicting immediately if the store is
    /// already over it.
    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if self.entries.len() > self.capacity {
            self.evict_cold();
        }
    }

    /// Batch-evicts down to 7/8 of capacity, dropping the entries with
    /// the fewest exact hits (oldest first among ties), then prunes the
    /// inverted indexes of keys that no longer resolve. Evicting an
    /// eighth at a time keeps the ranking sort off the per-insert path:
    /// one O(n log n) wave amortizes over capacity/8 subsequent inserts.
    /// The batch is clamped to at least one entry — below 8 entries
    /// `capacity / 8` rounds to zero, which would leave `keep ==
    /// capacity` and charge a full ranking sort to every single insert
    /// past the cap.
    fn evict_cold(&mut self) {
        let batch = (self.capacity / 8).max(1);
        let keep = self.capacity.saturating_sub(batch);
        if self.entries.len() <= keep {
            return;
        }
        let excess = self.entries.len() - keep;
        self.evictions += excess as u64;
        let mut ranked: Vec<(u64, u64, u64)> = self
            .entries
            .iter()
            .map(|(&key, stored)| (stored.hits, stored.stamp, key))
            .collect();
        ranked.sort_unstable();
        for &(_, _, key) in ranked.iter().take(excess) {
            self.entries.remove(&key);
        }
        let live = &self.entries;
        self.by_member.retain(|_, bucket| {
            bucket.retain(|key| live.contains_key(key));
            !bucket.is_empty()
        });
        self.unsat_by_rep.retain(|_, bucket| {
            bucket.retain(|key| live.contains_key(key));
            !bucket.is_empty()
        });
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// A SAT entry whose constraint set is a superset of `query`. Its
    /// model satisfies every query constraint by construction; the
    /// caller eval-rechecks anyway to stay sound under hash collisions.
    fn find_superset_sat(&self, query: &[ExprRef]) -> Option<&Assignment> {
        // Every query constraint must appear in the candidate, so a
        // member nobody cached rules out any superset — and the member
        // with the smallest bucket gives the shortest scan.
        let buckets: Option<Vec<&Vec<u64>>> = query
            .iter()
            .map(|c| self.by_member.get(&c.cached_hash()))
            .collect();
        let anchor = buckets?.into_iter().min_by_key(|b| b.len())?;
        let mut scanned = 0;
        // Newest entries last; scan them first — recent queries resemble
        // the current path.
        for key in anchor.iter().rev() {
            if scanned == MAX_SUBSUMPTION_CANDIDATES {
                break;
            }
            let Some(stored) = self.entries.get(key) else {
                continue;
            };
            let entry = &stored.entry;
            let Cached::Sat(model) = &entry.outcome else {
                continue;
            };
            if entry.constraints.len() < query.len() {
                continue;
            }
            scanned += 1;
            let members: HashSet<&ExprRef> = entry.constraints.iter().collect();
            if query.iter().all(|c| members.contains(c)) {
                return Some(model);
            }
        }
        None
    }

    /// True if some cached UNSAT set is a subset of `query` — adding
    /// constraints never revives an unsatisfiable core.
    fn find_subset_unsat(&self, query: &[ExprRef]) -> bool {
        if self.unsat_by_rep.is_empty() {
            return false;
        }
        let members: HashSet<&ExprRef> = query.iter().collect();
        let mut scanned = 0;
        for c in query {
            let Some(bucket) = self.unsat_by_rep.get(&c.cached_hash()) else {
                continue;
            };
            for key in bucket.iter().rev() {
                if scanned == MAX_SUBSUMPTION_CANDIDATES {
                    return false;
                }
                let Some(stored) = self.entries.get(key) else {
                    continue;
                };
                let entry = &stored.entry;
                if !matches!(entry.outcome, Cached::Unsat) {
                    continue;
                }
                if entry.constraints.len() > query.len() {
                    continue;
                }
                scanned += 1;
                if entry.constraints.iter().all(|c| members.contains(c)) {
                    return true;
                }
            }
        }
        false
    }
}

/// Aggregate counters for a [`SharedQueryCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups answered by an exact shared entry.
    pub hits: u64,
    /// Lookups answered by a subsuming shared entry (superset SAT model
    /// or subset UNSAT core).
    pub subsumption_hits: u64,
    /// Entries published into the shared cache.
    pub inserts: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
}

/// A query cache shared between solver instances — the warm cache the
/// parallel explorer hands every worker.
///
/// Exploration forks re-check near-identical constraint prefixes, and
/// with work-stealing those prefixes migrate between workers; a private
/// cold cache per worker would redo every solve the previous owner
/// already paid for. Entries verify full structural equality of the
/// constraint set on lookup, so a 64-bit key collision can never return
/// a wrong cached verdict. Clones share the same underlying storage.
#[derive(Clone, Debug, Default)]
pub struct SharedQueryCache {
    store: Arc<Mutex<QueryStore>>,
    hits: Arc<AtomicU64>,
    subsumption_hits: Arc<AtomicU64>,
    inserts: Arc<AtomicU64>,
}

impl SharedQueryCache {
    /// Creates an empty shared cache capped at
    /// [`DEFAULT_CACHE_CAPACITY`] entries.
    pub fn new() -> SharedQueryCache {
        SharedQueryCache::default()
    }

    /// Creates an empty shared cache holding at most `capacity` entries;
    /// inserts past the cap batch-evict the least-hit entries (see
    /// [`SolverConfig::cache_capacity`] for the policy).
    pub fn with_capacity(capacity: usize) -> SharedQueryCache {
        let cache = SharedQueryCache::default();
        cache.store.lock().unwrap().capacity = capacity;
        cache
    }

    /// Replaces the capacity cap, evicting immediately if the store is
    /// already over it.
    pub fn set_capacity(&self, capacity: usize) {
        self.store.lock().unwrap().set_capacity(capacity);
    }

    /// One lock acquisition for the whole waterfall: exact, then (when
    /// enabled) subset-UNSAT and superset-SAT subsumption. A
    /// `SupersetSat` answer is *not* counted as a hit here — the caller
    /// must eval-recheck the model and report back via
    /// [`SharedQueryCache::note_subsumption_hit`] only if it validates.
    ///
    /// `canonical_only` restricts SAT answers to canonical models (see
    /// [`CacheEntry::canonical`]): a non-canonical exact SAT entry is
    /// treated as a miss and the superset-SAT path is skipped entirely,
    /// while UNSAT answers — verdicts, not choices — still come back.
    fn lookup(
        &self,
        key: u64,
        query: &[ExprRef],
        subsumption: bool,
        canonical_only: bool,
    ) -> Option<StoreAnswer> {
        let mut store = self.store.lock().unwrap();
        if let Some(hit) = store.get_exact(key, query) {
            if !canonical_only || hit.canonical || matches!(hit.outcome, Cached::Unsat) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(StoreAnswer::Exact(hit.outcome.clone(), hit.canonical));
            }
        }
        if !subsumption {
            return None;
        }
        if store.find_subset_unsat(query) {
            self.subsumption_hits.fetch_add(1, Ordering::Relaxed);
            return Some(StoreAnswer::SubsetUnsat);
        }
        if canonical_only {
            return None;
        }
        store
            .find_superset_sat(query)
            .map(|m| StoreAnswer::SupersetSat(m.clone()))
    }

    fn note_subsumption_hit(&self) {
        self.subsumption_hits.fetch_add(1, Ordering::Relaxed);
    }

    fn insert(&self, key: u64, entry: CacheEntry) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.store.lock().unwrap().insert(key, entry);
    }

    /// Counters (aggregated across every attached solver).
    pub fn stats(&self) -> SharedCacheStats {
        let store = self.store.lock().unwrap();
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            subsumption_hits: self.subsumption_hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: store.len(),
            evictions: store.evictions,
        }
    }

    /// Lookups answered by an exact shared entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.store.lock().unwrap().len()
    }

    /// True if nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exports every entry whose insertion stamp is at least `since`,
    /// plus the store's next stamp — pass that back as the next `since`
    /// to receive only entries inserted after this call. Used by the
    /// distributed tier (DESIGN.md §17) to ship cache deltas between a
    /// worker's local shared cache and the coordinator's.
    ///
    /// Keys combine `Expr::cached_hash` values, which are deterministic
    /// across processes (fixed-key `DefaultHasher`), so exported keys
    /// are valid in any process's store.
    pub fn export_since(&self, since: u64) -> (Vec<PortableCacheEntry>, u64) {
        let store = self.store.lock().unwrap();
        let mut out = Vec::new();
        for (&key, stored) in &store.entries {
            if stored.stamp < since {
                continue;
            }
            let model = match &stored.entry.outcome {
                Cached::Sat(a) => Some(a.iter().collect()),
                Cached::Unsat => None,
            };
            out.push(PortableCacheEntry {
                key,
                constraints: stored.entry.constraints.clone(),
                model,
                canonical: stored.entry.canonical,
            });
        }
        (out, store.next_stamp)
    }

    /// Imports entries exported from another process's cache; returns
    /// how many were new. Existing keys are left untouched (the local
    /// entry already answers the query), and imports do not bump the
    /// `inserts` counter — they were counted where they originated.
    /// Lookups still verify full structural equality, so a malicious or
    /// stale imported entry costs a wasted check, never a wrong answer.
    pub fn import(&self, entries: Vec<PortableCacheEntry>) -> usize {
        let mut store = self.store.lock().unwrap();
        let mut added = 0;
        for e in entries {
            if store.entries.contains_key(&e.key) {
                continue;
            }
            let outcome = match e.model {
                Some(pairs) => Cached::Sat(pairs.into_iter().collect()),
                None => Cached::Unsat,
            };
            store.insert(
                e.key,
                CacheEntry { constraints: e.constraints, outcome, canonical: e.canonical },
            );
            added += 1;
        }
        added
    }

    /// The monotonic insertion stamp the next insert will receive.
    pub fn next_stamp(&self) -> u64 {
        self.store.lock().unwrap().next_stamp
    }
}

/// One shared-cache entry in portable form, for cross-process cache
/// sync. `model: None` encodes an UNSAT verdict; `Some(bindings)` a SAT
/// model as `(variable, value)` pairs.
#[derive(Clone, Debug)]
pub struct PortableCacheEntry {
    /// The order-independent query-hash key the entry answers under.
    pub key: u64,
    /// The constraint set, verified structurally on every lookup.
    pub constraints: Vec<ExprRef>,
    /// SAT model bindings, or `None` for UNSAT.
    pub model: Option<Vec<(VarId, u64)>>,
    /// Whether the model came from a core solve of exactly this set
    /// (deterministic across processes) rather than a pool or
    /// subsumption adoption. Concretization only trusts canonical
    /// models; see [`SolverConfig::enable_cache`]'s determinism note.
    pub canonical: bool,
}

/// The constraint solver used by the execution engine.
///
/// Wraps the SAT core with the two optimizations KLEE made standard —
/// an exact query cache and a counterexample (model) pool — plus the
/// per-query timing needed to reproduce the paper's solver measurements.
///
/// # Example
///
/// ```
/// use s2e_expr::{ExprBuilder, Width};
/// use s2e_solver::Solver;
///
/// let b = ExprBuilder::new();
/// let x = b.var("x", Width::W8);
/// let c = b.ult(x.clone(), b.constant(10, Width::W8));
/// let mut solver = Solver::new();
/// assert!(solver.check(&[c.clone()]).is_sat());
/// // A value consistent with the constraints:
/// let (v, _model) = solver.concretize(&[c], &x).unwrap();
/// assert!(v < 10);
/// ```
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    cache: QueryStore,
    /// Cross-instance cache, consulted after a local miss and fed by
    /// every fresh solve (see [`SharedQueryCache`]).
    shared: Option<SharedQueryCache>,
    model_pool: VecDeque<Assignment>,
    stats: SolverStats,
    /// Live per-kind query-latency histograms (one atomic add per
    /// query when attached; see DESIGN.md §16).
    telemetry: Option<s2e_obs::TelemetryHandle>,
    /// Private builder used only to materialize constants during
    /// simplification; it never creates variables.
    simp_builder: ExprBuilder,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        let mut cache = QueryStore::default();
        cache.set_capacity(config.cache_capacity);
        Solver {
            config,
            cache,
            shared: None,
            model_pool: VecDeque::new(),
            stats: SolverStats::default(),
            telemetry: None,
            simp_builder: ExprBuilder::new(),
        }
    }

    /// Attaches (or detaches) a live-telemetry shard. When set, every
    /// query records its wall latency into the per-kind log2 histogram
    /// — exactly one relaxed atomic add per query, so this is safe to
    /// leave on (the `telemetry_overhead` bench gates it at ≤2%).
    pub fn set_telemetry(&mut self, telemetry: Option<s2e_obs::TelemetryHandle>) {
        self.telemetry = telemetry;
    }

    /// Attaches a cross-instance shared query cache. Hits against it are
    /// counted separately ([`SolverStats::shared_hits`]) from local hits.
    pub fn attach_shared_cache(&mut self, shared: SharedQueryCache) {
        self.shared = Some(shared);
    }

    /// The attached shared cache, if any.
    pub fn shared_cache(&self) -> Option<&SharedQueryCache> {
        self.shared.as_ref()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Resets the statistics (the cache is kept).
    pub fn reset_stats(&mut self) {
        self.stats = SolverStats::default();
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Replaces the configuration (benches use this to ablate features
    /// on an engine-owned solver). Caches and statistics are kept; every
    /// lookup re-consults the flags, so toggles take effect immediately.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.cache.set_capacity(config.cache_capacity);
        self.config = config;
    }

    /// Checks the conjunction of `constraints` for satisfiability.
    pub fn check(&mut self, constraints: &[ExprRef]) -> SatResult {
        self.check_kind(constraints, QueryKind::Other)
    }

    /// Checks satisfiability, attributing the query to `kind` for
    /// statistics.
    pub fn check_kind(&mut self, constraints: &[ExprRef], kind: QueryKind) -> SatResult {
        let start = Instant::now();
        // Concretization consumes the *model*, not just the verdict, so
        // it must get the canonical (core-solve) model: pool and
        // subsumption models vary with query history, and a
        // history-dependent concrete value makes the explored path tree
        // depend on scheduling and state placement — the distributed
        // tier's bit-identity gate (DESIGN.md §17) would flake.
        let result = self.check_inner(constraints, matches!(kind, QueryKind::Concretize));
        let elapsed = start.elapsed();
        if let Some(t) = &self.telemetry {
            t.observe_duration(s2e_obs::Hist::solve_kind(kind.index()), elapsed);
        }
        self.stats.queries += 1;
        self.stats.total_time += elapsed;
        self.stats.max_query_time = self.stats.max_query_time.max(elapsed);
        let by_kind = &mut self.stats.by_kind[kind.index()];
        by_kind.queries += 1;
        by_kind.time += elapsed;
        match &result {
            SatResult::Sat(_) => {
                self.stats.sat += 1;
                by_kind.sat += 1;
            }
            SatResult::Unsat => {
                self.stats.unsat += 1;
                by_kind.unsat += 1;
            }
            SatResult::Unknown => {
                self.stats.unknown += 1;
                by_kind.unknown += 1;
            }
        }
        // Snapshot the local cache's occupancy and eviction counters;
        // every query funnels through here, so the snapshot is always
        // current when stats are read.
        self.stats.cache_evictions = self.cache.evictions;
        self.stats.cache_entries = self.cache.len() as u64;
        result
    }

    fn check_inner(&mut self, constraints: &[ExprRef], want_canonical: bool) -> SatResult {
        // Simplify and strip trivially-true constraints.
        let mut simplified: Vec<ExprRef> = Vec::with_capacity(constraints.len());
        // X ∧ X = X: dropping duplicates keeps the CNF smaller and gives
        // re-checks of an already-asserted condition (a guest
        // re-validating a bound) the same cache key as the fork query
        // that first solved this constraint set. Keyed on the hash-consed
        // `ExprRef`, so dedup is O(n) rather than a quadratic scan.
        let mut seen: HashSet<ExprRef> = HashSet::with_capacity(constraints.len());
        for c in constraints {
            debug_assert_eq!(c.width(), s2e_expr::Width::BOOL, "constraints are boolean");
            let s = if self.config.simplify_queries {
                simplify(c, &self.simp_builder)
            } else {
                c.clone()
            };
            match s.as_const() {
                Some(0) => return SatResult::Unsat,
                Some(_) => continue,
                None => {
                    if seen.insert(s.clone()) {
                        simplified.push(s);
                    }
                }
            }
        }
        if simplified.is_empty() {
            return SatResult::Sat(Assignment::new());
        }

        if !self.config.enable_slicing {
            return self.check_set(simplified, want_canonical);
        }
        let mut components = independence::partition(&simplified);
        if components.len() == 1 {
            return self.check_set(components.pop().expect("non-empty"), want_canonical);
        }
        // Independent components share no variables: the conjunction is
        // SAT iff each component is, and per-component models stitch into
        // a model of the whole set. Each component gets its own cache
        // entry, so a hit survives growth in *unrelated* components.
        self.stats.sliced_queries += 1;
        let mut model = Assignment::new();
        for component in components {
            self.stats.components_solved += 1;
            // A component's answer may come from the model pool or a
            // superset cache entry, whose model can assign variables
            // *outside* this component (zero-extensions, stale values
            // from the query it originally solved). Stitch only the
            // component's own variables so those strays cannot clobber
            // another component's correct assignment.
            let mut own: HashSet<VarId> = HashSet::new();
            for c in &component {
                own.extend(c.var_ids().iter().copied());
            }
            match self.check_set(component, want_canonical) {
                SatResult::Sat(m) => {
                    for (id, v) in m.iter() {
                        if own.contains(&id) {
                            model.set(id, v);
                        }
                    }
                }
                SatResult::Unsat => return SatResult::Unsat,
                SatResult::Unknown => return SatResult::Unknown,
            }
        }
        SatResult::Sat(model)
    }

    /// Solves one already-simplified, deduplicated constraint set — a
    /// whole query when slicing is off, one independent component
    /// otherwise — through the cache waterfall: local exact → local
    /// subsumption → shared (exact + subsumption) → model pool → SAT
    /// core.
    ///
    /// With `want_canonical`, SAT answers must carry the canonical
    /// core-solve model: non-canonical cached models are passed over
    /// (the core solve then *replaces* the entry with the canonical
    /// one), and the model-pool and superset-SAT fast paths are skipped.
    /// UNSAT fast paths always apply — a verdict is a deterministic fact
    /// however it was derived.
    fn check_set(&mut self, query: Vec<ExprRef>, want_canonical: bool) -> SatResult {
        if !self.config.paranoid {
            return self.check_set_impl(query, want_canonical);
        }
        let reference = Self::raw_outcome(&query, self.config.max_conflicts);
        let r = self.check_set_impl(query.clone(), want_canonical);
        match (&r, &reference) {
            (SatResult::Sat(_), SatOutcome::Unsat) => {
                panic!("paranoid: waterfall SAT but core solve UNSAT for {query:#?}")
            }
            (SatResult::Unsat, SatOutcome::Sat) => {
                panic!("paranoid: waterfall UNSAT but core solve SAT for {query:#?}")
            }
            _ => {}
        }
        if let SatResult::Sat(m) = &r {
            if Self::recheck_model(m, &query).is_none() {
                let extended = Self::extend_model(m, &query);
                let per: Vec<String> = query
                    .iter()
                    .map(|c| format!("{:?}", eval(c, &extended)))
                    .collect();
                panic!(
                    "paranoid: returned model does not satisfy query\n\
                     raw verdict: {reference:?}\nmodel: {m:?}\nper-constraint eval: {per:#?}\n\
                     var_ids per constraint: {:#?}\nquery: {query:#?}",
                    query.iter().map(|c| c.var_ids().to_vec()).collect::<Vec<_>>()
                );
            }
        }
        r
    }

    /// Cache-free reference solve for the paranoid cross-check.
    fn raw_outcome(query: &[ExprRef], max_conflicts: u64) -> SatOutcome {
        let mut sat = SatSolver::new();
        let mut bb = BitBlaster::new(&mut sat);
        for c in query {
            bb.assert_true(&mut sat, c);
        }
        sat.solve(max_conflicts)
    }

    fn check_set_impl(&mut self, mut query: Vec<ExprRef>, want_canonical: bool) -> SatResult {
        // Canonical constraint order. The SAT core's model depends on
        // clause order, so without this two processes building the same
        // constraint *set* along different paths would core-solve
        // different (both correct) models — and a state migrating
        // between them would concretize differently than it would have
        // at home. Sorting by structural hash makes the core solve a
        // pure function of the set; cache-entry set-equality checks and
        // the subsumption indexes never depended on order.
        query.sort_unstable_by_key(|c| c.cached_hash());
        let key = Self::cache_key(&query);
        if self.config.enable_cache {
            if let Some(hit) = self.cache.get_exact(key, &query) {
                match &hit.outcome {
                    Cached::Sat(m) if !want_canonical || hit.canonical => {
                        self.stats.cache_hits += 1;
                        return SatResult::Sat(m.clone());
                    }
                    Cached::Sat(_) => {} // non-canonical; core-solve below
                    Cached::Unsat => {
                        self.stats.cache_hits += 1;
                        return SatResult::Unsat;
                    }
                }
            }
            if self.config.enable_subsumption {
                if self.cache.find_subset_unsat(&query) {
                    self.stats.subsumption_hits += 1;
                    // Promote to an exact entry so the next identical
                    // query skips the index walk.
                    self.cache.insert(
                        key,
                        CacheEntry {
                            constraints: query,
                            outcome: Cached::Unsat,
                            canonical: true,
                        },
                    );
                    return SatResult::Unsat;
                }
                if !want_canonical {
                    if let Some(model) = self.cache.find_superset_sat(&query).cloned() {
                        if let Some(model) = Self::recheck_model(&model, &query) {
                            self.stats.subsumption_hits += 1;
                            return self.adopt_sat(key, query, model);
                        }
                    }
                }
            }
            // Cross-instance cache: another worker may have answered this
            // component (or a subsuming one) already. Adopt the entry
            // locally so repeats stay off the shared lock.
            if let Some(shared) = self.shared.clone() {
                match shared.lookup(key, &query, self.config.enable_subsumption, want_canonical) {
                    Some(StoreAnswer::Exact(Cached::Sat(m), canonical)) => {
                        self.stats.shared_hits += 1;
                        return self.adopt_sat_canonical(key, query, m, canonical);
                    }
                    Some(StoreAnswer::Exact(Cached::Unsat, _)) => {
                        self.stats.shared_hits += 1;
                        self.cache.insert(
                            key,
                            CacheEntry {
                                constraints: query,
                                outcome: Cached::Unsat,
                                canonical: true,
                            },
                        );
                        return SatResult::Unsat;
                    }
                    Some(StoreAnswer::SubsetUnsat) => {
                        self.stats.shared_hits += 1;
                        self.stats.subsumption_hits += 1;
                        self.cache.insert(
                            key,
                            CacheEntry {
                                constraints: query,
                                outcome: Cached::Unsat,
                                canonical: true,
                            },
                        );
                        return SatResult::Unsat;
                    }
                    Some(StoreAnswer::SupersetSat(m)) => {
                        if let Some(model) = Self::recheck_model(&m, &query) {
                            shared.note_subsumption_hit();
                            self.stats.shared_hits += 1;
                            self.stats.subsumption_hits += 1;
                            return self.adopt_sat(key, query, model);
                        }
                    }
                    None => {}
                }
            }
            // Counterexample pool: a previous model (extended with zeros
            // for unseen variables) may already satisfy this query.
            if !want_canonical {
                if let Some(model) = self.try_model_pool(&query) {
                    self.stats.pool_hits += 1;
                    self.insert_both(
                        key,
                        CacheEntry {
                            constraints: query,
                            outcome: Cached::Sat(model.clone()),
                            canonical: false,
                        },
                    );
                    return SatResult::Sat(model);
                }
            }
        }

        self.stats.core_solves += 1;
        let mut sat = SatSolver::new();
        let mut bb = BitBlaster::new(&mut sat);
        for c in &query {
            bb.assert_true(&mut sat, c);
        }
        match sat.solve(self.config.max_conflicts) {
            SatOutcome::Unsat => {
                if self.config.enable_cache {
                    self.insert_both(
                        key,
                        CacheEntry {
                            constraints: query,
                            outcome: Cached::Unsat,
                            canonical: true,
                        },
                    );
                }
                SatResult::Unsat
            }
            SatOutcome::Unknown => SatResult::Unknown,
            SatOutcome::Sat => {
                let mut model = Assignment::new();
                for (id, bits) in bb.blasted_vars() {
                    let mut v = 0u64;
                    for (i, &bit) in bits.iter().enumerate() {
                        if sat.model_value(bit).unwrap_or(false) {
                            v |= 1 << i;
                        }
                    }
                    model.set(id, v);
                }
                if self.config.enable_cache {
                    self.insert_both(
                        key,
                        CacheEntry {
                            constraints: query,
                            outcome: Cached::Sat(model.clone()),
                            canonical: true,
                        },
                    );
                    self.model_pool.push_front(model.clone());
                    self.model_pool.truncate(self.config.model_pool_size);
                }
                SatResult::Sat(model)
            }
        }
    }

    /// Records a SAT answer obtained without the SAT core (shared or
    /// subsuming entry): local exact entry, model pool, and the result.
    fn adopt_sat(&mut self, key: u64, query: Vec<ExprRef>, model: Assignment) -> SatResult {
        self.adopt_sat_canonical(key, query, model, false)
    }

    /// [`Solver::adopt_sat`], preserving the source entry's canonical
    /// flag (a shared exact hit may carry another worker's core-solve
    /// model, which stays canonical through adoption).
    fn adopt_sat_canonical(
        &mut self,
        key: u64,
        query: Vec<ExprRef>,
        model: Assignment,
        canonical: bool,
    ) -> SatResult {
        self.model_pool.push_front(model.clone());
        self.model_pool.truncate(self.config.model_pool_size);
        self.cache.insert(
            key,
            CacheEntry {
                constraints: query,
                outcome: Cached::Sat(model.clone()),
                canonical,
            },
        );
        SatResult::Sat(model)
    }

    /// Inserts a finished query into the local cache and, when attached,
    /// publishes it to the shared cache.
    fn insert_both(&mut self, key: u64, entry: CacheEntry) {
        if let Some(shared) = &self.shared {
            shared.insert(key, entry.clone());
        }
        self.cache.insert(key, entry);
    }

    /// Structural equality of two queries as unordered constraint sets.
    fn same_query(a: &[ExprRef], b: &[ExprRef]) -> bool {
        a.len() == b.len() && b.iter().all(|c| a.contains(c))
    }

    fn cache_key(constraints: &[ExprRef]) -> u64 {
        let mut hashes: Vec<u64> = constraints.iter().map(|c| c.cached_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for h in hashes {
            acc ^= h;
            acc = acc.wrapping_mul(0x1000_0000_01b3);
        }
        acc
    }

    fn try_model_pool(&self, constraints: &[ExprRef]) -> Option<Assignment> {
        self.model_pool
            .iter()
            .find_map(|m| Self::recheck_model(m, constraints))
    }

    /// Extends a candidate model with zeros for unmentioned variables and
    /// keeps it only if it satisfies every constraint — the cheap `eval`
    /// recheck that makes pool and subsumption answers trustworthy even
    /// across 64-bit hash collisions.
    fn recheck_model(model: &Assignment, constraints: &[ExprRef]) -> Option<Assignment> {
        let extended = Self::extend_model(model, constraints);
        for c in constraints {
            match eval(c, &extended) {
                Ok(1) => {}
                _ => return None,
            }
        }
        Some(extended)
    }

    fn extend_model(model: &Assignment, constraints: &[ExprRef]) -> Assignment {
        let mut out = model.clone();
        for c in constraints {
            for &id in c.var_ids() {
                if out.get(id, "").is_none() {
                    out.set(id, 0);
                }
            }
        }
        out
    }

    /// True if `cond` can be true under the constraints; `None` if the
    /// solver gave up.
    pub fn may_be_true(&mut self, constraints: &[ExprRef], cond: &ExprRef) -> Option<bool> {
        let mut q = constraints.to_vec();
        q.push(cond.clone());
        match self.check_kind(&q, QueryKind::Feasibility) {
            SatResult::Sat(_) => Some(true),
            SatResult::Unsat => Some(false),
            SatResult::Unknown => None,
        }
    }

    /// True if `cond` holds on every solution of the constraints; `None`
    /// if the solver gave up.
    pub fn must_be_true(&mut self, constraints: &[ExprRef], cond: &ExprRef) -> Option<bool> {
        let not_cond = {
            let b = &self.simp_builder;
            b.eq(cond.clone(), b.constant(0, cond.width()))
        };
        self.may_be_true(constraints, &not_cond).map(|x| !x)
    }

    /// Finds a concrete value for `expr` consistent with the constraints,
    /// along with the model that produced it.
    ///
    /// This is the workhorse of the symbolic→concrete transition (§2.2 of
    /// the paper): the returned value becomes the soft constraint
    /// `expr == value` on the current path.
    ///
    /// Returns `None` if the constraints are unsatisfiable or the solver
    /// gave up.
    pub fn concretize(
        &mut self,
        constraints: &[ExprRef],
        expr: &ExprRef,
    ) -> Option<(u64, Assignment)> {
        if let Some(v) = expr.as_const() {
            return Some((v, Assignment::new()));
        }
        // Solve the constraints, then extend the model with zeros for the
        // expression's unmentioned variables — any consistent extension of
        // a model stays a model, since constraints don't mention the
        // extended variables.
        match self.check_kind(constraints, QueryKind::Concretize) {
            SatResult::Sat(model) => Self::value_from_model(model, expr),
            _ => None,
        }
    }

    fn value_from_model(model: Assignment, expr: &ExprRef) -> Option<(u64, Assignment)> {
        let mut extended = model;
        for &id in expr.var_ids() {
            if extended.get(id, "").is_none() {
                extended.set(id, 0);
            }
        }
        let v = eval(expr, &extended).ok()?;
        Some((v, extended))
    }

    /// Like [`Solver::check_kind`], against a pre-partitioned constraint
    /// set: only the components sharing variables with `extra` (plus the
    /// partition's variable-free residue) are sent to the solver; the
    /// rest of the path condition never leaves the state.
    ///
    /// # Soundness
    ///
    /// Skipping components is sound only when the partition's full
    /// constraint set is known satisfiable. That holds for execution-
    /// state path conditions by construction — every constraint is added
    /// only after the branch it encodes was proven feasible — and it is
    /// exactly what makes the verdict of the sliced query equal that of
    /// the full query: the skipped components are satisfiable and share
    /// no variables with the slice, so their models conjoin freely.
    /// Falls back to the full set when `enable_slicing` is off.
    pub fn check_relevant(
        &mut self,
        partition: &ConstraintPartition,
        extra: &[ExprRef],
        kind: QueryKind,
    ) -> SatResult {
        let mut query = if self.config.enable_slicing {
            let mut vars: Vec<VarId> = Vec::new();
            for e in extra {
                vars = independence::merge_vars(&vars, e.var_ids());
            }
            let slice = partition.slice_for(&vars);
            if slice.len() < partition.len() {
                self.stats.sliced_queries += 1;
            }
            slice
        } else {
            partition.all()
        };
        query.extend(extra.iter().cloned());
        let r = self.check_kind(&query, kind);
        if self.config.paranoid && self.config.enable_slicing {
            let mut full = partition.all();
            full.extend(extra.iter().cloned());
            let reference = Self::raw_outcome(&full, self.config.max_conflicts);
            match (&r, &reference) {
                (SatResult::Sat(_), SatOutcome::Unsat) => panic!(
                    "paranoid: sliced query SAT but full set UNSAT\nslice: {query:#?}\nfull: {full:#?}"
                ),
                (SatResult::Unsat, SatOutcome::Sat) => panic!(
                    "paranoid: sliced query UNSAT but full set SAT\nslice: {query:#?}\nfull: {full:#?}"
                ),
                _ => {}
            }
        }
        r
    }

    /// [`Solver::may_be_true`] against a pre-partitioned constraint set
    /// (see [`Solver::check_relevant`] for the soundness argument).
    pub fn may_be_true_in(
        &mut self,
        partition: &ConstraintPartition,
        cond: &ExprRef,
    ) -> Option<bool> {
        match self.check_relevant(partition, std::slice::from_ref(cond), QueryKind::Feasibility) {
            SatResult::Sat(_) => Some(true),
            SatResult::Unsat => Some(false),
            SatResult::Unknown => None,
        }
    }

    /// [`Solver::must_be_true`] against a pre-partitioned constraint set.
    pub fn must_be_true_in(
        &mut self,
        partition: &ConstraintPartition,
        cond: &ExprRef,
    ) -> Option<bool> {
        let not_cond = {
            let b = &self.simp_builder;
            b.eq(cond.clone(), b.constant(0, cond.width()))
        };
        self.may_be_true_in(partition, &not_cond).map(|x| !x)
    }

    /// [`Solver::concretize`] against a pre-partitioned constraint set:
    /// solves only the components constraining the expression's
    /// variables. Components the expression doesn't touch cannot affect
    /// its feasible values, so the sliced model (zero-extended over the
    /// expression's unconstrained variables) concretizes it exactly as
    /// the full path condition would.
    pub fn concretize_in(
        &mut self,
        partition: &ConstraintPartition,
        expr: &ExprRef,
    ) -> Option<(u64, Assignment)> {
        if let Some(v) = expr.as_const() {
            return Some((v, Assignment::new()));
        }
        let constraints = if self.config.enable_slicing {
            let slice = partition.slice_for_expr(expr);
            if slice.len() < partition.len() {
                self.stats.sliced_queries += 1;
            }
            slice
        } else {
            partition.all()
        };
        match self.check_kind(&constraints, QueryKind::Concretize) {
            SatResult::Sat(model) => Self::value_from_model(model, expr),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_expr::Width;

    fn setup() -> (ExprBuilder, Solver) {
        (ExprBuilder::new(), Solver::new())
    }

    #[test]
    fn empty_query_is_sat() {
        let (_, mut s) = setup();
        assert!(s.check(&[]).is_sat());
    }

    #[test]
    fn trivially_false_is_unsat() {
        let (b, mut s) = setup();
        assert_eq!(s.check(&[b.false_()]), SatResult::Unsat);
    }

    #[test]
    fn linear_equation_solved() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W16);
        // 3x + 7 == 100  =>  x == 31
        let lhs = b.add(
            b.mul(x.clone(), b.constant(3, Width::W16)),
            b.constant(7, Width::W16),
        );
        let c = b.eq(lhs, b.constant(100, Width::W16));
        match s.check(&[c]) {
            SatResult::Sat(m) => assert_eq!(eval(&x, &m).unwrap(), 31),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_constraints_unsat() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let c1 = b.ult(x.clone(), b.constant(5, Width::W8));
        let c2 = b.ult(b.constant(10, Width::W8), x);
        assert_eq!(s.check(&[c1, c2]), SatResult::Unsat);
    }

    #[test]
    fn cache_hits_on_repeat() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let c = b.eq(x, b.constant(3, Width::W8));
        s.check(std::slice::from_ref(&c));
        let before = s.stats().cache_hits;
        s.check(&[c]);
        assert_eq!(s.stats().cache_hits, before + 1);
    }

    #[test]
    fn eviction_caps_store_under_churn() {
        let b = ExprBuilder::new();
        let mut s = Solver::with_config(SolverConfig {
            cache_capacity: 32,
            model_pool_size: 0,
            ..SolverConfig::default()
        });
        let x = b.var("x", Width::W16);
        for i in 0..400u64 {
            let eq = b.eq(x.clone(), b.constant(i, Width::W16));
            if i % 3 == 0 {
                // UNSAT sets exercise the unsat_by_rep index too.
                let clash = b.eq(x.clone(), b.constant(i + 1, Width::W16));
                assert_eq!(s.check(&[eq, clash]), SatResult::Unsat);
            } else {
                assert!(s.check(&[eq]).is_sat());
            }
            assert!(s.cache.len() <= 32, "cache grew past capacity");
        }
        // Eviction waves prune the inverted indexes, so they stay
        // proportional to the live entries (at most one row per entry
        // here) plus the handful of inserts since the last wave — not
        // to the 400 total inserts.
        let rows: usize = s.cache.by_member.values().map(Vec::len).sum::<usize>()
            + s.cache.unsat_by_rep.values().map(Vec::len).sum::<usize>();
        assert!(rows <= 2 * 32, "stale index rows accreted: {rows}");
        // Shrinking the cap evicts immediately.
        s.set_config(SolverConfig {
            cache_capacity: 8,
            model_pool_size: 0,
            ..SolverConfig::default()
        });
        assert!(s.cache.len() <= 8);
    }

    #[test]
    fn hot_entries_survive_churn_eviction() {
        let b = ExprBuilder::new();
        let mut s = Solver::with_config(SolverConfig {
            cache_capacity: 16,
            model_pool_size: 0,
            ..SolverConfig::default()
        });
        let x = b.var("x", Width::W16);
        let hot = b.eq(x.clone(), b.constant(9999, Width::W16));
        assert!(s.check(std::slice::from_ref(&hot)).is_sat());
        for i in 0..200u64 {
            assert!(s
                .check(&[b.eq(x.clone(), b.constant(i, Width::W16))])
                .is_sat());
            // Touch the hot entry so its hit count outranks the churn.
            assert!(s.check(std::slice::from_ref(&hot)).is_sat());
        }
        let before = s.stats().cache_hits;
        assert!(s.check(&[hot]).is_sat());
        assert_eq!(
            s.stats().cache_hits,
            before + 1,
            "the frequently-hit entry was evicted"
        );
        // Every churn query was distinct, so exactly hot + churn reached
        // the SAT core; none of the hot repeats did.
        assert_eq!(s.stats().core_solves, 201);
    }

    #[test]
    fn shared_cache_eviction_caps_under_churn() {
        let b = ExprBuilder::new();
        let shared = SharedQueryCache::with_capacity(16);
        let mut s = Solver::with_config(SolverConfig {
            model_pool_size: 0,
            ..SolverConfig::default()
        });
        s.attach_shared_cache(shared.clone());
        let x = b.var("x", Width::W16);
        for i in 0..200u64 {
            let c = b.eq(x.clone(), b.constant(i, Width::W16));
            assert!(s.check(&[c]).is_sat());
        }
        assert_eq!(shared.stats().inserts, 200);
        assert!(shared.len() <= 16, "shared cache grew past capacity");
        // Tightening the cap takes effect immediately.
        shared.set_capacity(4);
        assert!(shared.len() <= 4);
    }

    #[test]
    fn tiny_capacity_eviction_batch_is_clamped() {
        // Below 8 entries `capacity / 8` rounds to zero; the eviction
        // batch must still be at least one below capacity, so a wave
        // leaves the store strictly under the cap (and the ranking sort
        // amortizes over the refill instead of running every insert).
        let b = ExprBuilder::new();
        for cap in [2usize, 4, 7] {
            let mut s = Solver::with_config(SolverConfig {
                cache_capacity: cap,
                model_pool_size: 0,
                ..SolverConfig::default()
            });
            let x = b.var("x", Width::W16);
            for i in 0..=cap as u64 {
                assert!(s.check(&[b.eq(x.clone(), b.constant(i, Width::W16))]).is_sat());
                assert!(s.cache.len() <= cap, "cap {cap}: store exceeded capacity");
            }
            assert!(
                s.cache.len() < cap,
                "cap {cap}: an eviction wave must dip below capacity, got {}",
                s.cache.len()
            );
            assert!(s.cache.evictions > 0, "cap {cap}: churn past the cap evicts");
        }
    }

    #[test]
    fn zero_capacity_store_drops_inserts_instead_of_thrashing() {
        let b = ExprBuilder::new();
        let mut s = Solver::with_config(SolverConfig {
            cache_capacity: 0,
            model_pool_size: 0,
            ..SolverConfig::default()
        });
        let x = b.var("x", Width::W16);
        for i in 0..20u64 {
            let eq = b.eq(x.clone(), b.constant(i, Width::W16));
            assert!(s.check(std::slice::from_ref(&eq)).is_sat());
            let clash = b.eq(x.clone(), b.constant(i + 1, Width::W16));
            assert_eq!(s.check(&[eq, clash]), SatResult::Unsat);
        }
        assert_eq!(s.cache.len(), 0, "zero-capacity store holds nothing");
        assert_eq!(
            s.cache.evictions, 0,
            "inserts must be dropped up front, not inserted and evicted"
        );
        assert!(s.cache.by_member.is_empty(), "no index rows without entries");
        assert!(s.cache.unsat_by_rep.is_empty(), "no index rows without entries");
    }

    #[test]
    fn shared_cache_survives_tiny_and_zero_capacities() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W16);

        let tiny = SharedQueryCache::with_capacity(2);
        let mut s = Solver::with_config(SolverConfig {
            model_pool_size: 0,
            ..SolverConfig::default()
        });
        s.attach_shared_cache(tiny.clone());
        for i in 0..50u64 {
            assert!(s.check(&[b.eq(x.clone(), b.constant(i, Width::W16))]).is_sat());
            assert!(tiny.len() <= 2, "shared cache exceeded tiny capacity");
        }
        assert!(tiny.stats().evictions > 0);

        let zero = SharedQueryCache::with_capacity(0);
        let mut s0 = Solver::with_config(SolverConfig {
            model_pool_size: 0,
            ..SolverConfig::default()
        });
        s0.attach_shared_cache(zero.clone());
        for i in 0..20u64 {
            assert!(s0.check(&[b.eq(x.clone(), b.constant(i, Width::W16))]).is_sat());
        }
        assert_eq!(zero.len(), 0);
        assert_eq!(zero.stats().inserts, 20, "publication attempts are still counted");
        assert_eq!(zero.stats().evictions, 0, "dropped inserts never become evictions");

        // Zeroing the cap on a warm cache flushes it outright.
        tiny.set_capacity(0);
        assert_eq!(tiny.len(), 0);
    }

    #[test]
    fn model_pool_answers_weaker_query() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let eq = b.eq(x.clone(), b.constant(3, Width::W8));
        let lt = b.ult(x, b.constant(10, Width::W8));
        s.check(&[eq]);
        // The model x=3 also satisfies x<10; should be a pool hit.
        let before = s.stats().pool_hits;
        assert!(s.check(&[lt]).is_sat());
        assert_eq!(s.stats().pool_hits, before + 1);
    }

    #[test]
    fn may_and_must() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let c = b.ult(x.clone(), b.constant(5, Width::W8)); // x < 5
        let lt10 = b.ult(x.clone(), b.constant(10, Width::W8));
        let eq7 = b.eq(x.clone(), b.constant(7, Width::W8));
        assert_eq!(s.must_be_true(std::slice::from_ref(&c), &lt10), Some(true));
        assert_eq!(s.may_be_true(std::slice::from_ref(&c), &eq7), Some(false));
        let eq2 = b.eq(x, b.constant(2, Width::W8));
        assert_eq!(s.may_be_true(&[c], &eq2), Some(true));
    }

    #[test]
    fn concretize_respects_constraints() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let lo = b.ule(b.constant(100, Width::W8), x.clone());
        let hi = b.ule(x.clone(), b.constant(110, Width::W8));
        let (v, model) = s.concretize(&[lo, hi], &x).unwrap();
        assert!((100..=110).contains(&v), "v={v}");
        assert_eq!(eval(&x, &model).unwrap(), v);
    }

    #[test]
    fn concretize_constant_is_free() {
        let (b, mut s) = setup();
        let c = b.constant(42, Width::W8);
        let (v, _) = s.concretize(&[], &c).unwrap();
        assert_eq!(v, 42);
        assert_eq!(s.stats().queries, 0);
    }

    #[test]
    fn concretize_unconstrained_var_defaults() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let (v, model) = s.concretize(&[], &x).unwrap();
        assert_eq!(eval(&x, &model).unwrap(), v);
    }

    #[test]
    fn stats_track_time_and_outcomes() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        s.check(&[b.eq(x.clone(), b.constant(1, Width::W8))]);
        s.check(&[b.false_()]);
        let st = s.stats();
        assert_eq!(st.queries, 2);
        assert_eq!(st.sat, 1);
        assert_eq!(st.unsat, 1);
        assert!(st.avg_query_time() <= st.max_query_time.max(st.total_time));
    }

    #[test]
    fn shared_cache_crosses_solver_instances() {
        let b = ExprBuilder::new();
        let shared = SharedQueryCache::new();
        let x = b.var("x", Width::W8);
        let c = b.eq(x.clone(), b.constant(3, Width::W8));

        let mut s1 = Solver::new();
        s1.attach_shared_cache(shared.clone());
        assert!(s1.check(std::slice::from_ref(&c)).is_sat());
        assert_eq!(s1.stats().shared_hits, 0);
        assert_eq!(shared.stats().inserts, 1);

        // A different solver instance with a cold local cache answers the
        // same query from the shared cache without re-solving.
        let mut s2 = Solver::new();
        s2.attach_shared_cache(shared.clone());
        match s2.check(std::slice::from_ref(&c)) {
            SatResult::Sat(m) => assert_eq!(eval(&x, &m).unwrap(), 3),
            other => panic!("expected sat, got {other:?}"),
        }
        assert_eq!(s2.stats().shared_hits, 1);
        assert_eq!(shared.hits(), 1);

        // Repeat on s2 now hits locally, not the shared lock.
        s2.check(&[c]);
        assert_eq!(s2.stats().cache_hits, 1);
        assert_eq!(shared.hits(), 1);
    }

    #[test]
    fn shared_cache_unsat_and_stats() {
        let b = ExprBuilder::new();
        let shared = SharedQueryCache::new();
        let x = b.var("x", Width::W8);
        let c1 = b.ult(x.clone(), b.constant(5, Width::W8));
        let c2 = b.ult(b.constant(10, Width::W8), x);

        let mut s1 = Solver::new();
        s1.attach_shared_cache(shared.clone());
        assert_eq!(s1.check(&[c1.clone(), c2.clone()]), SatResult::Unsat);

        let mut s2 = Solver::new();
        s2.attach_shared_cache(shared.clone());
        // Constraint order must not matter for the shared hit.
        assert_eq!(s2.check(&[c2, c1]), SatResult::Unsat);
        assert_eq!(s2.stats().shared_hits, 1);
        assert!(!shared.is_empty());
        assert_eq!(shared.stats().entries, shared.len());
    }

    #[test]
    fn shared_cache_export_import_round_trip() {
        let b = ExprBuilder::new();
        let src = SharedQueryCache::new();
        let x = b.var("x", Width::W8);
        let sat = b.eq(x.clone(), b.constant(3, Width::W8));
        let c1 = b.ult(x.clone(), b.constant(5, Width::W8));
        let c2 = b.ult(b.constant(10, Width::W8), x.clone());

        let mut s = Solver::new();
        s.attach_shared_cache(src.clone());
        assert!(s.check(std::slice::from_ref(&sat)).is_sat());
        assert_eq!(s.check(&[c1.clone(), c2.clone()]), SatResult::Unsat);

        // Ship the delta into a fresh cache (another process's, in the
        // distributed tier) and hit both verdicts there without solving.
        let (delta, stamp) = src.export_since(0);
        assert_eq!(delta.len(), 2);
        let dst = SharedQueryCache::new();
        assert_eq!(dst.import(delta), 2);
        assert_eq!(dst.len(), src.len());
        let mut s2 = Solver::new();
        s2.attach_shared_cache(dst.clone());
        let solves = s2.stats().core_solves;
        assert!(s2.check(&[sat]).is_sat());
        assert_eq!(s2.check(&[c2, c1]), SatResult::Unsat);
        assert_eq!(s2.stats().core_solves, solves);
        assert_eq!(s2.stats().shared_hits, 2);
        // Imports do not echo: re-exporting from the returned stamp on
        // the source, and from zero on the import side after a
        // round-trip mark update, yields nothing new.
        assert!(src.export_since(stamp).0.is_empty());
        assert_eq!(src.import(dst.export_since(0).0), 0);
    }

    #[test]
    fn disabled_cache_still_correct() {
        let b = ExprBuilder::new();
        let mut s = Solver::with_config(SolverConfig {
            enable_cache: false,
            ..SolverConfig::default()
        });
        let x = b.var("x", Width::W8);
        let c = b.eq(x, b.constant(3, Width::W8));
        assert!(s.check(std::slice::from_ref(&c)).is_sat());
        assert!(s.check(&[c]).is_sat());
        assert_eq!(s.stats().cache_hits, 0);
    }

    #[test]
    fn unsimplified_queries_still_correct() {
        let b = ExprBuilder::new();
        let mut s = Solver::with_config(SolverConfig {
            simplify_queries: false,
            ..SolverConfig::default()
        });
        let x = b.var("x", Width::W8);
        let masked = b.and(x.clone(), b.constant(0x0f, Width::W8));
        let c = b.eq(masked, b.constant(0x05, Width::W8));
        match s.check(&[c]) {
            SatResult::Sat(m) => {
                let v = eval(&x, &m).unwrap();
                assert_eq!(v & 0x0f, 0x05);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn sliced_query_stitches_model_across_components() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let cx = b.eq(x.clone(), b.constant(3, Width::W8));
        let cy = b.eq(y.clone(), b.constant(7, Width::W8));
        match s.check(&[cx, cy]) {
            SatResult::Sat(m) => {
                assert_eq!(eval(&x, &m).unwrap(), 3);
                assert_eq!(eval(&y, &m).unwrap(), 7);
            }
            other => panic!("expected sat, got {other:?}"),
        }
        assert_eq!(s.stats().sliced_queries, 1);
        assert_eq!(s.stats().components_solved, 2);
    }

    #[test]
    fn stitched_model_ignores_stray_pool_assignments() {
        // A pooled model can carry assignments for variables outside the
        // component it answers (here x=5 *and* y=7 from the first
        // query). When it answers the x-component of a later query, the
        // stale y=7 must not clobber the y-component's freshly solved
        // y=3.
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let both = b.and(
            b.eq(x.clone(), b.constant(5, Width::W8)),
            b.eq(y.clone(), b.constant(7, Width::W8)),
        );
        assert!(s.check(&[both]).is_sat());
        let q = [
            b.eq(y.clone(), b.constant(3, Width::W8)),
            b.eq(x.clone(), b.constant(5, Width::W8)),
        ];
        match s.check(&q) {
            SatResult::Sat(m) => {
                assert_eq!(eval(&x, &m).unwrap(), 5);
                assert_eq!(eval(&y, &m).unwrap(), 3);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn sliced_component_cache_survives_unrelated_growth() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let cx = b.eq(x.clone(), b.constant(3, Width::W8));
        s.check(std::slice::from_ref(&cx));
        let solves = s.stats().core_solves;
        // A second query adds an unrelated constraint: the x-component is
        // answered from cache, only the y-component hits the SAT core.
        let y = b.var("y", Width::W8);
        let cy = b.eq(y, b.constant(7, Width::W8));
        assert!(s.check(&[cx, cy]).is_sat());
        assert_eq!(s.stats().cache_hits, 1);
        assert_eq!(s.stats().core_solves, solves + 1);
    }

    #[test]
    fn sliced_unsat_component_fails_whole_query() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let cy = b.eq(y, b.constant(7, Width::W8));
        let lo = b.ult(x.clone(), b.constant(5, Width::W8));
        let hi = b.ult(b.constant(10, Width::W8), x);
        assert_eq!(s.check(&[cy, lo, hi]), SatResult::Unsat);
    }

    #[test]
    fn subset_unsat_answers_superset_query() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let lo = b.ult(x.clone(), b.constant(5, Width::W8));
        let hi = b.ult(b.constant(10, Width::W8), x.clone());
        assert_eq!(s.check(&[lo.clone(), hi.clone()]), SatResult::Unsat);
        let solves = s.stats().core_solves;
        // Tighten with a third constraint over the same variable (so
        // slicing keeps one component and the set is a strict superset).
        let extra = b.ne(x, b.constant(7, Width::W8));
        assert_eq!(s.check(&[lo, hi, extra]), SatResult::Unsat);
        assert_eq!(s.stats().subsumption_hits, 1);
        assert_eq!(s.stats().core_solves, solves, "no new SAT-core solve");
    }

    #[test]
    fn superset_sat_model_answers_subset_query() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let lo = b.ule(b.constant(100, Width::W8), x.clone());
        let hi = b.ule(x.clone(), b.constant(110, Width::W8));
        assert!(s.check(&[lo.clone(), hi]).is_sat());
        let solves = s.stats().core_solves;
        // Drop a constraint: the cached superset model still applies.
        // (It would also be a pool hit; subsumption answers first.)
        assert!(s.check(&[lo]).is_sat());
        assert_eq!(s.stats().subsumption_hits, 1);
        assert_eq!(s.stats().core_solves, solves);
    }

    #[test]
    fn subsumption_disabled_still_correct() {
        let b = ExprBuilder::new();
        let mut s = Solver::with_config(SolverConfig {
            enable_subsumption: false,
            model_pool_size: 0,
            ..SolverConfig::default()
        });
        let x = b.var("x", Width::W8);
        let lo = b.ult(x.clone(), b.constant(5, Width::W8));
        let hi = b.ult(b.constant(10, Width::W8), x.clone());
        assert_eq!(s.check(&[lo.clone(), hi.clone()]), SatResult::Unsat);
        let extra = b.ne(x, b.constant(7, Width::W8));
        assert_eq!(s.check(&[lo, hi, extra]), SatResult::Unsat);
        assert_eq!(s.stats().subsumption_hits, 0);
        assert_eq!(s.stats().core_solves, 2);
    }

    #[test]
    fn slicing_disabled_still_correct() {
        let b = ExprBuilder::new();
        let mut s = Solver::with_config(SolverConfig {
            enable_slicing: false,
            ..SolverConfig::default()
        });
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let cx = b.eq(x.clone(), b.constant(3, Width::W8));
        let cy = b.eq(y.clone(), b.constant(7, Width::W8));
        match s.check(&[cx, cy]) {
            SatResult::Sat(m) => {
                assert_eq!(eval(&x, &m).unwrap(), 3);
                assert_eq!(eval(&y, &m).unwrap(), 7);
            }
            other => panic!("expected sat, got {other:?}"),
        }
        assert_eq!(s.stats().sliced_queries, 0);
    }

    #[test]
    fn shared_cache_subsumption_crosses_instances() {
        let b = ExprBuilder::new();
        let shared = SharedQueryCache::new();
        let x = b.var("x", Width::W8);
        let lo = b.ult(x.clone(), b.constant(5, Width::W8));
        let hi = b.ult(b.constant(10, Width::W8), x.clone());

        let mut s1 = Solver::new();
        s1.attach_shared_cache(shared.clone());
        assert_eq!(s1.check(&[lo.clone(), hi.clone()]), SatResult::Unsat);

        // A different instance asks a strict superset: answered by the
        // shared subset-UNSAT entry, no SAT-core work.
        let mut s2 = Solver::new();
        s2.attach_shared_cache(shared.clone());
        let extra = b.ne(x, b.constant(7, Width::W8));
        assert_eq!(s2.check(&[lo, hi, extra]), SatResult::Unsat);
        assert_eq!(s2.stats().core_solves, 0);
        assert_eq!(s2.stats().subsumption_hits, 1);
        assert_eq!(shared.stats().subsumption_hits, 1);
    }

    #[test]
    fn check_relevant_slices_by_query_vars() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let mut p = ConstraintPartition::new();
        p.add(b.ult(x.clone(), b.constant(5, Width::W8)));
        p.add(b.ult(y.clone(), b.constant(5, Width::W8)));

        // Feasibility of a condition on x consults only the x component.
        let eq7 = b.eq(x.clone(), b.constant(7, Width::W8));
        assert_eq!(s.may_be_true_in(&p, &eq7), Some(false));
        let eq2 = b.eq(x.clone(), b.constant(2, Width::W8));
        assert_eq!(s.may_be_true_in(&p, &eq2), Some(true));
        let lt10 = b.ult(x.clone(), b.constant(10, Width::W8));
        assert_eq!(s.must_be_true_in(&p, &lt10), Some(true));

        // Concretization slices on the expression's variables.
        let (v, model) = s.concretize_in(&p, &x).unwrap();
        assert!(v < 5);
        assert_eq!(eval(&x, &model).unwrap(), v);

        // Sliced answers agree with the full-set entry points.
        let all = p.all();
        let mut full = Solver::new();
        assert_eq!(full.may_be_true(&all, &eq7), Some(false));
        assert_eq!(full.may_be_true(&all, &eq2), Some(true));
    }

    #[test]
    fn wide_constraint_64_bit() {
        let (b, mut s) = setup();
        let x = b.var("x", Width::W64);
        let c = b.eq(
            b.mul(x.clone(), b.constant(3, Width::W64)),
            b.constant(0x3fff_ffff_ffff_fffd, Width::W64),
        );
        // 3x == 0x3ffffffffffffffd (mod 2^64); x = inverse(3)*rhs.
        match s.check(&[c]) {
            SatResult::Sat(m) => {
                let v = eval(&x, &m).unwrap();
                assert_eq!(v.wrapping_mul(3), 0x3fff_ffff_ffff_fffd);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }
}
