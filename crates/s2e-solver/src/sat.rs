//! A CDCL SAT solver.
//!
//! Implements the standard conflict-driven clause-learning loop: unit
//! propagation with two watched literals per clause, first-UIP conflict
//! analysis, VSIDS-style variable activities with a lazily-filtered binary
//! heap, phase saving, and Luby-sequence restarts. Learned clauses are kept
//! forever — the queries produced by guest path constraints are small enough
//! that clause-database reduction never pays for itself.

use std::collections::BinaryHeap;

/// A propositional variable, numbered from zero.
pub type Var = u32;

/// A literal: a variable with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    /// Creates a literal with an explicit polarity (`true` = positive).
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// True if this is a positive literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index usable for watch lists (`2*var + polarity`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", if self.is_pos() { "" } else { "-" }, self.var())
    }
}

/// Three-valued assignment of a variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[derive(Default)]
enum LBool {
    True,
    False,
    #[default]
    Undef,
}

/// Outcome of a SAT search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatOutcome {
    /// A satisfying assignment exists (read it with [`SatSolver::model_value`]).
    Sat,
    /// No satisfying assignment exists.
    Unsat,
    /// The conflict budget was exhausted before a decision was reached.
    Unknown,
}

#[derive(Clone, Copy, PartialEq, Debug)]
struct HeapEntry {
    activity: f64,
    var: Var,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.activity
            .total_cmp(&other.activity)
            .then(self.var.cmp(&other.var))
    }
}

const VAR_DECAY: f64 = 0.95;
const CLAUSE_RESCALE: f64 = 1e100;

/// A CDCL SAT solver over clauses added with [`SatSolver::add_clause`].
///
/// ```
/// use s2e_solver::sat::{Lit, SatOutcome, SatSolver};
/// let mut s = SatSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// assert_eq!(s.solve(u64::MAX), SatOutcome::Sat);
/// assert_eq!(s.model_value(b), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<usize>>, // indexed by Lit::index()
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: BinaryHeap<HeapEntry>,
    saved_phase: Vec<bool>,
    unsat: bool,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
}


impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            var_inc: 1.0,
            ..SatSolver::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len() as Var;
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push(HeapEntry {
            activity: 0.0,
            var: v,
        });
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total conflicts encountered across all `solve` calls.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total decisions made across all `solve` calls.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Total literal propagations across all `solve` calls.
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assign[l.var() as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_pos() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_pos() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    /// Adds a clause. Returns `false` if the clause set is now trivially
    /// unsatisfiable.
    ///
    /// Must be called at decision level zero (i.e., not from within a
    /// `solve` callback); clauses may be added between `solve` calls for
    /// incremental use.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        // A previous solve() may have left the trail at a decision level;
        // clause addition happens at level zero.
        self.backtrack(0);
        // Deduplicate and check for tautologies.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort();
        c.dedup();
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return true; // x ∨ ¬x: tautology, drop
            }
        }
        // Remove literals already false at level 0; detect satisfied clause.
        c.retain(|&l| self.value_lit(l) != LBool::False);
        if c.iter().any(|&l| self.value_lit(l) == LBool::True) {
            return true;
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(c);
                true
            }
        }
    }

    fn attach_clause(&mut self, c: Vec<Lit>) -> usize {
        let idx = self.clauses.len();
        self.watches[c[0].index()].push(idx);
        self.watches[c[1].index()].push(idx);
        self.clauses.push(c);
        idx
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var() as usize;
        self.assign[v] = if l.is_pos() { LBool::True } else { LBool::False };
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.saved_phase[v] = l.is_pos();
        self.trail.push(l);
    }

    /// Propagates all enqueued literals; returns a conflicting clause index
    /// if a conflict arises.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let false_lit = !p;
            let mut i = 0;
            // take the watch list to sidestep aliasing
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.index()]);
            while i < watch_list.len() {
                let ci = watch_list[i];
                // Ensure the false literal is at position 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], false_lit);
                let first = self.clauses[ci][0];
                if self.value_lit(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    let lk = self.clauses[ci][k];
                    if self.value_lit(lk) != LBool::False {
                        self.clauses[ci].swap(1, k);
                        self.watches[lk.index()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    self.watches[false_lit.index()] = watch_list;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(first, Some(ci));
                i += 1;
            }
            self.watches[false_lit.index()] = watch_list;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > CLAUSE_RESCALE {
            for a in &mut self.activity {
                *a /= CLAUSE_RESCALE;
            }
            self.var_inc /= CLAUSE_RESCALE;
        }
        self.heap.push(HeapEntry {
            activity: self.activity[v as usize],
            var: v,
        });
    }

    /// First-UIP conflict analysis. Returns (learned clause, backtrack
    /// level); the asserting literal is placed first.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut ci = conflict;
        let cur_level = self.trail_lim.len() as u32;
        let mut trail_idx = self.trail.len();

        loop {
            let start = usize::from(p.is_some());
            // skip position 0 (the asserting literal of the reason clause)
            let clause = self.clauses[ci].clone();
            for &q in &clause[start..] {
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == cur_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                trail_idx -= 1;
                if seen[self.trail[trail_idx].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[trail_idx];
            seen[lit.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            ci = self.reason[lit.var() as usize].expect("implied literal has a reason");
            p = Some(lit);
        }

        let uip = !p.expect("first UIP exists");
        learned.insert(0, uip);

        // Backtrack level: second-highest level in the learned clause.
        let bt = learned[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        (learned, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var() as usize;
                self.assign[v] = LBool::Undef;
                self.reason[v] = None;
                self.heap.push(HeapEntry {
                    activity: self.activity[v],
                    var: l.var(),
                });
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(entry) = self.heap.pop() {
            let v = entry.var;
            if self.assign[v as usize] == LBool::Undef
                && entry.activity == self.activity[v as usize]
            {
                return Some(v);
            }
        }
        // Heap exhausted by staleness: linear scan fallback.
        (0..self.num_vars() as Var).find(|&v| self.assign[v as usize] == LBool::Undef)
    }

    /// Runs the CDCL loop with a conflict budget.
    ///
    /// Returns [`SatOutcome::Unknown`] when `max_conflicts` is exceeded;
    /// pass `u64::MAX` for an unbounded search.
    pub fn solve(&mut self, max_conflicts: u64) -> SatOutcome {
        if self.unsat {
            return SatOutcome::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatOutcome::Unsat;
        }
        let mut conflicts_here: u64 = 0;
        let mut restart_idx: u64 = 1;
        let mut restart_budget = 100 * luby(restart_idx);

        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                conflicts_here += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return SatOutcome::Unsat;
                }
                let (learned, bt) = self.analyze(conflict);
                self.backtrack(bt);
                if learned.len() == 1 {
                    self.enqueue(learned[0], None);
                } else {
                    let ci = self.attach_clause(learned.clone());
                    self.enqueue(learned[0], Some(ci));
                }
                self.var_inc /= VAR_DECAY;
                if conflicts_here > max_conflicts {
                    return SatOutcome::Unknown;
                }
                if conflicts_here > restart_budget {
                    restart_idx += 1;
                    restart_budget = conflicts_here + 100 * luby(restart_idx);
                    self.backtrack(0);
                }
            } else {
                match self.pick_branch_var() {
                    None => return SatOutcome::Sat,
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.saved_phase[v as usize];
                        self.enqueue(Lit::new(v, phase), None);
                    }
                }
            }
        }
    }

    /// Value of `v` in the model found by the last successful [`solve`].
    ///
    /// Returns `None` for unassigned variables (possible only before any
    /// `Sat` outcome).
    ///
    /// [`solve`]: SatSolver::solve
    pub fn model_value(&self, v: Var) -> Option<bool> {
        match self.assign[v as usize] {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed.
fn luby(i: u64) -> u64 {
    let mut x = i - 1;
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_models(num_vars: u32, clauses: &[Vec<(u32, bool)>]) -> Vec<Vec<bool>> {
        // Brute force reference.
        let mut out = Vec::new();
        for m in 0..(1u32 << num_vars) {
            let val = |v: u32| m >> v & 1 == 1;
            if clauses
                .iter()
                .all(|c| c.iter().any(|&(v, pos)| val(v) == pos))
            {
                out.push((0..num_vars).map(val).collect());
            }
        }
        out
    }

    fn check_formula(num_vars: u32, clauses: &[Vec<(u32, bool)>]) {
        let mut s = SatSolver::new();
        let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
        let mut ok = true;
        for c in clauses {
            let lits: Vec<Lit> = c.iter().map(|&(v, pos)| Lit::new(vars[v as usize], pos)).collect();
            ok &= s.add_clause(&lits);
        }
        let reference = all_models(num_vars, clauses);
        if reference.is_empty() {
            assert!(!ok || s.solve(u64::MAX) == SatOutcome::Unsat);
        } else {
            assert!(ok);
            assert_eq!(s.solve(u64::MAX), SatOutcome::Sat);
            let model: Vec<bool> = vars
                .iter()
                .map(|&v| s.model_value(v).unwrap())
                .collect();
            assert!(
                reference.contains(&model),
                "model {model:?} not in {reference:?}"
            );
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = SatSolver::new();
        assert_eq!(s.solve(u64::MAX), SatOutcome::Sat);
    }

    #[test]
    fn unit_clauses() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[Lit::pos(a)]));
        assert_eq!(s.solve(u64::MAX), SatOutcome::Sat);
        assert_eq!(s.model_value(a), Some(true));
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert!(!s.add_clause(&[Lit::neg(a)]) || s.solve(u64::MAX) == SatOutcome::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // a, a→b, b→c  ⇒  c
        let mut s = SatSolver::new();
        let (a, b, c) = (s.new_var(), s.new_var(), s.new_var());
        s.add_clause(&[Lit::pos(a)]);
        s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
        s.add_clause(&[Lit::neg(b), Lit::pos(c)]);
        assert_eq!(s.solve(u64::MAX), SatOutcome::Sat);
        assert_eq!(s.model_value(c), Some(true));
    }

    #[test]
    fn xor_chain_sat() {
        // (a ⊕ b) ∧ (b ⊕ c) as CNF.
        check_formula(
            3,
            &[
                vec![(0, true), (1, true)],
                vec![(0, false), (1, false)],
                vec![(1, true), (2, true)],
                vec![(1, false), (2, false)],
            ],
        );
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j; vars = 3*2.
        let var = |i: u32, j: u32| i * 2 + j;
        let mut clauses: Vec<Vec<(u32, bool)>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![(var(i, 0), true), (var(i, 1), true)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![(var(i1, j), false), (var(i2, j), false)]);
                }
            }
        }
        check_formula(6, &clauses);
    }

    #[test]
    fn tautologies_dropped() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[Lit::pos(a), Lit::neg(a)]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(u64::MAX), SatOutcome::Sat);
    }

    #[test]
    fn duplicate_literals_deduped() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[Lit::pos(a), Lit::pos(a), Lit::pos(b)]));
        assert_eq!(s.solve(u64::MAX), SatOutcome::Sat);
    }

    #[test]
    fn randomized_against_brute_force() {
        let mut rng = s2e_prng::SplitMix64::new(0x52e);
        for _ in 0..200 {
            let nv = rng.range(1, 7) as u32;
            let nc = rng.index(13);
            let clauses: Vec<Vec<(u32, bool)>> = (0..nc)
                .map(|_| {
                    let len = 1 + rng.index(3);
                    (0..len)
                        .map(|_| (rng.below(nv as u64) as u32, rng.next_bool()))
                        .collect()
                })
                .collect();
            check_formula(nv, &clauses);
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve(u64::MAX), SatOutcome::Sat);
        s.add_clause(&[Lit::neg(a)]);
        assert_eq!(s.solve(u64::MAX), SatOutcome::Sat);
        assert_eq!(s.model_value(b), Some(true));
        s.add_clause(&[Lit::neg(b)]);
        assert_eq!(s.solve(u64::MAX), SatOutcome::Unsat);
    }
}
