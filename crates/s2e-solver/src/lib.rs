//! Constraint solving for the S2E platform.
//!
//! The original S2E inherits the STP bitvector solver through KLEE. This
//! crate provides the equivalent substrate, built from scratch:
//!
//! - [`sat`] — a CDCL SAT solver (two-watched literals, first-UIP clause
//!   learning, VSIDS-style activity, Luby restarts, phase saving);
//! - [`bitblast`] — a Tseitin bit-blaster translating
//!   [`s2e_expr`] bitvector DAGs into CNF (ripple-carry adders, shift-add
//!   multipliers, restoring dividers, barrel shifters);
//! - [`independence`] — constraint-independence slicing: splits
//!   constraint sets into connected components under shared variables so
//!   queries solve (and cache) each component separately;
//! - [`Solver`] — the high-level query interface used by the execution
//!   engine, with a subsuming query cache, a counterexample (model) pool
//!   as in KLEE, and the per-query timing statistics that the paper's
//!   Fig. 9 reports.
//!
//! # Example
//!
//! ```
//! use s2e_expr::{ExprBuilder, Width};
//! use s2e_solver::{SatResult, Solver};
//!
//! let b = ExprBuilder::new();
//! let x = b.var("x", Width::W8);
//! // x + 10 == 2 at 8 bits: satisfiable by x = 248.
//! let c = b.eq(b.add(x.clone(), b.constant(10, Width::W8)), b.constant(2, Width::W8));
//! let mut solver = Solver::new();
//! match solver.check(&[c]) {
//!     SatResult::Sat(model) => {
//!         assert_eq!(s2e_expr::eval(&x, &model).unwrap(), 248);
//!     }
//!     other => panic!("expected sat, got {other:?}"),
//! }
//! ```

pub mod bitblast;
pub mod independence;
pub mod sat;
mod solver;

pub use independence::{Component, ConstraintPartition};
pub use solver::{
    KindStats, PortableCacheEntry, QueryKind, SatResult, SharedCacheStats, SharedQueryCache,
    Solver, SolverConfig, SolverStats,
};
