//! Constraint-independence slicing (KLEE's "independent solver" layer).
//!
//! Two constraints are *independent* when they share no symbolic
//! variables. Satisfiability of a conjunction factors across the
//! connected components of the constraint graph (constraints as nodes,
//! edges between constraints sharing a variable): the conjunction is SAT
//! iff every component is SAT, and the union of per-component models —
//! which bind disjoint variables — is a model of the whole set.
//!
//! This module provides the two shapes the solver stack needs:
//!
//! - [`partition`] — one-shot union–find split of an arbitrary query
//!   into components, used by `Solver::check` so each component gets its
//!   own cache entry and its own (smaller) SAT instance;
//! - [`ConstraintPartition`] — an incrementally-maintained partition
//!   that `ExecState` keeps alongside its path condition, so fork-time
//!   feasibility checks can send the solver only the component(s) the
//!   branch condition touches.
//!
//! Variable footprints come from [`ExprRef::var_ids`], which memoizes
//! the sorted variable set per DAG node — partitioning is O(total vars)
//! per call, with each expression node visited once ever.
//!
//! Constraints with *no* variables get special treatment: the expression
//! builder constant-folds them away, but a hand-built (or
//! simplification-disabled) variable-free constraint could still be
//! `false`, so [`ConstraintPartition`] keeps them in a `ground` residue
//! that every slice includes — a slicing layer must never drop an
//! unconditional contradiction.

use s2e_expr::{ExprRef, VarId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// True if two sorted variable-id slices share an element.
pub fn vars_overlap(a: &[VarId], b: &[VarId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Union of two sorted variable-id slices, sorted and deduplicated.
pub fn merge_vars(a: &[VarId], b: &[VarId]) -> Vec<VarId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Array-based union–find with path halving and union by size.
#[derive(Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets `0..n`.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// Splits a constraint set into its connected components under shared
/// variables: union–find over constraint indices, linked through the
/// first constraint seen for each variable (so the pass is linear in the
/// total variable count, not quadratic in constraints). Components come
/// back in first-occurrence order, each preserving input order —
/// deterministic for a given input, which keeps cache keys and stitched
/// models schedule-independent. Variable-free constraints become
/// singleton components.
pub fn partition(constraints: &[ExprRef]) -> Vec<Vec<ExprRef>> {
    if constraints.len() <= 1 {
        return constraints.iter().map(|c| vec![c.clone()]).collect();
    }
    let mut uf = UnionFind::new(constraints.len());
    let mut owner: HashMap<VarId, usize> = HashMap::new();
    for (i, c) in constraints.iter().enumerate() {
        for &v in c.var_ids() {
            match owner.entry(v) {
                Entry::Occupied(o) => {
                    uf.union(i, *o.get());
                }
                Entry::Vacant(slot) => {
                    slot.insert(i);
                }
            }
        }
    }
    let mut groups: Vec<Vec<ExprRef>> = Vec::new();
    let mut slot_of_root: HashMap<usize, usize> = HashMap::new();
    for (i, c) in constraints.iter().enumerate() {
        let root = uf.find(i);
        let slot = *slot_of_root.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[slot].push(c.clone());
    }
    groups
}

/// One connected component of a constraint set: the constraints plus the
/// sorted union of their variables.
#[derive(Clone, Debug, Default)]
pub struct Component {
    constraints: Vec<ExprRef>,
    vars: Vec<VarId>,
}

impl Component {
    /// The component's constraints.
    pub fn constraints(&self) -> &[ExprRef] {
        &self.constraints
    }

    /// Sorted union of the constraints' variables.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// True if the component shares a variable with `vars` (sorted).
    pub fn touches(&self, vars: &[VarId]) -> bool {
        vars_overlap(&self.vars, vars)
    }
}

/// A constraint set maintained as connected components under shared
/// variables.
///
/// `ExecState` keeps one of these beside its flat constraint vector:
/// [`ConstraintPartition::add`] runs at constraint-add time (and the
/// partition clones with the state on fork), so by the time a branch
/// asks "may this condition be true?", the components are already
/// there and the solver can be handed just the slice the condition
/// touches via [`ConstraintPartition::slice_for`].
#[derive(Clone, Debug, Default)]
pub struct ConstraintPartition {
    components: Vec<Component>,
    /// Variable-free constraints; included in every slice (see module
    /// docs — a var-free `false` must never be sliced away).
    ground: Vec<ExprRef>,
    total: usize,
}

impl ConstraintPartition {
    /// An empty partition.
    pub fn new() -> ConstraintPartition {
        ConstraintPartition::default()
    }

    /// Partitions an existing constraint set.
    pub fn from_constraints(constraints: &[ExprRef]) -> ConstraintPartition {
        let mut p = ConstraintPartition::new();
        for c in constraints {
            p.add(c.clone());
        }
        p
    }

    /// Adds one constraint, merging every component it bridges. The cost
    /// is one overlap check per existing component — path conditions over
    /// `m` symbolic inputs have at most `m` components, and typically far
    /// fewer.
    pub fn add(&mut self, c: ExprRef) {
        self.total += 1;
        let vars = c.var_ids();
        if vars.is_empty() {
            self.ground.push(c);
            return;
        }
        let mut merged = Component {
            constraints: vec![c.clone()],
            vars: vars.to_vec(),
        };
        let mut first_hit: Option<usize> = None;
        let mut i = 0;
        while i < self.components.len() {
            // Components are pairwise disjoint, so checking against the
            // new constraint's own vars (not the growing union) suffices.
            if vars_overlap(self.components[i].vars(), vars) {
                let old = self.components.remove(i);
                merged.vars = merge_vars(&old.vars, &merged.vars);
                let mut constraints = old.constraints;
                constraints.append(&mut merged.constraints);
                merged.constraints = constraints;
                if first_hit.is_none() {
                    first_hit = Some(i);
                }
            } else {
                i += 1;
            }
        }
        match first_hit {
            Some(i) => self.components.insert(i, merged),
            None => self.components.push(merged),
        }
    }

    /// The current components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The variable-free residue.
    pub fn ground(&self) -> &[ExprRef] {
        &self.ground
    }

    /// Total number of constraints added.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True if no constraints were added.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Every constraint (components in order, then the ground residue).
    pub fn all(&self) -> Vec<ExprRef> {
        let mut out = Vec::with_capacity(self.total);
        for comp in &self.components {
            out.extend(comp.constraints.iter().cloned());
        }
        out.extend(self.ground.iter().cloned());
        out
    }

    /// The slice relevant to a query over `vars` (sorted): every
    /// component sharing a variable, plus the ground residue.
    pub fn slice_for(&self, vars: &[VarId]) -> Vec<ExprRef> {
        let mut out = self.ground.clone();
        for comp in &self.components {
            if comp.touches(vars) {
                out.extend(comp.constraints.iter().cloned());
            }
        }
        out
    }

    /// [`ConstraintPartition::slice_for`] on an expression's variables.
    pub fn slice_for_expr(&self, e: &ExprRef) -> Vec<ExprRef> {
        self.slice_for(e.var_ids())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_expr::{ExprBuilder, Width};

    fn b() -> ExprBuilder {
        ExprBuilder::new()
    }

    #[test]
    fn overlap_and_merge_on_sorted_slices() {
        let a = [VarId(1), VarId(3), VarId(5)];
        let c = [VarId(2), VarId(4)];
        let d = [VarId(4), VarId(5)];
        assert!(!vars_overlap(&a, &c));
        assert!(vars_overlap(&a, &d));
        assert!(vars_overlap(&c, &d));
        assert_eq!(
            merge_vars(&a, &d),
            vec![VarId(1), VarId(3), VarId(4), VarId(5)]
        );
        assert_eq!(merge_vars(&[], &c), c.to_vec());
    }

    #[test]
    fn union_find_groups() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 2));
        assert!(uf.union(3, 4));
        assert!(!uf.union(2, 0));
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        assert_ne!(uf.find(1), uf.find(4));
    }

    #[test]
    fn partition_splits_independent_constraints() {
        let b = b();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let z = b.var("z", Width::W8);
        let cx = b.ult(x.clone(), b.constant(5, Width::W8));
        let cy = b.ult(y.clone(), b.constant(5, Width::W8));
        let cxz = b.eq(b.add(x, z), b.constant(9, Width::W8));
        let groups = partition(&[cx.clone(), cy.clone(), cxz.clone()]);
        // x and x+z connect through x; y stands alone.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![cx, cxz]);
        assert_eq!(groups[1], vec![cy]);
    }

    #[test]
    fn partition_bridging_constraint_merges_components() {
        let b = b();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let cx = b.ult(x.clone(), b.constant(5, Width::W8));
        let cy = b.ult(y.clone(), b.constant(5, Width::W8));
        let bridge = b.eq(x, y);
        let groups = partition(&[cx, cy, bridge]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn incremental_partition_matches_batch() {
        let b = b();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let z = b.var("z", Width::W8);
        let cs = vec![
            b.ult(x.clone(), b.constant(5, Width::W8)),
            b.ult(y.clone(), b.constant(6, Width::W8)),
            b.ult(z.clone(), b.constant(7, Width::W8)),
            b.eq(y, z), // bridges components 2 and 3
        ];
        let p = ConstraintPartition::from_constraints(&cs);
        assert_eq!(p.len(), 4);
        assert_eq!(p.components().len(), 2);
        let batch = partition(&cs);
        assert_eq!(batch.len(), 2);
        for (comp, group) in p.components().iter().zip(&batch) {
            let mut a = comp.constraints().to_vec();
            let mut g = group.clone();
            a.sort_by_key(|c| c.cached_hash());
            g.sort_by_key(|c| c.cached_hash());
            assert_eq!(a, g);
        }
    }

    #[test]
    fn slice_for_picks_touching_components_only() {
        let b = b();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let cx = b.ult(x.clone(), b.constant(5, Width::W8));
        let cy = b.ult(y.clone(), b.constant(5, Width::W8));
        let p = ConstraintPartition::from_constraints(&[cx.clone(), cy.clone()]);
        assert_eq!(p.slice_for_expr(&x), vec![cx.clone()]);
        assert_eq!(p.slice_for_expr(&y), vec![cy.clone()]);
        assert_eq!(p.slice_for(&[]), Vec::<s2e_expr::ExprRef>::new());
        let both = b.eq(x, y);
        assert_eq!(p.slice_for_expr(&both), vec![cx, cy]);
    }

    #[test]
    fn ground_constraints_survive_every_slice() {
        let b = b();
        let x = b.var("x", Width::W8);
        let cx = b.ult(x.clone(), b.constant(5, Width::W8));
        // A var-free constraint (the solver normally folds these before
        // partitioning, but the partition must not rely on that).
        let falsum = b.false_();
        let mut p = ConstraintPartition::new();
        p.add(cx.clone());
        p.add(falsum.clone());
        assert_eq!(p.ground(), &[falsum.clone()]);
        assert_eq!(p.slice_for_expr(&x), vec![falsum.clone(), cx]);
        // Even a slice for an unrelated variable keeps the contradiction.
        assert_eq!(p.slice_for(&[VarId(999)]), vec![falsum]);
    }

    #[test]
    fn partition_clones_independently() {
        let b = b();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let mut parent = ConstraintPartition::new();
        parent.add(b.ult(x, b.constant(5, Width::W8)));
        let mut child = parent.clone();
        child.add(b.ult(y, b.constant(5, Width::W8)));
        assert_eq!(parent.components().len(), 1);
        assert_eq!(child.components().len(), 2);
        assert_eq!(parent.len(), 1);
        assert_eq!(child.len(), 2);
    }
}
