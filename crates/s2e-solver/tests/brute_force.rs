//! Property test: the full solver pipeline (simplifier → cache →
//! bit-blaster → CDCL) agrees with brute-force enumeration on random
//! 8-bit constraint systems.

use proptest::prelude::*;
use s2e_expr::{eval, Assignment, BinOp, ExprBuilder, ExprRef, Width};
use s2e_solver::{SatResult, Solver};

#[derive(Clone, Debug)]
struct Cmp {
    op_idx: u8,
    lhs_var: bool,
    k1: u8,
    k2: u8,
    arith_idx: u8,
}

const CMPS: [BinOp; 6] = [
    BinOp::Eq,
    BinOp::Ne,
    BinOp::ULt,
    BinOp::ULe,
    BinOp::SLt,
    BinOp::SLe,
];
const ARITH: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::UDiv,
    BinOp::URem,
];

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    (any::<u8>(), any::<bool>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
        |(op_idx, lhs_var, k1, k2, arith_idx)| Cmp {
            op_idx,
            lhs_var,
            k1,
            k2,
            arith_idx,
        },
    )
}

/// Builds `((x ⊕ k1) cmp k2)` or `((k1 ⊕ y) cmp k2)` over two 8-bit vars.
fn build_constraint(b: &ExprBuilder, x: &ExprRef, y: &ExprRef, c: &Cmp) -> ExprRef {
    let var = if c.lhs_var { x.clone() } else { y.clone() };
    let arith = ARITH[c.arith_idx as usize % ARITH.len()];
    let lhs = b.binop(arith, var, b.constant(c.k1 as u64, Width::W8));
    let cmp = CMPS[c.op_idx as usize % CMPS.len()];
    b.binop(cmp, lhs, b.constant(c.k2 as u64, Width::W8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_agrees_with_enumeration(cmps in prop::collection::vec(cmp_strategy(), 1..5)) {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let constraints: Vec<ExprRef> = cmps
            .iter()
            .map(|c| build_constraint(&b, &x, &y, c))
            .collect();

        // Brute force over the 16-bit joint space.
        let mut feasible = false;
        'outer: for xv in 0..=255u64 {
            for yv in 0..=255u64 {
                let mut asg = Assignment::new();
                asg.set_by_name("x", xv);
                asg.set_by_name("y", yv);
                if constraints.iter().all(|c| eval(c, &asg) == Ok(1)) {
                    feasible = true;
                    break 'outer;
                }
            }
        }

        let mut solver = Solver::new();
        match solver.check(&constraints) {
            SatResult::Sat(model) => {
                prop_assert!(feasible, "solver says SAT, enumeration says UNSAT");
                // The model must actually satisfy every constraint.
                let mut asg = model;
                // Unmentioned vars default to 0 for evaluation.
                asg.set_by_name("x", eval(&x, &asg).unwrap_or(0));
                asg.set_by_name("y", eval(&y, &asg).unwrap_or(0));
                for c in &constraints {
                    prop_assert_eq!(eval(c, &asg), Ok(1), "model violates {}", **c);
                }
            }
            SatResult::Unsat => {
                prop_assert!(!feasible, "solver says UNSAT, enumeration found a model");
            }
            SatResult::Unknown => prop_assert!(false, "budget exhausted on a tiny query"),
        }
    }
}
