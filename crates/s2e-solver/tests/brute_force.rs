//! Property test: the full solver pipeline (simplifier → cache →
//! bit-blaster → CDCL) agrees with brute-force enumeration on random
//! 8-bit constraint systems. Cases come from a seeded SplitMix64 stream
//! so every run checks the same corpus.

use s2e_expr::{eval, Assignment, BinOp, ExprBuilder, ExprRef, Width};
use s2e_prng::SplitMix64;
use s2e_solver::{SatResult, Solver};

#[derive(Clone, Debug)]
struct Cmp {
    op_idx: u8,
    lhs_var: bool,
    k1: u8,
    k2: u8,
    arith_idx: u8,
}

const CMPS: [BinOp; 6] = [
    BinOp::Eq,
    BinOp::Ne,
    BinOp::ULt,
    BinOp::ULe,
    BinOp::SLt,
    BinOp::SLe,
];
const ARITH: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::UDiv,
    BinOp::URem,
];

fn gen_cmp(rng: &mut SplitMix64) -> Cmp {
    Cmp {
        op_idx: rng.next_u8(),
        lhs_var: rng.next_bool(),
        k1: rng.next_u8(),
        k2: rng.next_u8(),
        arith_idx: rng.next_u8(),
    }
}

/// Builds `((x ⊕ k1) cmp k2)` or `((k1 ⊕ y) cmp k2)` over two 8-bit vars.
fn build_constraint(b: &ExprBuilder, x: &ExprRef, y: &ExprRef, c: &Cmp) -> ExprRef {
    let var = if c.lhs_var { x.clone() } else { y.clone() };
    let arith = ARITH[c.arith_idx as usize % ARITH.len()];
    let lhs = b.binop(arith, var, b.constant(c.k1 as u64, Width::W8));
    let cmp = CMPS[c.op_idx as usize % CMPS.len()];
    b.binop(cmp, lhs, b.constant(c.k2 as u64, Width::W8))
}

#[test]
fn solver_agrees_with_enumeration() {
    let mut rng = SplitMix64::new(0xb407e);
    for case in 0..48u64 {
        let cmps: Vec<Cmp> = (0..1 + rng.index(4)).map(|_| gen_cmp(&mut rng)).collect();
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let constraints: Vec<ExprRef> = cmps
            .iter()
            .map(|c| build_constraint(&b, &x, &y, c))
            .collect();

        // Brute force over the 16-bit joint space.
        let mut feasible = false;
        'outer: for xv in 0..=255u64 {
            for yv in 0..=255u64 {
                let mut asg = Assignment::new();
                asg.set_by_name("x", xv);
                asg.set_by_name("y", yv);
                if constraints.iter().all(|c| eval(c, &asg) == Ok(1)) {
                    feasible = true;
                    break 'outer;
                }
            }
        }

        let mut solver = Solver::new();
        match solver.check(&constraints) {
            SatResult::Sat(model) => {
                assert!(feasible, "case {case}: solver says SAT, enumeration says UNSAT");
                // The model must actually satisfy every constraint.
                let mut asg = model;
                // Unmentioned vars default to 0 for evaluation.
                asg.set_by_name("x", eval(&x, &asg).unwrap_or(0));
                asg.set_by_name("y", eval(&y, &asg).unwrap_or(0));
                for c in &constraints {
                    assert_eq!(eval(c, &asg), Ok(1), "case {case}: model violates {}", **c);
                }
            }
            SatResult::Unsat => {
                assert!(
                    !feasible,
                    "case {case}: solver says UNSAT, enumeration found a model ({cmps:?})"
                );
            }
            SatResult::Unknown => panic!("case {case}: budget exhausted on a tiny query"),
        }
    }
}
