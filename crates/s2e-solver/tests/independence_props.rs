//! Property tests for the optimization stack: on random constraint
//! corpora, the sliced + subsuming solver must agree verdict-for-verdict
//! with a reference solver that has slicing, subsumption, the query
//! cache, and the model pool all disabled — and every stitched SAT model
//! must satisfy the *full* constraint set under evaluation. Cases come
//! from a seeded SplitMix64 stream so every run checks the same corpus.

use s2e_expr::{eval, Assignment, ExprBuilder, ExprRef, VarId, Width};
use s2e_prng::SplitMix64;
use s2e_solver::{SatResult, Solver, SolverConfig};

const SEED: u64 = 0x1d5eed; // fixed corpus seed
const CASES: usize = 24;
const QUERIES_PER_CASE: usize = 12;
const VARS: usize = 5;

/// One random constraint over one or two of the `vars`. Pairing each
/// variable with its neighbour produces several genuinely independent
/// clusters per query, plus occasional bridges that merge them.
fn gen_constraint(b: &ExprBuilder, vars: &[ExprRef], rng: &mut SplitMix64) -> ExprRef {
    let i = rng.index(vars.len());
    let v = vars[i].clone();
    match rng.below(4) {
        0 => b.ult(v, b.constant(rng.range(2, 250), Width::W8)),
        1 => b.ne(v, b.constant(rng.below(256), Width::W8)),
        2 => b.eq(
            b.add(v, b.constant(rng.below(256), Width::W8)),
            b.constant(rng.below(256), Width::W8),
        ),
        _ => {
            let j = (i + 1) % vars.len();
            b.ule(v, vars[j].clone())
        }
    }
}

/// Zero-extends `model` over every variable appearing in `constraints`,
/// mirroring what the engine does before evaluating under a model.
fn extend(model: &Assignment, constraints: &[ExprRef]) -> Assignment {
    let assigned: std::collections::HashSet<VarId> = model.iter().map(|(id, _)| id).collect();
    let mut full = model.clone();
    for c in constraints {
        for &id in c.var_ids() {
            if !assigned.contains(&id) {
                full.set(id, 0);
            }
        }
    }
    full
}

fn optimized() -> Solver {
    let mut s = Solver::new();
    s.set_config(SolverConfig {
        enable_slicing: true,
        enable_subsumption: true,
        ..SolverConfig::default()
    });
    s
}

fn reference() -> Solver {
    let mut s = Solver::new();
    s.set_config(SolverConfig {
        enable_slicing: false,
        enable_subsumption: false,
        enable_cache: false,
        model_pool_size: 0,
        ..SolverConfig::default()
    });
    s
}

/// Issues growing-prefix queries (the shape path exploration produces)
/// and cross-checks the two solvers on each.
#[test]
fn sliced_subsuming_solver_agrees_with_plain_solver() {
    let mut rng = SplitMix64::new(SEED);
    for case in 0..CASES {
        let b = ExprBuilder::new();
        let vars: Vec<ExprRef> = (0..VARS)
            .map(|i| b.var(&format!("v{i}"), Width::W8))
            .collect();
        // One optimized solver *per case* accumulates cache state across
        // the case's queries, so subsumption and component reuse are
        // actually exercised against earlier answers.
        let mut opt = optimized();
        let mut refs = reference();
        let mut pool: Vec<ExprRef> = Vec::new();
        for qi in 0..QUERIES_PER_CASE {
            pool.push(gen_constraint(&b, &vars, &mut rng));
            // Alternate whole-pool queries with random prefixes so both
            // subset→superset and superset→subset cache orders occur.
            let query: Vec<ExprRef> = if rng.next_bool() {
                pool.clone()
            } else {
                pool[..1 + rng.index(pool.len())].to_vec()
            };
            let got = opt.check(&query);
            let want = refs.check(&query);
            match (&got, &want) {
                (SatResult::Sat(m), SatResult::Sat(_)) => {
                    let full = extend(m, &query);
                    for c in &query {
                        assert_eq!(
                            eval(c, &full).ok(),
                            Some(1),
                            "case {case} query {qi}: stitched model violates {c:?}"
                        );
                    }
                }
                (SatResult::Unsat, SatResult::Unsat) => {}
                other => panic!("case {case} query {qi}: verdict mismatch {other:?}"),
            }
        }
        // The reference does all the work from scratch; the optimized
        // stack must never reach the SAT core more often.
        assert!(
            opt.stats().core_solves <= refs.stats().core_solves,
            "case {case}: optimized core solves {} > reference {}",
            opt.stats().core_solves,
            refs.stats().core_solves,
        );
    }
}

/// Same corpus shape, but cross-checks the partition-aware entry point
/// (`check_relevant` over an incrementally maintained partition) against
/// a plain full-set `check` — the invariant the engine's fork-time
/// feasibility queries rely on.
#[test]
fn check_relevant_agrees_with_full_check_on_feasible_paths() {
    use s2e_solver::{ConstraintPartition, QueryKind};
    let mut rng = SplitMix64::new(SEED ^ 0x9e37_79b9);
    for case in 0..CASES {
        let b = ExprBuilder::new();
        let vars: Vec<ExprRef> = (0..VARS)
            .map(|i| b.var(&format!("v{i}"), Width::W8))
            .collect();
        let mut opt = optimized();
        let mut refs = reference();
        let mut partition = ConstraintPartition::new();
        let mut path: Vec<ExprRef> = Vec::new();
        for qi in 0..QUERIES_PER_CASE {
            let cand = gen_constraint(&b, &vars, &mut rng);
            // Mimic the engine: extend the path only along feasible
            // branches, so the partition invariant (path constraints are
            // satisfiable by construction) holds.
            let mut with = path.clone();
            with.push(cand.clone());
            if !refs.check(&with).is_sat() {
                continue;
            }
            path.push(cand.clone());
            partition.add(cand.clone());

            let probe = gen_constraint(&b, &vars, &mut rng);
            let got = opt.check_relevant(&partition, std::slice::from_ref(&probe), QueryKind::Feasibility);
            let mut full = path.clone();
            full.push(probe.clone());
            let want = refs.check(&full);
            assert_eq!(
                got.is_sat(),
                want.is_sat(),
                "case {case} step {qi}: check_relevant disagrees with full check"
            );
        }
    }
}
