//! Epoch-based retention for checkpoint-style registries.
//!
//! The record/replay checkpoint layer (s2e-core §13) needs a registry
//! that keeps *recent* snapshots reachable by key — so a compact state
//! shipped elsewhere can still name the checkpoint it replays from —
//! while letting old generations fall away instead of pinning every
//! snapshot ever taken. This crate cannot depend on the engine, so the
//! map is generic: keys are opaque `u64`s (the engine uses `StateId`s),
//! values are whatever the caller retains (the engine uses
//! `Arc<ExecState>` snapshots, so dropping an entry here only drops the
//! registry's share — live holders keep theirs).
//!
//! Time is counted in *epochs*, advanced explicitly by the owner (the
//! engine ticks one epoch per memory-watermark sample). An entry
//! inserted or re-inserted at epoch `e` survives `advance()` until the
//! current epoch exceeds `e + retain`.

use std::collections::HashMap;

/// A key→value map whose entries expire `retain` epochs after their
/// last insertion.
#[derive(Clone, Debug)]
pub struct EpochMap<V> {
    entries: HashMap<u64, (u64, V)>,
    epoch: u64,
    retain: u64,
}

impl<V> EpochMap<V> {
    /// An empty map whose entries survive `retain` whole epochs beyond
    /// the one they were inserted in.
    pub fn new(retain: u64) -> EpochMap<V> {
        EpochMap {
            entries: HashMap::new(),
            epoch: 0,
            retain,
        }
    }

    /// Inserts (or refreshes) an entry, stamping it with the current
    /// epoch. Returns the value it replaced, if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.entries.insert(key, (self.epoch, value)).map(|(_, v)| v)
    }

    /// Looks an entry up without refreshing its epoch.
    pub fn get(&self, key: u64) -> Option<&V> {
        self.entries.get(&key).map(|(_, v)| v)
    }

    /// Removes an entry regardless of age.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        self.entries.remove(&key).map(|(_, v)| v)
    }

    /// Advances the epoch clock and prunes entries whose last insertion
    /// is more than `retain` epochs old. Returns how many were pruned.
    pub fn advance(&mut self) -> usize {
        self.epoch += 1;
        let cutoff = self.epoch.saturating_sub(self.retain);
        let before = self.entries.len();
        self.entries.retain(|_, (stamp, _)| *stamp >= cutoff);
        before - self.entries.len()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_survive_retain_epochs() {
        let mut m = EpochMap::new(2);
        m.insert(1, "a");
        assert_eq!(m.advance(), 0); // epoch 1: age 1 ≤ 2
        assert_eq!(m.advance(), 0); // epoch 2: age 2 ≤ 2
        assert_eq!(m.get(1), Some(&"a"));
        assert_eq!(m.advance(), 1); // epoch 3: age 3 > 2 — pruned
        assert!(m.get(1).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn reinsert_refreshes_age() {
        let mut m = EpochMap::new(1);
        m.insert(7, 10);
        m.advance();
        m.insert(7, 11); // refreshed at epoch 1
        m.advance(); // epoch 2: age 1 — kept
        assert_eq!(m.get(7), Some(&11));
        m.advance(); // epoch 3: age 2 — pruned
        assert!(m.get(7).is_none());
    }

    #[test]
    fn zero_retention_prunes_every_epoch() {
        let mut m = EpochMap::new(0);
        m.insert(1, ());
        m.insert(2, ());
        assert_eq!(m.len(), 2);
        assert_eq!(m.advance(), 2);
        assert!(m.is_empty());
    }

    #[test]
    fn remove_and_replace() {
        let mut m = EpochMap::new(4);
        assert_eq!(m.insert(3, 1), None);
        assert_eq!(m.insert(3, 2), Some(1));
        assert_eq!(m.remove(3), Some(2));
        assert_eq!(m.remove(3), None);
        assert_eq!(m.epoch(), 0);
    }
}
