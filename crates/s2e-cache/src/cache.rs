//! A single set-associative cache level with LRU replacement.

use std::fmt;

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_size: u32,
    /// Ways per set.
    pub associativity: u32,
}

impl CacheConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a power of two and the geometry divides
    /// evenly into at least one set.
    pub fn new(size_bytes: u32, line_size: u32, associativity: u32) -> CacheConfig {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        assert!(associativity >= 1, "associativity must be at least 1");
        let lines = size_bytes / line_size;
        assert!(
            lines >= associativity && lines.is_multiple_of(associativity),
            "geometry does not divide into sets: {size_bytes}B / {line_size}B / {associativity}-way"
        );
        let sets = lines / associativity;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            size_bytes,
            line_size,
            associativity,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / self.line_size / self.associativity
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; 0 for no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// One cache level. Tags are stored per set in LRU order (most recent
/// last).
///
/// ```
/// use s2e_cache::{CacheConfig, CacheLevel};
/// // Tiny direct-mapped cache: 2 lines of 64 bytes.
/// let mut c = CacheLevel::new(CacheConfig::new(128, 64, 1));
/// assert!(!c.access(0));      // cold miss
/// assert!(c.access(0));       // hit
/// assert!(!c.access(128));    // conflicts with line 0 (same set)
/// assert!(!c.access(0));      // evicted
/// ```
#[derive(Clone)]
pub struct CacheLevel {
    config: CacheConfig,
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl fmt::Debug for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheLevel")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl CacheLevel {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> CacheLevel {
        CacheLevel {
            config,
            sets: vec![Vec::with_capacity(config.associativity as usize); config.sets() as usize],
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Simulates an access to `addr`; returns `true` on hit. On a miss the
    /// line is filled (and the LRU way evicted if the set is full).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_size as u64;
        let set_idx = (line % self.config.sets() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.push(t);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.config.associativity as usize {
                set.remove(0); // evict LRU
            }
            set.push(line);
            self.stats.misses += 1;
            false
        }
    }

    /// Forgets all cached lines but keeps the counters.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        let c = CacheConfig::new(64 * 1024, 64, 2);
        assert_eq!(c.sets(), 512);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_line_rejected() {
        CacheConfig::new(1024, 48, 2);
    }

    #[test]
    fn cold_misses_then_hits() {
        let mut c = CacheLevel::new(CacheConfig::new(1024, 64, 2));
        for i in 0..8u64 {
            assert!(!c.access(i * 64));
        }
        for i in 0..8u64 {
            assert!(c.access(i * 64));
        }
        assert_eq!(c.stats().hits, 8);
        assert_eq!(c.stats().misses, 8);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = CacheLevel::new(CacheConfig::new(1024, 64, 2));
        assert!(!c.access(100));
        assert!(c.access(101));
        assert!(c.access(127));
        assert!(!c.access(128)); // next line
    }

    #[test]
    fn lru_within_set() {
        // 2-way, 2 sets, 64B lines: lines 0,2,4 map to set 0.
        let mut c = CacheLevel::new(CacheConfig::new(256, 64, 2));
        c.access(0);
        c.access(2 * 64);
        c.access(0); // refresh line 0 → LRU is line 2
        c.access(4 * 64); // evicts line 2
        assert!(c.access(0), "line 0 must have survived");
        assert!(!c.access(2 * 64), "line 2 must have been evicted");
    }

    #[test]
    fn flush_keeps_stats() {
        let mut c = CacheLevel::new(CacheConfig::new(256, 64, 2));
        c.access(0);
        c.flush();
        assert!(!c.access(0));
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn miss_ratio() {
        let mut c = CacheLevel::new(CacheConfig::new(256, 64, 2));
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clone_is_independent_per_path_state() {
        let mut a = CacheLevel::new(CacheConfig::new(256, 64, 2));
        a.access(0);
        let mut b = a.clone();
        b.access(64);
        assert_eq!(a.stats().accesses(), 1);
        assert_eq!(b.stats().accesses(), 2);
    }
}
