//! A full memory hierarchy: split L1, shared lower levels, TLB, paging.

use crate::cache::{CacheConfig, CacheLevel, CacheStats};
use crate::page::PageModel;
use crate::tlb::Tlb;

/// Kind of memory access fed to the hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Instruction fetch (goes through I1).
    Instruction,
    /// Data read (goes through D1).
    Read,
    /// Data write (goes through D1; write-allocate).
    Write,
}

/// Geometry of the whole hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// Instruction L1.
    pub i1: CacheConfig,
    /// Data L1.
    pub d1: CacheConfig,
    /// Unified lower levels, outermost last (L2, L3, ...). May be empty.
    pub lower: Vec<CacheConfig>,
    /// TLB entries (0 disables the TLB model).
    pub tlb_entries: usize,
    /// Page size for TLB and page-fault models.
    pub page_size: u32,
}

impl HierarchyConfig {
    /// The configuration used in the paper's PROFS experiments: 64 KiB
    /// 2-way split L1s with 64-byte lines, 1 MiB 4-way L2.
    pub fn paper() -> HierarchyConfig {
        HierarchyConfig {
            i1: CacheConfig::new(64 * 1024, 64, 2),
            d1: CacheConfig::new(64 * 1024, 64, 2),
            lower: vec![CacheConfig::new(1024 * 1024, 64, 4)],
            tlb_entries: 64,
            page_size: 4096,
        }
    }
}

/// Per-level and per-model counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Instruction L1.
    pub i1: CacheStats,
    /// Data L1.
    pub d1: CacheStats,
    /// Lower levels, in configuration order.
    pub lower: Vec<CacheStats>,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Page faults.
    pub page_faults: u64,
    /// Instructions fetched.
    pub instructions: u64,
    /// Data accesses.
    pub data_accesses: u64,
}

impl HierarchyStats {
    /// Total misses across every cache level (the paper's headline cache
    ///-miss count).
    pub fn total_cache_misses(&self) -> u64 {
        self.i1.misses + self.d1.misses + self.lower.iter().map(|s| s.misses).sum::<u64>()
    }

    /// Folds another hierarchy's counters into this one, element-wise
    /// (profiles of different paths aggregated into one report). Lower
    /// levels are matched by position; if the other profile has more
    /// levels, the extras are appended.
    pub fn merge(&mut self, other: &HierarchyStats) {
        let add = |a: &mut CacheStats, b: &CacheStats| {
            a.hits += b.hits;
            a.misses += b.misses;
        };
        add(&mut self.i1, &other.i1);
        add(&mut self.d1, &other.d1);
        for (i, theirs) in other.lower.iter().enumerate() {
            match self.lower.get_mut(i) {
                Some(mine) => add(mine, theirs),
                None => self.lower.push(theirs.clone()),
            }
        }
        self.tlb_misses += other.tlb_misses;
        self.page_faults += other.page_faults;
        self.instructions += other.instructions;
        self.data_accesses += other.data_accesses;
    }
}

/// A complete simulated memory hierarchy.
///
/// ```
/// use s2e_cache::{AccessKind, Hierarchy};
/// let mut h = Hierarchy::paper_config();
/// h.access(AccessKind::Instruction, 0x2000);
/// h.access(AccessKind::Read, 0x9000);
/// let s = h.stats();
/// assert_eq!(s.instructions, 1);
/// assert_eq!(s.data_accesses, 1);
/// assert!(s.total_cache_misses() >= 2); // both cold-missed
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy {
    i1: CacheLevel,
    d1: CacheLevel,
    lower: Vec<CacheLevel>,
    tlb: Option<Tlb>,
    pages: PageModel,
    instructions: u64,
    data_accesses: u64,
}

impl Hierarchy {
    /// Builds a hierarchy from a configuration.
    pub fn new(config: &HierarchyConfig) -> Hierarchy {
        Hierarchy {
            i1: CacheLevel::new(config.i1),
            d1: CacheLevel::new(config.d1),
            lower: config.lower.iter().map(|c| CacheLevel::new(*c)).collect(),
            tlb: if config.tlb_entries > 0 {
                Some(Tlb::new(config.tlb_entries, config.page_size))
            } else {
                None
            },
            pages: PageModel::new(config.page_size),
            instructions: 0,
            data_accesses: 0,
        }
    }

    /// The paper's evaluation configuration.
    pub fn paper_config() -> Hierarchy {
        Hierarchy::new(&HierarchyConfig::paper())
    }

    /// Pre-faults a loaded image region (see [`PageModel::prefault`]).
    pub fn prefault(&mut self, addr: u64, len: u64) {
        self.pages.prefault(addr, len);
    }

    /// Simulates one access; lower levels are consulted only on an L1
    /// miss.
    pub fn access(&mut self, kind: AccessKind, addr: u64) {
        let l1 = match kind {
            AccessKind::Instruction => {
                self.instructions += 1;
                &mut self.i1
            }
            AccessKind::Read | AccessKind::Write => {
                self.data_accesses += 1;
                &mut self.d1
            }
        };
        let mut missed = !l1.access(addr);
        for level in &mut self.lower {
            if !missed {
                break;
            }
            missed = !level.access(addr);
        }
        if let Some(tlb) = &mut self.tlb {
            tlb.access(addr);
        }
        self.pages.access(addr);
    }

    /// Counters so far.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            i1: self.i1.stats(),
            d1: self.d1.stats(),
            lower: self.lower.iter().map(|l| l.stats()).collect(),
            tlb_misses: self.tlb.as_ref().map(|t| t.misses()).unwrap_or(0),
            page_faults: self.pages.faults(),
            instructions: self.instructions,
            data_accesses: self.data_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(&HierarchyConfig {
            i1: CacheConfig::new(128, 64, 1),
            d1: CacheConfig::new(128, 64, 1),
            lower: vec![CacheConfig::new(512, 64, 2)],
            tlb_entries: 2,
            page_size: 4096,
        })
    }

    #[test]
    fn l2_consulted_only_on_l1_miss() {
        let mut h = tiny();
        h.access(AccessKind::Read, 0);
        h.access(AccessKind::Read, 0); // L1 hit: L2 untouched
        let s = h.stats();
        assert_eq!(s.d1.hits, 1);
        assert_eq!(s.d1.misses, 1);
        assert_eq!(s.lower[0].accesses(), 1);
    }

    #[test]
    fn l2_absorbs_l1_conflicts() {
        let mut h = tiny();
        // Lines 0 and 128 conflict in direct-mapped D1 but coexist in
        // 2-way L2.
        h.access(AccessKind::Read, 0);
        h.access(AccessKind::Read, 128);
        h.access(AccessKind::Read, 0);
        h.access(AccessKind::Read, 128);
        let s = h.stats();
        assert_eq!(s.d1.misses, 4);
        assert_eq!(s.lower[0].misses, 2);
        assert_eq!(s.lower[0].hits, 2);
    }

    #[test]
    fn instruction_and_data_split() {
        let mut h = tiny();
        h.access(AccessKind::Instruction, 0);
        h.access(AccessKind::Read, 0);
        let s = h.stats();
        // Same address cold-misses in both split L1s.
        assert_eq!(s.i1.misses, 1);
        assert_eq!(s.d1.misses, 1);
        assert_eq!(s.instructions, 1);
        assert_eq!(s.data_accesses, 1);
    }

    #[test]
    fn page_faults_and_tlb_count() {
        let mut h = tiny();
        h.access(AccessKind::Read, 0x1000);
        h.access(AccessKind::Read, 0x2000);
        h.access(AccessKind::Read, 0x1008);
        let s = h.stats();
        assert_eq!(s.page_faults, 2);
        assert_eq!(s.tlb_misses, 2);
    }

    #[test]
    fn no_lower_levels_works() {
        let mut h = Hierarchy::new(&HierarchyConfig {
            i1: CacheConfig::new(128, 64, 1),
            d1: CacheConfig::new(128, 64, 1),
            lower: vec![],
            tlb_entries: 0,
            page_size: 4096,
        });
        h.access(AccessKind::Write, 0);
        let s = h.stats();
        assert!(s.lower.is_empty());
        assert_eq!(s.tlb_misses, 0);
        assert_eq!(s.total_cache_misses(), 1);
    }

    #[test]
    fn paper_config_shape() {
        let h = Hierarchy::paper_config();
        let s = h.stats();
        assert_eq!(s.lower.len(), 1);
    }

    #[test]
    fn stats_merge_is_elementwise() {
        let mut a = tiny();
        a.access(AccessKind::Read, 0);
        a.access(AccessKind::Read, 0);
        let mut b = tiny();
        b.access(AccessKind::Instruction, 0x1000);
        let mut merged = a.stats();
        merged.merge(&b.stats());
        assert_eq!(merged.d1.hits, 1);
        assert_eq!(merged.d1.misses, 1);
        assert_eq!(merged.i1.misses, 1);
        assert_eq!(merged.instructions, 1);
        assert_eq!(merged.data_accesses, 2);
        assert_eq!(merged.page_faults, a.stats().page_faults + b.stats().page_faults);

        // Mismatched lower-level depth: extras are appended.
        let mut shallow = HierarchyStats::default();
        shallow.merge(&a.stats());
        assert_eq!(shallow.lower.len(), 1);
        assert_eq!(shallow.lower[0].misses, a.stats().lower[0].misses);
    }

    #[test]
    fn deterministic_for_same_trace() {
        let trace: Vec<(AccessKind, u64)> = (0..1000)
            .map(|i| {
                let kind = match i % 3 {
                    0 => AccessKind::Instruction,
                    1 => AccessKind::Read,
                    _ => AccessKind::Write,
                };
                (kind, (i * 97 % 8192) as u64)
            })
            .collect();
        let mut a = Hierarchy::paper_config();
        let mut b = Hierarchy::paper_config();
        for &(k, addr) in &trace {
            a.access(k, addr);
            b.access(k, addr);
        }
        assert_eq!(a.stats(), b.stats());
    }
}
