//! Demand-paging page-fault model.

use std::collections::HashSet;

/// Counts page faults under a demand-paging model: the first touch of each
/// page faults (demand-zero / major fault), subsequent touches do not.
///
/// This matches what the paper's IIS experiment measures — the
/// *distribution of page faults* in code regions — where the interesting
/// signal is whether fault counts depend on secret data, not the precise
/// eviction behavior of the OS.
///
/// ```
/// use s2e_cache::PageModel;
/// let mut p = PageModel::new(4096);
/// assert!(p.access(0x1234));   // first touch of page 1
/// assert!(!p.access(0x1fff));  // same page
/// assert!(p.access(0x2000));   // new page
/// assert_eq!(p.faults(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct PageModel {
    page_size: u32,
    resident: HashSet<u64>,
    faults: u64,
}

impl PageModel {
    /// Creates the model over pages of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn new(page_size: u32) -> PageModel {
        assert!(page_size.is_power_of_two());
        PageModel {
            page_size,
            resident: HashSet::new(),
            faults: 0,
        }
    }

    /// Simulates an access; returns `true` if it faulted.
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr / self.page_size as u64;
        if self.resident.insert(page) {
            self.faults += 1;
            true
        } else {
            false
        }
    }

    /// Pre-faults a range (e.g. the loaded program image), so only
    /// dynamically-touched pages count.
    pub fn prefault(&mut self, addr: u64, len: u64) {
        let first = addr / self.page_size as u64;
        let last = (addr + len.saturating_sub(1)) / self.page_size as u64;
        for p in first..=last {
            self.resident.insert(p);
        }
    }

    /// Faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_faults_once() {
        let mut p = PageModel::new(4096);
        assert!(p.access(0));
        assert!(!p.access(100));
        assert!(!p.access(4095));
        assert!(p.access(4096));
        assert_eq!(p.faults(), 2);
        assert_eq!(p.resident_pages(), 2);
    }

    #[test]
    fn prefault_suppresses_faults() {
        let mut p = PageModel::new(4096);
        p.prefault(0x2000, 0x2000); // pages 2 and 3
        assert!(!p.access(0x2500));
        assert!(!p.access(0x3fff));
        assert!(p.access(0x4000));
        assert_eq!(p.faults(), 1);
    }

    #[test]
    fn clone_isolates_paths() {
        let mut a = PageModel::new(4096);
        a.access(0);
        let mut b = a.clone();
        b.access(0x10000);
        assert_eq!(a.faults(), 1);
        assert_eq!(b.faults(), 2);
    }
}
