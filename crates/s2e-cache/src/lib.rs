//! Performance models for the multi-path in-vivo profiler (PROFS).
//!
//! PROFS (§6.1.3 of the paper) counts instructions, cache misses, TLB
//! misses, and page faults *per execution path*, for arbitrary memory
//! hierarchies — "any number of cache levels, size, associativity, line
//! sizes". This crate provides those models as plain-data values: the
//! `PerformanceProfile` analyzer keeps one per path, and the value is
//! cloned whenever the execution state forks (per-path plugin state, §4.2).
//!
//! The paper's evaluation configuration — 64 KiB split I1/D1, 2-way,
//! 64-byte lines, plus a 1 MiB 4-way unified L2 — is available as
//! [`Hierarchy::paper_config`].

mod cache;
mod epoch;
mod hierarchy;
mod page;
mod tlb;

pub use cache::{CacheConfig, CacheLevel, CacheStats};
pub use epoch::EpochMap;
pub use hierarchy::{AccessKind, Hierarchy, HierarchyConfig, HierarchyStats};
pub use page::PageModel;
pub use tlb::Tlb;
