//! A fully-associative TLB with LRU replacement.

/// Translation lookaside buffer model.
///
/// Fully associative over page numbers, LRU replacement — adequate for
/// counting TLB misses along a path, which is what PROFS reports.
///
/// ```
/// use s2e_cache::Tlb;
/// let mut t = Tlb::new(2, 4096);
/// assert!(!t.access(0x1000));
/// assert!(t.access(0x1fff)); // same page
/// t.access(0x2000);
/// t.access(0x3000);          // evicts page 1
/// assert!(!t.access(0x1000));
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: usize,
    page_size: u32,
    /// Page numbers in LRU order (most recent last).
    resident: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` slots over pages of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_size` is not a power of two.
    pub fn new(entries: usize, page_size: u32) -> Tlb {
        assert!(entries > 0);
        assert!(page_size.is_power_of_two());
        Tlb {
            entries,
            page_size,
            resident: Vec::with_capacity(entries),
            hits: 0,
            misses: 0,
        }
    }

    /// Simulates a translation of `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr / self.page_size as u64;
        if let Some(pos) = self.resident.iter().position(|&p| p == page) {
            let p = self.resident.remove(pos);
            self.resident.push(p);
            self.hits += 1;
            true
        } else {
            if self.resident.len() == self.entries {
                self.resident.remove(0);
            }
            self.resident.push(page);
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_within_page() {
        let mut t = Tlb::new(4, 4096);
        t.access(0x5000);
        assert!(t.access(0x5abc));
        assert_eq!(t.misses(), 1);
        assert_eq!(t.hits(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(2, 4096);
        t.access(0x1000);
        t.access(0x2000);
        t.access(0x1000); // refresh
        t.access(0x3000); // evicts 0x2000
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
    }

    #[test]
    #[should_panic]
    fn zero_entries_rejected() {
        Tlb::new(0, 4096);
    }
}
