//! Data-based selectors: ways of introducing symbolic values (§4.1).
//!
//! The paper's `CommandLine`, `Environment`, and `MSWinRegistry` selectors
//! all reduce to "replace a concrete input source with a (possibly
//! constrained) symbolic value". These helpers operate directly on an
//! execution state; tools call them before starting exploration or from a
//! plugin hook (the `Annotation` plugin pattern).

use crate::state::ExecState;
use s2e_expr::{ExprBuilder, ExprRef, Width};
use s2e_vm::value::Value;

/// Replaces register `r` with a fresh symbolic word; returns the variable.
pub fn make_reg_symbolic(
    state: &mut ExecState,
    builder: &ExprBuilder,
    r: u8,
    name: &str,
) -> ExprRef {
    let v = builder.var(name, Width::W32);
    state.machine.cpu.set_reg(r, Value::Symbolic(v.clone()));
    v
}

/// Replaces register `r` with a symbolic word constrained to
/// `[lo, hi]` (inclusive, unsigned) — the `Annotation` plugin's
/// "custom-constrained symbolic value".
pub fn make_reg_symbolic_in_range(
    state: &mut ExecState,
    builder: &ExprBuilder,
    r: u8,
    name: &str,
    lo: u32,
    hi: u32,
) -> ExprRef {
    let v = make_reg_symbolic(state, builder, r, name);
    constrain_range(state, builder, &v, lo, hi);
    v
}

/// Adds `lo <= e <= hi` (unsigned) to the path constraints.
pub fn constrain_range(
    state: &mut ExecState,
    builder: &ExprBuilder,
    e: &ExprRef,
    lo: u32,
    hi: u32,
) {
    if lo > 0 {
        state.add_constraint(builder.ule(builder.constant(lo as u64, Width::W32), e.clone()));
    }
    state.add_constraint(builder.ule(e.clone(), builder.constant(hi as u64, Width::W32)));
}

/// Makes `len` bytes of guest memory symbolic; returns the byte
/// variables. Used for symbolic buffers (command lines, packets, file
/// contents).
///
/// # Panics
///
/// Panics if the range touches the null guard page.
pub fn make_mem_symbolic(
    state: &mut ExecState,
    builder: &ExprBuilder,
    addr: u32,
    len: u32,
    prefix: &str,
) -> Vec<ExprRef> {
    (0..len)
        .map(|i| {
            let v = builder.var(&format!("{prefix}_{i}"), Width::W8);
            state
                .machine
                .mem
                .write_u8(addr + i, Value::Symbolic(v.clone()))
                .expect("symbolic buffer must not touch the null page");
            v
        })
        .collect()
}

/// Makes a NUL-terminated guest string of exactly `len` symbolic bytes
/// (each constrained to be non-NUL printable ASCII) followed by a
/// concrete NUL — the shape the `CommandLine` selector produces.
pub fn make_cstring_symbolic(
    state: &mut ExecState,
    builder: &ExprBuilder,
    addr: u32,
    len: u32,
    prefix: &str,
) -> Vec<ExprRef> {
    let vars = make_mem_symbolic(state, builder, addr, len, prefix);
    for v in &vars {
        // Printable, non-NUL: 0x20..=0x7e.
        state.add_constraint(builder.ule(builder.constant(0x20, Width::W8), v.clone()));
        state.add_constraint(builder.ule(v.clone(), builder.constant(0x7e, Width::W8)));
    }
    state
        .machine
        .mem
        .write_u8(addr + len, Value::Concrete(0))
        .expect("terminator in mapped memory");
    vars
}

/// Injects a symbolic value for a configuration-store key (the
/// `MSWinRegistry` selector analog): the guest reads it through the
/// config device ports.
pub fn make_config_symbolic(
    state: &mut ExecState,
    builder: &ExprBuilder,
    key: u32,
    name: &str,
) -> ExprRef {
    let v = builder.var(name, Width::W32);
    state
        .machine
        .devices
        .config_mut()
        .expect("config store attached")
        .set(key, Value::Symbolic(v.clone()));
    v
}

/// Concretizes register `r` under the current path constraints, recording
/// the choice as a *soft* constraint (retractable under SC-SE). The
/// standard building block for LC entry annotations that must keep
/// symbolic unit data out of environment control flow.
///
/// Returns `None` if the solver gave up.
pub fn concretize_reg_soft(
    state: &mut ExecState,
    ctx: &mut crate::plugin::ExecCtx,
    r: u8,
) -> Option<u32> {
    let v = state.machine.cpu.reg(r).clone();
    if let Some(c) = v.as_concrete() {
        return Some(c);
    }
    let e = v.to_expr(ctx.builder, Width::W32);
    let val = match state.replay_concretize() {
        Some(v) => v,
        None => {
            let (val, _) = ctx.solver.concretize_in(&state.partition, &e)?;
            state.record_concretize(val);
            val
        }
    };
    let c = ctx.builder.constant(val, Width::W32);
    let eq = ctx.builder.eq(e, c);
    state.add_soft_constraint(eq);
    state.machine.cpu.set_reg(r, Value::Concrete(val as u32));
    ctx.stats.concretizations += 1;
    Some(val as u32)
}

/// Turns the NIC's symbolic-hardware mode on or off for this state.
pub fn set_symbolic_hardware(state: &mut ExecState, enabled: bool) {
    if let Some(nic) = state.machine.devices.nic_mut() {
        nic.symbolic_hardware = enabled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::machine::Machine;

    fn setup() -> (ExecState, ExprBuilder) {
        (ExecState::initial(Machine::new()), ExprBuilder::new())
    }

    #[test]
    fn reg_symbolic() {
        let (mut s, b) = setup();
        let v = make_reg_symbolic(&mut s, &b, 3, "arg");
        assert!(s.machine.cpu.reg(3).is_symbolic());
        assert_eq!(v.width(), Width::W32);
        assert!(s.constraints.is_empty());
    }

    #[test]
    fn reg_symbolic_with_range() {
        let (mut s, b) = setup();
        make_reg_symbolic_in_range(&mut s, &b, 0, "x", 1, 10);
        assert_eq!(s.constraints.len(), 2);
        // lo == 0 drops the lower bound.
        let (mut s, b) = setup();
        make_reg_symbolic_in_range(&mut s, &b, 0, "x", 0, 10);
        assert_eq!(s.constraints.len(), 1);
    }

    #[test]
    fn mem_symbolic_buffer() {
        let (mut s, b) = setup();
        let vars = make_mem_symbolic(&mut s, &b, 0x8000, 4, "buf");
        assert_eq!(vars.len(), 4);
        assert_eq!(s.machine.mem.symbolic_byte_count(), 4);
        assert!(s.machine.mem.range_has_symbolic(0x8000, 4));
    }

    #[test]
    fn cstring_constrained_and_terminated() {
        let (mut s, b) = setup();
        let vars = make_cstring_symbolic(&mut s, &b, 0x8000, 3, "url");
        assert_eq!(vars.len(), 3);
        assert_eq!(s.constraints.len(), 6); // two bounds per byte
        assert_eq!(
            s.machine.mem.read_u8(0x8003).unwrap().as_concrete(),
            Some(0)
        );
    }

    #[test]
    fn config_key_symbolic() {
        let (mut s, b) = setup();
        make_config_symbolic(&mut s, &b, 42, "CardType");
        let v = s.machine.devices.config_mut().unwrap().get(42);
        assert!(v.is_symbolic());
    }

    #[test]
    fn symbolic_hardware_toggle() {
        let (mut s, _) = setup();
        set_symbolic_hardware(&mut s, true);
        assert!(s.machine.devices.nic().unwrap().symbolic_hardware);
        set_symbolic_hardware(&mut s, false);
        assert!(!s.machine.devices.nic().unwrap().symbolic_hardware);
    }
}
