//! Engine-wide statistics.
//!
//! These counters back the paper's quantitative evaluation: concrete vs
//! symbolic instruction mix (§6.2's overhead discussion), fork and state
//! counts, and the memory high-watermark reported in Fig. 8.

use std::time::Duration;

/// Counters accumulated by the engine across all states.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// States created (initial + forked).
    pub states_created: u64,
    /// States terminated.
    pub states_terminated: u64,
    /// Fork events.
    pub forks: u64,
    /// Translation blocks executed.
    pub blocks_executed: u64,
    /// Instructions executed on the concrete fast path.
    pub instrs_concrete: u64,
    /// Instructions that touched symbolic data (dispatched to the
    /// embedded symbolic executor).
    pub instrs_symbolic: u64,
    /// Translation blocks executed on the lean dispatch path (statically
    /// proven concrete-only by the `s2e-analysis` pre-pass).
    pub concrete_only_blocks: u64,
    /// Instructions whose per-operand symbolic check was statically
    /// discharged (subset of `instrs_concrete`).
    pub lean_instrs: u64,
    /// Symbolic ALU results never materialized because the destination
    /// register was statically dead.
    pub dead_writes_skipped: u64,
    /// Branch feasibility probes skipped because the block is statically
    /// fork-free (two per skipped branch resolution).
    pub feasibility_probes_skipped: u64,
    /// Memory accesses with a symbolic address (solver-backed page
    /// handling).
    pub symbolic_ptr_accesses: u64,
    /// Concretization events (symbolic→concrete conversions).
    pub concretizations: u64,
    /// Interrupts delivered.
    pub interrupts_delivered: u64,
    /// Syscall traps.
    pub syscalls: u64,
    /// Indirect control transfers retired through `exec_indirect`
    /// (`jmpr`/`callr`/`ret`) while a prediction table was installed.
    pub indirect_retirements: u64,
    /// Retired indirect targets the static analysis predicted.
    pub indirect_targets_resolved: u64,
    /// Retired indirect targets at sites known to escape the analyzed
    /// region (unmatched `ret`s leaving the unit).
    pub indirect_targets_escaped: u64,
    /// Retired indirect targets the static CFG did not predict — each
    /// one is fed back through incremental re-analysis.
    pub indirect_targets_discovered: u64,
    /// Live states evicted to compact `{checkpoint, journal}` form (§13).
    pub evictions: u64,
    /// Compact states rehydrated by deterministic replay.
    pub rehydrations: u64,
    /// Instructions re-executed during rehydration replay (not new
    /// exploration work; excluded from the instruction-mix counters).
    pub replayed_instrs: u64,
    /// Total encoded journal bytes shipped into compact states.
    pub journal_bytes: u64,
    /// Maximum number of simultaneously live states.
    pub max_live_states: usize,
    /// High-watermark of estimated private state memory across live
    /// states, in bytes (Fig. 8's metric).
    pub memory_watermark_bytes: usize,
    /// CPU time spent in [`crate::engine::Engine::step`], summed across
    /// engines when merged. On a parallel run this exceeds wall-clock
    /// time (workers run concurrently); wall-clock is reported
    /// separately by `ParallelReport::wall_time`.
    pub cpu_time: Duration,
}

impl EngineStats {
    /// Folds another engine's counters into this one (parallel workers'
    /// stats merged into one report). Sums the additive counters and
    /// takes the maximum of the watermark-style ones — `max_live_states`
    /// and `memory_watermark_bytes` are per-engine peaks, so the merged
    /// value is the largest any single worker saw, not a sum.
    pub fn merge(&mut self, other: &EngineStats) {
        self.states_created += other.states_created;
        self.states_terminated += other.states_terminated;
        self.forks += other.forks;
        self.blocks_executed += other.blocks_executed;
        self.instrs_concrete += other.instrs_concrete;
        self.instrs_symbolic += other.instrs_symbolic;
        self.concrete_only_blocks += other.concrete_only_blocks;
        self.lean_instrs += other.lean_instrs;
        self.dead_writes_skipped += other.dead_writes_skipped;
        self.feasibility_probes_skipped += other.feasibility_probes_skipped;
        self.symbolic_ptr_accesses += other.symbolic_ptr_accesses;
        self.concretizations += other.concretizations;
        self.interrupts_delivered += other.interrupts_delivered;
        self.syscalls += other.syscalls;
        self.indirect_retirements += other.indirect_retirements;
        self.indirect_targets_resolved += other.indirect_targets_resolved;
        self.indirect_targets_escaped += other.indirect_targets_escaped;
        self.indirect_targets_discovered += other.indirect_targets_discovered;
        self.evictions += other.evictions;
        self.rehydrations += other.rehydrations;
        self.replayed_instrs += other.replayed_instrs;
        self.journal_bytes += other.journal_bytes;
        self.max_live_states = self.max_live_states.max(other.max_live_states);
        self.memory_watermark_bytes =
            self.memory_watermark_bytes.max(other.memory_watermark_bytes);
        self.cpu_time += other.cpu_time;
    }

    /// Total instructions executed.
    pub fn total_instrs(&self) -> u64 {
        self.instrs_concrete + self.instrs_symbolic
    }

    /// Ratio of concretely-executed instructions (the paper reports ~4
    /// orders of magnitude more concrete than symbolic for ping).
    pub fn concrete_ratio(&self) -> f64 {
        let total = self.total_instrs();
        if total == 0 {
            0.0
        } else {
            self.instrs_concrete as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = EngineStats::default();
        assert_eq!(s.concrete_ratio(), 0.0);
        s.instrs_concrete = 3;
        s.instrs_symbolic = 1;
        assert_eq!(s.total_instrs(), 4);
        assert!((s.concrete_ratio() - 0.75).abs() < 1e-12);
    }
}
