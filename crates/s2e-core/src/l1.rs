//! Per-worker L1 front for the translation-block cache.
//!
//! Under `explore_parallel` every worker shares one
//! [`s2e_dbt::SharedBlockCache`] behind a mutex; before this layer every
//! executed block took that lock just to *look up* an already-translated
//! block. The [`ExecCache`] is a small direct-mapped, completely
//! lock-free table private to one engine: steady-state lookups hit here
//! and never touch the mutex, which is taken only on L1 misses
//! (translation), chain-link updates the L1 hint cannot prove redundant,
//! and invalidations (DESIGN.md §14).
//!
//! Coherence is epoch-based: the backing [`s2e_dbt::BlockCache`] bumps a
//! shared atomic epoch whenever any worker invalidates blocks (SMC
//! stores, `clear`, annotator swaps). Every L1 operation first compares
//! that epoch against the last one it observed and wipes itself on
//! change — the same retention discipline as [`s2e_cache::EpochMap`],
//! which this module reuses to keep lowered (direct-threaded) block
//! bodies alive across L1 slot conflicts.

use crate::threaded::{self, ThreadedBlock};
use s2e_cache::EpochMap;
use s2e_dbt::{BlockAnnotator, CacheHandle, CodePageFilter, DbtStats, TranslationBlock};
use s2e_vm::isa::Instr;
use s2e_vm::mem::Memory;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Direct-mapped L1 size (power of two). 512 slots comfortably covers
/// every corpus in the repo (the largest guest has ~60 blocks) while
/// keeping the table cache-resident.
const L1_SLOTS: usize = 512;

/// Epochs a spilled lowered block survives in [`ExecCache::lowered`]
/// after its last touch.
const LOWERED_RETAIN_EPOCHS: u64 = 2;

/// L1 misses between [`EpochMap::advance`] ticks on the spill map.
const LOWERED_ADVANCE_MISSES: u64 = 4096;

struct L1Slot {
    start: u32,
    tb: Arc<TranslationBlock>,
    /// Lazily lowered direct-threaded body (concrete-only blocks).
    threaded: Option<Arc<ThreadedBlock>>,
    /// Local mirror of the shared chain links (slot 0 = taken/jump,
    /// slot 1 = fall-through): [`ExecCache::note_chain`] skips the
    /// shared-cache lock when the hint already matches.
    succ: [Option<u32>; 2],
}

/// The translation cache an engine actually executes against: a
/// lock-free per-worker L1 in front of a [`CacheHandle`].
pub struct ExecCache {
    handle: CacheHandle,
    slots: Box<[Option<L1Slot>]>,
    /// Shared invalidation epoch (bumped by any worker's invalidation).
    epoch: Arc<AtomicU64>,
    /// Epoch this L1's contents were valid for.
    seen_epoch: u64,
    /// Lock-free shared code-page bitmap (store fast-path SMC check).
    filter: Arc<CodePageFilter>,
    /// Lowered blocks evicted from L1 slots by conflicts, epoch-aged so
    /// cold spills drop out instead of accumulating.
    lowered: EpochMap<Arc<ThreadedBlock>>,
    misses_since_tick: u64,
    /// This engine's own counters (L1 hits, chain entries/exits); shared
    /// counters live in the backing cache. [`ExecCache::stats`] merges.
    local: DbtStats,
}

impl ExecCache {
    /// Wraps a cache handle in a fresh (cold) L1.
    pub fn new(handle: CacheHandle) -> ExecCache {
        let epoch = handle.epoch_handle();
        let filter = handle.code_page_filter();
        let seen_epoch = epoch.load(Ordering::Acquire);
        ExecCache {
            handle,
            slots: (0..L1_SLOTS).map(|_| None).collect(),
            epoch,
            seen_epoch,
            filter,
            lowered: EpochMap::new(LOWERED_RETAIN_EPOCHS),
            misses_since_tick: 0,
            local: DbtStats::default(),
        }
    }

    fn slot_index(pc: u32) -> usize {
        // Block starts are instruction-aligned; drop the low bits so
        // consecutive blocks map to consecutive slots.
        (pc as usize >> 3) & (L1_SLOTS - 1)
    }

    /// Drops every L1 entry if any worker invalidated since the last
    /// sync. Called on the translate path (once per executed block) and
    /// after local invalidations, so a block re-translated after SMC is
    /// never served from a stale slot.
    fn sync(&mut self) {
        let now = self.epoch.load(Ordering::Acquire);
        if now != self.seen_epoch {
            for slot in self.slots.iter_mut() {
                *slot = None;
            }
            self.lowered = EpochMap::new(LOWERED_RETAIN_EPOCHS);
            self.seen_epoch = now;
        }
    }

    /// See [`s2e_dbt::BlockCache::translate_timed`]; L1 hits return with
    /// zero duration and never take the shared lock.
    pub fn translate_timed(
        &mut self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> (Arc<TranslationBlock>, Duration) {
        self.sync();
        let idx = Self::slot_index(pc);
        if let Some(slot) = &self.slots[idx] {
            if slot.start == pc {
                self.local.hits += 1;
                self.local.l1_hits += 1;
                return (Arc::clone(&slot.tb), Duration::ZERO);
            }
        }
        let (tb, decoded) = self.handle.translate_timed(mem, pc, on_translate);
        self.misses_since_tick += 1;
        if self.misses_since_tick >= LOWERED_ADVANCE_MISSES {
            self.misses_since_tick = 0;
            self.lowered.advance();
        }
        // Spill the conflict victim's lowering so bouncing between two
        // same-slot blocks doesn't re-lower either of them.
        if let Some(old) = self.slots[idx].take() {
            if let Some(t) = old.threaded {
                self.lowered.insert(old.start as u64, t);
            }
        }
        let threaded = self.lowered.remove(pc as u64);
        self.slots[idx] = Some(L1Slot {
            start: pc,
            tb: Arc::clone(&tb),
            threaded,
            succ: [None, None],
        });
        (tb, decoded)
    }

    /// The direct-threaded form of the block at `pc`, lowering on first
    /// request and caching in the L1 slot. `tb` must be the block the
    /// immediately preceding [`ExecCache::translate_timed`] returned.
    pub fn threaded_for(&mut self, pc: u32, tb: &Arc<TranslationBlock>) -> Arc<ThreadedBlock> {
        let idx = Self::slot_index(pc);
        if let Some(slot) = &mut self.slots[idx] {
            if slot.start == pc {
                if let Some(t) = &slot.threaded {
                    return Arc::clone(t);
                }
                let t = Arc::new(threaded::lower(tb));
                slot.threaded = Some(Arc::clone(&t));
                return t;
            }
        }
        Arc::new(threaded::lower(tb))
    }

    /// Records an observed direct edge `from → to` (slot 0 = taken
    /// branch/jump/call, slot 1 = fall-through). The shared cache is
    /// consulted only when the L1 hint doesn't already prove the link
    /// exists.
    pub fn note_chain(&mut self, from: u32, to: u32, slot: usize) {
        let idx = Self::slot_index(from);
        let hinted = matches!(
            &self.slots[idx],
            Some(l1) if l1.start == from && l1.succ[slot] == Some(to)
        );
        if hinted {
            return;
        }
        self.handle.chain(from, to, slot);
        if let Some(l1) = &mut self.slots[idx] {
            if l1.start == from {
                l1.succ[slot] = Some(to);
            }
        }
    }

    /// Counts one entry into an already-running chain (a block hop).
    pub fn count_chain_entry(&mut self) {
        self.local.chain_entries += 1;
    }

    /// Counts one chain ending (a multi-block segment returning control).
    pub fn count_chain_exit(&mut self) {
        self.local.chain_exits += 1;
    }

    /// Lock-free: see [`CodePageFilter::page_has_code`]. A stale positive
    /// costs one locked probe; bits are only ever reset together with a
    /// full cache clear.
    pub fn page_has_code(&self, addr: u32) -> bool {
        self.filter.page_has_code(addr)
    }

    /// The shared code-page bitmap (for the threaded store micro-op).
    pub fn filter(&self) -> &CodePageFilter {
        &self.filter
    }

    /// See [`s2e_dbt::BlockCache::invalidate_write`]; also resyncs the L1
    /// so a severed block is never served locally afterwards.
    pub fn invalidate_write(&mut self, addr: u32, len: u32) {
        self.handle.invalidate_write(addr, len);
        self.sync();
    }

    /// See [`s2e_dbt::BlockCache::set_annotator`] (clears the backing
    /// cache, which bumps the epoch; the L1 resync happens here).
    pub fn set_annotator(&mut self, annotator: Option<Arc<dyn BlockAnnotator>>) {
        self.handle.set_annotator(annotator);
        self.sync();
    }

    /// See [`s2e_dbt::BlockCache::clear`].
    pub fn clear(&mut self) {
        self.handle.clear();
        self.sync();
    }

    /// See [`s2e_dbt::BlockCache::chained_succ`] (takes the shared lock;
    /// diagnostics only).
    pub fn chained_succ(&self, from: u32) -> [Option<u32>; 2] {
        self.handle.chained_succ(from)
    }

    /// True if the backing cache is shared between workers.
    pub fn is_shared(&self) -> bool {
        self.handle.is_shared()
    }

    /// Merged statistics: the backing cache's counters (shared across
    /// every worker on a shared cache) plus this L1's local ones.
    pub fn stats(&self) -> DbtStats {
        let mut s = self.handle.stats();
        s.merge(&self.local);
        s
    }

    /// Only this engine's local counters (L1 hits, chain entries/exits).
    /// The parallel explorer sums these across workers and adds the
    /// shared cache's counters exactly once.
    pub fn local_stats(&self) -> DbtStats {
        self.local
    }

    /// Only the backing cache's counters — global across workers on a
    /// shared cache. Telemetry publishes these as max-merged mirrors.
    pub fn shared_stats(&self) -> DbtStats {
        self.handle.stats()
    }
}

impl std::fmt::Debug for ExecCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let filled = self.slots.iter().filter(|s| s.is_some()).count();
        f.debug_struct("ExecCache")
            .field("l1_filled", &filled)
            .field("seen_epoch", &self.seen_epoch)
            .field("local", &self.local)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::asm::Assembler;
    use s2e_vm::machine::Machine;

    fn two_block_machine() -> Machine {
        let mut a = Assembler::new(0x2000);
        a.movi(2, 7);
        a.jmp("next");
        a.label("next");
        a.movi(3, 9);
        a.halt_code(0);
        let prog = a.finish();
        let mut m = Machine::new();
        m.load(&prog);
        m
    }

    #[test]
    fn l1_hit_avoids_shared_lookup_and_counts() {
        let m = two_block_machine();
        let mut cache = ExecCache::new(CacheHandle::private());
        let mut nop = |_: u32, _: &Instr| {};
        let (tb1, _) = cache.translate_timed(&m.mem, 0x2000, &mut nop);
        let (tb2, _) = cache.translate_timed(&m.mem, 0x2000, &mut nop);
        assert!(Arc::ptr_eq(&tb1, &tb2));
        let local = cache.local_stats();
        assert_eq!(local.l1_hits, 1);
        assert_eq!(local.hits, 1);
        // Merged view: one shared translation (miss) + one L1 hit.
        let merged = cache.stats();
        assert_eq!(merged.translations, 1);
        assert_eq!(merged.hits, 1);
        assert_eq!(merged.l1_hits, 1);
    }

    #[test]
    fn invalidation_epoch_wipes_l1() {
        let m = two_block_machine();
        let mut cache = ExecCache::new(CacheHandle::private());
        let mut nop = |_: u32, _: &Instr| {};
        let (tb1, _) = cache.translate_timed(&m.mem, 0x2000, &mut nop);
        cache.invalidate_write(0x2000, 4);
        let (tb2, _) = cache.translate_timed(&m.mem, 0x2000, &mut nop);
        // Fresh translation, not the stale L1 entry.
        assert!(!Arc::ptr_eq(&tb1, &tb2));
        assert_eq!(cache.local_stats().l1_hits, 0);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn cross_worker_invalidation_reaches_sibling_l1() {
        let m = two_block_machine();
        let shared = s2e_dbt::SharedBlockCache::new();
        let mut a = ExecCache::new(CacheHandle::shared(shared.clone()));
        let mut b = ExecCache::new(CacheHandle::shared(shared.clone()));
        let mut nop = |_: u32, _: &Instr| {};
        let (tb_a, _) = a.translate_timed(&m.mem, 0x2000, &mut nop);
        let (_, _) = b.translate_timed(&m.mem, 0x2000, &mut nop);
        // Worker B invalidates; worker A's next lookup must resync.
        b.invalidate_write(0x2000, 4);
        let (tb_a2, _) = a.translate_timed(&m.mem, 0x2000, &mut nop);
        assert!(!Arc::ptr_eq(&tb_a, &tb_a2));
    }

    #[test]
    fn note_chain_hint_suppresses_repeat_shared_calls() {
        let m = two_block_machine();
        let mut cache = ExecCache::new(CacheHandle::private());
        let mut nop = |_: u32, _: &Instr| {};
        let _ = cache.translate_timed(&m.mem, 0x2000, &mut nop);
        cache.note_chain(0x2000, 0x2010, 0);
        cache.note_chain(0x2000, 0x2010, 0);
        assert_eq!(cache.stats().chains_formed, 1);
        assert_eq!(cache.chained_succ(0x2000), [Some(0x2010), None]);
    }
}
