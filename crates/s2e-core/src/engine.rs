//! The path-exploration engine.
//!
//! The engine is the paper's "automated path explorer": it owns the set of
//! live execution states, runs them block by block under a pluggable
//! search strategy, forks them at symbolic branches, and dispatches events
//! to plugins. Analysis tools are built by configuring an engine with
//! selectors and analyzers and then driving [`Engine::run`] (or calling
//! [`Engine::step`] from a custom loop, as the driver-exerciser tools do).

use crate::config::{ConsistencyModel, EngineConfig};
use crate::exec::{execute_block, BlockOutcome, ExecEnv, ForkRequest, MAX_CHAIN};
use crate::journal::JournalEvent;
use crate::l1::ExecCache;
use crate::plugin::{BugReport, ExecCtx, Plugin};
use crate::search::{Dfs, SearchStrategy};
use crate::state::{CompactState, ExecState, StateId, TerminationReason};
use crate::stats::EngineStats;
use s2e_cache::EpochMap;
use s2e_dbt::{CacheHandle, IndirectPredictions, SharedBlockCache};
use s2e_expr::ExprBuilder;
use s2e_obs::{EventKind, Hist, Phase, Recorder, TelemetryHandle, WorkerTimeline};
use s2e_solver::{SharedQueryCache, Solver};
use s2e_vm::machine::Machine;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// What happened during one [`Engine::step`].
#[derive(Clone, Debug)]
pub enum StepOutcome {
    /// The state executed a block and continues.
    Continued,
    /// The state forked; the new child's id.
    Forked(StateId),
    /// The state terminated.
    Terminated(TerminationReason),
}

/// Report for one engine step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// The state that ran.
    pub state: StateId,
    /// PC of the executed block.
    pub pc: u32,
    /// Outcome.
    pub outcome: StepOutcome,
}

/// Why [`Engine::run`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// No live states remain.
    Exhausted,
    /// The step budget ran out.
    MaxSteps,
}

/// Summary of an [`Engine::run`] call.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Steps (blocks) executed.
    pub steps: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// The pieces of an engine that the parallel explorer's workers share:
/// one expression factory (so variable ids stay globally unique when
/// states migrate), one translation-block cache, and one solver query
/// cache. Clones alias the same underlying storage.
#[derive(Clone, Debug, Default)]
pub struct SharedEngineContext {
    /// Expression factory shared by every worker's states.
    pub builder: Arc<ExprBuilder>,
    /// Cross-engine translation-block cache.
    pub tb_cache: SharedBlockCache,
    /// Cross-engine solver query cache.
    pub query_cache: SharedQueryCache,
}

impl SharedEngineContext {
    /// Creates a fresh shared context.
    pub fn new() -> SharedEngineContext {
        SharedEngineContext::default()
    }
}

/// The S2E engine: explorer plus plugin host.
pub struct Engine {
    builder: Arc<ExprBuilder>,
    solver: Solver,
    config: EngineConfig,
    cache: ExecCache,
    marks: HashSet<u32>,
    plugins: Vec<Box<dyn Plugin>>,
    states: HashMap<StateId, ExecState>,
    strategy: Box<dyn SearchStrategy>,
    next_state_id: u64,
    stats: EngineStats,
    bugs: Vec<BugReport>,
    log: Vec<String>,
    terminated: Vec<(StateId, TerminationReason)>,
    retain_terminated: bool,
    retained: Vec<ExecState>,
    seen_blocks: HashSet<u32>,
    steps_since_watermark: u32,
    obs: Recorder,
    checkpoints: EpochMap<Arc<ExecState>>,
    /// Scratch for chain-hop block starts (reused across steps).
    hop_scratch: Vec<u32>,
    /// Static indirect-target predictions consulted at every
    /// `jmpr`/`callr`/`ret` retirement (`None` disables classification).
    predictions: Option<Arc<IndirectPredictions>>,
    /// `(site, target)` pairs already fed through the refiner — each
    /// discovery triggers incremental re-analysis at most once.
    discovered_seen: HashSet<(u32, u32)>,
    /// Scratch for discoveries surfaced by one step (reused).
    discovery_scratch: Vec<(u32, u32)>,
    /// Incremental re-analysis callback for discovered targets.
    refiner: Option<IndirectRefiner>,
    /// Live-telemetry shard (DESIGN.md §16). `None` — the default —
    /// costs one branch at publish points and nothing per block.
    telemetry: Option<TelemetryHandle>,
}

/// Result of an indirect-target refinement callback: freshly re-stamped
/// block annotations (installing them bumps the cache epoch, which
/// severs superblock chains and wipes per-worker L1s) plus the updated
/// prediction table covering the discovered target.
pub struct RefinementUpdate {
    /// Annotator carrying the re-analyzed facts.
    pub annotator: Arc<dyn s2e_dbt::BlockAnnotator>,
    /// Prediction table after absorbing the discovery.
    pub predictions: Arc<IndirectPredictions>,
}

/// Callback invoked once per newly discovered `(site pc, target)` pair;
/// returning `None` leaves the current annotations and predictions in
/// place (the discovery stays accounted via `indirect_targets_discovered`).
pub type IndirectRefiner = Box<dyn FnMut(u32, u32) -> Option<RefinementUpdate> + Send>;

/// Journal size (bytes) past which [`Engine::step`] refreshes a state's
/// checkpoint even without a fork: bounds both the shipping cost of a
/// compact state and its replay distance on long fork-free stretches.
const JOURNAL_SOFT_CAP: usize = 4096;

/// Epochs a checkpoint survives in the engine's retention registry after
/// its last refresh (epochs advance on the 32-step watermark tick).
const CHECKPOINT_RETAIN_EPOCHS: u64 = 4;

impl Engine {
    /// Creates an engine around an initial machine snapshot.
    pub fn new(machine: Machine, config: EngineConfig) -> Engine {
        Engine::build(
            machine,
            config,
            Arc::new(ExprBuilder::new()),
            Solver::new(),
            CacheHandle::private(),
        )
    }

    /// Creates an engine wired to a [`SharedEngineContext`]: it uses the
    /// shared expression builder, translates through the shared block
    /// cache, and its solver consults the shared query cache after a
    /// local miss. This is how the parallel explorer builds workers.
    pub fn with_shared(
        machine: Machine,
        config: EngineConfig,
        shared: &SharedEngineContext,
    ) -> Engine {
        let mut solver = Solver::new();
        solver.attach_shared_cache(shared.query_cache.clone());
        Engine::build(
            machine,
            config,
            Arc::clone(&shared.builder),
            solver,
            CacheHandle::shared(shared.tb_cache.clone()),
        )
    }

    fn build(
        machine: Machine,
        config: EngineConfig,
        builder: Arc<ExprBuilder>,
        solver: Solver,
        cache: CacheHandle,
    ) -> Engine {
        let mut engine = Engine {
            builder,
            solver,
            config,
            cache: ExecCache::new(cache),
            marks: HashSet::new(),
            plugins: Vec::new(),
            states: HashMap::new(),
            strategy: Box::new(Dfs::new()),
            next_state_id: 1,
            stats: EngineStats::default(),
            bugs: Vec::new(),
            log: Vec::new(),
            terminated: Vec::new(),
            retain_terminated: false,
            retained: Vec::new(),
            seen_blocks: HashSet::new(),
            steps_since_watermark: 0,
            obs: Recorder::disabled(),
            checkpoints: EpochMap::new(CHECKPOINT_RETAIN_EPOCHS),
            hop_scratch: Vec::new(),
            predictions: None,
            discovered_seen: HashSet::new(),
            discovery_scratch: Vec::new(),
            refiner: None,
            telemetry: None,
        };
        let initial = ExecState::initial(machine);
        engine.stats.states_created = 1;
        engine.strategy.push(initial.id);
        engine.states.insert(initial.id, initial);
        engine
    }

    /// Installs (or removes) a static-analysis block annotator on the
    /// translation cache. Newly translated blocks are stamped with the
    /// annotator's facts (lean dispatch, dead writes, fork-freedom);
    /// already-cached blocks are discarded so they re-translate under the
    /// new annotator. On a shared cache this affects every worker.
    pub fn set_annotator(&mut self, annotator: Option<Arc<dyn s2e_dbt::BlockAnnotator>>) {
        self.cache.set_annotator(annotator);
    }

    /// Installs (or removes) the static indirect-target prediction table.
    /// While installed, every retired indirect transfer is classified as
    /// resolved / escaped / discovered in [`EngineStats`], and discovered
    /// targets are handed to the refiner (if one is set).
    pub fn set_predictions(&mut self, predictions: Option<Arc<IndirectPredictions>>) {
        self.predictions = predictions;
    }

    /// Installs (or removes) the incremental re-analysis callback. Each
    /// newly discovered `(site, target)` pair is passed to it exactly
    /// once across the engine's lifetime; a returned update is applied
    /// through [`Engine::set_annotator`] (epoch bump: chains severed,
    /// L1s wiped) and replaces the prediction table.
    pub fn set_refiner(&mut self, refiner: Option<IndirectRefiner>) {
        self.refiner = refiner;
    }

    /// Replaces the search strategy (default: depth-first).
    pub fn set_strategy(&mut self, strategy: Box<dyn SearchStrategy>) {
        // Re-offer all live states to the new strategy.
        self.strategy = strategy;
        let ids: Vec<StateId> = self.states.keys().copied().collect();
        for id in ids {
            self.strategy.push(id);
        }
    }

    /// Registers a selector or analyzer plugin.
    pub fn add_plugin(&mut self, plugin: Box<dyn Plugin>) {
        self.plugins.push(plugin);
    }

    /// The shared expression builder.
    pub fn builder(&self) -> &ExprBuilder {
        &self.builder
    }

    /// A shared handle to the expression builder, convenient when symbolic
    /// values must be injected while the engine is also borrowed mutably.
    pub fn builder_arc(&self) -> Arc<ExprBuilder> {
        Arc::clone(&self.builder)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable configuration access (between steps).
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Solver statistics (Fig. 9's raw data).
    pub fn solver_stats(&self) -> &s2e_solver::SolverStats {
        self.solver.stats()
    }

    /// Mutable solver access (to reconfigure between runs).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Translator statistics: the backing cache's counters (shared across
    /// workers on a shared cache) merged with this engine's L1-local ones.
    pub fn dbt_stats(&self) -> s2e_dbt::DbtStats {
        self.cache.stats()
    }

    /// Only this engine's L1-local translator counters (l1 hits, chain
    /// entries/exits). The parallel explorer sums these across workers
    /// and adds the shared cache's counters exactly once.
    pub fn local_dbt_stats(&self) -> s2e_dbt::DbtStats {
        self.cache.local_stats()
    }

    /// Installs an observability recorder. The engine ships with a
    /// disabled one, which costs one branch per entry point and never
    /// reads the clock (DESIGN.md §11).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
    }

    /// Attaches (or detaches) a live-telemetry shard (DESIGN.md §16).
    /// The handle is forwarded to the solver for per-kind query-latency
    /// histograms; translation and replay latencies record here. Plain
    /// stat counters are *not* touched per event — callers publish them
    /// in bulk via [`Engine::publish_telemetry`] at batch boundaries.
    pub fn set_telemetry(&mut self, telemetry: Option<TelemetryHandle>) {
        self.solver.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The attached live-telemetry shard, if any.
    pub fn telemetry(&self) -> Option<&TelemetryHandle> {
        self.telemetry.as_ref()
    }

    /// Publishes this engine's cumulative stats (engine, solver,
    /// L1-local + shared-mirror DBT) and liveness gauges into the
    /// attached telemetry shard; a no-op without one. The parallel
    /// explorer calls this once per batch and once at worker exit —
    /// that final flush is what makes the sampler's last JSONL line
    /// exactly equal the end-of-run `RunReport`.
    pub fn publish_telemetry(&self) {
        let Some(t) = &self.telemetry else { return };
        crate::telemetry::publish_engine_stats(
            t,
            &self.stats,
            self.seen_blocks.len(),
            self.states.len(),
        );
        crate::telemetry::publish_solver_stats(t, self.solver.stats());
        crate::telemetry::publish_dbt_stats(
            t,
            &self.cache.local_stats(),
            &self.cache.shared_stats(),
        );
    }

    /// The current recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Mutable recorder access (for callers that wrap engine-external
    /// work — migration, scheduling — in spans).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// Finishes recording and returns this engine's timeline, leaving a
    /// disabled recorder behind. The timeline of a never-enabled engine
    /// is empty.
    pub fn take_timeline(&mut self) -> WorkerTimeline {
        std::mem::replace(&mut self.obs, Recorder::disabled()).finish()
    }

    /// Bugs reported so far.
    pub fn bugs(&self) -> &[BugReport] {
        &self.bugs
    }

    /// Guest and plugin log messages.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Block start addresses executed at least once (basic-block
    /// coverage).
    pub fn seen_blocks(&self) -> &HashSet<u32> {
        &self.seen_blocks
    }

    /// Live states.
    pub fn live_states(&self) -> impl Iterator<Item = &ExecState> {
        self.states.values()
    }

    /// Number of live states.
    pub fn live_count(&self) -> usize {
        self.states.len()
    }

    /// A live state by id.
    pub fn state(&self, id: StateId) -> Option<&ExecState> {
        self.states.get(&id)
    }

    /// Mutable access to a live state (for selectors between steps).
    pub fn state_mut(&mut self, id: StateId) -> Option<&mut ExecState> {
        self.states.get_mut(&id)
    }

    /// The id of the single live state, if exactly one exists.
    pub fn sole_state(&self) -> Option<StateId> {
        if self.states.len() == 1 {
            self.states.keys().next().copied()
        } else {
            None
        }
    }

    /// Terminated states and their reasons, in termination order.
    pub fn terminated(&self) -> &[(StateId, TerminationReason)] {
        &self.terminated
    }

    /// When enabled, terminated execution states are kept and can be
    /// inspected via [`Engine::terminated_states`] (used by tools that
    /// replay paths or read final register/memory values).
    pub fn set_retain_terminated(&mut self, on: bool) {
        self.retain_terminated = on;
    }

    /// Retained terminated states (empty unless
    /// [`Engine::set_retain_terminated`] was enabled).
    pub fn terminated_states(&self) -> &[ExecState] {
        &self.retained
    }

    /// Estimated private memory across live states, in bytes (Fig. 8's
    /// metric, sampled).
    pub fn live_memory_bytes(&self) -> usize {
        self.states.values().map(|s| s.machine.private_state_bytes()).sum()
    }

    /// Kills a live state (PathKiller-style).
    pub fn kill_state(&mut self, id: StateId, reason: TerminationReason) {
        if let Some(mut state) = self.states.remove(&id) {
            self.finish_state(&mut state, reason);
        }
    }

    /// Kills every live state except `keep` (the §6.3 exploration
    /// methodology: on stagnation, keep one path and move on).
    pub fn kill_all_except(&mut self, keep: StateId) {
        let victims: Vec<StateId> = self.states.keys().copied().filter(|&id| id != keep).collect();
        for id in victims {
            self.kill_state(id, TerminationReason::Killed(0));
        }
    }

    fn alloc_state_id(&mut self) -> StateId {
        let id = StateId(self.next_state_id);
        self.next_state_id += 1;
        id
    }

    /// Moves this engine's id allocator into a disjoint per-worker
    /// namespace so states forked by different workers can never collide
    /// when they migrate. Call right after construction, before any fork.
    pub fn set_state_id_namespace(&mut self, worker: usize) {
        debug_assert!(self.stats.forks == 0, "namespace set after forking");
        self.next_state_id = ((worker as u64 + 1) << 40) + 1;
    }

    /// Detaches a live state for migration to another engine. The state
    /// is removed without firing termination events; stale strategy
    /// entries for it are skipped naturally by [`Engine::step`].
    pub fn detach_state(&mut self, id: StateId) -> Option<ExecState> {
        self.states.remove(&id)
    }

    /// Detaches every live state (used by parallel workers that start
    /// empty and pull all their work from the shared queue).
    pub fn drain_states(&mut self) -> Vec<ExecState> {
        let ids: Vec<StateId> = self.states.keys().copied().collect();
        ids.into_iter().filter_map(|id| self.states.remove(&id)).collect()
    }

    /// Detaches surplus live states, keeping at most `keep`, preferring
    /// to export the states with the largest
    /// [`ExecState::subtree_estimate`] — the paths forking most per
    /// block executed, whose unexplored subtrees are likely the largest
    /// and therefore the best work units to hand an idle worker
    /// (DESIGN.md §12; replaces the PR-1 shallowest-first rule).
    pub fn detach_overflow(&mut self, keep: usize) -> Vec<ExecState> {
        if self.states.len() <= keep {
            return Vec::new();
        }
        let mut ids: Vec<(std::cmp::Reverse<u64>, u32, StateId)> = self
            .states
            .values()
            .map(|s| (std::cmp::Reverse(s.subtree_estimate()), s.depth, s.id))
            .collect();
        // Largest estimate first; (depth, id) tie-break keeps the victim
        // choice deterministic when estimates collide.
        ids.sort_unstable();
        ids.truncate(self.states.len() - keep);
        ids.into_iter()
            .filter_map(|(_, _, id)| self.states.remove(&id))
            .collect()
    }

    /// Attaches a migrated state and schedules it. The state keeps its
    /// id — per-worker id namespaces ([`Engine::set_state_id_namespace`])
    /// guarantee it cannot collide with a locally-created one.
    ///
    /// # Panics
    ///
    /// Panics if a live state with the same id already exists here.
    pub fn attach_state(&mut self, state: ExecState) {
        let id = state.id;
        let prev = self.states.insert(id, state);
        assert!(prev.is_none(), "state id collision on attach: {id}");
        self.strategy.push(id);
    }

    fn finish_state(&mut self, state: &mut ExecState, reason: TerminationReason) {
        let mut plugins = std::mem::take(&mut self.plugins);
        {
            let mut ctx = ExecCtx {
                builder: &self.builder,
                solver: &mut self.solver,
                config: &self.config,
                stats: &mut self.stats,
                bugs: &mut self.bugs,
                log: &mut self.log,
            };
            for p in plugins.iter_mut() {
                p.on_state_terminated(state, &mut ctx, &reason);
            }
        }
        self.plugins = plugins;
        self.stats.states_terminated += 1;
        self.obs.note(EventKind::PathEnd { state: state.id.0 });
        self.terminated.push((state.id, reason.clone()));
        if self.retain_terminated {
            let mut retained = state.clone();
            retained.status = Some(reason);
            self.retained.push(retained);
        }
    }

    /// Runs one live state for one translation block — or, when block
    /// chaining is enabled (the default), for a chained run of up to
    /// [`MAX_CHAIN`] blocks along observed direct edges (DESIGN.md §14).
    ///
    /// Returns `None` when no live states remain.
    pub fn step(&mut self) -> Option<StepReport> {
        let started = Instant::now();
        let id = loop {
            let id = self.strategy.pop()?;
            if self.states.contains_key(&id) {
                break id;
            }
        };
        let mut state = self.states.remove(&id).expect("live state");
        // Every state carries a checkpoint from its first step on, so
        // eviction is always `{nearest checkpoint, journal suffix}` with a
        // bounded suffix — never a from-the-beginning replay.
        if state.checkpoint().is_none() {
            self.checkpoint_state(&mut state);
        }
        let pc = state.machine.cpu.pc;
        let newly_seen = self.seen_blocks.insert(pc);

        let mut plugins = std::mem::take(&mut self.plugins);
        // Capture any variable ids this block mints (symbolic hardware,
        // `SymbolicReg`/`SymbolicMem`, relaxed-model return conversion):
        // the builder's counter is shared engine-wide, so the ids are a
        // nondeterministic input replay must reissue verbatim.
        s2e_expr::begin_var_capture();
        self.hop_scratch.clear();
        self.discovery_scratch.clear();
        let outcome = {
            let mut env = ExecEnv {
                ctx: ExecCtx {
                    builder: &self.builder,
                    solver: &mut self.solver,
                    config: &self.config,
                    stats: &mut self.stats,
                    bugs: &mut self.bugs,
                    log: &mut self.log,
                },
                cache: &mut self.cache,
                marks: &mut self.marks,
                seen_blocks: &self.seen_blocks,
                obs: &mut self.obs,
                telemetry: self.telemetry.as_ref(),
                block_budget: MAX_CHAIN,
                hops: &mut self.hop_scratch,
                predictions: self.predictions.as_deref(),
                discoveries: &mut self.discovery_scratch,
            };
            execute_block(&mut state, &mut env, &mut plugins)
        };
        // Flush before `handle_fork` clones the journal: a forking block's
        // mints precede the fork decision on both sides' replays.
        let minted = s2e_expr::end_var_capture();
        if !minted.is_empty() {
            state.record_var_ids(&minted);
        }
        self.plugins = plugins;
        // Close the dynamic feedback loop: hand each *new* discovered
        // indirect target to the refiner once. A returned update re-stamps
        // annotations (epoch bump severs chains and wipes L1s) and swaps
        // in the extended prediction table, so the same target retires as
        // `resolved` from then on.
        if !self.discovery_scratch.is_empty() {
            let fresh: Vec<(u32, u32)> = self
                .discovery_scratch
                .drain(..)
                .filter(|d| self.discovered_seen.insert(*d))
                .collect();
            if !fresh.is_empty() {
                if let Some(mut refiner) = self.refiner.take() {
                    for (site, target) in fresh {
                        if let Some(update) = refiner(site, target) {
                            self.set_annotator(Some(update.annotator));
                            self.predictions = Some(update.predictions);
                        }
                    }
                    self.refiner = Some(refiner);
                }
            }
        }
        // Coverage: the step's entry block plus every block entered via a
        // chain hop inside the call.
        let mut new_blocks = u64::from(newly_seen);
        for &hop in &self.hop_scratch {
            if self.seen_blocks.insert(hop) {
                new_blocks += 1;
            }
        }
        if new_blocks > 0 {
            self.strategy.notify_coverage(id, new_blocks as u32);
        }

        let report_outcome = match outcome {
            BlockOutcome::Continue => {
                if state.journal().byte_len() >= JOURNAL_SOFT_CAP {
                    self.checkpoint_state(&mut state);
                }
                self.states.insert(id, state);
                self.strategy.push(id);
                StepOutcome::Continued
            }
            BlockOutcome::Fork(fork) => self.handle_fork(state, fork),
            BlockOutcome::Terminated(reason) => {
                self.finish_state(&mut state, reason.clone());
                StepOutcome::Terminated(reason)
            }
        };

        self.steps_since_watermark += 1;
        let tick = self.steps_since_watermark >= 32;
        if tick || matches!(report_outcome, StepOutcome::Forked(_)) {
            self.steps_since_watermark = 0;
            let mem = self.live_memory_bytes();
            self.stats.memory_watermark_bytes = self.stats.memory_watermark_bytes.max(mem);
        }
        if tick {
            // Age the checkpoint retention registry on the same cadence as
            // the watermark sampler; snapshots not refreshed for
            // CHECKPOINT_RETAIN_EPOCHS ticks drop out (live states still
            // hold their own Arc, so this only trims the registry).
            self.checkpoints.advance();
        }
        self.stats.max_live_states = self.stats.max_live_states.max(self.states.len());
        self.stats.cpu_time += started.elapsed();

        Some(StepReport {
            state: id,
            pc,
            outcome: report_outcome,
        })
    }

    fn handle_fork(&mut self, mut parent: ExecState, fork: ForkRequest) -> StepOutcome {
        let can_fork =
            self.states.len() + 1 < self.config.max_states && parent.depth < self.config.max_depth;
        if !can_fork {
            // Curtail: follow ONE side only. For constrained forks take
            // the else side under ¬cond — for a fork_on_null request the
            // then side is the guaranteed crash, and for branch forks
            // both sides were proven feasible, so ¬cond is always safe.
            //
            // The fork-vs-curtail choice depends on the live-state census,
            // which depends on scheduling — journal it.
            parent.record_event(JournalEvent::Curtail);
            if fork.constrained {
                parent.add_constraint(self.builder.bool_not(fork.cond));
                parent.machine.cpu.pc = fork.else_pc;
            } else {
                parent.machine.cpu.pc = fork.then_pc;
            }
            let id = parent.id;
            self.states.insert(id, parent);
            self.strategy.push(id);
            return StepOutcome::Continued;
        }

        self.obs.enter(Phase::Fork);
        // Count the fork on the parent *before* cloning so both sides
        // carry it in their subtree estimate — and toward the checkpoint
        // interval, so both children measure distance from the snapshot
        // they share.
        parent.forks_on_path += 1;
        parent.count_fork_toward_checkpoint();
        let child_id = self.alloc_state_id();
        let mut child = parent.fork_child(child_id);
        // Journal the branch decision *after* the clone: each side's
        // journal ends with its own direction, not the sibling's.
        parent.record_event(JournalEvent::Fork { taken: true });
        child.record_event(JournalEvent::Fork { taken: false });
        parent.machine.cpu.pc = fork.then_pc;
        child.machine.cpu.pc = fork.else_pc;
        if fork.constrained {
            parent.add_constraint(fork.cond.clone());
            child.add_constraint(self.builder.bool_not(fork.cond.clone()));
        }
        self.stats.forks += 1;
        self.stats.states_created += 1;

        let mut plugins = std::mem::take(&mut self.plugins);
        {
            let mut ctx = ExecCtx {
                builder: &self.builder,
                solver: &mut self.solver,
                config: &self.config,
                stats: &mut self.stats,
                bugs: &mut self.bugs,
                log: &mut self.log,
            };
            for p in plugins.iter_mut() {
                p.on_fork(&mut parent, &mut child, &mut ctx, &fork.cond);
            }
        }
        self.plugins = plugins;
        self.obs.note(EventKind::Fork {
            parent: parent.id.0,
            child: child_id.0,
        });
        self.obs.exit(Phase::Fork);

        // Periodic checkpoint refresh at fork points (§13): forks are
        // where the COW sharing is already being paid for, so a snapshot
        // here is a shallow page-map clone.
        if parent.forks_since_checkpoint() >= self.config.checkpoint_interval {
            self.checkpoint_state(&mut parent);
        }
        if child.forks_since_checkpoint() >= self.config.checkpoint_interval {
            self.checkpoint_state(&mut child);
        }

        let pid = parent.id;
        self.states.insert(pid, parent);
        self.states.insert(child_id, child);
        // Child first so DFS explores the else-branch eagerly after the
        // parent's then-branch (both orders are valid; this one keeps the
        // taken side on top of the stack).
        self.strategy.push(child_id);
        self.strategy.push(pid);
        StepOutcome::Forked(child_id)
    }

    /// Steps until exhaustion or `max_steps` blocks.
    pub fn run(&mut self, max_steps: u64) -> RunSummary {
        let mut steps = 0;
        let mut stop = StopReason::MaxSteps;
        while steps < max_steps {
            if self.step().is_none() {
                stop = StopReason::Exhausted;
                break;
            }
            steps += 1;
        }
        // Final watermark sample so short runs report real numbers.
        let mem = self.live_memory_bytes();
        self.stats.memory_watermark_bytes = self.stats.memory_watermark_bytes.max(mem);
        RunSummary { steps, stop }
    }

    /// Takes a fresh checkpoint of `state` and registers it in the
    /// engine's epoch-based retention registry, keyed by state id. The
    /// registry is bookkeeping for checkpoint reuse (and staging for a
    /// distributed tier that ships snapshots separately from journals);
    /// the state itself holds the authoritative `Arc`.
    fn checkpoint_state(&mut self, state: &mut ExecState) {
        let snap = state.take_checkpoint();
        self.checkpoints.insert(state.id.0, snap);
    }

    /// The checkpoint retention registry: state id → most recent
    /// snapshot, pruned [`CHECKPOINT_RETAIN_EPOCHS`] watermark ticks
    /// after its last refresh.
    pub fn checkpoint_registry(&self) -> &EpochMap<Arc<ExecState>> {
        &self.checkpoints
    }

    /// Evicts a detached live state to compact `{checkpoint, journal
    /// suffix}` form (§13). With `verify`, the original's fingerprint is
    /// embedded so [`Engine::rehydrate`] can assert bit-identity.
    pub fn evict_state(&mut self, state: ExecState, verify: bool) -> CompactState {
        let compact = state.into_compact(verify);
        let journal_bytes = compact.journal.byte_len() as u64;
        self.stats.evictions += 1;
        self.stats.journal_bytes += journal_bytes;
        self.obs.note(EventKind::Evict {
            state: compact.id.0,
            journal_bytes,
        });
        compact
    }

    /// Reconstructs a live state from its compact form by deterministic
    /// replay: clone the checkpoint, then re-execute block by block with
    /// every journaled nondeterministic input (solver probes,
    /// concretizations, fork directions) substituted from the journal, so
    /// the solver is never consulted and schedule-dependent decisions
    /// come out exactly as recorded.
    ///
    /// Replayed work is *not* new exploration: stats, bugs, and log lines
    /// from re-executed blocks go to scratch sinks (only
    /// `EngineStats::rehydrations` / `replayed_instrs` record the replay
    /// itself), and coverage is untouched.
    ///
    /// # Panics
    ///
    /// Panics if replay diverges from the journal — which, given the
    /// deterministic interpreter, indicates a missed nondeterminism
    /// source — or, when the compact state carries a fingerprint, if the
    /// reconstruction is not bit-identical to the evicted original.
    pub fn rehydrate(&mut self, compact: CompactState) -> ExecState {
        // Replay latency is one histogram sample per rehydration; only
        // read the clock when someone is listening.
        let replay_started = self.telemetry.as_ref().map(|_| Instant::now());
        self.obs.enter(Phase::Replay);
        let mut state = (*compact.checkpoint).clone();
        let instrs_at_checkpoint = state.instrs_retired;
        state.begin_replay(&compact.journal);
        // Reissue the recorded variable ids at every mint site, in order,
        // so replayed expressions are structurally identical to the live
        // run's (same `VarId`s, not merely isomorphic ones).
        s2e_expr::begin_var_replay(compact.journal.var_ids());

        let mut scratch_stats = EngineStats::default();
        let mut scratch_bugs = Vec::new();
        let mut scratch_log = Vec::new();
        let mut scratch_obs = Recorder::disabled();
        let mut scratch_hops = Vec::new();
        // Replay must not re-report discoveries the live run already fed
        // back — classification stays off during rehydration.
        let mut scratch_discoveries = Vec::new();
        let mut plugins = std::mem::take(&mut self.plugins);
        let blocks_at_checkpoint = state.blocks_on_path;

        while state.blocks_on_path < compact.blocks_on_path {
            let outcome = {
                let mut env = ExecEnv {
                    ctx: ExecCtx {
                        builder: &self.builder,
                        solver: &mut self.solver,
                        config: &self.config,
                        stats: &mut scratch_stats,
                        bugs: &mut scratch_bugs,
                        log: &mut scratch_log,
                    },
                    cache: &mut self.cache,
                    marks: &mut self.marks,
                    seen_blocks: &self.seen_blocks,
                    obs: &mut scratch_obs,
                    // Replay work is accounted once, in the Replay
                    // histogram below — not as fresh translations.
                    telemetry: None,
                    // Chain freely during replay, but never past the
                    // recorded boundary: `blocks_on_path` advances inside
                    // `execute_block`, so the budget is exactly the
                    // remaining distance.
                    block_budget: compact.blocks_on_path - state.blocks_on_path,
                    hops: &mut scratch_hops,
                    predictions: None,
                    discoveries: &mut scratch_discoveries,
                };
                execute_block(&mut state, &mut env, &mut plugins)
            };
            scratch_hops.clear();
            match outcome {
                BlockOutcome::Continue => {}
                BlockOutcome::Fork(fork) => {
                    let decision =
                        state.replay_fork_decision().expect("cursor active during replay");
                    match decision {
                        JournalEvent::Curtail => {
                            // Mirror handle_fork's curtail arm.
                            if fork.constrained {
                                state.add_constraint(self.builder.bool_not(fork.cond));
                                state.machine.cpu.pc = fork.else_pc;
                            } else {
                                state.machine.cpu.pc = fork.then_pc;
                            }
                        }
                        JournalEvent::Fork { taken } => {
                            // Re-run the fork exactly as handle_fork did —
                            // constraints and plugin callbacks on both
                            // sides — then keep only the journaled side.
                            // The discarded sibling gets a scratch id (no
                            // allocator traffic); the kept side's identity
                            // is restored from `compact` below.
                            state.forks_on_path += 1;
                            state.count_fork_toward_checkpoint();
                            let mut child = state.fork_child(StateId(u64::MAX));
                            state.machine.cpu.pc = fork.then_pc;
                            child.machine.cpu.pc = fork.else_pc;
                            if fork.constrained {
                                state.add_constraint(fork.cond.clone());
                                child.add_constraint(self.builder.bool_not(fork.cond.clone()));
                            }
                            {
                                let mut ctx = ExecCtx {
                                    builder: &self.builder,
                                    solver: &mut self.solver,
                                    config: &self.config,
                                    stats: &mut scratch_stats,
                                    bugs: &mut scratch_bugs,
                                    log: &mut scratch_log,
                                };
                                for p in plugins.iter_mut() {
                                    p.on_fork(&mut state, &mut child, &mut ctx, &fork.cond);
                                }
                            }
                            if !taken {
                                state = child;
                            }
                        }
                        other => {
                            panic!("replay diverged: fork point journaled as {other:?}")
                        }
                    }
                }
                BlockOutcome::Terminated(reason) => panic!(
                    "replay diverged: state {} terminated ({reason:?}) after {} replayed blocks",
                    compact.id,
                    state.blocks_on_path - blocks_at_checkpoint
                ),
            }
        }
        self.plugins = plugins;

        let leftover_vars = s2e_expr::end_var_replay();
        assert_eq!(
            leftover_vars, 0,
            "replay of state {} minted fewer variables than the live run recorded",
            compact.id
        );
        let cursor = state.end_replay();
        assert!(
            cursor.finished(),
            "replay of state {} stopped with journal events left after {} consumed",
            compact.id,
            cursor.consumed()
        );
        assert_eq!(state.depth, compact.depth, "replay diverged: depth mismatch");
        assert_eq!(
            state.forks_on_path, compact.forks_on_path,
            "replay diverged: fork-count mismatch"
        );
        state.adopt_compact_identity(&compact);
        if let Some(expect) = compact.fingerprint {
            assert_eq!(
                state.fingerprint(),
                expect,
                "replayed state {} is not bit-identical to the evicted original",
                state.id
            );
        }

        self.stats.rehydrations += 1;
        self.stats.replayed_instrs += state.instrs_retired - instrs_at_checkpoint;
        self.obs.note(EventKind::Rehydrate {
            state: compact.id.0,
            replayed_blocks: state.blocks_on_path - blocks_at_checkpoint,
        });
        self.obs.exit(Phase::Replay);
        if let (Some(t), Some(started)) = (&self.telemetry, replay_started) {
            t.observe_duration(Hist::HistReplay, started.elapsed());
        }
        state
    }

    /// Enables the consistency model's default hardware symbolication:
    /// under SC-SE and RC-OC the NIC returns unconstrained symbolic values
    /// (the paper's *symbolic hardware*).
    pub fn apply_model_hardware_policy(&mut self) {
        let symbolic = matches!(
            self.config.consistency,
            ConsistencyModel::ScSe | ConsistencyModel::RcOc
        );
        for state in self.states.values_mut() {
            if let Some(nic) = state.machine.devices.nic_mut() {
                nic.symbolic_hardware = symbolic;
            }
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("live_states", &self.states.len())
            .field("terminated", &self.terminated.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}
