//! The S2E platform core: selective symbolic execution with pluggable
//! consistency models, path selectors, and analyzers.
//!
//! This crate is the reproduction of the paper's central contribution
//! (§2–§5): an engine that runs a whole guest machine, executes most
//! instructions concretely, dispatches instructions that touch symbolic
//! data to an embedded symbolic executor, forks execution states at
//! symbolic branches, and converts data back and forth across the
//! unit/environment boundary according to a configurable *execution
//! consistency model*.
//!
//! # Quick start
//!
//! ```
//! use s2e_core::{ConsistencyModel, Engine, EngineConfig};
//! use s2e_core::selectors::make_reg_symbolic;
//! use s2e_vm::asm::Assembler;
//! use s2e_vm::isa::reg;
//! use s2e_vm::machine::Machine;
//!
//! // A guest with one data-dependent branch.
//! let mut a = Assembler::new(0x2000);
//! a.movi(reg::R1, 5);
//! a.bltu(reg::R0, reg::R1, "small");
//! a.halt_code(1);
//! a.label("small");
//! a.halt_code(2);
//! let prog = a.finish();
//!
//! let mut m = Machine::new();
//! m.load(&prog);
//! let mut engine = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScSe));
//! // Make r0 symbolic: both sides of the branch become reachable.
//! let id = engine.sole_state().unwrap();
//! let b = engine.builder_arc();
//! make_reg_symbolic(engine.state_mut(id).unwrap(), &b, reg::R0, "input");
//! engine.run(1_000);
//! // Two paths, exit codes 1 and 2.
//! assert_eq!(engine.terminated().len(), 2);
//! ```

pub mod analyzers;
pub mod config;
pub mod deque;
pub mod engine;
pub mod exec;
pub mod journal;
pub mod l1;
pub mod observe;
pub mod parallel;
pub mod plugin;
pub mod search;
pub mod selectors;
pub mod state;
pub mod stats;
pub mod telemetry;
pub mod threaded;
pub mod wire;

pub use config::{Annotation, CodeRanges, ConsistencyModel, EngineConfig};
pub use engine::{
    Engine, IndirectRefiner, RefinementUpdate, RunSummary, SharedEngineContext, StepOutcome,
    StepReport, StopReason,
};
pub use journal::{Journal, JournalEvent, ReplayCursor};
pub use observe::build_run_report;
pub use parallel::{
    explore_parallel, explore_parallel_live, explore_static, merge_coverage,
    partition_constraint, EvictionPolicy, ParallelConfig, ParallelReport, SchedulerKind,
    WorkerContext, WorkerReport,
};
pub use plugin::{BugKind, BugReport, ExecCtx, MachineSnapshot, MemAccess, Plugin, PortAccess};
pub use state::{CompactState, ExecState, StateId, TerminationReason};
pub use stats::EngineStats;
pub use telemetry::runreport_twins;
