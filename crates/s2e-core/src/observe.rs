//! Snapshotting engine state into a unified [`RunReport`].
//!
//! One call — [`build_run_report`] — folds everything a parallel run
//! produced into the `s2e-run-report-v1` schema: merged phase totals and
//! per-worker timelines from the recorders, plus named metric sections
//! snapshotting [`EngineStats`], [`SolverStats`] (with its per-kind
//! breakdown and cache eviction counters), the shared solver cache, the
//! translation-block cache, the scheduler, and optionally a
//! [`HierarchyStats`] cache profile. The report renders to JSON via
//! [`RunReport::render`] and to a Chrome trace via
//! [`s2e_obs::chrome_trace`].

use crate::parallel::ParallelReport;
use crate::stats::EngineStats;
use s2e_cache::HierarchyStats;
use s2e_dbt::DbtStats;
use s2e_obs::{MetricSection, RunReport};
use s2e_solver::{QueryKind, SharedCacheStats, SolverStats};

/// Builds the unified run report for a completed parallel exploration.
/// `hierarchy` attaches a merged cache profile when a
/// [`crate::analyzers::PerformanceProfile`] ran.
pub fn build_run_report(report: &ParallelReport, hierarchy: Option<&HierarchyStats>) -> RunReport {
    let mut out = RunReport::new(report.wall_time.as_nanos() as u64);
    for w in &report.workers {
        out.add_worker(w.timeline.clone());
    }
    out.add_section(engine_section(&report.stats));
    out.add_section(solver_section(&report.solver));
    out.add_section(solver_by_kind_section(&report.solver));
    out.add_section(shared_cache_section(&report.shared_cache));
    out.add_section(dbt_section(&report.dbt));
    out.add_section(parallel_section(report));
    if let Some(h) = hierarchy {
        out.add_section(hierarchy_section(h));
    }
    out
}

fn engine_section(s: &EngineStats) -> MetricSection {
    MetricSection::new("engine")
        .counter("states_created", s.states_created as f64)
        .counter("states_terminated", s.states_terminated as f64)
        .counter("forks", s.forks as f64)
        .counter("blocks_executed", s.blocks_executed as f64)
        .counter("instrs_concrete", s.instrs_concrete as f64)
        .counter("instrs_symbolic", s.instrs_symbolic as f64)
        .counter("concrete_only_blocks", s.concrete_only_blocks as f64)
        .counter("lean_instrs", s.lean_instrs as f64)
        .counter("dead_writes_skipped", s.dead_writes_skipped as f64)
        .counter("feasibility_probes_skipped", s.feasibility_probes_skipped as f64)
        .counter("symbolic_ptr_accesses", s.symbolic_ptr_accesses as f64)
        .counter("concretizations", s.concretizations as f64)
        .counter("interrupts_delivered", s.interrupts_delivered as f64)
        .counter("syscalls", s.syscalls as f64)
        .counter("indirect_retirements", s.indirect_retirements as f64)
        .counter("indirect_targets_resolved", s.indirect_targets_resolved as f64)
        .counter("indirect_targets_escaped", s.indirect_targets_escaped as f64)
        .counter("indirect_targets_discovered", s.indirect_targets_discovered as f64)
        .counter("evictions", s.evictions as f64)
        .counter("rehydrations", s.rehydrations as f64)
        .counter("replayed_instrs", s.replayed_instrs as f64)
        .counter("journal_bytes", s.journal_bytes as f64)
        .counter("max_live_states", s.max_live_states as f64)
        .counter("memory_watermark_bytes", s.memory_watermark_bytes as f64)
        .counter("cpu_time_ns", s.cpu_time.as_nanos() as f64)
}

fn solver_section(s: &SolverStats) -> MetricSection {
    MetricSection::new("solver")
        .counter("queries", s.queries as f64)
        .counter("sat", s.sat as f64)
        .counter("unsat", s.unsat as f64)
        .counter("unknown", s.unknown as f64)
        .counter("cache_hits", s.cache_hits as f64)
        .counter("shared_hits", s.shared_hits as f64)
        .counter("pool_hits", s.pool_hits as f64)
        .counter("subsumption_hits", s.subsumption_hits as f64)
        .counter("core_solves", s.core_solves as f64)
        .counter("sliced_queries", s.sliced_queries as f64)
        .counter("components_solved", s.components_solved as f64)
        .counter("cache_evictions", s.cache_evictions as f64)
        .counter("cache_entries", s.cache_entries as f64)
        .counter("total_time_ns", s.total_time.as_nanos() as f64)
        .counter("max_query_time_ns", s.max_query_time.as_nanos() as f64)
}

fn solver_by_kind_section(s: &SolverStats) -> MetricSection {
    let mut section = MetricSection::new("solver_by_kind");
    for kind in QueryKind::ALL {
        let k = &s.by_kind[kind.index()];
        let name = kind.name();
        section = section
            .counter(&format!("{name}.queries"), k.queries as f64)
            .counter(&format!("{name}.sat"), k.sat as f64)
            .counter(&format!("{name}.unsat"), k.unsat as f64)
            .counter(&format!("{name}.unknown"), k.unknown as f64)
            .counter(&format!("{name}.time_ns"), k.time.as_nanos() as f64);
    }
    section
}

fn shared_cache_section(s: &SharedCacheStats) -> MetricSection {
    MetricSection::new("shared_cache")
        .counter("hits", s.hits as f64)
        .counter("subsumption_hits", s.subsumption_hits as f64)
        .counter("inserts", s.inserts as f64)
        .counter("entries", s.entries as f64)
        .counter("evictions", s.evictions as f64)
}

fn dbt_section(s: &DbtStats) -> MetricSection {
    MetricSection::new("dbt")
        .counter("translations", s.translations as f64)
        .counter("hits", s.hits as f64)
        .counter("instrs_translated", s.instrs_translated as f64)
        .counter("invalidations", s.invalidations as f64)
        .counter("chains_formed", s.chains_formed as f64)
        .counter("chain_entries", s.chain_entries as f64)
        .counter("chain_exits", s.chain_exits as f64)
        .counter("unlinks", s.unlinks as f64)
        .counter("l1_hits", s.l1_hits as f64)
        .counter("translation_time_ns", s.translation_time.as_nanos() as f64)
}

fn parallel_section(r: &ParallelReport) -> MetricSection {
    MetricSection::new("parallel")
        .counter("workers", r.workers.len() as f64)
        .counter("total_paths", r.total_paths as f64)
        .counter("bugs", r.bugs.len() as f64)
        .counter("covered_blocks", r.covered_blocks.len() as f64)
        .counter("steals", r.steals as f64)
        .counter("reclaims", r.reclaims as f64)
        .counter("exports", r.exports as f64)
        .counter("queue_leftover", r.queue_leftover as f64)
        .counter("evicted_leftover", r.evicted_leftover as f64)
        .counter("queue_bytes_peak", r.queue_bytes_peak as f64)
        .counter("wall_time_ns", r.wall_time.as_nanos() as f64)
}

fn hierarchy_section(h: &HierarchyStats) -> MetricSection {
    let mut section = MetricSection::new("hierarchy")
        .counter("i1.hits", h.i1.hits as f64)
        .counter("i1.misses", h.i1.misses as f64)
        .counter("d1.hits", h.d1.hits as f64)
        .counter("d1.misses", h.d1.misses as f64);
    for (i, level) in h.lower.iter().enumerate() {
        let name = format!("l{}", i + 2);
        section = section
            .counter(&format!("{name}.hits"), level.hits as f64)
            .counter(&format!("{name}.misses"), level.misses as f64);
    }
    section
        .counter("tlb_misses", h.tlb_misses as f64)
        .counter("page_faults", h.page_faults as f64)
        .counter("instructions", h.instructions as f64)
        .counter("data_accesses", h.data_accesses as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::time::Duration;

    fn empty_report() -> ParallelReport {
        ParallelReport {
            workers: Vec::new(),
            stats: EngineStats::default(),
            bugs: Vec::new(),
            covered_blocks: HashSet::new(),
            total_paths: 0,
            path_digests: Vec::new(),
            steals: 0,
            reclaims: 0,
            exports: 0,
            queue_leftover: 0,
            evicted_leftover: 0,
            queue_bytes_peak: 0,
            shared_cache: SharedCacheStats::default(),
            dbt: DbtStats::default(),
            solver: SolverStats::default(),
            wall_time: Duration::from_millis(5),
        }
    }

    #[test]
    fn report_has_all_sections() {
        let mut r = empty_report();
        r.stats.forks = 3;
        r.solver.queries = 7;
        r.total_paths = 4;
        let report = build_run_report(&r, None);
        assert_eq!(report.wall_ns, 5_000_000);
        assert_eq!(report.section("engine").unwrap().get("forks"), Some(3.0));
        assert_eq!(report.section("solver").unwrap().get("queries"), Some(7.0));
        assert_eq!(report.section("parallel").unwrap().get("total_paths"), Some(4.0));
        assert!(report.section("solver_by_kind").unwrap().get("feasibility.queries").is_some());
        assert!(report.section("shared_cache").is_some());
        assert!(report.section("dbt").is_some());
        assert!(report.section("hierarchy").is_none());
    }

    #[test]
    fn hierarchy_section_is_optional_and_per_level() {
        let r = empty_report();
        let mut h = HierarchyStats::default();
        h.i1.hits = 10;
        h.lower.push(s2e_cache::CacheStats { hits: 2, misses: 1 });
        let report = build_run_report(&r, Some(&h));
        let section = report.section("hierarchy").unwrap();
        assert_eq!(section.get("i1.hits"), Some(10.0));
        assert_eq!(section.get("l2.misses"), Some(1.0));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = empty_report();
        r.stats.blocks_executed = 11;
        let report = build_run_report(&r, None);
        let text = report.render();
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, report);
    }
}
