//! The symbolic-capable executor.
//!
//! Executes one translation block on one execution state, weaving between
//! the concrete fast path (all operands concrete: direct evaluation, no
//! expression nodes built) and the embedded symbolic executor (any operand
//! symbolic: build expression DAGs, consult the solver at control-flow
//! decisions). This mirrors S2E's QEMU/KLEE split (§5): "most instructions
//! run natively ... even in the symbolic domain, because most instructions
//! do not operate on symbolic state".
//!
//! All consistency-model mechanics live here: boundary conversions at
//! syscall entry/exit, soft vs hard concretization constraints, the LC
//! abort rule for environment branches on symbolic data, and RC-CC's
//! solver-free forking.

use crate::config::ConsistencyModel;
use crate::l1::ExecCache;
use crate::plugin::{BugKind, ExecCtx, MemAccess, Plugin, PortAccess};
use crate::state::{EnvFrame, ExecState, TerminationReason};
use crate::threaded::{MicroCtx, ThreadedRun};
use s2e_dbt::{IndirectClass, IndirectPredictions, TranslationBlock};
use s2e_expr::{ExprRef, Width};
use s2e_obs::{Phase, Recorder};
use s2e_vm::cpu::FaultKind;
use s2e_vm::interp::{alu_binop, branch_taken, mem_width};
use s2e_vm::isa::{irq, reg, vector, Instr, Opcode, S2Op, INSTR_SIZE};
use s2e_vm::value::Value;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// A fork requested by a symbolic branch.
#[derive(Clone, Debug)]
pub struct ForkRequest {
    /// Branch condition (true = branch taken).
    pub cond: ExprRef,
    /// PC for the taken side.
    pub then_pc: u32,
    /// PC for the fall-through side.
    pub else_pc: u32,
    /// Whether the children receive `cond` / `¬cond` as constraints
    /// (false only under RC-CC, which ignores path constraints).
    pub constrained: bool,
}

/// Result of executing one block.
#[derive(Clone, Debug)]
pub enum BlockOutcome {
    /// The state continues at its updated PC.
    Continue,
    /// Execution must fork.
    Fork(ForkRequest),
    /// The path ended.
    Terminated(TerminationReason),
}

/// Everything the executor needs besides the state and the plugins.
pub struct ExecEnv<'a> {
    /// Plugin services bundle.
    pub ctx: ExecCtx<'a>,
    /// The L1-fronted translation-block cache (DESIGN.md §14).
    pub cache: &'a mut ExecCache,
    /// Instructions marked by plugins at translation time.
    pub marks: &'a mut HashSet<u32>,
    /// Block start PCs already executed at least once (coverage; used by
    /// RC-CC edge forcing).
    pub seen_blocks: &'a HashSet<u32>,
    /// Observability recorder (disabled by default; DESIGN.md §11).
    pub obs: &'a mut Recorder,
    /// Live-telemetry shard for per-event latency samples
    /// (DESIGN.md §16); `None` costs one branch per translation miss.
    pub telemetry: Option<&'a s2e_obs::TelemetryHandle>,
    /// Maximum blocks one [`execute_block`] call may run (chain length
    /// cap). The engine passes [`MAX_CHAIN`]; replay passes the exact
    /// remaining block count so rehydration stops on the recorded
    /// boundary.
    pub block_budget: u64,
    /// Block starts entered via chain hops this call (the engine folds
    /// them into coverage, which normally only sees step entry PCs).
    pub hops: &'a mut Vec<u32>,
    /// Static indirect-target predictions, when the refinement loop is
    /// closed (`None` disables retirement classification entirely —
    /// also during rehydration replay, which must not re-report
    /// discoveries the original run already fed back).
    pub predictions: Option<&'a IndirectPredictions>,
    /// Unpredicted `(site pc, target)` retirements collected this call;
    /// the engine drains them into incremental re-analysis.
    pub discoveries: &'a mut Vec<(u32, u32)>,
}

/// Chain-length cap per engine step: bounds scheduler latency (fork
/// requests, strategy rotation, interrupt windows are only serviced
/// between calls) without measurably capping the chaining win.
pub const MAX_CHAIN: u64 = 64;

enum Flow {
    Next,
    Jump(u32),
    Fork(ForkRequest),
    Stop(TerminationReason),
}

/// Executes one translation block (plus pending-interrupt dispatch).
///
/// Interrupts are block-granular: devices tick once per block and at most
/// one pending IRQ is dispatched per block boundary, so back-to-back timer
/// expiries within a single block coalesce (the reference interpreter,
/// which ticks per instruction, can deliver more). This is the standard
/// virtualization trade-off the paper's own virtual-time design makes;
/// guests must not rely on cycle-exact interrupt counts.
pub fn execute_block(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
) -> BlockOutcome {
    if let Some(reason) = pending_termination(state) {
        return BlockOutcome::Terminated(reason);
    }

    if state.machine.cpu.interrupts_enabled {
        dispatch_interrupt(state, env);
    }

    // Open the (chain) span. It is entered as Concrete and reclassified
    // at exit if any instruction dispatched symbolically; solver time
    // inside it is carved out via the solver's own per-query clock, and
    // translation time via the cache's per-miss clock. Calls run
    // back-to-back, so the open reuses the timestamp the previous close
    // read — one clock read per call when observing, zero otherwise.
    let observing = env.obs.is_enabled();
    let solve_before = if observing {
        env.ctx.solver.stats().total_time
    } else {
        Duration::ZERO
    };
    env.obs.enter_adjacent(Phase::Concrete);

    let wants_all = plugins.iter().any(|p| p.wants_all_instructions());
    let wants_mem = plugins.iter().any(|p| p.wants_memory_events());
    // RC-CC's solver-free edge forcing reads the engine-global coverage
    // set at every concrete branch, which grows between steps — merging
    // steps would change forced-edge decisions, so RC-CC always runs one
    // block per call.
    let chain_ok =
        env.ctx.config.chain_blocks && env.ctx.config.consistency != ConsistencyModel::RcCc;

    let mut any_symbolic = false;
    let mut blocks_run: u64 = 0;
    let outcome = loop {
        let pc = state.machine.cpu.pc;
        let (outcome, symbolic, direct_slot) =
            run_block_at(state, env, plugins, pc, wants_all, wants_mem);
        any_symbolic |= symbolic;
        blocks_run += 1;
        if !matches!(outcome, BlockOutcome::Continue) {
            break outcome;
        }
        // Chain hop: keep running in this call only along an observed
        // direct edge, within budget, and never past a deliverable
        // interrupt (the next call's entry dispatch must see exactly the
        // windows the unchained arm sees).
        let Some(slot) = direct_slot else {
            break outcome;
        };
        if !chain_ok || blocks_run >= env.block_budget {
            break outcome;
        }
        if state.machine.cpu.interrupts_enabled && state.machine.cpu.pending_irqs != 0 {
            break outcome;
        }
        env.cache.note_chain(pc, state.machine.cpu.pc, slot);
        env.cache.count_chain_entry();
        env.hops.push(state.machine.cpu.pc);
    };
    if blocks_run > 1 {
        env.cache.count_chain_exit();
    }
    close_block_span(env, observing, solve_before, any_symbolic);
    outcome
}

/// Runs the single block at `pc` on `state`: translation, plugin block
/// events, the threaded fast path when eligible, the legacy
/// per-instruction loop otherwise, then per-block stats/vtime/device
/// work. Returns the outcome, whether any instruction dispatched
/// symbolically, and — when control left along a direct edge — the chain
/// slot for it (0 = taken branch/jump/call, 1 = fall-through).
fn run_block_at(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    pc: u32,
    wants_all: bool,
    wants_mem: bool,
) -> (BlockOutcome, bool, Option<usize>) {
    state.blocks_on_path += 1;

    // Self-modifying / decrypting code support: concretize any symbolic
    // code bytes in the upcoming block window before translation.
    concretize_code_window(state, env, pc);

    let tb = translate(state, env, plugins, pc);
    if tb.instrs.is_empty() {
        state.machine.cpu.fault = Some(FaultKind::InvalidOpcode { pc });
        return (
            BlockOutcome::Terminated(TerminationReason::Fault(FaultKind::InvalidOpcode { pc })),
            false,
            None,
        );
    }

    for p in plugins.iter_mut() {
        p.on_block_start(state, &mut env.ctx, pc);
    }
    env.ctx.stats.blocks_executed += 1;

    // Lean dispatch: the static pre-pass proved no instruction in this
    // block can observe a symbolic register, so the per-instruction
    // operand scan is discharged at translation time. The conservative
    // default annotation never claims this.
    let lean = tb.annotation.concrete_only;
    if lean {
        env.ctx.stats.concrete_only_blocks += 1;
    }

    // Per-block mark bitmap: one set probe per instruction only when any
    // marks exist at all; unmarked blocks (the common case) pay zero
    // per-instruction lookups. MAX_BLOCK_INSTRS is 64, so u64 covers
    // every index. Marks only grow during translation, never inside a
    // block's execution, so the bitmap cannot go stale mid-block.
    let mark_bits: u64 = if env.marks.is_empty() {
        0
    } else {
        let mut bits = 0u64;
        for idx in 0..tb.instrs.len() {
            if env.marks.contains(&tb.pc_of(idx)) {
                bits |= 1 << idx;
            }
        }
        bits
    };

    let mut concrete_count: u64 = 0;
    let mut symbolic_count: u64 = 0;
    let mut masked_count: u64 = 0;
    let mut start_idx = 0usize;
    let mut outcome = BlockOutcome::Continue;
    let mut direct_slot: Option<usize> = None;
    let mut done = false;

    // Direct-threaded fast path (DESIGN.md §14): a concrete-only block
    // with no per-instruction observers and whole-block fuel headroom
    // runs through the micro-op table — no operand scan, no dispatch
    // match, one fuel check for the block. Any micro-op that cannot
    // reproduce the legacy path exactly bails *before* mutating, and the
    // legacy loop resumes at that exact instruction.
    if lean
        && env.ctx.config.threaded_dispatch
        && env.ctx.config.consistency != ConsistencyModel::RcCc
        && mark_bits == 0
        && !wants_all
        && state.instrs_retired.saturating_add(tb.instrs.len() as u64)
            <= env.ctx.config.max_instrs_per_path
    {
        let threaded = env.cache.threaded_for(pc, &tb);
        // Memory micro-ops skip `on_memory_access` dispatch entirely, so
        // they are only exact when no plugin consumes memory events.
        if !(threaded.has_mem_ops && wants_mem) {
            let cx = MicroCtx {
                builder: env.ctx.builder,
                filter: env.cache.filter(),
            };
            match crate::threaded::run(&threaded, state, &cx) {
                ThreadedRun::Completed { executed } => {
                    state.instrs_retired += executed;
                    concrete_count += executed;
                    direct_slot = Some(if state.machine.cpu.pc == tb.end() { 1 } else { 0 });
                    done = true;
                }
                ThreadedRun::Bail { executed, resume_idx } => {
                    state.instrs_retired += executed;
                    concrete_count += executed;
                    start_idx = resume_idx;
                }
            }
        }
    }

    if !done {
        for (idx, instr) in tb.instrs.iter().enumerate().skip(start_idx) {
            let ipc = tb.pc_of(idx);
            state.machine.cpu.pc = ipc;

            if state.instrs_retired >= env.ctx.config.max_instrs_per_path {
                outcome = BlockOutcome::Terminated(TerminationReason::FuelExhausted);
                break;
            }
            state.instrs_retired += 1;

            let marked = mark_bits >> idx & 1 == 1;
            for p in plugins.iter_mut() {
                if marked || p.wants_all_instructions() {
                    p.on_instr_execution(state, &mut env.ctx, ipc, instr);
                }
            }
            if let Some(reason) = state.kill_requested.take() {
                outcome = BlockOutcome::Terminated(reason);
                break;
            }

            let symbolic_instr = if lean {
                debug_assert!(
                    !touches_symbolic(state, instr),
                    "concrete-only annotation violated at {ipc:#x}"
                );
                false
            } else if tb.annotation.concrete_mask >> idx & 1 == 1 {
                // Per-instruction refinement: the block as a whole is
                // not concrete-only, but this instruction provably never
                // observes a symbolic register.
                debug_assert!(
                    !touches_symbolic(state, instr),
                    "concrete-mask annotation violated at {ipc:#x}"
                );
                masked_count += 1;
                false
            } else {
                touches_symbolic(state, instr)
            };
            if symbolic_instr {
                symbolic_count += 1;
            } else {
                concrete_count += 1;
            }

            match execute_instr(state, env, plugins, instr, ipc, idx, &tb) {
                Flow::Next => {}
                Flow::Jump(target) => {
                    state.machine.cpu.pc = target;
                    outcome = BlockOutcome::Continue;
                    direct_slot = direct_edge_slot(instr, symbolic_instr, target, &tb);
                    break;
                }
                Flow::Fork(f) => {
                    outcome = BlockOutcome::Fork(f);
                    break;
                }
                Flow::Stop(reason) => {
                    outcome = BlockOutcome::Terminated(reason);
                    break;
                }
            }

            // Fall-through off the end of the block.
            if idx + 1 == tb.instrs.len() {
                state.machine.cpu.pc = tb.end();
                direct_slot = Some(1);
            }
        }
    }

    env.ctx.stats.instrs_concrete += concrete_count;
    env.ctx.stats.instrs_symbolic += symbolic_count;
    if lean {
        env.ctx.stats.lean_instrs += concrete_count;
    } else {
        // Instructions whose operand scan the per-instruction mask
        // discharged count as lean too: the check was statically paid.
        env.ctx.stats.lean_instrs += masked_count;
    }

    // Per-state virtual time, slowed down in symbolic mode (§5). The
    // fractional remainder carries across blocks so sparse symbolic
    // instructions are still slowed.
    let slow = env.ctx.config.symbolic_time_slowdown.max(1);
    let pool = state.sym_time_accum + symbolic_count;
    state.sym_time_accum = pool % slow;
    let cycles = concrete_count + pool / slow;
    state.machine.vtime += cycles;
    for line in state.machine.devices.tick(cycles) {
        state.machine.cpu.raise_irq(line);
    }

    if let Some(reason) = state.kill_requested.take() {
        outcome = BlockOutcome::Terminated(reason);
    } else if let BlockOutcome::Continue = outcome {
        if let Some(reason) = pending_termination(state) {
            outcome = BlockOutcome::Terminated(reason);
        }
    }
    (outcome, symbolic_count > 0, direct_slot)
}

/// Classifies a `Flow::Jump` as a chainable direct edge. Only statically
/// determined transfers qualify: `Jmp`/`Call`, and conditional branches
/// whose operands were concrete (a symbolically resolved branch consulted
/// the solver; indirect jumps and env-crossing transfers never chain).
fn direct_edge_slot(
    instr: &Instr,
    symbolic_instr: bool,
    target: u32,
    tb: &TranslationBlock,
) -> Option<usize> {
    let direct = matches!(instr.op, Opcode::Jmp | Opcode::Call)
        || (instr.op.is_conditional_branch() && !symbolic_instr);
    if !direct {
        return None;
    }
    Some(if target == tb.end() { 1 } else { 0 })
}

/// Closes the block span opened in [`execute_block`]: attributes the
/// solver time the block accrued (delta of the solver's cumulative
/// per-query clock) to [`Phase::Solve`], then classifies the remainder
/// as concrete or symbolic execution.
fn close_block_span(env: &mut ExecEnv, observing: bool, solve_before: Duration, symbolic: bool) {
    if !observing {
        return;
    }
    let solved = env.ctx.solver.stats().total_time.saturating_sub(solve_before);
    if solved > Duration::ZERO {
        env.obs.add_external(Phase::Solve, solved);
    }
    env.obs.exit_as(if symbolic { Phase::Symbolic } else { Phase::Concrete });
}

fn pending_termination(state: &ExecState) -> Option<TerminationReason> {
    if let Some(code) = state.machine.cpu.halted {
        return Some(TerminationReason::Halted(code));
    }
    if let Some(f) = &state.machine.cpu.fault {
        return Some(TerminationReason::Fault(f.clone()));
    }
    state.status.clone()
}

fn dispatch_interrupt(state: &mut ExecState, env: &mut ExecEnv) {
    let Some(line) = state.machine.cpu.take_irq() else {
        return;
    };
    let vec_addr = match line {
        irq::TIMER => vector::TIMER,
        irq::NIC => vector::NIC,
        _ => return,
    };
    let handler = state.machine.mem.read_u32_concrete(vec_addr).unwrap_or(0);
    if handler == 0 {
        return;
    }
    let Some(sp) = state.machine.cpu.reg(reg::SP).as_concrete() else {
        return; // symbolic SP: drop the interrupt rather than corrupt state
    };
    let sp = sp.wrapping_sub(4);
    if state.machine.mem.write_u32(sp, state.machine.cpu.pc).is_err() {
        return;
    }
    state.machine.cpu.set_reg(reg::SP, Value::Concrete(sp));
    state.machine.cpu.pc = handler;
    state.machine.cpu.interrupts_enabled = false;
    state.env_stack.push(EnvFrame::Irq { line });
    env.ctx.stats.interrupts_delivered += 1;
}

fn concretize_code_window(state: &mut ExecState, env: &mut ExecEnv, pc: u32) {
    let window = s2e_dbt::MAX_BLOCK_INSTRS as u32 * INSTR_SIZE;
    if !state.machine.mem.range_has_symbolic(pc, window) {
        return;
    }
    for i in 0..window {
        let addr = pc.wrapping_add(i);
        if let Ok(Value::Symbolic(e)) = state.machine.mem.read_u8(addr) {
            let val = match state.replay_concretize() {
                Some(v) => v,
                None => {
                    // A solver failure must terminate the path like every
                    // other concretization site — fabricating a value would
                    // corrupt both the decoded code and the constraint set.
                    let Some((val, _)) = env.ctx.solver.concretize_in(&state.partition, &e)
                    else {
                        state.kill_requested = Some(TerminationReason::SolverTimeout);
                        return;
                    };
                    state.record_concretize(val);
                    val
                }
            };
            let val = val as u32;
            let c = env.ctx.builder.constant(val as u64, Width::W8);
            let eq = env.ctx.builder.eq(e, c);
            state.add_soft_constraint(eq);
            env.ctx.stats.concretizations += 1;
            let _ = state.machine.mem.write_u8(addr, Value::Concrete(val));
        }
    }
    env.cache.invalidate_write(pc, window);
}

fn translate(
    state: &ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    pc: u32,
) -> Arc<TranslationBlock> {
    let mut requests = crate::plugin::MarkRequests::default();
    // Decode time comes from the cache's own per-miss clock so the
    // (overwhelmingly hit) lookup is never wrapped in a timed span.
    let (tb, decoded) = env.cache.translate_timed(&state.machine.mem, pc, &mut |ipc, instr| {
        for p in plugins.iter_mut() {
            p.on_instr_translation(ipc, instr, &mut requests);
        }
    });
    if decoded > Duration::ZERO {
        env.obs.add_external(Phase::Translate, decoded);
        if let Some(t) = env.telemetry {
            t.observe_duration(s2e_obs::Hist::HistTranslate, decoded);
        }
    }
    env.marks.extend(requests.take());
    tb
}

/// True if any operand the instruction reads is symbolic (registers only;
/// memory symbolically is discovered during the access itself).
///
/// Public so the static pre-pass soundness tests can cross-check the
/// `s2e_analysis::defuse::observed` read-set model against the engine's
/// actual dispatch decision; the read-sets must stay in exact agreement
/// or the lean dispatch path becomes unsound.
pub fn touches_symbolic(state: &ExecState, i: &Instr) -> bool {
    let cpu = &state.machine.cpu;
    let r = |x: u8| cpu.reg(x).is_symbolic();
    match i.op {
        Opcode::Nop | Opcode::MovI | Opcode::Jmp | Opcode::Call | Opcode::Halt => false,
        Opcode::Mov | Opcode::Not => r(i.rs1),
        Opcode::JmpR | Opcode::CallR => r(i.rs1),
        Opcode::Ret => r(reg::LR),
        Opcode::Push => r(i.rs1) || r(reg::SP),
        Opcode::Pop | Opcode::Iret => r(reg::SP),
        Opcode::Syscall => r(reg::SP),
        Opcode::In => r(i.rs1),
        Opcode::Out => r(i.rs1) || r(i.rs2),
        Opcode::Ld8 | Opcode::Ld16 | Opcode::Ld32 => r(i.rs1),
        Opcode::St8 | Opcode::St16 | Opcode::St32 => r(i.rs1) || r(i.rs2),
        Opcode::AddI
        | Opcode::SubI
        | Opcode::MulI
        | Opcode::AndI
        | Opcode::OrI
        | Opcode::XorI
        | Opcode::ShlI
        | Opcode::ShrI
        | Opcode::SarI => r(i.rs1),
        Opcode::Beq | Opcode::Bne | Opcode::Bltu | Opcode::Bgeu | Opcode::Blts | Opcode::Bges => {
            r(i.rs1) || r(i.rs2)
        }
        Opcode::Cli | Opcode::Sti | Opcode::S2eOp => false,
        _ => r(i.rs1) || r(i.rs2),
    }
}

fn reg_expr(state: &ExecState, env: &ExecEnv, r: u8) -> ExprRef {
    state.machine.cpu.reg(r).to_expr(env.ctx.builder, Width::W32)
}

/// Concretizes `e` under the current constraints. Adds `e == value` as a
/// soft or hard constraint depending on `soft`. Returns `None` when the
/// solver fails (caller terminates the path).
fn concretize(
    state: &mut ExecState,
    env: &mut ExecEnv,
    e: &ExprRef,
    soft: bool,
) -> Option<u32> {
    if let Some(v) = e.as_const() {
        return Some(v as u32);
    }
    let v = match state.replay_concretize() {
        Some(v) => v,
        None => {
            let (v, _model) = env.ctx.solver.concretize_in(&state.partition, e)?;
            state.record_concretize(v);
            v
        }
    };
    // Boolean conditions pin to the condition or its negation directly —
    // the same expression a one-sided feasibility probe adds — so branch
    // resolutions that statically skip the probes build constraint sets
    // identical to the probing path's.
    let eq = if e.width() == Width::BOOL {
        if v == 1 {
            e.clone()
        } else {
            env.ctx.builder.bool_not(e.clone())
        }
    } else {
        let c = env.ctx.builder.constant(v, e.width());
        env.ctx.builder.eq(e.clone(), c)
    };
    if soft {
        state.add_soft_constraint(eq);
    } else {
        state.add_constraint(eq);
    }
    env.ctx.stats.concretizations += 1;
    Some(v as u32)
}

/// Whether concretizations at the current location are soft (retractable
/// under SC-SE-style re-exploration) or hard.
fn concretization_is_soft(model: ConsistencyModel) -> bool {
    model != ConsistencyModel::ScUe
}

/// Policy for a symbolic branch condition encountered in *environment*
/// code.
enum EnvBranchPolicy {
    Concretize { soft: bool },
    Abort,
    ForkNormally,
}

fn env_branch_policy(model: ConsistencyModel) -> EnvBranchPolicy {
    match model {
        ConsistencyModel::ScCe => EnvBranchPolicy::Concretize { soft: false },
        ConsistencyModel::ScUe => EnvBranchPolicy::Concretize { soft: false },
        ConsistencyModel::ScSe => EnvBranchPolicy::ForkNormally,
        ConsistencyModel::Lc => EnvBranchPolicy::Abort,
        ConsistencyModel::RcOc | ConsistencyModel::RcCc => {
            EnvBranchPolicy::Concretize { soft: true }
        }
    }
}

fn execute_instr(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    i: &Instr,
    pc: u32,
    idx: usize,
    tb: &TranslationBlock,
) -> Flow {
    let next_pc = pc.wrapping_add(INSTR_SIZE);
    let ann = &tb.annotation;
    match i.op {
        Opcode::Nop => Flow::Next,
        Opcode::MovI => {
            state.machine.cpu.set_reg(i.rd, Value::Concrete(i.imm));
            Flow::Next
        }
        Opcode::Mov => {
            let v = state.machine.cpu.reg(i.rs1).clone();
            state.machine.cpu.set_reg(i.rd, v);
            Flow::Next
        }
        Opcode::Not => {
            match state.machine.cpu.reg(i.rs1).as_concrete() {
                Some(v) => state.machine.cpu.set_reg(i.rd, Value::Concrete(!v)),
                None => {
                    let e = reg_expr(state, env, i.rs1);
                    let r = env.ctx.builder.not(e);
                    state.machine.cpu.set_reg(i.rd, Value::from_expr(r));
                }
            }
            Flow::Next
        }
        op if alu_binop(op).is_some() => {
            let dead = idx < 64 && ann.dead_writes >> idx & 1 == 1;
            exec_alu(state, env, i, dead)
        }
        Opcode::Ld8 | Opcode::Ld16 | Opcode::Ld32 => exec_load(state, env, plugins, i, pc),
        Opcode::St8 | Opcode::St16 | Opcode::St32 => exec_store(state, env, plugins, i, pc),
        Opcode::Push => exec_push(state, env, plugins, i, pc),
        Opcode::Pop => exec_pop(state, env, plugins, i, pc),
        Opcode::Jmp => Flow::Jump(i.imm),
        Opcode::Call => {
            state.machine.cpu.set_reg(reg::LR, Value::Concrete(next_pc));
            Flow::Jump(i.imm)
        }
        Opcode::JmpR => exec_indirect(state, env, i.rs1, pc, None),
        Opcode::CallR => exec_indirect(state, env, i.rs1, pc, Some(next_pc)),
        Opcode::Ret => exec_indirect(state, env, reg::LR, pc, None),
        op if op.is_conditional_branch() => {
            exec_branch(state, env, i, pc, next_pc, ann.fork_free)
        }
        Opcode::Syscall => exec_syscall(state, env, plugins, i, pc, next_pc),
        Opcode::Iret => exec_iret(state, env, plugins, pc),
        Opcode::Cli => {
            state.machine.cpu.interrupts_enabled = false;
            Flow::Next
        }
        Opcode::Sti => {
            state.machine.cpu.interrupts_enabled = true;
            Flow::Next
        }
        Opcode::In => exec_in(state, env, plugins, i, pc),
        Opcode::Out => exec_out(state, env, plugins, i, pc),
        Opcode::Halt => Flow::Stop(TerminationReason::Halted(i.imm)),
        Opcode::S2eOp => exec_s2e_op(state, env, plugins, i, pc, next_pc),
        other => {
            let _ = other;
            state.machine.cpu.fault = Some(FaultKind::InvalidOpcode { pc });
            Flow::Stop(TerminationReason::Fault(FaultKind::InvalidOpcode { pc }))
        }
    }
}

pub(crate) fn uses_imm(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::AddI
            | Opcode::SubI
            | Opcode::MulI
            | Opcode::AndI
            | Opcode::OrI
            | Opcode::XorI
            | Opcode::ShlI
            | Opcode::ShrI
            | Opcode::SarI
    )
}

fn exec_alu(state: &mut ExecState, env: &mut ExecEnv, i: &Instr, dead: bool) -> Flow {
    let bop = alu_binop(i.op).expect("checked by caller");
    let a = state.machine.cpu.reg(i.rs1).clone();
    let b = if uses_imm(i.op) {
        Value::Concrete(i.imm)
    } else {
        state.machine.cpu.reg(i.rs2).clone()
    };
    let result = match (a.as_concrete(), b.as_concrete()) {
        (Some(x), Some(y)) => Value::Concrete(s2e_expr::fold::apply_binop(
            bop,
            x as u64,
            y as u64,
            Width::W32,
        ) as u32),
        // Liveness proved this register is overwritten before any read
        // (along every path, including the engine's own operand scans),
        // so the symbolic expression never needs to exist. The placeholder
        // value is unobservable by construction.
        _ if dead => {
            env.ctx.stats.dead_writes_skipped += 1;
            Value::Concrete(0)
        }
        _ => {
            let ea = a.to_expr(env.ctx.builder, Width::W32);
            let eb = b.to_expr(env.ctx.builder, Width::W32);
            Value::from_expr(env.ctx.builder.binop(bop, ea, eb))
        }
    };
    state.machine.cpu.set_reg(i.rd, result);
    Flow::Next
}

fn fire_mem_access(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    access: MemAccess,
) {
    for p in plugins.iter_mut() {
        p.on_memory_access(state, &mut env.ctx, &access);
    }
}

fn null_fault(state: &mut ExecState, addr: u32, pc: u32) -> Flow {
    let f = FaultKind::NullAccess { addr, pc };
    state.machine.cpu.fault = Some(f.clone());
    Flow::Stop(TerminationReason::Fault(f))
}

fn exec_load(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    i: &Instr,
    pc: u32,
) -> Flow {
    let width = mem_width(i.op);
    let base = state.machine.cpu.reg(i.rs1).clone();
    match base.as_concrete() {
        Some(b) => {
            let addr = b.wrapping_add(i.imm);
            match state.machine.mem.read(addr, width, env.ctx.builder) {
                Ok(v) => {
                    let symbolic_value = v.is_symbolic();
                    let value = v.as_concrete();
                    state.machine.cpu.set_reg(i.rd, v);
                    fire_mem_access(
                        state,
                        env,
                        plugins,
                        MemAccess {
                            pc,
                            addr,
                            width,
                            is_write: false,
                            value,
                            symbolic_addr: false,
                            symbolic_value,
                        },
                    );
                    Flow::Next
                }
                Err(_) => null_fault(state, addr, pc),
            }
        }
        None => exec_symbolic_load(state, env, plugins, i, pc, width),
    }
}

/// When a symbolic address may point both into the null guard page and
/// into valid memory, fork on that predicate and re-execute the access on
/// each side (then/else both target the access PC). The null side then
/// concretizes inside the guard page and faults — this is how a single
/// unchecked `ite(alloc_ok, ptr, 0)` dereference yields *both* the crash
/// report and a surviving valid path, instead of the solver silently
/// picking one.
///
/// Re-execution means the access instruction is retired (and observed by
/// `wants_all_instructions` plugins) once more on each side; per-path
/// instruction counts include that extra occurrence.
fn fork_on_null(
    state: &mut ExecState,
    env: &mut ExecEnv,
    addr_e: &ExprRef,
    pc: u32,
) -> Option<Flow> {
    if !forking_allowed(state, env, pc) {
        return None;
    }
    let b: &s2e_expr::ExprBuilder = env.ctx.builder;
    let is_null = b.ult(addr_e.clone(), b.constant(0x1000, Width::W32));
    // The two probes collapse to one journaled bit: "did this access fork
    // on null". A solver timeout here means "no fork" (the access proceeds
    // and concretizes), not path death, so the *effective* decision is
    // what replay must reproduce — not the raw probe outcomes.
    let forks = match state.replay_feasible() {
        Some(v) => v,
        None => {
            let v = (|| {
                if !env.ctx.solver.may_be_true_in(&state.partition, &is_null)? {
                    return Some(false);
                }
                let not_null = b.bool_not(is_null.clone());
                env.ctx.solver.may_be_true_in(&state.partition, &not_null)
            })()
            .unwrap_or(false);
            state.record_feasible(v);
            v
        }
    };
    if !forks {
        return None;
    }
    Some(Flow::Fork(ForkRequest {
        cond: is_null,
        then_pc: pc,
        else_pc: pc,
        constrained: true,
    }))
}

/// Symbolic-pointer load: restrict the pointer to a solver page around a
/// concretized base and build an if-then-else chain over the page's
/// contents — the paper's "split memory into small pages of configurable
/// size so the constraint solver need not reason about large areas of
/// symbolic memory" (§5).
fn exec_symbolic_load(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    i: &Instr,
    pc: u32,
    width: u32,
) -> Flow {
    env.ctx.stats.symbolic_ptr_accesses += 1;
    let base_e = reg_expr(state, env, i.rs1);
    let addr_e = env
        .ctx
        .builder
        .add(base_e, env.ctx.builder.constant(i.imm as u64, Width::W32));
    if let Some(fork) = fork_on_null(state, env, &addr_e, pc) {
        return fork;
    }
    // Pick a concrete base consistent with the constraints, but do NOT pin
    // the pointer to it — only to its page.
    let base_c = match state.replay_concretize() {
        Some(v) => v,
        None => {
            let Some((v, _)) = env.ctx.solver.concretize_in(&state.partition, &addr_e) else {
                return Flow::Stop(TerminationReason::SolverTimeout);
            };
            state.record_concretize(v);
            v
        }
    };
    let base_c = base_c as u32;
    let psz = env.ctx.config.symbolic_page_size.max(8);
    let page = base_c & !(psz - 1);
    if page < 0x1000 {
        return null_fault(state, base_c, pc);
    }
    // Copy the builder reference out of the context so the closure below
    // does not hold a borrow of `env`.
    let b: &s2e_expr::ExprBuilder = env.ctx.builder;
    let lo = b.ule(b.constant(page as u64, Width::W32), addr_e.clone());
    state.add_soft_constraint(lo);
    // The upper bound wraps to 0 for a page at the top of the address
    // space; the lo constraint alone is exact there.
    let page_end = page as u64 + psz as u64;
    if page_end <= u32::MAX as u64 {
        let hi = b.ult(addr_e.clone(), b.constant(page_end, Width::W32));
        state.add_soft_constraint(hi);
    }
    env.ctx.stats.concretizations += 1;

    // Default: the concretized location's value; then ITE over the rest of
    // the page.
    let read_at = |state: &ExecState, a: u32| -> Option<ExprRef> {
        state
            .machine
            .mem
            .read(a, width, b)
            .ok()
            .map(|v| v.to_expr(b, Width::W32))
    };
    let Some(mut result) = read_at(state, base_c) else {
        return null_fault(state, base_c, pc);
    };
    for off in 0..psz {
        let a = page + off;
        if a == base_c {
            continue;
        }
        let Some(v) = read_at(state, a) else { continue };
        let cond = b.eq(addr_e.clone(), b.constant(a as u64, Width::W32));
        result = b.ite(cond, v, result);
    }
    state.machine.cpu.set_reg(i.rd, Value::from_expr(result));
    fire_mem_access(
        state,
        env,
        plugins,
        MemAccess {
            pc,
            addr: base_c,
            width,
            is_write: false,
            value: None,
            symbolic_addr: true,
            symbolic_value: true,
        },
    );
    Flow::Next
}

fn exec_store(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    i: &Instr,
    pc: u32,
) -> Flow {
    let width = mem_width(i.op);
    let base = state.machine.cpu.reg(i.rs1).clone();
    let addr = match base.as_concrete() {
        Some(b) => b.wrapping_add(i.imm),
        None => {
            // Symbolic store addresses are concretized (soft), like S2E's
            // default write handling; the page-ITE treatment is applied to
            // loads, which dominate. A possibly-null pointer first forks
            // so both the crashing and the valid continuation survive.
            env.ctx.stats.symbolic_ptr_accesses += 1;
            let base_e = reg_expr(state, env, i.rs1);
            let addr_e = env
                .ctx
                .builder
                .add(base_e, env.ctx.builder.constant(i.imm as u64, Width::W32));
            if let Some(fork) = fork_on_null(state, env, &addr_e, pc) {
                return fork;
            }
            let soft = concretization_is_soft(env.ctx.config.consistency);
            match concretize(state, env, &addr_e, soft) {
                Some(a) => a,
                None => return Flow::Stop(TerminationReason::SolverTimeout),
            }
        }
    };
    let v = state.machine.cpu.reg(i.rs2).clone();
    let symbolic_value = v.is_symbolic();
    let value = v.as_concrete();
    // Truncate concrete values to the store width for the event payload.
    let value = value.map(|x| if width == 4 { x } else { x & ((1 << (8 * width)) - 1) });
    match state.machine.mem.write(addr, width, &truncate_for_store(&v, width, env), env.ctx.builder)
    {
        Ok(()) => {
            if env.cache.page_has_code(addr) {
                env.cache.invalidate_write(addr, width);
            }
            fire_mem_access(
                state,
                env,
                plugins,
                MemAccess {
                    pc,
                    addr,
                    width,
                    is_write: true,
                    value,
                    symbolic_addr: base.is_symbolic(),
                    symbolic_value,
                },
            );
            Flow::Next
        }
        Err(_) => null_fault(state, addr, pc),
    }
}

fn truncate_for_store(v: &Value, width: u32, env: &ExecEnv) -> Value {
    match v {
        Value::Concrete(_) => v.clone(),
        Value::Symbolic(e) => {
            if width == 4 {
                v.clone()
            } else {
                let narrowed = env
                    .ctx
                    .builder
                    .extract(e.clone(), 0, Width::new(8 * width));
                Value::from_expr(env.ctx.builder.zext(narrowed, Width::W32))
            }
        }
    }
}

fn exec_push(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    i: &Instr,
    pc: u32,
) -> Flow {
    let Some(sp) = state.machine.cpu.reg(reg::SP).as_concrete() else {
        let e = reg_expr(state, env, reg::SP);
        match concretize(state, env, &e, concretization_is_soft(env.ctx.config.consistency)) {
            Some(v) => state.machine.cpu.set_reg(reg::SP, Value::Concrete(v)),
            None => return Flow::Stop(TerminationReason::SolverTimeout),
        }
        return exec_push(state, env, plugins, i, pc);
    };
    let sp = sp.wrapping_sub(4);
    let v = state.machine.cpu.reg(i.rs1).clone();
    let symbolic_value = v.is_symbolic();
    let value = v.as_concrete();
    match state.machine.mem.write(sp, 4, &v, env.ctx.builder) {
        Ok(()) => {
            state.machine.cpu.set_reg(reg::SP, Value::Concrete(sp));
            fire_mem_access(
                state,
                env,
                plugins,
                MemAccess {
                    pc,
                    addr: sp,
                    width: 4,
                    is_write: true,
                    value,
                    symbolic_addr: false,
                    symbolic_value,
                },
            );
            Flow::Next
        }
        Err(_) => null_fault(state, sp, pc),
    }
}

fn exec_pop(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    i: &Instr,
    pc: u32,
) -> Flow {
    let Some(sp) = state.machine.cpu.reg(reg::SP).as_concrete() else {
        let e = reg_expr(state, env, reg::SP);
        match concretize(state, env, &e, concretization_is_soft(env.ctx.config.consistency)) {
            Some(v) => state.machine.cpu.set_reg(reg::SP, Value::Concrete(v)),
            None => return Flow::Stop(TerminationReason::SolverTimeout),
        }
        return exec_pop(state, env, plugins, i, pc);
    };
    match state.machine.mem.read(sp, 4, env.ctx.builder) {
        Ok(v) => {
            let symbolic_value = v.is_symbolic();
            let value = v.as_concrete();
            state.machine.cpu.set_reg(i.rd, v);
            state.machine.cpu.set_reg(reg::SP, Value::Concrete(sp.wrapping_add(4)));
            fire_mem_access(
                state,
                env,
                plugins,
                MemAccess {
                    pc,
                    addr: sp,
                    width: 4,
                    is_write: false,
                    value,
                    symbolic_addr: false,
                    symbolic_value,
                },
            );
            Flow::Next
        }
        Err(_) => null_fault(state, sp, pc),
    }
}

fn exec_indirect(
    state: &mut ExecState,
    env: &mut ExecEnv,
    target_reg: u8,
    pc: u32,
    link: Option<u32>,
) -> Flow {
    let t = state.machine.cpu.reg(target_reg).clone();
    let target = match t.as_concrete() {
        Some(v) => v,
        None => {
            let e = reg_expr(state, env, target_reg);
            match concretize(state, env, &e, concretization_is_soft(env.ctx.config.consistency)) {
                Some(v) => {
                    state.machine.cpu.set_reg(target_reg, Value::Concrete(v));
                    v
                }
                None => {
                    let f = FaultKind::SymbolicPc { pc };
                    state.machine.cpu.fault = Some(f.clone());
                    return Flow::Stop(TerminationReason::Fault(f));
                }
            }
        }
    };
    if let Some(ret) = link {
        state.machine.cpu.set_reg(reg::LR, Value::Concrete(ret));
    }
    // Retirement check against the static prediction table: the single
    // point every indirect transfer (`jmpr`/`callr`/`ret`) funnels
    // through (the threaded dispatcher has no micro-ops for them).
    if let Some(preds) = env.predictions {
        env.ctx.stats.indirect_retirements += 1;
        match preds.classify(pc, target) {
            IndirectClass::Resolved => env.ctx.stats.indirect_targets_resolved += 1,
            IndirectClass::Escaped => env.ctx.stats.indirect_targets_escaped += 1,
            IndirectClass::Discovered => {
                env.ctx.stats.indirect_targets_discovered += 1;
                env.discoveries.push((pc, target));
            }
        }
    }
    Flow::Jump(target)
}

fn branch_cond_expr(env: &ExecEnv, op: Opcode, a: ExprRef, b: ExprRef) -> ExprRef {
    let bd = env.ctx.builder;
    match op {
        Opcode::Beq => bd.eq(a, b),
        Opcode::Bne => bd.ne(a, b),
        Opcode::Bltu => bd.ult(a, b),
        Opcode::Bgeu => bd.ule(b, a),
        Opcode::Blts => bd.slt(a, b),
        Opcode::Bges => bd.sle(b, a),
        _ => unreachable!("not a branch"),
    }
}

fn exec_branch(
    state: &mut ExecState,
    env: &mut ExecEnv,
    i: &Instr,
    pc: u32,
    next_pc: u32,
    fork_free: bool,
) -> Flow {
    let a = state.machine.cpu.reg(i.rs1).clone();
    let b = state.machine.cpu.reg(i.rs2).clone();
    let then_pc = i.imm;

    if let (Some(x), Some(y)) = (a.as_concrete(), b.as_concrete()) {
        let taken = branch_taken(i.op, x, y);
        // RC-CC edge forcing: also explore the not-taken CFG edge if its
        // block was never seen (dynamic-disassembly mode).
        if env.ctx.config.consistency == ConsistencyModel::RcCc
            && forking_allowed(state, env, pc)
        {
            let other = if taken { next_pc } else { then_pc };
            // `seen_blocks` is engine-global coverage, so whether the edge
            // is forced depends on what *other* paths have executed by now
            // — schedule nondeterminism that must be journaled.
            let force = match state.replay_edge_force() {
                Some(v) => v,
                None => {
                    let v = !env.seen_blocks.contains(&other);
                    state.record_edge_force(v);
                    v
                }
            };
            if force {
                let (t, e) = if taken {
                    (then_pc, next_pc)
                } else {
                    (next_pc, then_pc)
                };
                return Flow::Fork(ForkRequest {
                    cond: env.ctx.builder.true_(),
                    then_pc: t,
                    else_pc: e,
                    constrained: false,
                });
            }
        }
        return Flow::Jump(if taken { then_pc } else { next_pc });
    }

    let ea = a.to_expr(env.ctx.builder, Width::W32);
    let eb = b.to_expr(env.ctx.builder, Width::W32);
    let cond = branch_cond_expr(env, i.op, ea, eb);
    resolve_symbolic_branch(state, env, cond, then_pc, next_pc, pc, fork_free)
}

/// One journaled feasibility probe: served from the journal when the
/// state is being reconstructed, otherwise asked of the solver and
/// recorded. A solver timeout (`None`) terminates the path at every call
/// site of this helper, so it never needs a journal entry — journals only
/// ever describe a path's surviving prefix.
fn probe_feasible(state: &mut ExecState, env: &mut ExecEnv, e: &ExprRef) -> Option<bool> {
    if let Some(v) = state.replay_feasible() {
        return Some(v);
    }
    let v = env.ctx.solver.may_be_true_in(&state.partition, e)?;
    state.record_feasible(v);
    Some(v)
}

fn forking_allowed(state: &ExecState, env: &ExecEnv, pc: u32) -> bool {
    let model = env.ctx.config.consistency;
    // The CodeSelector gates multi-path execution regardless of model;
    // environment code (syscall/IRQ nesting) additionally requires a model
    // that executes the environment symbolically.
    let in_ranges = env.ctx.config.code_ranges.allows(pc);
    let env_ok = state.env_depth() == 0 || model.env_symbolic();
    env.ctx.config.allow_forking && state.forking_enabled && in_ranges && env_ok
}

fn resolve_symbolic_branch(
    state: &mut ExecState,
    env: &mut ExecEnv,
    cond: ExprRef,
    then_pc: u32,
    else_pc: u32,
    pc: u32,
    fork_free: bool,
) -> Flow {
    let model = env.ctx.config.consistency;
    let in_env = state.env_depth() > 0;
    let forking = forking_allowed(state, env, pc);

    // Environment code branching on symbolic data: model-specific policy.
    // (Unit code outside the selected ranges is merely non-forking, not
    // environment — it falls through to the concretize-and-follow case.)
    if in_env && !model.env_symbolic() {
        match env_branch_policy(model) {
            EnvBranchPolicy::Abort => {
                return Flow::Stop(TerminationReason::EnvInconsistency);
            }
            EnvBranchPolicy::Concretize { soft } => {
                return match concretize(state, env, &cond, soft) {
                    Some(v) => Flow::Jump(if v == 1 { then_pc } else { else_pc }),
                    None => Flow::Stop(TerminationReason::SolverTimeout),
                };
            }
            EnvBranchPolicy::ForkNormally => {}
        }
    }

    // RC-CC: all unit edges, no solver.
    if model == ConsistencyModel::RcCc && forking {
        return Flow::Fork(ForkRequest {
            cond,
            then_pc,
            else_pc,
            constrained: false,
        });
    }

    // Statically fork-free (no pc of this block is in a fork-enabled
    // code range) and forking dynamically disabled: every probe outcome
    // funnels into concretize-and-follow, so go there directly and save
    // both feasibility queries. `fork_free` implies `!forking` when the
    // annotation mirrors the engine's include ranges; the dynamic check
    // stays as defense in depth against a mismatched annotator.
    if fork_free && !forking {
        env.ctx.stats.feasibility_probes_skipped += 2;
        let soft = concretization_is_soft(model);
        return match concretize(state, env, &cond, soft) {
            Some(v) => Flow::Jump(if v == 1 { then_pc } else { else_pc }),
            None => Flow::Stop(TerminationReason::SolverTimeout),
        };
    }

    let may_t = probe_feasible(state, env, &cond);
    let not_cond = env.ctx.builder.bool_not(cond.clone());
    let may_f = probe_feasible(state, env, &not_cond);
    match (may_t, may_f) {
        (Some(true), Some(true)) => {
            if forking {
                Flow::Fork(ForkRequest {
                    cond,
                    then_pc,
                    else_pc,
                    constrained: true,
                })
            } else {
                // Multi-path disabled here: follow one feasible outcome
                // under a soft constraint (hard under SC-UE).
                let soft = concretization_is_soft(model);
                match concretize(state, env, &cond, soft) {
                    Some(v) => Flow::Jump(if v == 1 { then_pc } else { else_pc }),
                    None => Flow::Stop(TerminationReason::SolverTimeout),
                }
            }
        }
        (Some(true), Some(false)) => {
            state.add_constraint(cond);
            Flow::Jump(then_pc)
        }
        (Some(false), Some(true)) => {
            state.add_constraint(not_cond);
            Flow::Jump(else_pc)
        }
        (Some(false), Some(false)) => Flow::Stop(TerminationReason::Infeasible),
        _ => Flow::Stop(TerminationReason::SolverTimeout),
    }
}

fn exec_in(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    i: &Instr,
    pc: u32,
) -> Flow {
    let port = match state.machine.cpu.reg(i.rs1).as_concrete() {
        Some(p) => p as u16,
        None => {
            let e = reg_expr(state, env, i.rs1);
            match concretize(state, env, &e, concretization_is_soft(env.ctx.config.consistency)) {
                Some(v) => v as u16,
                None => return Flow::Stop(TerminationReason::SolverTimeout),
            }
        }
    };
    let v = state.machine.devices.read_port(port, env.ctx.builder);
    let symbolic_value = v.is_symbolic();
    let value = v.as_concrete();
    let expr = match &v {
        Value::Symbolic(e) => Some(e.clone()),
        Value::Concrete(_) => None,
    };
    state.machine.cpu.set_reg(i.rd, v);
    let access = PortAccess {
        pc,
        port,
        is_write: false,
        value,
        symbolic_value,
        expr,
    };
    for p in plugins.iter_mut() {
        p.on_port_access(state, &mut env.ctx, &access);
    }
    Flow::Next
}

fn exec_out(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    i: &Instr,
    pc: u32,
) -> Flow {
    let port = match state.machine.cpu.reg(i.rs1).as_concrete() {
        Some(p) => p as u16,
        None => {
            let e = reg_expr(state, env, i.rs1);
            match concretize(state, env, &e, concretization_is_soft(env.ctx.config.consistency)) {
                Some(v) => v as u16,
                None => return Flow::Stop(TerminationReason::SolverTimeout),
            }
        }
    };
    let v = state.machine.cpu.reg(i.rs2).clone();
    let symbolic_value = v.is_symbolic();
    let value = v.as_concrete();
    let expr = match &v {
        Value::Symbolic(e) => Some(e.clone()),
        Value::Concrete(_) => None,
    };
    state.machine.devices.write_port(port, &v, env.ctx.builder);
    let access = PortAccess {
        pc,
        port,
        is_write: true,
        value,
        symbolic_value,
        expr,
    };
    for p in plugins.iter_mut() {
        p.on_port_access(state, &mut env.ctx, &access);
    }
    Flow::Next
}

fn exec_syscall(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    i: &Instr,
    pc: u32,
    next_pc: u32,
) -> Flow {
    let handler = state
        .machine
        .mem
        .read_u32_concrete(vector::SYSCALL)
        .unwrap_or(0);
    if handler == 0 {
        let f = FaultKind::KernelPanic { code: i.imm, pc };
        state.machine.cpu.fault = Some(f.clone());
        return Flow::Stop(TerminationReason::Fault(f));
    }
    env.ctx.stats.syscalls += 1;

    // Boundary conversions at unit→environment entry (§3.2).
    let model = env.ctx.config.consistency;
    if model == ConsistencyModel::ScUe {
        // Concretize every symbolic argument register; hard constraints.
        for r in [reg::R0, reg::R1, reg::R2, reg::R3] {
            if state.machine.cpu.reg(r).is_symbolic() {
                let e = reg_expr(state, env, r);
                match concretize(state, env, &e, false) {
                    Some(v) => state.machine.cpu.set_reg(r, Value::Concrete(v)),
                    None => return Flow::Stop(TerminationReason::SolverTimeout),
                }
            }
        }
    }
    // LC entry annotations (e.g. concretize specific args softly).
    if model == ConsistencyModel::Lc {
        if let Some(ann) = env.ctx.config.annotation_for(i.imm) {
            if let Some(f) = ann.on_entry.clone() {
                f(state, &mut env.ctx);
            }
        }
    }

    let args = [
        state.machine.cpu.reg(reg::R0).as_concrete().unwrap_or(0),
        state.machine.cpu.reg(reg::R1).as_concrete().unwrap_or(0),
        state.machine.cpu.reg(reg::R2).as_concrete().unwrap_or(0),
        state.machine.cpu.reg(reg::R3).as_concrete().unwrap_or(0),
    ];
    for p in plugins.iter_mut() {
        p.on_syscall(state, &mut env.ctx, i.imm, args);
    }

    let Some(sp) = state.machine.cpu.reg(reg::SP).as_concrete() else {
        let f = FaultKind::SymbolicPc { pc };
        state.machine.cpu.fault = Some(f.clone());
        return Flow::Stop(TerminationReason::Fault(f));
    };
    let sp = sp.wrapping_sub(4);
    if state.machine.mem.write_u32(sp, next_pc).is_err() {
        return null_fault(state, sp, pc);
    }
    state.machine.cpu.set_reg(reg::SP, Value::Concrete(sp));
    state.machine.cpu.set_reg(reg::KR, Value::Concrete(i.imm));
    state.machine.cpu.interrupts_enabled = false;
    state.env_stack.push(EnvFrame::Syscall { num: i.imm, args });
    Flow::Jump(handler)
}

fn exec_iret(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    pc: u32,
) -> Flow {
    let Some(sp) = state.machine.cpu.reg(reg::SP).as_concrete() else {
        let f = FaultKind::SymbolicPc { pc };
        state.machine.cpu.fault = Some(f.clone());
        return Flow::Stop(TerminationReason::Fault(f));
    };
    let ret = match state.machine.mem.read(sp, 4, env.ctx.builder) {
        Ok(v) => match v.as_concrete() {
            Some(r) => r,
            None => {
                let e = v.to_expr(env.ctx.builder, Width::W32);
                let soft = concretization_is_soft(env.ctx.config.consistency);
                match concretize(state, env, &e, soft) {
                    Some(r) => r,
                    None => return Flow::Stop(TerminationReason::SolverTimeout),
                }
            }
        },
        Err(_) => return null_fault(state, sp, pc),
    };
    state.machine.cpu.set_reg(reg::SP, Value::Concrete(sp.wrapping_add(4)));
    state.machine.cpu.interrupts_enabled = true;

    // Unit/environment boundary: environment→unit conversions (§3.2).
    if let Some(EnvFrame::Syscall { num, .. }) = state.env_stack.pop() {
        {
            // Analyzers observe the environment's *actual* (pre-conversion)
            // result: the conversion below is an analysis relaxation, not a
            // change to what the environment did.
            let actual_ret = state.machine.cpu.reg(reg::R0).as_concrete();
            apply_return_conversion(state, env, num);
            for p in plugins.iter_mut() {
                p.on_syscall_return(state, &mut env.ctx, num, actual_ret);
            }
        }
    }
    Flow::Jump(ret)
}

fn apply_return_conversion(state: &mut ExecState, env: &mut ExecEnv, syscall: u32) {
    match env.ctx.config.consistency {
        // RC-OC: the result becomes completely unconstrained, interface
        // contract ignored (§3.2.3). Pointer-typed results may be kept
        // concrete via `rc_oc_excluded_syscalls`.
        ConsistencyModel::RcOc => {
            if env.ctx.config.rc_oc_excluded_syscalls.contains(&syscall) {
                return;
            }
            let name = format!("env_ret_{syscall}");
            let v = env.ctx.builder.var(&name, Width::W32);
            state.machine.cpu.set_reg(reg::R0, Value::Symbolic(v));
        }
        // LC: apply the interface annotation, which re-symbolifies the
        // result within the API contract (§3.2.2).
        ConsistencyModel::Lc => {
            if let Some(ann) = env.ctx.config.annotation_for(syscall) {
                if let Some(f) = ann.on_return.clone() {
                    f(state, &mut env.ctx);
                }
            }
        }
        // Strict models keep the concrete result.
        _ => {}
    }
}

fn exec_s2e_op(
    state: &mut ExecState,
    env: &mut ExecEnv,
    plugins: &mut [Box<dyn Plugin>],
    i: &Instr,
    pc: u32,
    _next_pc: u32,
) -> Flow {
    let Some(op) = S2Op::from_u32(i.imm) else {
        let f = FaultKind::InvalidOpcode { pc };
        state.machine.cpu.fault = Some(f.clone());
        return Flow::Stop(TerminationReason::Fault(f));
    };
    for p in plugins.iter_mut() {
        p.on_custom_opcode(state, &mut env.ctx, op);
    }
    match op {
        S2Op::SymbolicReg => {
            let name = match state.machine.cpu.reg(reg::R1).as_concrete() {
                Some(p) if p != 0 => state.machine.mem.read_cstr(p),
                _ => format!("sym_{pc:x}"),
            };
            let v = env.ctx.builder.var(&name, Width::W32);
            state.machine.cpu.set_reg(reg::R0, Value::Symbolic(v));
            Flow::Next
        }
        S2Op::SymbolicMem => {
            let addr = state.machine.cpu.reg(reg::R0).as_concrete().unwrap_or(0);
            let len = state
                .machine
                .cpu
                .reg(reg::R1)
                .as_concrete()
                .unwrap_or(0)
                .min(4096);
            for off in 0..len {
                let name = format!("mem_{:x}_{off}", addr);
                let v = env.ctx.builder.var(&name, Width::W8);
                if state
                    .machine
                    .mem
                    .write_u8(addr.wrapping_add(off), Value::Symbolic(v))
                    .is_err()
                {
                    return null_fault(state, addr.wrapping_add(off), pc);
                }
            }
            Flow::Next
        }
        S2Op::EnableForking => {
            state.forking_enabled = true;
            Flow::Next
        }
        S2Op::DisableForking => {
            state.forking_enabled = false;
            Flow::Next
        }
        S2Op::LogMessage => {
            let addr = state.machine.cpu.reg(reg::R0).as_concrete().unwrap_or(0);
            let msg = state.machine.mem.read_cstr(addr);
            env.ctx.log.push(msg);
            Flow::Next
        }
        S2Op::KillPath => {
            let code = state.machine.cpu.reg(reg::R0).as_concrete().unwrap_or(0);
            Flow::Stop(TerminationReason::Killed(code))
        }
        S2Op::Assert => {
            let v = state.machine.cpu.reg(reg::R0).clone();
            let can_fail = match v.as_concrete() {
                Some(c) => c == 0,
                None => {
                    let e = v.to_expr(env.ctx.builder, Width::W32);
                    let zero = env.ctx.builder.constant(0, Width::W32);
                    let is_zero = env.ctx.builder.eq(e, zero);
                    // Journal the effective decision: a timeout fails the
                    // assertion (conservative), and that choice — not the
                    // raw probe — is what steers the path.
                    let fails = match state.replay_feasible() {
                        Some(v) => v,
                        None => {
                            let v = env
                                .ctx
                                .solver
                                .may_be_true_in(&state.partition, &is_zero)
                                .unwrap_or(true);
                            state.record_feasible(v);
                            v
                        }
                    };
                    if fails {
                        // Pin the path to the violating case so the bug
                        // report's inputs actually trigger the assertion.
                        state.add_constraint(is_zero);
                    }
                    fails
                }
            };
            if can_fail {
                env.ctx.report_bug(
                    state,
                    BugKind::AssertionFailure,
                    pc,
                    format!("guest assertion can fail at {pc:#010x}"),
                );
                let f = FaultKind::AssertFailed { pc };
                state.machine.cpu.fault = Some(f.clone());
                Flow::Stop(TerminationReason::Fault(f))
            } else {
                Flow::Next
            }
        }
        S2Op::EnterEnv => {
            state.env_stack.push(EnvFrame::Marker);
            Flow::Next
        }
        S2Op::LeaveEnv => {
            if matches!(state.env_stack.last(), Some(EnvFrame::Marker)) {
                state.env_stack.pop();
            }
            Flow::Next
        }
        S2Op::NoInterrupts => {
            state.machine.cpu.interrupts_enabled = false;
            Flow::Next
        }
        S2Op::AllowInterrupts => {
            state.machine.cpu.interrupts_enabled = true;
            Flow::Next
        }
    }
}
