//! Multi-path performance profiler plugin (the `PerformanceProfile`
//! analyzer behind PROFS, §6.1.3).
//!
//! Counts instructions and simulates a configurable memory hierarchy
//! (caches, TLB, page faults) *per path*. The per-path simulator state is
//! plugin state, so it forks with the execution state: sibling paths have
//! independent, consistent cache histories — something single-path
//! profilers like Valgrind cannot produce.

use crate::impl_plugin_state;
use crate::plugin::{ExecCtx, MemAccess, Plugin};
use crate::state::{ExecState, StateId, TerminationReason};
use std::sync::Mutex;
use s2e_cache::{AccessKind, Hierarchy, HierarchyConfig, HierarchyStats};
use s2e_vm::isa::Instr;
use std::ops::Range;
use std::sync::Arc;

/// Completed-path profile.
#[derive(Clone, Debug)]
pub struct PathProfile {
    /// The path's state id.
    pub state: StateId,
    /// How the path ended.
    pub reason: TerminationReason,
    /// Instructions executed within the profiled range.
    pub instructions: u64,
    /// Memory-hierarchy counters.
    pub hierarchy: HierarchyStats,
}

/// Shared results: one profile per completed path.
pub type ProfileResults = Arc<Mutex<Vec<PathProfile>>>;

/// Per-path simulator state.
#[derive(Clone, Debug)]
struct PerfState {
    hierarchy: Hierarchy,
    instructions: u64,
}

impl Default for PerfState {
    fn default() -> PerfState {
        PerfState {
            hierarchy: Hierarchy::paper_config(),
            instructions: 0,
        }
    }
}
impl_plugin_state!(PerfState);

/// The profiler plugin.
pub struct PerformanceProfile {
    config: HierarchyConfig,
    /// Restrict profiling to instructions inside this range (e.g. the
    /// unit); `None` profiles everything, including the kernel — the
    /// "in-vivo" mode that sees OS effects on the unit's cache behavior.
    range: Option<Range<u32>>,
    results: ProfileResults,
}

impl std::fmt::Debug for PerformanceProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerformanceProfile")
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

impl PerformanceProfile {
    /// Creates the profiler with the paper's hierarchy configuration.
    pub fn new(range: Option<Range<u32>>) -> (PerformanceProfile, ProfileResults) {
        Self::with_hierarchy(HierarchyConfig::paper(), range)
    }

    /// Creates the profiler with a custom hierarchy.
    pub fn with_hierarchy(
        config: HierarchyConfig,
        range: Option<Range<u32>>,
    ) -> (PerformanceProfile, ProfileResults) {
        let results: ProfileResults = Arc::new(Mutex::new(Vec::new()));
        (
            PerformanceProfile {
                config,
                range,
                results: Arc::clone(&results),
            },
            results,
        )
    }

    fn state_of<'s>(&self, state: &'s mut ExecState) -> &'s mut PerfState {
        let ps = state.plugin_state_mut::<PerfState>("perf");
        ps
    }

    fn in_range(&self, pc: u32) -> bool {
        self.range.as_ref().map(|r| r.contains(&pc)).unwrap_or(true)
    }
}

impl Plugin for PerformanceProfile {
    fn name(&self) -> &'static str {
        "perf"
    }

    fn wants_all_instructions(&self) -> bool {
        true
    }

    fn on_instr_execution(
        &mut self,
        state: &mut ExecState,
        _ctx: &mut ExecCtx,
        pc: u32,
        _instr: &Instr,
    ) {
        if !self.in_range(pc) {
            return;
        }
        // Ensure a fresh hierarchy uses the configured geometry, not the
        // Default (they coincide for paper config, but custom configs must
        // win).
        if state.plugin_state::<PerfState>("perf").is_none() {
            let init = PerfState {
                hierarchy: Hierarchy::new(&self.config),
                instructions: 0,
            };
            *state.plugin_state_mut::<PerfState>("perf") = init;
        }
        let ps = self.state_of(state);
        ps.instructions += 1;
        ps.hierarchy.access(AccessKind::Instruction, pc as u64);
    }

    fn wants_memory_events(&self) -> bool {
        true
    }

    fn on_memory_access(&mut self, state: &mut ExecState, _ctx: &mut ExecCtx, a: &MemAccess) {
        if !self.in_range(a.pc) {
            return;
        }
        let kind = if a.is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let ps = self.state_of(state);
        for i in 0..a.width {
            // Word accesses touch one line in practice; feed each byte so
            // line-straddling accesses count correctly.
            if i == 0 || (a.addr as u64 + i as u64).is_multiple_of(64) {
                ps.hierarchy.access(kind, a.addr as u64 + i as u64);
            }
        }
    }

    fn on_state_terminated(
        &mut self,
        state: &mut ExecState,
        _ctx: &mut ExecCtx,
        reason: &TerminationReason,
    ) {
        let id = state.id;
        let ps = self.state_of(state);
        self.results.lock().unwrap().push(PathProfile {
            state: id,
            reason: reason.clone(),
            instructions: ps.instructions,
            hierarchy: ps.hierarchy.stats(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::isa::{Instr, Opcode};
    use s2e_vm::machine::Machine;

    fn run(f: impl FnOnce(&mut PerformanceProfile, &mut ExecState, &mut ExecCtx)) -> Vec<PathProfile> {
        let b = s2e_expr::ExprBuilder::new();
        let mut solver = s2e_solver::Solver::new();
        let config = crate::config::EngineConfig::default();
        let mut stats = crate::stats::EngineStats::default();
        let mut bugs = Vec::new();
        let mut log = Vec::new();
        let (mut perf, results) = PerformanceProfile::new(None);
        {
            let mut ctx = ExecCtx {
                builder: &b,
                solver: &mut solver,
                config: &config,
                stats: &mut stats,
                bugs: &mut bugs,
                log: &mut log,
            };
            let mut state = ExecState::initial(Machine::new());
            f(&mut perf, &mut state, &mut ctx);
        }
        let r = results.lock().unwrap().clone();
        r
    }

    #[test]
    fn counts_instructions_and_accesses() {
        let profiles = run(|perf, state, ctx| {
            let i = Instr::new(Opcode::Nop, 0, 0, 0, 0);
            for k in 0..10 {
                perf.on_instr_execution(state, ctx, 0x2000 + k * 8, &i);
            }
            perf.on_memory_access(
                state,
                ctx,
                &MemAccess {
                    pc: 0x2000,
                    addr: 0x8000,
                    width: 4,
                    is_write: false,
                    value: Some(0),
                    symbolic_addr: false,
                    symbolic_value: false,
                },
            );
            perf.on_state_terminated(state, ctx, &TerminationReason::Halted(0));
        });
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].instructions, 10);
        assert_eq!(profiles[0].hierarchy.data_accesses, 1);
        assert!(profiles[0].hierarchy.total_cache_misses() >= 2);
    }

    #[test]
    fn forked_paths_profile_independently() {
        let b = s2e_expr::ExprBuilder::new();
        let mut solver = s2e_solver::Solver::new();
        let config = crate::config::EngineConfig::default();
        let mut stats = crate::stats::EngineStats::default();
        let mut bugs = Vec::new();
        let mut log = Vec::new();
        let (mut perf, results) = PerformanceProfile::new(None);
        {
            let mut ctx = ExecCtx {
                builder: &b,
                solver: &mut solver,
                config: &config,
                stats: &mut stats,
                bugs: &mut bugs,
                log: &mut log,
            };
            let mut parent = ExecState::initial(Machine::new());
            let i = Instr::new(Opcode::Nop, 0, 0, 0, 0);
            perf.on_instr_execution(&mut parent, &mut ctx, 0x2000, &i);
            let mut child = parent.fork_child(crate::state::StateId(1));
            perf.on_instr_execution(&mut child, &mut ctx, 0x2008, &i);
            perf.on_instr_execution(&mut child, &mut ctx, 0x2010, &i);
            perf.on_state_terminated(&mut parent, &mut ctx, &TerminationReason::Halted(0));
            perf.on_state_terminated(&mut child, &mut ctx, &TerminationReason::Halted(0));
        }
        let profiles = results.lock().unwrap();
        assert_eq!(profiles[0].instructions, 1);
        assert_eq!(profiles[1].instructions, 3); // inherited 1 + 2 own
    }

    #[test]
    fn range_filter_applies() {
        let b = s2e_expr::ExprBuilder::new();
        let mut solver = s2e_solver::Solver::new();
        let config = crate::config::EngineConfig::default();
        let mut stats = crate::stats::EngineStats::default();
        let mut bugs = Vec::new();
        let mut log = Vec::new();
        let (mut perf, results) = PerformanceProfile::new(Some(0x2000..0x3000));
        {
            let mut ctx = ExecCtx {
                builder: &b,
                solver: &mut solver,
                config: &config,
                stats: &mut stats,
                bugs: &mut bugs,
                log: &mut log,
            };
            let mut state = ExecState::initial(Machine::new());
            let i = Instr::new(Opcode::Nop, 0, 0, 0, 0);
            perf.on_instr_execution(&mut state, &mut ctx, 0x2000, &i);
            perf.on_instr_execution(&mut state, &mut ctx, 0x9000, &i); // filtered
            perf.on_state_terminated(&mut state, &mut ctx, &TerminationReason::Halted(0));
        }
        assert_eq!(results.lock().unwrap()[0].instructions, 1);
    }
}
