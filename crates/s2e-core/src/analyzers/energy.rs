//! Energy profiler — the paper's first "other use" (§6.1.4).
//!
//! "S2E could be used to profile energy use of embedded applications:
//! given a power consumption model, S2E could find energy-hogging paths
//! and help the developer optimize them." This analyzer attaches a
//! per-opcode-class energy model and accumulates a per-path energy
//! figure, giving energy *envelopes* over path families just like PROFS
//! gives instruction envelopes.

use crate::impl_plugin_state;
use crate::plugin::{ExecCtx, MemAccess, Plugin};
use crate::state::{ExecState, StateId, TerminationReason};
use std::sync::Mutex;
use s2e_vm::isa::{Instr, Opcode};
use std::sync::Arc;

/// Energy cost model in arbitrary charge units per event.
#[derive(Clone, Debug)]
pub struct EnergyModel {
    /// Plain ALU / move instructions.
    pub alu: u64,
    /// Multiplies and divides.
    pub muldiv: u64,
    /// Control transfers.
    pub branch: u64,
    /// Memory instruction base cost (plus per-access cost below).
    pub memory: u64,
    /// Additional cost per byte moved to/from memory.
    pub per_byte: u64,
    /// Port I/O (device activation).
    pub io: u64,
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        // Loosely shaped like embedded-class cores: multiplies ~4× ALU,
        // memory ~3×, device I/O an order of magnitude above that.
        EnergyModel {
            alu: 1,
            muldiv: 4,
            branch: 2,
            memory: 3,
            per_byte: 1,
            io: 30,
        }
    }
}

impl EnergyModel {
    fn instr_cost(&self, op: Opcode) -> u64 {
        match op {
            Opcode::Mul
            | Opcode::MulI
            | Opcode::Divu
            | Opcode::Divs
            | Opcode::Remu
            | Opcode::Rems => self.muldiv,
            op if op.is_conditional_branch() => self.branch,
            Opcode::Jmp | Opcode::JmpR | Opcode::Call | Opcode::CallR | Opcode::Ret => {
                self.branch
            }
            op if op.is_load() || op.is_store() => self.memory,
            Opcode::In | Opcode::Out => self.io,
            _ => self.alu,
        }
    }
}

/// Per-path accumulated energy.
#[derive(Clone, Debug, Default)]
struct EnergyState {
    charge: u64,
}
impl_plugin_state!(EnergyState);

/// Completed-path energy figures.
pub type EnergyResults = Arc<Mutex<Vec<(StateId, TerminationReason, u64)>>>;

/// The energy-profiling plugin.
#[derive(Debug)]
pub struct EnergyProfile {
    model: EnergyModel,
    results: EnergyResults,
}

impl EnergyProfile {
    /// Creates the profiler with a cost model.
    pub fn new(model: EnergyModel) -> (EnergyProfile, EnergyResults) {
        let results: EnergyResults = Arc::new(Mutex::new(Vec::new()));
        (
            EnergyProfile {
                model,
                results: Arc::clone(&results),
            },
            results,
        )
    }
}

impl Plugin for EnergyProfile {
    fn name(&self) -> &'static str {
        "energy"
    }

    fn wants_all_instructions(&self) -> bool {
        true
    }

    fn on_instr_execution(
        &mut self,
        state: &mut ExecState,
        _ctx: &mut ExecCtx,
        _pc: u32,
        instr: &Instr,
    ) {
        let cost = self.model.instr_cost(instr.op);
        state.plugin_state_mut::<EnergyState>("energy").charge += cost;
    }

    fn wants_memory_events(&self) -> bool {
        true
    }

    fn on_memory_access(&mut self, state: &mut ExecState, _ctx: &mut ExecCtx, a: &MemAccess) {
        let cost = self.model.per_byte * a.width as u64;
        state.plugin_state_mut::<EnergyState>("energy").charge += cost;
    }

    fn on_state_terminated(
        &mut self,
        state: &mut ExecState,
        _ctx: &mut ExecCtx,
        reason: &TerminationReason,
    ) {
        let charge = state.plugin_state_mut::<EnergyState>("energy").charge;
        self.results.lock().unwrap().push((state.id, reason.clone(), charge));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::isa::Instr;
    use s2e_vm::machine::Machine;

    #[test]
    fn accumulates_per_opcode_costs() {
        let b = s2e_expr::ExprBuilder::new();
        let mut solver = s2e_solver::Solver::new();
        let config = crate::config::EngineConfig::default();
        let mut stats = crate::stats::EngineStats::default();
        let mut bugs = Vec::new();
        let mut log = Vec::new();
        let mut ctx = ExecCtx {
            builder: &b,
            solver: &mut solver,
            config: &config,
            stats: &mut stats,
            bugs: &mut bugs,
            log: &mut log,
        };
        let (mut e, results) = EnergyProfile::new(EnergyModel::default());
        let mut state = ExecState::initial(Machine::new());
        e.on_instr_execution(&mut state, &mut ctx, 0, &Instr::new(Opcode::Add, 0, 0, 0, 0));
        e.on_instr_execution(&mut state, &mut ctx, 8, &Instr::new(Opcode::Mul, 0, 0, 0, 0));
        e.on_instr_execution(&mut state, &mut ctx, 16, &Instr::new(Opcode::Out, 0, 0, 0, 0));
        e.on_state_terminated(&mut state, &mut ctx, &TerminationReason::Halted(0));
        let r = results.lock().unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].2, 1 + 4 + 30);
    }

    #[test]
    fn forked_paths_account_independently() {
        let b = s2e_expr::ExprBuilder::new();
        let mut solver = s2e_solver::Solver::new();
        let config = crate::config::EngineConfig::default();
        let mut stats = crate::stats::EngineStats::default();
        let mut bugs = Vec::new();
        let mut log = Vec::new();
        let mut ctx = ExecCtx {
            builder: &b,
            solver: &mut solver,
            config: &config,
            stats: &mut stats,
            bugs: &mut bugs,
            log: &mut log,
        };
        let (mut e, results) = EnergyProfile::new(EnergyModel::default());
        let mut parent = ExecState::initial(Machine::new());
        e.on_instr_execution(&mut parent, &mut ctx, 0, &Instr::new(Opcode::Add, 0, 0, 0, 0));
        let mut child = parent.fork_child(StateId(1));
        e.on_instr_execution(&mut child, &mut ctx, 8, &Instr::new(Opcode::Mul, 0, 0, 0, 0));
        e.on_state_terminated(&mut parent, &mut ctx, &TerminationReason::Halted(0));
        e.on_state_terminated(&mut child, &mut ctx, &TerminationReason::Halted(0));
        let r = results.lock().unwrap();
        assert_eq!(r[0].2, 1);
        assert_eq!(r[1].2, 1 + 4);
    }
}
