//! Interrupt data-race detector (the `DataRaceDetector` analyzer).
//!
//! Driver-style race detection: a memory location written both from
//! interrupt context and from non-interrupt context *with interrupts
//! enabled* (i.e., without the Cli/Sti "lock" held) is racy — the IRQ
//! handler can fire between the mainline's read-modify-write.

use crate::impl_plugin_state;
use crate::plugin::{BugKind, ExecCtx, MemAccess, Plugin};
use crate::state::ExecState;
use std::collections::HashMap;
use std::ops::Range;

/// Per-address access summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct AccessFlags(u8);

impl AccessFlags {
    const IRQ_WRITE: AccessFlags = AccessFlags(1);
    const UNLOCKED_WRITE: AccessFlags = AccessFlags(2);

    fn insert(&mut self, other: AccessFlags) {
        self.0 |= other.0;
    }

    fn contains(&self, other: AccessFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

/// Per-path race bookkeeping.
#[derive(Clone, Debug, Default)]
struct RaceState {
    flags: HashMap<u32, AccessFlags>,
    reported: bool,
}
impl_plugin_state!(RaceState);

/// The race-detector plugin.
#[derive(Debug)]
pub struct DataRaceDetector {
    /// Shared-data region to watch (e.g. the driver's data segment);
    /// watching everything drowns in stack traffic.
    watch: Range<u32>,
}

impl DataRaceDetector {
    /// Creates the detector over the watched address range.
    pub fn new(watch: Range<u32>) -> DataRaceDetector {
        DataRaceDetector { watch }
    }
}

impl Plugin for DataRaceDetector {
    fn name(&self) -> &'static str {
        "racedetector"
    }

    fn wants_memory_events(&self) -> bool {
        true
    }

    fn on_memory_access(&mut self, state: &mut ExecState, ctx: &mut ExecCtx, a: &MemAccess) {
        if !a.is_write || !self.watch.contains(&a.addr) {
            return;
        }
        let in_irq = state.in_irq();
        let ints_enabled = state.machine.cpu.interrupts_enabled;
        let racy = {
            let rs = state.plugin_state_mut::<RaceState>("racedetector");
            let flags = rs.flags.entry(a.addr).or_default();
            if in_irq {
                flags.insert(AccessFlags::IRQ_WRITE);
            } else if ints_enabled {
                flags.insert(AccessFlags::UNLOCKED_WRITE);
            }
            let racy = flags.contains(AccessFlags::IRQ_WRITE)
                && flags.contains(AccessFlags::UNLOCKED_WRITE)
                && !rs.reported;
            if racy {
                rs.reported = true;
            }
            racy
        };
        if racy {
            ctx.report_bug(
                state,
                BugKind::DataRace,
                a.pc,
                format!(
                    "location {:#010x} written from both IRQ and unlocked mainline context",
                    a.addr
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::EnvFrame;
    use s2e_vm::machine::Machine;

    fn write_at(addr: u32) -> MemAccess {
        MemAccess {
            pc: 0x2000,
            addr,
            width: 4,
            is_write: true,
            value: Some(1),
            symbolic_addr: false,
            symbolic_value: false,
        }
    }

    fn run(f: impl FnOnce(&mut DataRaceDetector, &mut ExecState, &mut ExecCtx)) -> usize {
        let b = s2e_expr::ExprBuilder::new();
        let mut solver = s2e_solver::Solver::new();
        let config = crate::config::EngineConfig::default();
        let mut stats = crate::stats::EngineStats::default();
        let mut bugs = Vec::new();
        let mut log = Vec::new();
        {
            let mut ctx = ExecCtx {
                builder: &b,
                solver: &mut solver,
                config: &config,
                stats: &mut stats,
                bugs: &mut bugs,
                log: &mut log,
            };
            let mut det = DataRaceDetector::new(0x8000..0x9000);
            let mut state = ExecState::initial(Machine::new());
            f(&mut det, &mut state, &mut ctx);
        }
        bugs.len()
    }

    #[test]
    fn unlocked_write_plus_irq_write_races() {
        let n = run(|det, state, ctx| {
            state.machine.cpu.interrupts_enabled = true;
            det.on_memory_access(state, ctx, &write_at(0x8000));
            state.env_stack.push(EnvFrame::Irq { line: 0 });
            det.on_memory_access(state, ctx, &write_at(0x8000));
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn cli_protected_write_is_safe() {
        let n = run(|det, state, ctx| {
            state.machine.cpu.interrupts_enabled = false; // "lock held"
            det.on_memory_access(state, ctx, &write_at(0x8000));
            state.env_stack.push(EnvFrame::Irq { line: 0 });
            det.on_memory_access(state, ctx, &write_at(0x8000));
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn different_addresses_do_not_race() {
        let n = run(|det, state, ctx| {
            state.machine.cpu.interrupts_enabled = true;
            det.on_memory_access(state, ctx, &write_at(0x8000));
            state.env_stack.push(EnvFrame::Irq { line: 0 });
            det.on_memory_access(state, ctx, &write_at(0x8004));
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn outside_watch_range_ignored() {
        let n = run(|det, state, ctx| {
            state.machine.cpu.interrupts_enabled = true;
            det.on_memory_access(state, ctx, &write_at(0xf000));
            state.env_stack.push(EnvFrame::Irq { line: 0 });
            det.on_memory_access(state, ctx, &write_at(0xf000));
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn reported_once_per_path() {
        let n = run(|det, state, ctx| {
            state.machine.cpu.interrupts_enabled = true;
            det.on_memory_access(state, ctx, &write_at(0x8000));
            state.env_stack.push(EnvFrame::Irq { line: 0 });
            det.on_memory_access(state, ctx, &write_at(0x8000));
            det.on_memory_access(state, ctx, &write_at(0x8000));
        });
        assert_eq!(n, 1);
    }
}
