//! Crash catcher (the `WinBugCheck` analog).
//!
//! Converts machine faults — null dereferences, invalid opcodes, kernel
//! panics ("blue screen of death" events in the paper), failed guest
//! assertions — into deduplicated bug reports with reproducing inputs.

use crate::plugin::{BugKind, ExecCtx, Plugin};
use crate::state::{ExecState, TerminationReason};
use s2e_vm::cpu::FaultKind;
use std::collections::HashSet;

/// The bug-check plugin.
#[derive(Debug, Default)]
pub struct BugCheck {
    seen: HashSet<(BugKind, u32)>,
}

impl BugCheck {
    /// Creates the plugin.
    pub fn new() -> BugCheck {
        BugCheck::default()
    }
}

fn classify(f: &FaultKind) -> (BugKind, u32, String) {
    match f {
        FaultKind::NullAccess { addr, pc } => (
            BugKind::NullDereference,
            *pc,
            format!("null dereference of {addr:#010x}"),
        ),
        FaultKind::InvalidOpcode { pc } => {
            (BugKind::InvalidOpcode, *pc, "invalid opcode executed".into())
        }
        FaultKind::AssertFailed { pc } => (
            BugKind::AssertionFailure,
            *pc,
            "guest assertion failed".into(),
        ),
        FaultKind::SymbolicPc { pc } => (
            BugKind::InvalidOpcode,
            *pc,
            "unresolvable symbolic control flow".into(),
        ),
        FaultKind::KernelPanic { code, pc } => (
            BugKind::KernelPanic,
            *pc,
            format!("kernel panic, code {code:#x}"),
        ),
    }
}

impl Plugin for BugCheck {
    fn name(&self) -> &'static str {
        "bugcheck"
    }

    fn on_state_terminated(
        &mut self,
        state: &mut ExecState,
        ctx: &mut ExecCtx,
        reason: &TerminationReason,
    ) {
        let TerminationReason::Fault(f) = reason else {
            return;
        };
        // Assertion failures are reported at the assert site by the
        // executor itself; avoid double counting.
        if matches!(f, FaultKind::AssertFailed { .. }) {
            return;
        }
        let (kind, pc, description) = classify(f);
        if self.seen.insert((kind, pc)) {
            ctx.report_bug(state, kind, pc, description);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::machine::Machine;

    #[test]
    fn faults_become_deduplicated_bugs() {
        let b = s2e_expr::ExprBuilder::new();
        let mut solver = s2e_solver::Solver::new();
        let config = crate::config::EngineConfig::default();
        let mut stats = crate::stats::EngineStats::default();
        let mut bugs = Vec::new();
        let mut log = Vec::new();
        let mut ctx = ExecCtx {
            builder: &b,
            solver: &mut solver,
            config: &config,
            stats: &mut stats,
            bugs: &mut bugs,
            log: &mut log,
        };
        let mut bc = BugCheck::new();
        let mut state = ExecState::initial(Machine::new());
        let fault = TerminationReason::Fault(FaultKind::NullAccess { addr: 4, pc: 0x2000 });
        bc.on_state_terminated(&mut state, &mut ctx, &fault);
        bc.on_state_terminated(&mut state, &mut ctx, &fault); // duplicate
        bc.on_state_terminated(
            &mut state,
            &mut ctx,
            &TerminationReason::Fault(FaultKind::KernelPanic { code: 7, pc: 0x3000 }),
        );
        bc.on_state_terminated(&mut state, &mut ctx, &TerminationReason::Halted(0));
        assert_eq!(bugs.len(), 2);
        assert_eq!(bugs[0].kind, BugKind::NullDereference);
        assert_eq!(bugs[1].kind, BugKind::KernelPanic);
    }
}
