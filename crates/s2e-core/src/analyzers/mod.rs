//! Stock analyzer plugins (§4.1's "path analyzers").
//!
//! Each analyzer follows the same pattern: the constructor returns the
//! plugin plus a shared results handle (`Arc<Mutex<…>>`) that remains
//! valid after the plugin is moved into the engine. Per-path data lives
//! in [`crate::state::PluginState`] so it forks with the execution state;
//! aggregated results live behind the handle.

mod bugcheck;
mod coverage;
mod energy;
mod memchecker;
mod pathkiller;
mod perf;
mod privacy;
mod racedetector;
mod tracer;

pub use bugcheck::BugCheck;
pub use coverage::{Coverage, CoverageData};
pub use energy::{EnergyModel, EnergyProfile, EnergyResults};
pub use memchecker::{HeapConfig, MemoryChecker};
pub use pathkiller::PathKiller;
pub use perf::{PathProfile, PerformanceProfile, ProfileResults};
pub use privacy::PrivacyLeakDetector;
pub use racedetector::DataRaceDetector;
pub use tracer::{ExecutionTracer, TraceEntry, TraceStore};
