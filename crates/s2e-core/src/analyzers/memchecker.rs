//! Heap memory checker (the paper's `MemoryChecker` analyzer).
//!
//! Tracks the guest kernel's allocation API per path and reports
//! use-after-free, out-of-bounds heap accesses, double frees, and — at
//! path termination — leaks. This is the bug-finding workhorse of DDT+
//! (§6.1.1: "memory leaks, segmentation faults, race conditions, and
//! memory corruption").

use crate::impl_plugin_state;
use crate::plugin::{BugKind, ExecCtx, MemAccess, Plugin};
use crate::state::{ExecState, TerminationReason};
use std::collections::BTreeMap;
use std::ops::Range;

/// Where the heap lives and which syscalls manage it.
#[derive(Clone, Debug)]
pub struct HeapConfig {
    /// Syscall number of `alloc(size) -> ptr` (0 on failure).
    pub alloc_syscall: u32,
    /// Syscall number of `free(ptr)`.
    pub free_syscall: u32,
    /// The heap address range; accesses here must fall inside live
    /// allocations.
    pub heap_range: Range<u32>,
}

/// Per-path heap bookkeeping.
#[derive(Clone, Debug, Default)]
struct HeapState {
    /// Live allocations: base → (size, touched).
    live: BTreeMap<u32, (u32, bool)>,
    /// Freed allocations kept for UAF classification: base → size.
    freed: BTreeMap<u32, u32>,
    /// Size argument of an alloc currently in flight.
    pending_alloc: Option<u32>,
    /// Pointer argument of a free currently in flight.
    pending_free: Option<u32>,
}
impl_plugin_state!(HeapState);

impl HeapState {
    fn containing(map: &BTreeMap<u32, u32>, addr: u32) -> Option<(u32, u32)> {
        map.range(..=addr)
            .next_back()
            .filter(|(base, size)| addr < *base + **size)
            .map(|(b, s)| (*b, *s))
    }

    fn containing_live(map: &BTreeMap<u32, (u32, bool)>, addr: u32) -> Option<u32> {
        map.range(..=addr)
            .next_back()
            .filter(|(base, (size, _))| addr < *base + *size)
            .map(|(b, _)| *b)
    }
}

/// The memory-checker plugin.
#[derive(Debug)]
pub struct MemoryChecker {
    config: HeapConfig,
    /// Report leaks when a path halts normally (leaks on crashed paths
    /// are usually side effects of the crash).
    pub leak_check: bool,
}

impl MemoryChecker {
    /// Creates the checker for the given heap ABI.
    pub fn new(config: HeapConfig) -> MemoryChecker {
        MemoryChecker {
            config,
            leak_check: true,
        }
    }
}

impl Plugin for MemoryChecker {
    fn name(&self) -> &'static str {
        "memchecker"
    }

    fn on_syscall(&mut self, state: &mut ExecState, _ctx: &mut ExecCtx, num: u32, args: [u32; 4]) {
        let hs = state.plugin_state_mut::<HeapState>("memchecker");
        if num == self.config.alloc_syscall {
            hs.pending_alloc = Some(args[0]);
        } else if num == self.config.free_syscall {
            hs.pending_free = Some(args[0]);
        }
    }

    fn on_syscall_return(
        &mut self,
        state: &mut ExecState,
        ctx: &mut ExecCtx,
        num: u32,
        ret: Option<u32>,
    ) {
        let pc = state.machine.cpu.pc;
        if num == self.config.alloc_syscall {
            let hs = state.plugin_state_mut::<HeapState>("memchecker");
            let size = hs.pending_alloc.take().unwrap_or(0);
            if let Some(ptr) = ret {
                if ptr != 0 {
                    hs.live.insert(ptr, (size.max(1), false));
                    hs.freed.remove(&ptr);
                }
            }
        } else if num == self.config.free_syscall {
            let (ptr, double, invalid) = {
                let hs = state.plugin_state_mut::<HeapState>("memchecker");
                let ptr = hs.pending_free.take().unwrap_or(0);
                if ptr == 0 {
                    (ptr, false, false)
                } else if let Some((size, _)) = hs.live.remove(&ptr) {
                    hs.freed.insert(ptr, size);
                    (ptr, false, false)
                } else if hs.freed.contains_key(&ptr) {
                    (ptr, true, false)
                } else {
                    (ptr, false, true)
                }
            };
            if double {
                ctx.report_bug(
                    state,
                    BugKind::DoubleFree,
                    pc,
                    format!("double free of {ptr:#010x}"),
                );
            } else if invalid {
                ctx.report_bug(
                    state,
                    BugKind::HeapOutOfBounds,
                    pc,
                    format!("free of invalid pointer {ptr:#010x}"),
                );
            }
        }
    }

    fn wants_memory_events(&self) -> bool {
        true
    }

    fn on_memory_access(&mut self, state: &mut ExecState, ctx: &mut ExecCtx, a: &MemAccess) {
        if !self.config.heap_range.contains(&a.addr) {
            return;
        }
        // Accesses from inside the kernel (the allocator itself) are
        // exempt: only unit code is checked.
        if state.env_depth() > 0 {
            return;
        }
        let (live_hit, freed_hit) = {
            let hs = state.plugin_state_mut::<HeapState>("memchecker");
            let live = HeapState::containing_live(&hs.live, a.addr);
            if let Some(base) = live {
                hs.live.get_mut(&base).expect("present").1 = true;
            }
            (live.is_some(), HeapState::containing(&hs.freed, a.addr).is_some())
        };
        if live_hit {
            return;
        }
        if freed_hit {
            ctx.report_bug(
                state,
                BugKind::UseAfterFree,
                a.pc,
                format!(
                    "{} of freed heap memory at {:#010x}",
                    if a.is_write { "write" } else { "read" },
                    a.addr
                ),
            );
        } else {
            ctx.report_bug(
                state,
                BugKind::HeapOutOfBounds,
                a.pc,
                format!(
                    "{} outside any live allocation at {:#010x}",
                    if a.is_write { "write" } else { "read" },
                    a.addr
                ),
            );
        }
    }

    fn on_state_terminated(
        &mut self,
        state: &mut ExecState,
        ctx: &mut ExecCtx,
        reason: &TerminationReason,
    ) {
        if !self.leak_check || !matches!(reason, TerminationReason::Halted(_)) {
            return;
        }
        // Only allocations the unit actually used count as leaks: on
        // contract-failure forks (alloc annotated to return 0) the unit
        // never touches the environment-side allocation, and reporting it
        // would be a false positive from the unit's perspective.
        let leaks: Vec<(u32, u32)> = state
            .plugin_state_mut::<HeapState>("memchecker")
            .live
            .iter()
            .filter(|(_, (_, touched))| *touched)
            .map(|(b, (s, _))| (*b, *s))
            .collect();
        let pc = state.machine.cpu.pc;
        for (base, size) in leaks {
            ctx.report_bug(
                state,
                BugKind::MemoryLeak,
                pc,
                format!("{size}-byte allocation at {base:#010x} never freed"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::machine::Machine;

    fn harness() -> (MemoryChecker, ExecState) {
        let checker = MemoryChecker::new(HeapConfig {
            alloc_syscall: 1,
            free_syscall: 2,
            heap_range: 0x10000..0x20000,
        });
        (checker, ExecState::initial(Machine::new()))
    }

    macro_rules! ctx {
        ($bugs:ident, $body:expr) => {{
            let b = s2e_expr::ExprBuilder::new();
            let mut solver = s2e_solver::Solver::new();
            let config = crate::config::EngineConfig::default();
            let mut stats = crate::stats::EngineStats::default();
            let mut $bugs = Vec::new();
            let mut log = Vec::new();
            {
                let mut ctx = ExecCtx {
                    builder: &b,
                    solver: &mut solver,
                    config: &config,
                    stats: &mut stats,
                    bugs: &mut $bugs,
                    log: &mut log,
                };
                #[allow(clippy::redundant_closure_call)]
                ($body)(&mut ctx);
            }
            $bugs
        }};
    }

    fn access(addr: u32, is_write: bool) -> MemAccess {
        MemAccess {
            pc: 0x2000,
            addr,
            width: 4,
            is_write,
            value: Some(0),
            symbolic_addr: false,
            symbolic_value: false,
        }
    }

    #[test]
    fn valid_lifecycle_no_bugs() {
        let (mut mc, mut state) = harness();
        let bugs = ctx!(bugs, |ctx: &mut ExecCtx| {
            mc.on_syscall(&mut state, ctx, 1, [64, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 1, Some(0x10000));
            mc.on_memory_access(&mut state, ctx, &access(0x10010, true));
            mc.on_syscall(&mut state, ctx, 2, [0x10000, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 2, Some(0));
            mc.on_state_terminated(&mut state, ctx, &TerminationReason::Halted(0));
        });
        assert!(bugs.is_empty(), "{bugs:?}");
    }

    #[test]
    fn use_after_free_detected() {
        let (mut mc, mut state) = harness();
        let bugs = ctx!(bugs, |ctx: &mut ExecCtx| {
            mc.on_syscall(&mut state, ctx, 1, [64, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 1, Some(0x10000));
            mc.on_syscall(&mut state, ctx, 2, [0x10000, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 2, Some(0));
            mc.on_memory_access(&mut state, ctx, &access(0x10004, false));
        });
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].kind, BugKind::UseAfterFree);
    }

    #[test]
    fn out_of_bounds_detected() {
        let (mut mc, mut state) = harness();
        let bugs = ctx!(bugs, |ctx: &mut ExecCtx| {
            mc.on_syscall(&mut state, ctx, 1, [8, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 1, Some(0x10000));
            // One past the allocation.
            mc.on_memory_access(&mut state, ctx, &access(0x10008, true));
        });
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].kind, BugKind::HeapOutOfBounds);
    }

    #[test]
    fn double_free_detected() {
        let (mut mc, mut state) = harness();
        let bugs = ctx!(bugs, |ctx: &mut ExecCtx| {
            mc.on_syscall(&mut state, ctx, 1, [8, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 1, Some(0x10000));
            mc.on_syscall(&mut state, ctx, 2, [0x10000, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 2, Some(0));
            mc.on_syscall(&mut state, ctx, 2, [0x10000, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 2, Some(0));
        });
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].kind, BugKind::DoubleFree);
    }

    #[test]
    fn leak_detected_on_clean_halt_only() {
        let (mut mc, mut state) = harness();
        let bugs = ctx!(bugs, |ctx: &mut ExecCtx| {
            mc.on_syscall(&mut state, ctx, 1, [8, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 1, Some(0x10000));
            mc.on_memory_access(&mut state, ctx, &access(0x10000, true));
            mc.on_state_terminated(&mut state, ctx, &TerminationReason::Halted(0));
        });
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].kind, BugKind::MemoryLeak);

        let (mut mc, mut state) = harness();
        let bugs = ctx!(bugs, |ctx: &mut ExecCtx| {
            mc.on_syscall(&mut state, ctx, 1, [8, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 1, Some(0x10000));
            mc.on_memory_access(&mut state, ctx, &access(0x10000, true));
            mc.on_state_terminated(&mut state, ctx, &TerminationReason::Killed(0));
        });
        assert!(bugs.is_empty());
    }

    #[test]
    fn untouched_allocation_not_reported_as_leak() {
        let (mut mc, mut state) = harness();
        let bugs = ctx!(bugs, |ctx: &mut ExecCtx| {
            mc.on_syscall(&mut state, ctx, 1, [8, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 1, Some(0x10000));
            mc.on_state_terminated(&mut state, ctx, &TerminationReason::Halted(0));
        });
        assert!(bugs.is_empty(), "{bugs:?}");
    }

    #[test]
    fn failed_alloc_not_tracked() {
        let (mut mc, mut state) = harness();
        let bugs = ctx!(bugs, |ctx: &mut ExecCtx| {
            mc.on_syscall(&mut state, ctx, 1, [8, 0, 0, 0]);
            mc.on_syscall_return(&mut state, ctx, 1, Some(0)); // alloc failed
            mc.on_state_terminated(&mut state, ctx, &TerminationReason::Halted(0));
        });
        assert!(bugs.is_empty());
    }

    #[test]
    fn kernel_accesses_exempt() {
        let (mut mc, mut state) = harness();
        state.env_stack.push(crate::state::EnvFrame::Marker);
        let bugs = ctx!(bugs, |ctx: &mut ExecCtx| {
            mc.on_memory_access(&mut state, ctx, &access(0x10004, true));
        });
        assert!(bugs.is_empty());
    }
}
