//! Privacy-leak analyzer — the paper's fourth "other use" (§6.1.4).
//!
//! "S2E could be used to analyze binaries for privacy leaks: by
//! monitoring the flow of symbolic input values (e.g., credit card
//! numbers) through the software stack, S2E could tell whether any of
//! the data leaks outside the system."
//!
//! Sensitive inputs are symbolic variables whose names carry a designated
//! prefix. Because symbolic expressions *are* the dataflow (any value
//! derived from a secret mentions the secret's variable), leak detection
//! reduces to checking which variables appear in data written to an
//! output device — no separate taint machinery needed. This in-vivo
//! property — the data is tracked through the kernel and drivers, not
//! just the application — is exactly what §6.1.4 highlights.

use crate::plugin::{BugKind, ExecCtx, Plugin, PortAccess};
use crate::state::ExecState;
use s2e_expr::collect_vars;
use std::collections::HashSet;

/// The privacy-leak plugin.
#[derive(Debug)]
pub struct PrivacyLeakDetector {
    secret_prefix: String,
    /// Ports considered to leave the system (e.g. the NIC data port).
    egress_ports: HashSet<u16>,
    reported: HashSet<(u16, u32)>,
}

impl PrivacyLeakDetector {
    /// Creates the detector. Variables named `<prefix>*` are sensitive;
    /// writes of expressions mentioning them to any of `egress_ports`
    /// are leaks.
    pub fn new(secret_prefix: &str, egress_ports: impl IntoIterator<Item = u16>) -> Self {
        PrivacyLeakDetector {
            secret_prefix: secret_prefix.to_string(),
            egress_ports: egress_ports.into_iter().collect(),
            reported: HashSet::new(),
        }
    }
}

impl Plugin for PrivacyLeakDetector {
    fn name(&self) -> &'static str {
        "privacy"
    }

    fn on_port_access(&mut self, state: &mut ExecState, ctx: &mut ExecCtx, a: &PortAccess) {
        if !a.is_write || !self.egress_ports.contains(&a.port) {
            return;
        }
        let Some(expr) = &a.expr else { return };
        let secrets: Vec<String> = collect_vars(expr)
            .into_iter()
            .filter(|(_, name, _)| name.starts_with(&self.secret_prefix))
            .map(|(_, name, _)| name.to_string())
            .collect();
        if secrets.is_empty() || !self.reported.insert((a.port, a.pc)) {
            return;
        }
        ctx.report_bug(
            state,
            BugKind::PrivacyLeak,
            a.pc,
            format!(
                "data derived from {} leaves the system via port {:#x}",
                secrets.join(", "),
                a.port
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_expr::{ExprBuilder, Width};
    use s2e_vm::machine::Machine;

    fn access(port: u16, expr: Option<s2e_expr::ExprRef>) -> PortAccess {
        PortAccess {
            pc: 0x2000,
            port,
            is_write: true,
            value: None,
            symbolic_value: expr.is_some(),
            expr,
        }
    }

    fn run(f: impl FnOnce(&mut PrivacyLeakDetector, &mut ExecState, &mut ExecCtx)) -> usize {
        let b = ExprBuilder::new();
        let mut solver = s2e_solver::Solver::new();
        let config = crate::config::EngineConfig::default();
        let mut stats = crate::stats::EngineStats::default();
        let mut bugs = Vec::new();
        let mut log = Vec::new();
        {
            let mut ctx = ExecCtx {
                builder: &b,
                solver: &mut solver,
                config: &config,
                stats: &mut stats,
                bugs: &mut bugs,
                log: &mut log,
            };
            let mut det = PrivacyLeakDetector::new("secret_", [0x22]);
            let mut state = ExecState::initial(Machine::new());
            f(&mut det, &mut state, &mut ctx);
        }
        bugs.len()
    }

    #[test]
    fn derived_secret_on_egress_port_leaks() {
        let b = ExprBuilder::new();
        let s = b.var("secret_card", Width::W32);
        // Even a transformed secret (xor-"encrypted" with a constant) is
        // flagged: the variable is still in the expression.
        let derived = b.xor(s, b.constant(0x5a5a, Width::W32));
        let n = run(|det, state, ctx| {
            det.on_port_access(state, ctx, &access(0x22, Some(derived.clone())));
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn non_secret_symbolic_data_is_fine() {
        let b = ExprBuilder::new();
        let x = b.var("packet_len", Width::W32);
        let n = run(|det, state, ctx| {
            det.on_port_access(state, ctx, &access(0x22, Some(x.clone())));
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn secret_to_non_egress_port_is_fine() {
        let b = ExprBuilder::new();
        let s = b.var("secret_pin", Width::W32);
        let n = run(|det, state, ctx| {
            det.on_port_access(state, ctx, &access(0x01, Some(s.clone())));
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn concrete_writes_are_fine() {
        let n = run(|det, state, ctx| {
            det.on_port_access(state, ctx, &access(0x22, None));
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn deduplicated_per_site() {
        let b = ExprBuilder::new();
        let s = b.var("secret_key", Width::W32);
        let n = run(|det, state, ctx| {
            det.on_port_access(state, ctx, &access(0x22, Some(s.clone())));
            det.on_port_access(state, ctx, &access(0x22, Some(s.clone())));
        });
        assert_eq!(n, 1);
    }
}
