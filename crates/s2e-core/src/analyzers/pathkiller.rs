//! The `PathKiller` selector (§4.1).
//!
//! Kills paths that are no longer of interest. The stock policy matches
//! the paper's example: "paths can be killed if a fixed sequence of
//! program counters repeats more than n times; this avoids getting stuck
//! in polling loops". A bound-based policy supports PROFS's
//! best-case-input search, which abandons any path whose running metric
//! exceeds the best known lower bound.

use crate::impl_plugin_state;
use crate::plugin::{ExecCtx, Plugin};
use crate::state::{ExecState, TerminationReason};
use std::sync::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Exit code used by killer-terminated paths.
pub const KILLED_BY_PATHKILLER: u32 = 0xdead;

/// Per-path block-repeat counters.
#[derive(Clone, Debug, Default)]
struct KillerState {
    counts: HashMap<u32, u32>,
}
impl_plugin_state!(KillerState);

type BoundFn = dyn Fn(&ExecState) -> Option<u64> + Send;

/// The path-killer plugin.
pub struct PathKiller {
    repeat_threshold: u32,
    /// Optional metric: paths whose metric exceeds the shared minimum are
    /// killed (lower-bound pruning).
    metric: Option<Box<BoundFn>>,
    best: Arc<Mutex<Option<u64>>>,
    /// Block starts the static pre-pass proved unreachable; entering one
    /// means the path escaped the analyzed CFG and is killed defensively.
    dead_blocks: Option<Arc<BTreeSet<u32>>>,
}

impl std::fmt::Debug for PathKiller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathKiller")
            .field("repeat_threshold", &self.repeat_threshold)
            .finish_non_exhaustive()
    }
}

impl PathKiller {
    /// Kills any path that re-enters the same block more than
    /// `repeat_threshold` times.
    pub fn new(repeat_threshold: u32) -> PathKiller {
        PathKiller {
            repeat_threshold,
            metric: None,
            best: Arc::new(Mutex::new(None)),
            dead_blocks: None,
        }
    }

    /// Adds statically-dead-block pruning: any path entering a block the
    /// constant-propagation pre-pass proved unreachable is killed. On a
    /// sound analysis this never fires — it is a defensive cutoff for
    /// paths that left the analyzed region (e.g. through self-modifying
    /// code the static CFG cannot see).
    pub fn with_dead_blocks(mut self, blocks: Arc<BTreeSet<u32>>) -> PathKiller {
        self.dead_blocks = Some(blocks);
        self
    }

    /// Adds lower-bound pruning: `metric` extracts a running cost from a
    /// state; once any path completes, paths whose cost exceeds the best
    /// completed cost are killed. Returns the shared best-bound cell.
    pub fn with_lower_bound(
        mut self,
        metric: impl Fn(&ExecState) -> Option<u64> + Send + 'static,
    ) -> (PathKiller, Arc<Mutex<Option<u64>>>) {
        self.metric = Some(Box::new(metric));
        let best = Arc::clone(&self.best);
        (self, best)
    }
}

impl Plugin for PathKiller {
    fn name(&self) -> &'static str {
        "pathkiller"
    }

    fn on_block_start(&mut self, state: &mut ExecState, _ctx: &mut ExecCtx, pc: u32) {
        if let Some(dead) = &self.dead_blocks {
            if dead.contains(&pc) {
                state.kill_requested = Some(TerminationReason::Killed(KILLED_BY_PATHKILLER));
                return;
            }
        }
        let threshold = self.repeat_threshold;
        {
            let ks = state.plugin_state_mut::<KillerState>("pathkiller");
            let n = ks.counts.entry(pc).or_insert(0);
            *n += 1;
            if *n > threshold {
                state.kill_requested =
                    Some(TerminationReason::Killed(KILLED_BY_PATHKILLER));
                return;
            }
        }
        if let Some(metric) = &self.metric {
            if let (Some(cost), Some(best)) = (metric(state), *self.best.lock().unwrap()) {
                if cost > best {
                    state.kill_requested =
                        Some(TerminationReason::Killed(KILLED_BY_PATHKILLER));
                }
            }
        }
    }

    fn on_state_terminated(
        &mut self,
        state: &mut ExecState,
        _ctx: &mut ExecCtx,
        reason: &TerminationReason,
    ) {
        // Completed paths update the best bound. Guest-initiated kills
        // (KillPath status reports) count as completion; killer-pruned
        // paths do not.
        let completed = matches!(reason, TerminationReason::Halted(_))
            || matches!(reason, TerminationReason::Killed(c) if *c != KILLED_BY_PATHKILLER);
        if completed {
            if let Some(metric) = &self.metric {
                if let Some(cost) = metric(state) {
                    let mut best = self.best.lock().unwrap();
                    *best = Some(best.map_or(cost, |b| b.min(cost)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::machine::Machine;

    fn ctx_run(f: impl FnOnce(&mut ExecCtx)) {
        let b = s2e_expr::ExprBuilder::new();
        let mut solver = s2e_solver::Solver::new();
        let config = crate::config::EngineConfig::default();
        let mut stats = crate::stats::EngineStats::default();
        let mut bugs = Vec::new();
        let mut log = Vec::new();
        let mut ctx = ExecCtx {
            builder: &b,
            solver: &mut solver,
            config: &config,
            stats: &mut stats,
            bugs: &mut bugs,
            log: &mut log,
        };
        f(&mut ctx);
    }

    #[test]
    fn repeated_block_triggers_kill() {
        ctx_run(|ctx| {
            let mut pk = PathKiller::new(3);
            let mut state = ExecState::initial(Machine::new());
            for _ in 0..3 {
                pk.on_block_start(&mut state, ctx, 0x2000);
                assert!(state.kill_requested.is_none());
            }
            pk.on_block_start(&mut state, ctx, 0x2000);
            assert!(matches!(
                state.kill_requested,
                Some(TerminationReason::Killed(KILLED_BY_PATHKILLER))
            ));
        });
    }

    #[test]
    fn distinct_blocks_do_not_trigger() {
        ctx_run(|ctx| {
            let mut pk = PathKiller::new(2);
            let mut state = ExecState::initial(Machine::new());
            for i in 0..10 {
                pk.on_block_start(&mut state, ctx, 0x2000 + i * 8);
            }
            assert!(state.kill_requested.is_none());
        });
    }

    #[test]
    fn lower_bound_prunes_expensive_paths() {
        ctx_run(|ctx| {
            let (mut pk, best) =
                PathKiller::new(u32::MAX).with_lower_bound(|s| Some(s.instrs_retired));
            let mut cheap = ExecState::initial(Machine::new());
            cheap.instrs_retired = 100;
            pk.on_state_terminated(&mut cheap, ctx, &TerminationReason::Halted(0));
            assert_eq!(*best.lock().unwrap(), Some(100));

            let mut expensive = ExecState::initial(Machine::new());
            expensive.instrs_retired = 500;
            pk.on_block_start(&mut expensive, ctx, 0x2000);
            assert!(expensive.kill_requested.is_some());

            let mut promising = ExecState::initial(Machine::new());
            promising.instrs_retired = 50;
            pk.on_block_start(&mut promising, ctx, 0x2000);
            assert!(promising.kill_requested.is_none());
        });
    }

    #[test]
    fn best_bound_takes_minimum() {
        ctx_run(|ctx| {
            let (mut pk, best) =
                PathKiller::new(u32::MAX).with_lower_bound(|s| Some(s.instrs_retired));
            let mut a = ExecState::initial(Machine::new());
            a.instrs_retired = 300;
            pk.on_state_terminated(&mut a, ctx, &TerminationReason::Halted(0));
            let mut b2 = ExecState::initial(Machine::new());
            b2.instrs_retired = 200;
            pk.on_state_terminated(&mut b2, ctx, &TerminationReason::Halted(0));
            assert_eq!(*best.lock().unwrap(), Some(200));
        });
    }
}
