//! Execution tracer (the paper's `ExecutionTracer` analyzer).
//!
//! Records, per path, the executed blocks, memory accesses, port I/O, and
//! syscalls. Completed-path traces land in a shared [`TraceStore`], where
//! REV+'s offline analysis consumes them (the paper's reverse-engineering
//! pipeline logs "executed instructions, memory and register accesses,
//! and hardware I/O" and post-processes them offline).

use crate::impl_plugin_state;
use crate::plugin::{ExecCtx, MemAccess, Plugin, PortAccess};
use crate::state::{ExecState, StateId, TerminationReason};
use std::sync::Mutex;
use std::ops::Range;
use std::sync::Arc;

/// One event in a path trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEntry {
    /// A translation block started at this PC.
    Block {
        /// Block start address.
        pc: u32,
    },
    /// A memory access.
    Mem {
        /// Instruction PC.
        pc: u32,
        /// Data address.
        addr: u32,
        /// Width in bytes.
        width: u32,
        /// True for stores.
        is_write: bool,
        /// Concrete value if known.
        value: Option<u32>,
    },
    /// A port I/O access (hardware interaction).
    Port {
        /// Instruction PC.
        pc: u32,
        /// Port number.
        port: u16,
        /// True for `Out`.
        is_write: bool,
        /// Concrete value if known.
        value: Option<u32>,
    },
    /// A syscall trap.
    Syscall {
        /// Syscall number.
        num: u32,
    },
}

/// Per-path trace (plugin state).
#[derive(Clone, Debug, Default)]
pub struct PathTrace {
    entries: Vec<TraceEntry>,
}
impl_plugin_state!(PathTrace);

/// Completed traces by state id.
pub type TraceStore = Arc<Mutex<Vec<(StateId, TerminationReason, Vec<TraceEntry>)>>>;

/// The tracer plugin.
#[derive(Debug)]
pub struct ExecutionTracer {
    range: Option<Range<u32>>,
    store: TraceStore,
    max_entries: usize,
}

impl ExecutionTracer {
    /// Creates the tracer. `range` restricts block/memory events to PCs
    /// inside the module of interest; `max_entries` bounds per-path trace
    /// growth.
    pub fn new(range: Option<Range<u32>>, max_entries: usize) -> (ExecutionTracer, TraceStore) {
        let store: TraceStore = Arc::new(Mutex::new(Vec::new()));
        (
            ExecutionTracer {
                range,
                store: Arc::clone(&store),
                max_entries,
            },
            store,
        )
    }

    fn in_range(&self, pc: u32) -> bool {
        self.range.as_ref().map(|r| r.contains(&pc)).unwrap_or(true)
    }

    fn push(&self, state: &mut ExecState, entry: TraceEntry) {
        let max = self.max_entries;
        let t = state.plugin_state_mut::<PathTrace>("tracer");
        if t.entries.len() < max {
            t.entries.push(entry);
        }
    }
}

impl Plugin for ExecutionTracer {
    fn name(&self) -> &'static str {
        "tracer"
    }

    fn on_block_start(&mut self, state: &mut ExecState, _ctx: &mut ExecCtx, pc: u32) {
        if self.in_range(pc) {
            self.push(state, TraceEntry::Block { pc });
        }
    }

    fn wants_memory_events(&self) -> bool {
        true
    }

    fn on_memory_access(&mut self, state: &mut ExecState, _ctx: &mut ExecCtx, a: &MemAccess) {
        if self.in_range(a.pc) {
            self.push(
                state,
                TraceEntry::Mem {
                    pc: a.pc,
                    addr: a.addr,
                    width: a.width,
                    is_write: a.is_write,
                    value: a.value,
                },
            );
        }
    }

    fn on_port_access(&mut self, state: &mut ExecState, _ctx: &mut ExecCtx, a: &PortAccess) {
        if self.in_range(a.pc) {
            self.push(
                state,
                TraceEntry::Port {
                    pc: a.pc,
                    port: a.port,
                    is_write: a.is_write,
                    value: a.value,
                },
            );
        }
    }

    fn on_syscall(&mut self, state: &mut ExecState, _ctx: &mut ExecCtx, num: u32, _args: [u32; 4]) {
        self.push(state, TraceEntry::Syscall { num });
    }

    fn on_state_terminated(
        &mut self,
        state: &mut ExecState,
        _ctx: &mut ExecCtx,
        reason: &TerminationReason,
    ) {
        let entries = std::mem::take(
            &mut state.plugin_state_mut::<PathTrace>("tracer").entries,
        );
        self.store.lock().unwrap().push((state.id, reason.clone(), entries));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::machine::Machine;

    fn with_ctx(f: impl FnOnce(&mut ExecCtx, &mut ExecutionTracer, &mut ExecState, TraceStore)) {
        let b = s2e_expr::ExprBuilder::new();
        let mut solver = s2e_solver::Solver::new();
        let config = crate::config::EngineConfig::default();
        let mut stats = crate::stats::EngineStats::default();
        let mut bugs = Vec::new();
        let mut log = Vec::new();
        let mut ctx = ExecCtx {
            builder: &b,
            solver: &mut solver,
            config: &config,
            stats: &mut stats,
            bugs: &mut bugs,
            log: &mut log,
        };
        let (mut tracer, store) = ExecutionTracer::new(Some(0x2000..0x3000), 1000);
        let mut state = ExecState::initial(Machine::new());
        f(&mut ctx, &mut tracer, &mut state, store);
    }

    #[test]
    fn trace_collects_and_flushes_on_termination() {
        with_ctx(|ctx, tracer, state, store| {
            tracer.on_block_start(state, ctx, 0x2000);
            tracer.on_block_start(state, ctx, 0x9000); // filtered
            tracer.on_syscall(state, ctx, 3, [0; 4]);
            tracer.on_state_terminated(state, ctx, &TerminationReason::Halted(0));
            let s = store.lock().unwrap();
            assert_eq!(s.len(), 1);
            let (_, reason, entries) = &s[0];
            assert_eq!(*reason, TerminationReason::Halted(0));
            assert_eq!(
                entries,
                &vec![
                    TraceEntry::Block { pc: 0x2000 },
                    TraceEntry::Syscall { num: 3 }
                ]
            );
        });
    }

    #[test]
    fn trace_bounded_by_max_entries() {
        let b = s2e_expr::ExprBuilder::new();
        let mut solver = s2e_solver::Solver::new();
        let config = crate::config::EngineConfig::default();
        let mut stats = crate::stats::EngineStats::default();
        let mut bugs = Vec::new();
        let mut log = Vec::new();
        let mut ctx = ExecCtx {
            builder: &b,
            solver: &mut solver,
            config: &config,
            stats: &mut stats,
            bugs: &mut bugs,
            log: &mut log,
        };
        let (mut tracer, store) = ExecutionTracer::new(None, 3);
        let mut state = ExecState::initial(Machine::new());
        for i in 0..10 {
            tracer.on_block_start(&mut state, &mut ctx, 0x2000 + i * 8);
        }
        tracer.on_state_terminated(&mut state, &mut ctx, &TerminationReason::Halted(0));
        assert_eq!(store.lock().unwrap()[0].2.len(), 3);
    }
}
