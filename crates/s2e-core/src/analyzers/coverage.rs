//! Basic-block coverage analyzer.
//!
//! Records the set of distinct translation-block start addresses executed
//! inside a code range of interest, with discovery order and per-block
//! first-seen timestamps — the raw data behind the paper's Table 5 and
//! Fig. 6 (coverage over time) and the feedback signal for the
//! `MaxCoverage` selector.

use crate::plugin::{ExecCtx, Plugin};
use crate::state::ExecState;
use std::sync::Mutex;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Shared coverage results.
#[derive(Debug)]
pub struct CoverageData {
    /// Block start → seconds since analyzer creation at first execution.
    pub first_seen: HashMap<u32, f64>,
    /// Block starts in discovery order.
    pub order: Vec<u32>,
}

impl CoverageData {
    /// Number of distinct blocks covered.
    pub fn covered(&self) -> usize {
        self.first_seen.len()
    }

    /// Coverage fraction relative to `total` blocks of interest.
    pub fn fraction(&self, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.covered() as f64 / total as f64
        }
    }

    /// Number of blocks discovered within the first `secs` seconds.
    pub fn covered_by(&self, secs: f64) -> usize {
        self.first_seen.values().filter(|&&t| t <= secs).count()
    }
}

/// The coverage analyzer plugin.
#[derive(Debug)]
pub struct Coverage {
    range: Option<Range<u32>>,
    start: Instant,
    data: Arc<Mutex<CoverageData>>,
}

impl Coverage {
    /// Creates the analyzer; `range` restricts attention to a module of
    /// interest (e.g. the driver's code segment), `None` covers
    /// everything.
    pub fn new(range: Option<Range<u32>>) -> (Coverage, Arc<Mutex<CoverageData>>) {
        let data = Arc::new(Mutex::new(CoverageData {
            first_seen: HashMap::new(),
            order: Vec::new(),
        }));
        (
            Coverage {
                range,
                start: Instant::now(),
                data: Arc::clone(&data),
            },
            data,
        )
    }
}

impl Plugin for Coverage {
    fn name(&self) -> &'static str {
        "coverage"
    }

    fn on_block_start(&mut self, _state: &mut ExecState, _ctx: &mut ExecCtx, pc: u32) {
        if let Some(r) = &self.range {
            if !r.contains(&pc) {
                return;
            }
        }
        let mut d = self.data.lock().unwrap();
        if let std::collections::hash_map::Entry::Vacant(e) = d.first_seen.entry(pc) {
            let t = self.start.elapsed().as_secs_f64();
            e.insert(t);
            d.order.push(pc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::machine::Machine;

    fn ctx_parts() -> (
        s2e_expr::ExprBuilder,
        s2e_solver::Solver,
        crate::config::EngineConfig,
        crate::stats::EngineStats,
        Vec<crate::plugin::BugReport>,
        Vec<String>,
    ) {
        (
            s2e_expr::ExprBuilder::new(),
            s2e_solver::Solver::new(),
            crate::config::EngineConfig::default(),
            crate::stats::EngineStats::default(),
            Vec::new(),
            Vec::new(),
        )
    }

    #[test]
    fn records_blocks_in_range_once() {
        let (b, mut solver, config, mut stats, mut bugs, mut log) = ctx_parts();
        let mut ctx = ExecCtx {
            builder: &b,
            solver: &mut solver,
            config: &config,
            stats: &mut stats,
            bugs: &mut bugs,
            log: &mut log,
        };
        let (mut cov, data) = Coverage::new(Some(0x2000..0x3000));
        let mut state = ExecState::initial(Machine::new());
        cov.on_block_start(&mut state, &mut ctx, 0x2000);
        cov.on_block_start(&mut state, &mut ctx, 0x2000);
        cov.on_block_start(&mut state, &mut ctx, 0x2008);
        cov.on_block_start(&mut state, &mut ctx, 0x5000); // out of range
        let d = data.lock().unwrap();
        assert_eq!(d.covered(), 2);
        assert_eq!(d.order, vec![0x2000, 0x2008]);
        assert!((d.fraction(4) - 0.5).abs() < 1e-9);
        assert_eq!(d.covered_by(1e9), 2);
    }
}
