//! The plugin interface: selectors and analyzers.
//!
//! S2E's modular architecture (§4) exposes a small set of core events —
//! instruction translation, instruction execution, state forking,
//! exceptions, memory accesses — and lets plugins subscribe. Selectors
//! influence execution (toggle multi-path, kill paths, inject symbolic
//! data); analyzers are passive observers. Both use the same [`Plugin`]
//! trait here; selectors simply mutate the state they are handed.
//!
//! The `onInstrTranslation` / `onInstrExecution` split follows §4.2:
//! during translation (once per block) a plugin may *mark* instructions;
//! the engine then raises execution events only for marked instructions,
//! so unmarked code runs at full speed. Plugins that really want every
//! instruction opt in via [`Plugin::wants_all_instructions`].

use crate::config::EngineConfig;
use crate::state::{ExecState, StateId, TerminationReason};
use crate::stats::EngineStats;
use s2e_expr::{Assignment, ExprBuilder, ExprRef};
use s2e_solver::Solver;
use s2e_vm::isa::{Instr, S2Op};
use std::collections::HashSet;

/// A memory access observed during execution (the `onMemoryAccess` event).
#[derive(Clone, Debug)]
pub struct MemAccess {
    /// PC of the accessing instruction.
    pub pc: u32,
    /// Accessed address (concretized if the pointer was symbolic).
    pub addr: u32,
    /// Access width in bytes.
    pub width: u32,
    /// True for stores.
    pub is_write: bool,
    /// The value read/written, when concrete.
    pub value: Option<u32>,
    /// True if the address was symbolic before concretization.
    pub symbolic_addr: bool,
    /// True if the data value is symbolic.
    pub symbolic_value: bool,
}

/// A port I/O access (hardware interaction).
#[derive(Clone, Debug)]
pub struct PortAccess {
    /// PC of the instruction.
    pub pc: u32,
    /// Port number.
    pub port: u16,
    /// True for `Out`.
    pub is_write: bool,
    /// The value, when concrete.
    pub value: Option<u32>,
    /// True if the value is symbolic.
    pub symbolic_value: bool,
    /// The symbolic expression written/read, when symbolic — lets
    /// taint-style analyzers (e.g. the privacy-leak checker) inspect which
    /// variables reach the device.
    pub expr: Option<ExprRef>,
}

/// Classification of a reported bug.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BugKind {
    /// Null-pointer dereference (null guard page access).
    NullDereference,
    /// Undecodable instruction executed.
    InvalidOpcode,
    /// Guest assertion (`S2Op::Assert`) can fail.
    AssertionFailure,
    /// Guest kernel panicked (the "blue screen" analog).
    KernelPanic,
    /// Access to freed heap memory.
    UseAfterFree,
    /// Heap access outside any live allocation.
    HeapOutOfBounds,
    /// Double free.
    DoubleFree,
    /// Allocation never freed by path end.
    MemoryLeak,
    /// Racy access between interrupt and non-interrupt context.
    DataRace,
    /// Path suspected of unbounded execution.
    UnboundedExecution,
    /// Sensitive data left the system through an output device.
    PrivacyLeak,
}

/// Snapshot of the machine at the moment a bug was reported — the crash
/// dump's register block ("S2E generates crash dumps readable by
/// Microsoft WinDbg", §6.1.1).
#[derive(Clone, Debug)]
pub struct MachineSnapshot {
    /// General registers; `None` where the register held a symbolic
    /// value.
    pub regs: [Option<u32>; 16],
    /// Program counter.
    pub pc: u32,
    /// Instructions retired on the path so far.
    pub instrs_retired: u64,
    /// Environment nesting depth (0 = unit code).
    pub env_depth: usize,
    /// Number of path constraints at the time.
    pub constraints: usize,
}

impl MachineSnapshot {
    /// Captures a snapshot from a state.
    pub fn capture(state: &ExecState) -> MachineSnapshot {
        let mut regs = [None; 16];
        for (r, slot) in regs.iter_mut().enumerate() {
            *slot = state.machine.cpu.reg(r as u8).as_concrete();
        }
        MachineSnapshot {
            regs,
            pc: state.machine.cpu.pc,
            instrs_retired: state.instrs_retired,
            env_depth: state.env_depth(),
            constraints: state.constraints.len(),
        }
    }
}

/// A bug found by an analyzer, with the concrete inputs that reach it
/// (computed from the path constraints, as DDT does for its crash
/// reports).
#[derive(Clone, Debug)]
pub struct BugReport {
    /// Classification.
    pub kind: BugKind,
    /// State in which the bug manifested.
    pub state: StateId,
    /// Guest PC at the bug.
    pub pc: u32,
    /// Human-readable description.
    pub description: String,
    /// A satisfying assignment of the path constraints: concrete inputs
    /// that drive execution to the bug.
    pub inputs: Option<Assignment>,
    /// Machine state at report time (the crash dump's register block).
    pub snapshot: MachineSnapshot,
}

/// Mutable services available to plugins during event callbacks.
pub struct ExecCtx<'a> {
    /// Expression factory (shared by all states).
    pub builder: &'a ExprBuilder,
    /// The constraint solver.
    pub solver: &'a mut Solver,
    /// Engine configuration.
    pub config: &'a EngineConfig,
    /// Engine statistics (plugins may read and bump).
    pub stats: &'a mut EngineStats,
    /// Bug sink.
    pub bugs: &'a mut Vec<BugReport>,
    /// Message log (`S2Op::LogMessage` and plugin output).
    pub log: &'a mut Vec<String>,
}

impl ExecCtx<'_> {
    /// Files a bug report, solving the path constraints for concrete
    /// inputs that reproduce it.
    pub fn report_bug(&mut self, state: &ExecState, kind: BugKind, pc: u32, description: String) {
        let inputs = match self.solver.check(&state.constraints) {
            s2e_solver::SatResult::Sat(m) => Some(m),
            _ => None,
        };
        self.bugs.push(BugReport {
            kind,
            state: state.id,
            pc,
            description,
            inputs,
            snapshot: MachineSnapshot::capture(state),
        });
    }
}

/// Requests made during instruction translation.
#[derive(Debug, Default)]
pub struct MarkRequests {
    marks: HashSet<u32>,
}

impl MarkRequests {
    /// Marks the instruction at `pc` for `onInstrExecution` events.
    pub fn mark(&mut self, pc: u32) {
        self.marks.insert(pc);
    }

    /// Drains the requested marks.
    pub fn take(&mut self) -> HashSet<u32> {
        std::mem::take(&mut self.marks)
    }

    /// True if nothing was marked.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

/// A selector or analyzer plugged into the engine.
///
/// All hooks have empty default bodies: implement only what you need.
#[allow(unused_variables)]
pub trait Plugin: Send {
    /// Unique plugin name; also the key for per-path
    /// [`crate::state::PluginState`].
    fn name(&self) -> &'static str;

    /// If true, `on_instr_execution` fires for *every* instruction, not
    /// just marked ones. Expensive; used by the performance profiler.
    fn wants_all_instructions(&self) -> bool {
        false
    }

    /// If true, blocks containing memory accesses never take the
    /// direct-threaded fast path (which skips `on_memory_access`
    /// dispatch). **Any plugin that implements
    /// [`Plugin::on_memory_access`] must return true here**, or it will
    /// miss accesses in concrete-only blocks.
    fn wants_memory_events(&self) -> bool {
        false
    }

    /// A new instruction is being translated (fires once per cached
    /// block).
    fn on_instr_translation(&mut self, pc: u32, instr: &Instr, marks: &mut MarkRequests) {}

    /// A marked instruction (or any instruction, when
    /// [`Plugin::wants_all_instructions`]) is about to execute.
    fn on_instr_execution(
        &mut self,
        state: &mut ExecState,
        ctx: &mut ExecCtx,
        pc: u32,
        instr: &Instr,
    ) {
    }

    /// A translation block is about to execute on `state`.
    fn on_block_start(&mut self, state: &mut ExecState, ctx: &mut ExecCtx, pc: u32) {}

    /// Execution forked: `state` is the parent (already constrained to the
    /// true branch), `child` the new state.
    fn on_fork(
        &mut self,
        state: &mut ExecState,
        child: &mut ExecState,
        ctx: &mut ExecCtx,
        cond: &ExprRef,
    ) {
    }

    /// A memory access completed.
    fn on_memory_access(&mut self, state: &mut ExecState, ctx: &mut ExecCtx, access: &MemAccess) {}

    /// A port I/O access completed.
    fn on_port_access(&mut self, state: &mut ExecState, ctx: &mut ExecCtx, access: &PortAccess) {}

    /// The unit trapped into the environment (syscall). `args` are r0..r3
    /// best-effort concretized for reporting.
    fn on_syscall(&mut self, state: &mut ExecState, ctx: &mut ExecCtx, num: u32, args: [u32; 4]) {}

    /// A syscall returned to the unit (after consistency conversions).
    /// `ret` is r0 if concrete.
    fn on_syscall_return(
        &mut self,
        state: &mut ExecState,
        ctx: &mut ExecCtx,
        num: u32,
        ret: Option<u32>,
    ) {
    }

    /// An S2E custom opcode executed.
    fn on_custom_opcode(&mut self, state: &mut ExecState, ctx: &mut ExecCtx, op: S2Op) {}

    /// The state is terminating (fires before removal).
    fn on_state_terminated(
        &mut self,
        state: &mut ExecState,
        ctx: &mut ExecCtx,
        reason: &TerminationReason,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_requests_collect() {
        let mut m = MarkRequests::default();
        assert!(m.is_empty());
        m.mark(0x2000);
        m.mark(0x2000);
        m.mark(0x2008);
        let taken = m.take();
        assert_eq!(taken.len(), 2);
        assert!(m.is_empty());
    }

    struct NullPlugin;
    impl Plugin for NullPlugin {
        fn name(&self) -> &'static str {
            "null"
        }
    }

    #[test]
    fn default_hooks_are_noops() {
        // Just exercise the default bodies for object safety.
        let mut p: Box<dyn Plugin> = Box::new(NullPlugin);
        assert_eq!(p.name(), "null");
        assert!(!p.wants_all_instructions());
        let mut marks = MarkRequests::default();
        p.on_instr_translation(0, &Instr::new(s2e_vm::isa::Opcode::Nop, 0, 0, 0, 0), &mut marks);
        assert!(marks.is_empty());
    }
}
