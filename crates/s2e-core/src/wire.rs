//! Portable binary encoding of execution states (DESIGN.md §17).
//!
//! What crosses a process boundary in the distributed tier is a
//! [`CompactState`]: a checkpoint snapshot plus the journal of
//! nondeterministic inputs recorded since — exactly the PR 6 eviction
//! representation, given a wire form here. A checkpoint is a *narrow*
//! `ExecState`: [`ExecState::take_checkpoint`] clears the journal and
//! refresh counter and severs the checkpoint chain before cloning, so a
//! snapshot always has an empty journal, no checkpoint of its own, and
//! no replay cursor. That is what makes it encodable through public
//! state surface alone — everything else is pub fields plus
//! `add_constraint`/`add_soft_constraint`, which rebuild the
//! independence partition on the receiving side.
//!
//! Per-path plugin state is the one unencodable part (`Box<dyn
//! PluginState>`); shipping a state that carries any is a hard *encode*
//! error, never a silent drop. The distributed corpus registers no
//! analyzers, so its states are always clean.
//!
//! Decoding untrusted bytes errors cleanly (`InvalidData` /
//! `UnexpectedEof`); it never panics.

use crate::journal::Journal;
use crate::state::{CompactState, EnvFrame, ExecState, StateId, TerminationReason};
use s2e_expr::wire::{bad_data, decode_expr, encode_expr, write_varint, WireReader};
use s2e_vm::wire::{decode_fault, decode_machine, encode_fault, encode_machine};
use std::io;
use std::sync::Arc;

fn read_u32(r: &mut WireReader<'_>, what: &str) -> io::Result<u32> {
    let v = r.read_varint()?;
    if v > u64::from(u32::MAX) {
        return Err(bad_data(format!("{what} {v:#x} exceeds 32 bits")));
    }
    Ok(v as u32)
}

fn read_bool(r: &mut WireReader<'_>, what: &str) -> io::Result<bool> {
    match r.read_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(bad_data(format!("{what} flag byte {b} is not 0/1"))),
    }
}

fn encode_termination(t: &TerminationReason, out: &mut Vec<u8>) {
    match t {
        TerminationReason::Halted(code) => {
            out.push(0);
            write_varint(out, u64::from(*code));
        }
        TerminationReason::Fault(f) => {
            out.push(1);
            encode_fault(f, out);
        }
        TerminationReason::Killed(code) => {
            out.push(2);
            write_varint(out, u64::from(*code));
        }
        TerminationReason::EnvInconsistency => out.push(3),
        TerminationReason::Infeasible => out.push(4),
        TerminationReason::SolverTimeout => out.push(5),
        TerminationReason::FuelExhausted => out.push(6),
        TerminationReason::MaxDepth => out.push(7),
    }
}

fn decode_termination(r: &mut WireReader<'_>) -> io::Result<TerminationReason> {
    Ok(match r.read_u8()? {
        0 => TerminationReason::Halted(read_u32(r, "halt code")?),
        1 => TerminationReason::Fault(decode_fault(r)?),
        2 => TerminationReason::Killed(read_u32(r, "kill code")?),
        3 => TerminationReason::EnvInconsistency,
        4 => TerminationReason::Infeasible,
        5 => TerminationReason::SolverTimeout,
        6 => TerminationReason::FuelExhausted,
        7 => TerminationReason::MaxDepth,
        t => return Err(bad_data(format!("unknown termination tag {t}"))),
    })
}

fn encode_env_frame(f: &EnvFrame, out: &mut Vec<u8>) {
    match f {
        EnvFrame::Syscall { num, args } => {
            out.push(0);
            write_varint(out, u64::from(*num));
            for a in args {
                write_varint(out, u64::from(*a));
            }
        }
        EnvFrame::Irq { line } => {
            out.push(1);
            write_varint(out, u64::from(*line));
        }
        EnvFrame::Marker => out.push(2),
    }
}

fn decode_env_frame(r: &mut WireReader<'_>) -> io::Result<EnvFrame> {
    Ok(match r.read_u8()? {
        0 => {
            let num = read_u32(r, "syscall num")?;
            let mut args = [0u32; 4];
            for a in &mut args {
                *a = read_u32(r, "syscall arg")?;
            }
            EnvFrame::Syscall { num, args }
        }
        1 => EnvFrame::Irq { line: read_u32(r, "irq line")? },
        2 => EnvFrame::Marker,
        t => return Err(bad_data(format!("unknown env-frame tag {t}"))),
    })
}

fn encode_opt_termination(t: &Option<TerminationReason>, out: &mut Vec<u8>) {
    match t {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            encode_termination(t, out);
        }
    }
}

fn decode_opt_termination(r: &mut WireReader<'_>) -> io::Result<Option<TerminationReason>> {
    match r.read_u8()? {
        0 => Ok(None),
        1 => Ok(Some(decode_termination(r)?)),
        t => Err(bad_data(format!("unknown option tag {t}"))),
    }
}

/// Appends a checkpoint snapshot of an execution state.
///
/// # Errors
///
/// Fails if `state` is not in checkpoint form (non-empty journal, a
/// checkpoint of its own, or an armed replay cursor), carries per-path
/// plugin state, or has a device with no wire encoding.
pub fn encode_checkpoint(state: &ExecState, out: &mut Vec<u8>) -> io::Result<()> {
    if !state.journal().is_empty()
        || state.checkpoint().is_some()
        || state.forks_since_checkpoint() != 0
        || state.replaying()
    {
        return Err(bad_data("state is not in checkpoint form"));
    }
    if state.plugin_state_count() != 0 {
        return Err(bad_data(format!(
            "state {} carries plugin state, which has no wire encoding",
            state.id
        )));
    }
    write_varint(out, state.id.0);
    match state.parent {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            write_varint(out, p.0);
        }
    }
    encode_machine(&state.machine, out)?;
    write_varint(out, state.constraints.len() as u64);
    for c in &state.constraints {
        encode_expr(c, out);
    }
    write_varint(out, state.soft_constraints.len() as u64);
    for &i in &state.soft_constraints {
        write_varint(out, i as u64);
    }
    out.push(state.forking_enabled as u8);
    write_varint(out, state.env_stack.len() as u64);
    for f in &state.env_stack {
        encode_env_frame(f, out);
    }
    write_varint(out, u64::from(state.depth));
    write_varint(out, u64::from(state.forks_on_path));
    write_varint(out, state.blocks_on_path);
    write_varint(out, state.instrs_retired);
    write_varint(out, state.sym_time_accum);
    encode_opt_termination(&state.kill_requested, out);
    encode_opt_termination(&state.status, out);
    Ok(())
}

/// Decodes a checkpoint written by [`encode_checkpoint`].
///
/// Constraints are re-added through `add_constraint` /
/// `add_soft_constraint`, so the independence partition is rebuilt
/// identical to the source state's.
pub fn decode_checkpoint(r: &mut WireReader<'_>) -> io::Result<ExecState> {
    let id = StateId(r.read_varint()?);
    let parent = match r.read_u8()? {
        0 => None,
        1 => Some(StateId(r.read_varint()?)),
        t => return Err(bad_data(format!("unknown option tag {t}"))),
    };
    let machine = decode_machine(r)?;
    let mut state = ExecState::initial(machine);
    state.id = id;
    state.parent = parent;
    let n_constraints = r.read_len(1 << 24, "constraint list")?;
    let mut constraints = Vec::with_capacity(n_constraints.min(1024));
    for _ in 0..n_constraints {
        constraints.push(decode_expr(r)?);
    }
    let n_soft = r.read_len(n_constraints as u64, "soft-constraint list")?;
    let mut soft = Vec::with_capacity(n_soft);
    for _ in 0..n_soft {
        let i = r.read_varint()? as usize;
        if i >= n_constraints || soft.last().is_some_and(|&last| i <= last) {
            return Err(bad_data(format!("soft-constraint index {i} invalid")));
        }
        soft.push(i);
    }
    let mut soft_iter = soft.iter().peekable();
    for (i, c) in constraints.into_iter().enumerate() {
        if soft_iter.peek() == Some(&&i) {
            soft_iter.next();
            state.add_soft_constraint(c);
        } else {
            state.add_constraint(c);
        }
    }
    state.forking_enabled = read_bool(r, "forking_enabled")?;
    let n_env = r.read_len(1 << 16, "env stack")?;
    for _ in 0..n_env {
        state.env_stack.push(decode_env_frame(r)?);
    }
    state.depth = read_u32(r, "depth")?;
    state.forks_on_path = read_u32(r, "forks_on_path")?;
    state.blocks_on_path = r.read_varint()?;
    state.instrs_retired = r.read_varint()?;
    state.sym_time_accum = r.read_varint()?;
    state.kill_requested = decode_opt_termination(r)?;
    state.status = decode_opt_termination(r)?;
    Ok(state)
}

/// Appends a [`CompactState`] — the unit the coordinator queues and
/// ships between worker processes.
pub fn encode_compact(c: &CompactState, out: &mut Vec<u8>) -> io::Result<()> {
    write_varint(out, c.id.0);
    match c.parent {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            write_varint(out, p.0);
        }
    }
    write_varint(out, u64::from(c.depth));
    write_varint(out, u64::from(c.forks_on_path));
    write_varint(out, c.blocks_on_path);
    write_varint(out, u64::from(c.forks_since_checkpoint));
    match c.fingerprint {
        None => out.push(0),
        Some(fp) => {
            out.push(1);
            write_varint(out, fp);
        }
    }
    c.journal.encode_wire(out);
    encode_checkpoint(&c.checkpoint, out)
}

/// Decodes a compact state written by [`encode_compact`].
pub fn decode_compact(r: &mut WireReader<'_>) -> io::Result<CompactState> {
    let id = StateId(r.read_varint()?);
    let parent = match r.read_u8()? {
        0 => None,
        1 => Some(StateId(r.read_varint()?)),
        t => return Err(bad_data(format!("unknown option tag {t}"))),
    };
    let depth = read_u32(r, "depth")?;
    let forks_on_path = read_u32(r, "forks_on_path")?;
    let blocks_on_path = r.read_varint()?;
    let forks_since_checkpoint = read_u32(r, "forks_since_checkpoint")?;
    let fingerprint = match r.read_u8()? {
        0 => None,
        1 => Some(r.read_varint()?),
        t => return Err(bad_data(format!("unknown option tag {t}"))),
    };
    let journal = Journal::decode_wire(r)?;
    let checkpoint = decode_checkpoint(r)?;
    if blocks_on_path < checkpoint.blocks_on_path {
        return Err(bad_data(format!(
            "compact state claims {blocks_on_path} blocks but its checkpoint already has {}",
            checkpoint.blocks_on_path
        )));
    }
    Ok(CompactState {
        id,
        parent,
        depth,
        forks_on_path,
        blocks_on_path,
        forks_since_checkpoint,
        fingerprint,
        journal,
        checkpoint: Arc::new(checkpoint),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_expr::{ExprBuilder, Width};
    use s2e_vm::Machine;

    fn sample_state() -> ExecState {
        let b = ExprBuilder::new();
        let mut s = ExecState::initial(Machine::new());
        s.id = StateId(42);
        s.parent = Some(StateId(7));
        s.machine.cpu.pc = 0x3000;
        s.machine.mem.write_u32(0x5000, 0xabcd).unwrap();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        s.add_constraint(b.ult(x.clone(), b.constant(5, Width::W8)));
        s.add_soft_constraint(b.eq(y.clone(), b.constant(1, Width::W8)));
        s.add_constraint(b.ne(x, y));
        s.env_stack.push(EnvFrame::Syscall { num: 3, args: [1, 2, 3, 4] });
        s.env_stack.push(EnvFrame::Irq { line: 1 });
        s.depth = 4;
        s.forks_on_path = 2;
        s.blocks_on_path = 99;
        s.instrs_retired = 1234;
        s.sym_time_accum = 5;
        s
    }

    #[test]
    fn checkpoint_round_trip_preserves_fingerprint() {
        let s = sample_state();
        let mut buf = Vec::new();
        encode_checkpoint(&s, &mut buf).unwrap();
        let mut r = WireReader::new(&buf);
        let back = decode_checkpoint(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.id, s.id);
        assert_eq!(back.parent, s.parent);
        assert_eq!(back.fingerprint(), s.fingerprint());
        assert_eq!(back.soft_constraints, s.soft_constraints);
        assert_eq!(back.partition.components().len(), s.partition.components().len());
    }

    #[test]
    fn non_checkpoint_states_refuse_to_encode() {
        let mut with_journal = sample_state();
        with_journal.record_feasible(true);
        assert!(encode_checkpoint(&with_journal, &mut Vec::new()).is_err());

        let mut with_checkpoint = sample_state();
        with_checkpoint.take_checkpoint();
        assert!(encode_checkpoint(&with_checkpoint, &mut Vec::new()).is_err());
    }

    #[test]
    fn compact_round_trip_with_journal_suffix() {
        let mut s = sample_state();
        s.take_checkpoint();
        s.record_feasible(true);
        s.record_concretize(7);
        s.record_var_ids(&[900, 901]);
        s.blocks_on_path += 3;
        s.forks_on_path += 1;
        s.count_fork_toward_checkpoint();
        let compact = s.into_compact(true);
        let mut buf = Vec::new();
        encode_compact(&compact, &mut buf).unwrap();
        let mut r = WireReader::new(&buf);
        let back = decode_compact(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.id, compact.id);
        assert_eq!(back.fingerprint, compact.fingerprint);
        assert_eq!(back.journal.event_count(), 2);
        assert_eq!(back.journal.var_ids(), vec![900, 901]);
        assert_eq!(back.forks_since_checkpoint, 1);
        assert_eq!(back.checkpoint.fingerprint(), compact.checkpoint.fingerprint());
        assert_eq!(back.checkpoint_distance(), compact.checkpoint_distance());
    }

    #[test]
    fn truncated_compact_errors_cleanly() {
        let mut s = sample_state();
        s.take_checkpoint();
        let compact = s.into_compact(false);
        let mut buf = Vec::new();
        encode_compact(&compact, &mut buf).unwrap();
        for cut in [0, 1, buf.len() / 3, buf.len() / 2, buf.len() - 1] {
            assert!(decode_compact(&mut WireReader::new(&buf[..cut])).is_err());
        }
        // Garbage prefix.
        let mut garbage = vec![0xff; 64];
        garbage.extend_from_slice(&buf);
        assert!(decode_compact(&mut WireReader::new(&garbage)).is_err());
    }
}
