//! A Chase–Lev work-stealing deque, std-only.
//!
//! The lock-free backbone of the deque scheduler (DESIGN.md §12): each
//! parallel worker owns one deque and pushes/pops its fork-overflow
//! states on the *bottom* without ever taking a lock, while idle workers
//! steal single states off the *top* with one CAS. The only mutex in the
//! scheduler guards the park path (all deques empty), never the data
//! path.
//!
//! This is the algorithm of Chase & Lev ("Dynamic circular work-stealing
//! deque", SPAA'05) with the memory orderings of Lê, Pop, Cohen &
//! Zappa Nardelli ("Correct and efficient work-stealing for weak memory
//! models", PPoPP'13). Values are heap-boxed and the ring stores raw
//! pointers in `AtomicPtr` slots, which keeps every racy slot access a
//! single atomic word — no torn reads, no `MaybeUninit`.
//!
//! Ownership protocol (the entire unsafe surface):
//!
//! - every pointer stored in a slot comes from [`Box::into_raw`] in
//!   [`Worker::push`];
//! - a logical index is *claimed* exactly once — by the owner's `pop`
//!   (which first lowers `bottom`, then wins any race for the last item
//!   with a CAS on `top`) or by exactly one stealer's successful CAS on
//!   `top` — and only the claimant calls [`Box::from_raw`];
//! - retired ring buffers (outgrown by [`Worker::push`]) are kept alive
//!   until the deque itself drops, because a stalled stealer may still
//!   read a slot of an old buffer; the grow copy preserves values at
//!   their logical indices, so such a read is stale-but-correct and the
//!   CAS on `top` decides whether it wins the element.
//!
//! ```
//! let (w, s) = s2e_core::deque::deque::<u32>();
//! w.push(1);
//! w.push(2);
//! assert_eq!(w.pop(), Some(2)); // owner side is LIFO
//! assert_eq!(s.steal().success(), Some(1)); // stealers take the top
//! ```

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Initial ring capacity (slots). Grows by doubling; 32 is enough that
/// steady-state exploration with default `max_local_states` never grows.
const INITIAL_CAPACITY: usize = 32;

/// One ring buffer: a power-of-two array of pointer slots addressed by
/// logical index modulo capacity. Buffers are immutable in size; growing
/// allocates a bigger one and retires this one.
struct Buffer<T> {
    mask: u64,
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Buffer<T> {
    fn new(capacity: usize) -> Buffer<T> {
        debug_assert!(capacity.is_power_of_two());
        let slots: Vec<AtomicPtr<T>> = (0..capacity)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Buffer {
            mask: capacity as u64 - 1,
            slots: slots.into_boxed_slice(),
        }
    }

    fn capacity(&self) -> u64 {
        self.mask + 1
    }

    fn slot(&self, index: u64) -> &AtomicPtr<T> {
        &self.slots[(index & self.mask) as usize]
    }
}

/// State shared by the [`Worker`] and its [`Stealer`]s.
struct Inner<T> {
    /// Next index stealers claim. Monotonically increasing; advanced
    /// only by successful CAS (stealers, and the owner when it races
    /// for the last element).
    top: AtomicU64,
    /// Next index the owner pushes at. Written only by the owner.
    bottom: AtomicU64,
    /// The current ring. Swapped only by the owner (grow); read racily
    /// by stealers, which is why old buffers must outlive them.
    buffer: AtomicPtr<Buffer<T>>,
    /// Outgrown buffers, freed on drop. Only the owner pushes here, but
    /// drop can run on any thread, hence the mutex (never contended on
    /// the data path).
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the raw pointers are owned boxes handed between threads under
// the claim protocol above; T crossing threads needs T: Send, nothing
// more (no &T is ever shared).
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: the last handle is going away, so plain
        // loads are race-free here.
        let top = self.top.load(Ordering::Relaxed);
        let bottom = self.bottom.load(Ordering::Relaxed);
        let buffer = self.buffer.load(Ordering::Relaxed);
        for i in top..bottom {
            // SAFETY: indices [top, bottom) are unclaimed pushed items;
            // each was Box::into_raw exactly once and never from_raw.
            unsafe {
                drop(Box::from_raw((*buffer).slot(i).load(Ordering::Relaxed)));
            }
        }
        // SAFETY: the current buffer and every retired one were leaked
        // from Box::into_raw by new()/grow() and never freed since.
        unsafe {
            drop(Box::from_raw(buffer));
            for &old in self.retired.lock().unwrap().iter() {
                drop(Box::from_raw(old));
            }
        }
    }
}

/// The owner's handle: lock-free `push`/`pop` on the deque bottom.
/// `Send` (each parallel worker thread takes its own) but deliberately
/// not `Sync` — the algorithm requires a single owner.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// `Cell` is `Send + !Sync`, which is exactly the owner contract.
    _single_owner: PhantomData<Cell<()>>,
}

/// A thief's handle: `steal` takes one element off the deque top with a
/// CAS. Clone freely; every clone races against the others.
#[derive(Clone)]
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

/// Outcome of a [`Stealer::steal`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race (another thief, or the owner taking the last item);
    /// the deque may still be non-empty — retry or move on.
    Retry,
    /// Stole the top element.
    Success(T),
}

impl<T> Steal<T> {
    /// The stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

/// Creates an empty deque, returning the owner handle and a cloneable
/// stealer handle.
pub fn deque<T: Send>() -> (Worker<T>, Stealer<T>) {
    let inner = Arc::new(Inner {
        top: AtomicU64::new(0),
        bottom: AtomicU64::new(0),
        buffer: AtomicPtr::new(Box::into_raw(Box::new(Buffer::new(INITIAL_CAPACITY)))),
        retired: Mutex::new(Vec::new()),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
            _single_owner: PhantomData,
        },
        Stealer { inner },
    )
}

impl<T: Send> Worker<T> {
    /// Pushes a value on the bottom. Lock-free and wait-free except for
    /// the (rare, owner-only) buffer grow.
    pub fn push(&self, value: T) {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        // Only the owner swaps the buffer, so a relaxed self-read is
        // always current.
        let mut buffer = inner.buffer.load(Ordering::Relaxed);
        // SAFETY: buffers are freed only at drop; this handle keeps the
        // deque alive.
        if b - t >= unsafe { (*buffer).capacity() } {
            buffer = self.grow(t, b, buffer);
        }
        let ptr = Box::into_raw(Box::new(value));
        // SAFETY: as above; slot (b mod cap) cannot hold an unclaimed
        // element because b - top < capacity was just established and
        // top never decreases.
        unsafe { (*buffer).slot(b).store(ptr, Ordering::Relaxed) };
        // Publish the slot before the new bottom: a stealer that reads
        // bottom > t is guaranteed to see the pointer.
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops the most recently pushed value (LIFO), racing stealers only
    /// for the very last element.
    pub fn pop(&self) -> Option<T> {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        if b == inner.top.load(Ordering::Relaxed) {
            // Owner-exact bottom equals a top that can only have grown:
            // definitely empty, and b-1 below would underflow at 0.
            return None;
        }
        let b = b - 1;
        inner.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the bottom write against the top read
        // below, pairing with the fence in steal(): either a concurrent
        // thief sees the lowered bottom and backs off, or we see its
        // incremented top and race with a CAS.
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        let buffer = inner.buffer.load(Ordering::Relaxed);
        if t < b {
            // More than one element: the bottom one is ours alone.
            // SAFETY: index b is published, unclaimed, and now
            // unreachable to stealers (top can reach at most b - 1 + 1).
            let ptr = unsafe { (*buffer).slot(b).load(Ordering::Relaxed) };
            return Some(unsafe { *Box::from_raw(ptr) });
        }
        let result = if t == b {
            // Exactly one element: win it with the same CAS stealers
            // use, so exactly one side claims index t.
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS claimed index t == b uniquely.
                let ptr = unsafe { (*buffer).slot(b).load(Ordering::Relaxed) };
                Some(unsafe { *Box::from_raw(ptr) })
            } else {
                None
            }
        } else {
            // A thief emptied the deque after our first read.
            None
        };
        // Either way the deque is now empty at bottom == top == t + 1
        // (CAS won or lost — the loser's index is gone too).
        inner.bottom.store(t + 1, Ordering::Relaxed);
        result
    }

    /// True if the deque currently holds no elements (owner-exact).
    pub fn is_empty(&self) -> bool {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        b <= t
    }

    /// Doubles the ring, copying live indices `[t, b)` into the new
    /// buffer at the same logical positions, and retires the old buffer
    /// (stalled stealers may still be reading it).
    fn grow(&self, t: u64, b: u64, old: *mut Buffer<T>) -> *mut Buffer<T> {
        // SAFETY: old is the live buffer; only the owner grows.
        let new = Box::new(Buffer::new((unsafe { (*old).capacity() } as usize) * 2));
        for i in t..b {
            // SAFETY: both buffers alive; indices in [t, b) are
            // published and unclaimed, their slots hold valid pointers.
            unsafe {
                new.slot(i)
                    .store((*old).slot(i).load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        let new = Box::into_raw(new);
        self.inner.buffer.store(new, Ordering::Release);
        self.inner.retired.lock().unwrap().push(old);
        new
    }
}

impl<T: Send> Stealer<T> {
    /// Attempts to steal the top element.
    pub fn steal(&self) -> Steal<T> {
        let inner = &self.inner;
        let t = inner.top.load(Ordering::Acquire);
        // Pairs with the fence in pop(): see the owner's lowered bottom
        // or let the owner see our CAS.
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Load the buffer *after* reading a bottom that covers index t;
        // if the owner grew since, the retired buffer still holds the
        // correct value for t (grow copies, never clears, and the owner
        // never writes a retired buffer again).
        let buffer = inner.buffer.load(Ordering::Acquire);
        // SAFETY: buffers live until drop. Read the candidate before
        // claiming it — after a successful CAS the owner may recycle
        // the slot for a new push.
        let ptr = unsafe { (*buffer).slot(t).load(Ordering::Relaxed) };
        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: the CAS claimed index t uniquely, and ptr was the
            // value published there.
            Steal::Success(unsafe { *Box::from_raw(ptr) })
        } else {
            Steal::Retry
        }
    }

    /// A racy emptiness check (may be stale by the time it returns):
    /// used by parked workers re-scanning for work.
    pub fn is_empty(&self) -> bool {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        b <= t
    }

    /// A racy element count (stale the moment it returns); observability
    /// queue-depth sampling only.
    pub fn len(&self) -> usize {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        b.saturating_sub(t) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn owner_is_lifo_stealer_takes_oldest() {
        let (w, s) = deque::<u32>();
        assert!(w.is_empty());
        assert!(s.is_empty());
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.len(), 3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (w, s) = deque::<usize>();
        let n = INITIAL_CAPACITY * 4 + 7;
        for i in 0..n {
            w.push(i);
        }
        assert_eq!(s.len(), n);
        // Stealers drain FIFO from the top across the grown buffer.
        for i in 0..n {
            assert_eq!(s.steal().success(), Some(i));
        }
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn drop_frees_unclaimed_elements() {
        // Leak-checked implicitly under miri-like tooling; here we at
        // least verify drops run by counting them.
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (w, s) = deque::<Counted>();
        for _ in 0..10 {
            w.push(Counted);
        }
        drop(w.pop()); // one claimed by the owner
        drop(s.steal().success()); // one claimed by a thief
        drop(w);
        drop(s);
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
    }

    /// Every pushed element is claimed exactly once across one owner
    /// (push/pop) and several concurrent stealers, including through
    /// buffer growth — the conservation property the scheduler's
    /// `exports == steals + reclaims + leftover` invariant rests on.
    #[test]
    fn concurrent_conservation() {
        const PER_ROUND: u64 = 500;
        const ROUNDS: u64 = 8;
        const THIEVES: usize = 3;
        let (w, s) = deque::<u64>();
        let popped = std::thread::scope(|scope| {
            let stolen: Vec<_> = (0..THIEVES)
                .map(|_| {
                    let s = s.clone();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        let mut misses = 0u32;
                        // Spin until the owner is done and the deque
                        // stays empty.
                        while misses < 1_000 {
                            match s.steal() {
                                Steal::Success(v) => {
                                    got.push(v);
                                    misses = 0;
                                }
                                Steal::Retry => std::hint::spin_loop(),
                                Steal::Empty => {
                                    misses += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            let mut popped = Vec::new();
            for round in 0..ROUNDS {
                for i in 0..PER_ROUND {
                    w.push(round * PER_ROUND + i);
                }
                // Pop roughly half back, interleaved with the thieves.
                for _ in 0..PER_ROUND / 2 {
                    if let Some(v) = w.pop() {
                        popped.push(v);
                    }
                }
            }
            while let Some(v) = w.pop() {
                popped.push(v);
            }
            for h in stolen {
                popped.extend(h.join().unwrap());
            }
            popped
        });
        let mut all = popped;
        all.sort_unstable();
        let expect: Vec<u64> = (0..ROUNDS * PER_ROUND).collect();
        assert_eq!(all, expect, "every element claimed exactly once");
    }

    /// The owner and one thief racing for single elements: exactly one
    /// side wins each, none duplicated, none lost.
    #[test]
    fn last_element_race_is_exclusive() {
        let (w, s) = deque::<u64>();
        let won = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let thief = scope.spawn(|| {
                let mut got = 0usize;
                for _ in 0..20_000 {
                    if let Steal::Success(_) = s.steal() {
                        got += 1;
                    }
                }
                got
            });
            let mut own = 0usize;
            for i in 0..10_000u64 {
                w.push(i);
                if w.pop().is_some() {
                    own += 1;
                }
            }
            // Whatever the thief didn't take while racing, we drain now.
            while w.pop().is_some() {
                own += 1;
            }
            let stolen = thief.join().unwrap();
            won.store(own + stolen, Ordering::Relaxed);
        });
        assert_eq!(won.load(Ordering::Relaxed), 10_000);
    }
}
