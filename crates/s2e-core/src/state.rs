//! Execution states: one forkable snapshot of the entire system per path.

use s2e_expr::ExprRef;
use s2e_solver::ConstraintPartition;
use s2e_vm::cpu::FaultKind;
use s2e_vm::machine::Machine;
use std::collections::HashMap;
use std::fmt;

/// Identifier of an execution state (unique within an engine).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(pub u64);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Why a path stopped executing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TerminationReason {
    /// The guest executed `Halt`.
    Halted(u32),
    /// A machine fault (crash).
    Fault(FaultKind),
    /// A plugin or the guest (`S2Op::KillPath`) killed the path.
    Killed(u32),
    /// Local consistency was violated: the environment branched on
    /// symbolic data injected into or derived by the unit (paper §3.2.2 —
    /// the path must be aborted to preserve LC).
    EnvInconsistency,
    /// The path's constraints became unsatisfiable (dead path).
    Infeasible,
    /// The solver gave up on this path.
    SolverTimeout,
    /// Per-path instruction budget exhausted.
    FuelExhausted,
    /// Fork-depth bound reached.
    MaxDepth,
}

impl TerminationReason {
    /// True for reasons that indicate a crash-like outcome.
    pub fn is_crash(&self) -> bool {
        matches!(self, TerminationReason::Fault(_))
    }
}

/// Entry of the unit/environment boundary stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvFrame {
    /// Entered the environment through a syscall trap; holds the syscall
    /// number and the concrete-or-symbolic argument snapshot (r0..r3) at
    /// entry time.
    Syscall {
        /// Syscall number.
        num: u32,
        /// r0..r3 at trap time, concretized best-effort for reporting.
        args: [u32; 4],
    },
    /// Entered an interrupt handler.
    Irq {
        /// IRQ line.
        line: u32,
    },
    /// Entered environment code marked by `S2Op::EnterEnv`.
    Marker,
}

/// Per-path plugin state (the paper's `PluginState`, §4.2): cloned with
/// the execution state on every fork.
pub trait PluginState: fmt::Debug + Send {
    /// Clones the state (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn PluginState>;

    /// Upcast for typed access.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast for typed access.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl Clone for Box<dyn PluginState> {
    fn clone(&self) -> Box<dyn PluginState> {
        self.clone_box()
    }
}

/// One execution state: the complete machine plus path constraints and
/// per-path analysis state.
///
/// Forking a state clones everything; memory is copy-on-write so the cost
/// is proportional to what the child subsequently writes, not to machine
/// size (paper §5).
#[derive(Clone, Debug)]
pub struct ExecState {
    /// Unique id.
    pub id: StateId,
    /// Parent state, if forked.
    pub parent: Option<StateId>,
    /// The machine snapshot.
    pub machine: Machine,
    /// Hard path constraints (boolean expressions, conjoined).
    pub constraints: Vec<ExprRef>,
    /// `constraints`, pre-partitioned into independence components
    /// (grouped by shared variables) — maintained incrementally by
    /// [`ExecState::add_constraint`] and cloned with the state on fork,
    /// so fork-time feasibility checks can hand the solver only the
    /// component(s) a branch condition touches
    /// ([`s2e_solver::Solver::may_be_true_in`]). Constraints are never
    /// retracted, so the two views cannot drift.
    pub partition: ConstraintPartition,
    /// Indices into `constraints` of *soft* constraints — added by
    /// concretization at the symbolic→concrete boundary rather than by
    /// guest branches (§2.2). SC-SE can retract them; stricter models
    /// treat them as hard.
    pub soft_constraints: Vec<usize>,
    /// Multi-path execution toggle (`S2ENA`/`S2DIS` and selectors).
    pub forking_enabled: bool,
    /// Unit/environment boundary stack (syscalls, IRQs, markers).
    pub env_stack: Vec<EnvFrame>,
    /// Fork depth.
    pub depth: u32,
    /// Forks this path has survived (parent or child side) — the
    /// numerator of [`ExecState::subtree_estimate`].
    pub forks_on_path: u32,
    /// Translation blocks executed on this path — the fork-rate
    /// denominator of [`ExecState::subtree_estimate`].
    pub blocks_on_path: u64,
    /// Instructions retired on this path.
    pub instrs_retired: u64,
    /// Fractional symbolic-instruction cycles not yet charged to the
    /// virtual clock (the §5 symbolic-time slowdown remainder).
    pub sym_time_accum: u64,
    /// Set by plugins to request termination of this path; honored by the
    /// engine after the current block.
    pub kill_requested: Option<TerminationReason>,
    /// Termination, once decided.
    pub status: Option<TerminationReason>,
    /// Per-path plugin state, keyed by plugin name.
    plugin_state: HashMap<&'static str, Box<dyn PluginState>>,
}

impl ExecState {
    /// Creates the initial state around a machine.
    pub fn initial(machine: Machine) -> ExecState {
        ExecState {
            id: StateId(0),
            parent: None,
            machine,
            constraints: Vec::new(),
            partition: ConstraintPartition::new(),
            soft_constraints: Vec::new(),
            forking_enabled: true,
            env_stack: Vec::new(),
            depth: 0,
            forks_on_path: 0,
            blocks_on_path: 0,
            instrs_retired: 0,
            sym_time_accum: 0,
            kill_requested: None,
            status: None,
            plugin_state: HashMap::new(),
        }
    }

    /// True while the path can still execute.
    pub fn is_active(&self) -> bool {
        self.status.is_none() && self.machine.cpu.is_running()
    }

    /// Nesting depth in environment code (0 = executing the unit).
    pub fn env_depth(&self) -> usize {
        self.env_stack.len()
    }

    /// True if currently handling an interrupt.
    pub fn in_irq(&self) -> bool {
        self.env_stack
            .iter()
            .any(|f| matches!(f, EnvFrame::Irq { .. }))
    }

    /// Adds a hard path constraint.
    pub fn add_constraint(&mut self, c: ExprRef) {
        self.partition.add(c.clone());
        self.constraints.push(c);
    }

    /// Adds a soft constraint (from boundary concretization).
    pub fn add_soft_constraint(&mut self, c: ExprRef) {
        self.soft_constraints.push(self.constraints.len());
        self.partition.add(c.clone());
        self.constraints.push(c);
    }

    /// Number of soft constraints on this path.
    pub fn soft_constraint_count(&self) -> usize {
        self.soft_constraints.len()
    }

    /// Fetches (or lazily initializes) this path's state for a plugin.
    pub fn plugin_state_mut<T: PluginState + Default + 'static>(
        &mut self,
        plugin: &'static str,
    ) -> &mut T {
        self.plugin_state
            .entry(plugin)
            .or_insert_with(|| Box::new(T::default()))
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("plugin state type mismatch")
    }

    /// Read-only access to a plugin's per-path state, if initialized.
    pub fn plugin_state<T: PluginState + 'static>(&self, plugin: &'static str) -> Option<&T> {
        self.plugin_state
            .get(plugin)
            .and_then(|b| b.as_any().downcast_ref::<T>())
    }

    /// Creates a child state for a fork; the caller sets PC/registers and
    /// the differing constraint.
    pub fn fork_child(&self, id: StateId) -> ExecState {
        let mut child = self.clone();
        child.id = id;
        child.parent = Some(self.id);
        child.depth = self.depth + 1;
        child
    }

    /// Deterministic integer estimate of the size of the subtree rooted
    /// at this state, used by `Engine::detach_overflow` to pick export
    /// victims (DESIGN.md §12): a path that has been forking frequently
    /// per block executed, and is still shallow, is likely to keep
    /// spawning work, so exporting it moves the most future work per
    /// migrated state.
    ///
    /// `(forks + 1) << 20` over `(blocks + 1) * (depth + 1)`: the fork
    /// *rate* rewards recently-branchy paths, the depth divisor damps
    /// near-exhausted deep subtrees. Pure integer arithmetic on path
    /// counters carried by the state, so equal inputs give equal scores
    /// on every worker and run — ties are broken by `(depth, id)`.
    pub fn subtree_estimate(&self) -> u64 {
        let forks = u64::from(self.forks_on_path) + 1;
        let damp = (self.blocks_on_path + 1).saturating_mul(u64::from(self.depth) + 1);
        (forks << 20) / damp
    }
}

/// Declares a type as per-path plugin state.
///
/// ```
/// use s2e_core::impl_plugin_state;
///
/// #[derive(Clone, Debug, Default)]
/// struct Counters { blocks: u64 }
/// impl_plugin_state!(Counters);
/// ```
#[macro_export]
macro_rules! impl_plugin_state {
    ($ty:ty) => {
        impl $crate::state::PluginState for $ty {
            fn clone_box(&self) -> Box<dyn $crate::state::PluginState> {
                Box::new(self.clone())
            }

            fn as_any(&self) -> &dyn std::any::Any {
                self
            }

            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
    };
}

// States migrate between worker threads through the work-stealing
// queue; keep this a compile error rather than a distant trait bound.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ExecState>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_expr::{ExprBuilder, Width};

    #[derive(Clone, Debug, Default, PartialEq)]
    struct TestState {
        count: u64,
    }
    impl_plugin_state!(TestState);

    fn state() -> ExecState {
        ExecState::initial(Machine::new())
    }

    #[test]
    fn initial_state_is_active() {
        let s = state();
        assert!(s.is_active());
        assert_eq!(s.env_depth(), 0);
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn constraints_hard_and_soft() {
        let b = ExprBuilder::new();
        let mut s = state();
        let x = b.var("x", Width::BOOL);
        s.add_constraint(x.clone());
        s.add_soft_constraint(x.clone());
        s.add_constraint(x);
        assert_eq!(s.constraints.len(), 3);
        assert_eq!(s.soft_constraints, vec![1]);
        assert_eq!(s.soft_constraint_count(), 1);
        assert_eq!(s.partition.len(), 3);
    }

    #[test]
    fn partition_tracks_constraints_and_forks() {
        let b = ExprBuilder::new();
        let mut s = state();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        s.add_constraint(b.ult(x.clone(), b.constant(5, Width::W8)));
        s.add_soft_constraint(b.eq(y.clone(), b.constant(1, Width::W8)));
        assert_eq!(s.partition.len(), s.constraints.len());
        assert_eq!(s.partition.components().len(), 2);

        // The child's partition diverges independently of the parent's.
        let mut child = s.fork_child(StateId(1));
        child.add_constraint(b.eq(x, y));
        assert_eq!(child.partition.components().len(), 1);
        assert_eq!(s.partition.components().len(), 2);
    }

    #[test]
    fn plugin_state_lazily_initialized_and_cloned() {
        let mut s = state();
        s.plugin_state_mut::<TestState>("test").count = 7;
        let child = s.fork_child(StateId(1));
        assert_eq!(child.plugin_state::<TestState>("test").unwrap().count, 7);
        // Divergence after fork.
        let mut child = child;
        child.plugin_state_mut::<TestState>("test").count = 9;
        assert_eq!(s.plugin_state::<TestState>("test").unwrap().count, 7);
    }

    #[test]
    fn fork_child_links_parent_and_depth() {
        let s = state();
        let c = s.fork_child(StateId(5));
        assert_eq!(c.parent, Some(StateId(0)));
        assert_eq!(c.depth, 1);
        assert_eq!(c.id, StateId(5));
    }

    #[test]
    fn subtree_estimate_orders_branchy_shallow_paths_first() {
        let mut hot = state();
        hot.forks_on_path = 6;
        hot.blocks_on_path = 10;
        hot.depth = 2;

        // Same forks but spread over many more blocks: lower fork rate.
        let mut cold = hot.clone();
        cold.blocks_on_path = 500;
        assert!(hot.subtree_estimate() > cold.subtree_estimate());

        // Same fork rate but much deeper: damped.
        let mut deep = hot.clone();
        deep.depth = 40;
        assert!(hot.subtree_estimate() > deep.subtree_estimate());

        // Pure function of the carried counters — identical on a clone.
        assert_eq!(hot.subtree_estimate(), hot.clone().subtree_estimate());

        // Fresh state never divides by zero.
        assert!(state().subtree_estimate() > 0);
    }

    #[test]
    fn env_stack_and_irq_detection() {
        let mut s = state();
        assert!(!s.in_irq());
        s.env_stack.push(EnvFrame::Syscall { num: 1, args: [0; 4] });
        assert!(!s.in_irq());
        s.env_stack.push(EnvFrame::Irq { line: 0 });
        assert!(s.in_irq());
        assert_eq!(s.env_depth(), 2);
    }

    #[test]
    fn termination_classification() {
        assert!(TerminationReason::Fault(FaultKind::InvalidOpcode { pc: 0 }).is_crash());
        assert!(!TerminationReason::Halted(0).is_crash());
        let mut s = state();
        s.status = Some(TerminationReason::Halted(0));
        assert!(!s.is_active());
    }
}
