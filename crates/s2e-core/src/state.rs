//! Execution states: one forkable snapshot of the entire system per path.

use crate::journal::{Journal, JournalEvent, ReplayCursor};
use s2e_expr::ExprRef;
use s2e_solver::ConstraintPartition;
use s2e_vm::cpu::FaultKind;
use s2e_vm::machine::Machine;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Identifier of an execution state (unique within an engine).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(pub u64);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Why a path stopped executing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TerminationReason {
    /// The guest executed `Halt`.
    Halted(u32),
    /// A machine fault (crash).
    Fault(FaultKind),
    /// A plugin or the guest (`S2Op::KillPath`) killed the path.
    Killed(u32),
    /// Local consistency was violated: the environment branched on
    /// symbolic data injected into or derived by the unit (paper §3.2.2 —
    /// the path must be aborted to preserve LC).
    EnvInconsistency,
    /// The path's constraints became unsatisfiable (dead path).
    Infeasible,
    /// The solver gave up on this path.
    SolverTimeout,
    /// Per-path instruction budget exhausted.
    FuelExhausted,
    /// Fork-depth bound reached.
    MaxDepth,
}

impl TerminationReason {
    /// True for reasons that indicate a crash-like outcome.
    pub fn is_crash(&self) -> bool {
        matches!(self, TerminationReason::Fault(_))
    }
}

/// Entry of the unit/environment boundary stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvFrame {
    /// Entered the environment through a syscall trap; holds the syscall
    /// number and the concrete-or-symbolic argument snapshot (r0..r3) at
    /// entry time.
    Syscall {
        /// Syscall number.
        num: u32,
        /// r0..r3 at trap time, concretized best-effort for reporting.
        args: [u32; 4],
    },
    /// Entered an interrupt handler.
    Irq {
        /// IRQ line.
        line: u32,
    },
    /// Entered environment code marked by `S2Op::EnterEnv`.
    Marker,
}

/// Per-path plugin state (the paper's `PluginState`, §4.2): cloned with
/// the execution state on every fork.
///
/// `Sync` because checkpoint snapshots are shared between sibling states
/// (and across worker threads) behind `Arc<ExecState>`; plugin state is
/// plain data, only ever mutated through the owning state's `&mut`.
pub trait PluginState: fmt::Debug + Send + Sync {
    /// Clones the state (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn PluginState>;

    /// Upcast for typed access.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast for typed access.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl Clone for Box<dyn PluginState> {
    fn clone(&self) -> Box<dyn PluginState> {
        self.clone_box()
    }
}

/// One execution state: the complete machine plus path constraints and
/// per-path analysis state.
///
/// Forking a state clones everything; memory is copy-on-write so the cost
/// is proportional to what the child subsequently writes, not to machine
/// size (paper §5).
#[derive(Clone, Debug)]
pub struct ExecState {
    /// Unique id.
    pub id: StateId,
    /// Parent state, if forked.
    pub parent: Option<StateId>,
    /// The machine snapshot.
    pub machine: Machine,
    /// Hard path constraints (boolean expressions, conjoined).
    pub constraints: Vec<ExprRef>,
    /// `constraints`, pre-partitioned into independence components
    /// (grouped by shared variables) — maintained incrementally by
    /// [`ExecState::add_constraint`] and cloned with the state on fork,
    /// so fork-time feasibility checks can hand the solver only the
    /// component(s) a branch condition touches
    /// ([`s2e_solver::Solver::may_be_true_in`]). Constraints are never
    /// retracted, so the two views cannot drift.
    pub partition: ConstraintPartition,
    /// Indices into `constraints` of *soft* constraints — added by
    /// concretization at the symbolic→concrete boundary rather than by
    /// guest branches (§2.2). SC-SE can retract them; stricter models
    /// treat them as hard.
    pub soft_constraints: Vec<usize>,
    /// Multi-path execution toggle (`S2ENA`/`S2DIS` and selectors).
    pub forking_enabled: bool,
    /// Unit/environment boundary stack (syscalls, IRQs, markers).
    pub env_stack: Vec<EnvFrame>,
    /// Fork depth.
    pub depth: u32,
    /// Forks this path has survived (parent or child side) — the
    /// numerator of [`ExecState::subtree_estimate`].
    pub forks_on_path: u32,
    /// Translation blocks executed on this path — the fork-rate
    /// denominator of [`ExecState::subtree_estimate`].
    pub blocks_on_path: u64,
    /// Instructions retired on this path.
    pub instrs_retired: u64,
    /// Fractional symbolic-instruction cycles not yet charged to the
    /// virtual clock (the §5 symbolic-time slowdown remainder).
    pub sym_time_accum: u64,
    /// Set by plugins to request termination of this path; honored by the
    /// engine after the current block.
    pub kill_requested: Option<TerminationReason>,
    /// Termination, once decided.
    pub status: Option<TerminationReason>,
    /// Per-path plugin state, keyed by plugin name.
    plugin_state: HashMap<&'static str, Box<dyn PluginState>>,
    /// Nearest checkpoint: a full snapshot of this path at an earlier
    /// block boundary, shared (`Arc`) with every sibling forked since.
    /// `{checkpoint, journal}` reconstructs this state exactly (§13).
    checkpoint: Option<Arc<ExecState>>,
    /// Nondeterministic inputs consumed since `checkpoint` was taken.
    journal: Journal,
    /// Forks survived since `checkpoint`; drives periodic refresh.
    forks_since_checkpoint: u32,
    /// Present while this state is being reconstructed by deterministic
    /// replay: nondeterminism sites read recorded values from the cursor
    /// instead of consulting the solver or engine-global sets.
    replay: Option<ReplayCursor>,
}

impl ExecState {
    /// Creates the initial state around a machine.
    pub fn initial(machine: Machine) -> ExecState {
        ExecState {
            id: StateId(0),
            parent: None,
            machine,
            constraints: Vec::new(),
            partition: ConstraintPartition::new(),
            soft_constraints: Vec::new(),
            forking_enabled: true,
            env_stack: Vec::new(),
            depth: 0,
            forks_on_path: 0,
            blocks_on_path: 0,
            instrs_retired: 0,
            sym_time_accum: 0,
            kill_requested: None,
            status: None,
            plugin_state: HashMap::new(),
            checkpoint: None,
            journal: Journal::new(),
            forks_since_checkpoint: 0,
            replay: None,
        }
    }

    /// True while the path can still execute.
    pub fn is_active(&self) -> bool {
        self.status.is_none() && self.machine.cpu.is_running()
    }

    /// Nesting depth in environment code (0 = executing the unit).
    pub fn env_depth(&self) -> usize {
        self.env_stack.len()
    }

    /// True if currently handling an interrupt.
    pub fn in_irq(&self) -> bool {
        self.env_stack
            .iter()
            .any(|f| matches!(f, EnvFrame::Irq { .. }))
    }

    /// The single point every constraint passes through: keeps the
    /// incremental independence partition in sync with the flat list and
    /// tags soft constraints by index. Having one call site is what lets
    /// constraint bookkeeping stay consistent between live execution and
    /// journal replay.
    fn push_constraint(&mut self, c: ExprRef, soft: bool) {
        if soft {
            self.soft_constraints.push(self.constraints.len());
        }
        self.partition.add(c.clone());
        self.constraints.push(c);
    }

    /// Adds a hard path constraint.
    pub fn add_constraint(&mut self, c: ExprRef) {
        self.push_constraint(c, false);
    }

    /// Adds a soft constraint (from boundary concretization).
    pub fn add_soft_constraint(&mut self, c: ExprRef) {
        self.push_constraint(c, true);
    }

    /// Number of soft constraints on this path.
    pub fn soft_constraint_count(&self) -> usize {
        self.soft_constraints.len()
    }

    /// Fetches (or lazily initializes) this path's state for a plugin.
    pub fn plugin_state_mut<T: PluginState + Default + 'static>(
        &mut self,
        plugin: &'static str,
    ) -> &mut T {
        self.plugin_state
            .entry(plugin)
            .or_insert_with(|| Box::new(T::default()))
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("plugin state type mismatch")
    }

    /// Read-only access to a plugin's per-path state, if initialized.
    pub fn plugin_state<T: PluginState + 'static>(&self, plugin: &'static str) -> Option<&T> {
        self.plugin_state
            .get(plugin)
            .and_then(|b| b.as_any().downcast_ref::<T>())
    }

    /// Number of plugins holding per-path state. The wire codec
    /// (DESIGN.md §17) refuses to ship states with any: `Box<dyn
    /// PluginState>` has no portable encoding, and silently dropping
    /// analysis state would corrupt results.
    pub fn plugin_state_count(&self) -> usize {
        self.plugin_state.len()
    }

    /// Creates a child state for a fork; the caller sets PC/registers and
    /// the differing constraint.
    pub fn fork_child(&self, id: StateId) -> ExecState {
        let mut child = self.clone();
        child.id = id;
        child.parent = Some(self.id);
        child.depth = self.depth + 1;
        child
    }

    /// Deterministic integer estimate of the size of the subtree rooted
    /// at this state, used by `Engine::detach_overflow` to pick export
    /// victims (DESIGN.md §12): a path that has been forking frequently
    /// per block executed, and is still shallow, is likely to keep
    /// spawning work, so exporting it moves the most future work per
    /// migrated state.
    ///
    /// `(forks + 1) << 20` over `(blocks + 1) * (depth + 1)`: the fork
    /// *rate* rewards recently-branchy paths, the depth divisor damps
    /// near-exhausted deep subtrees. Pure integer arithmetic on path
    /// counters carried by the state, so equal inputs give equal scores
    /// on every worker and run — ties are broken by `(depth, id)`.
    pub fn subtree_estimate(&self) -> u64 {
        let forks = u64::from(self.forks_on_path) + 1;
        let damp = (self.blocks_on_path + 1).saturating_mul(u64::from(self.depth) + 1);
        (forks << 20) / damp
    }

    // ---- Checkpoints and the record/replay journal (§13) -------------

    /// Takes a fresh checkpoint: the current state becomes its own
    /// replay base, and the journal restarts empty. COW memory makes the
    /// snapshot a shallow map clone; siblings forked afterwards share it.
    pub fn take_checkpoint(&mut self) -> Arc<ExecState> {
        debug_assert!(self.status.is_none(), "checkpointing a dead state");
        debug_assert!(self.replay.is_none(), "checkpointing mid-replay");
        self.journal.clear();
        self.forks_since_checkpoint = 0;
        let mut snap = self.clone();
        snap.checkpoint = None; // no chains: one hop from any state
        let snap = Arc::new(snap);
        self.checkpoint = Some(snap.clone());
        snap
    }

    /// The checkpoint this state replays from, if one has been taken.
    pub fn checkpoint(&self) -> Option<&Arc<ExecState>> {
        self.checkpoint.as_ref()
    }

    /// The nondeterminism journal accumulated since the checkpoint.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Forks survived since the last checkpoint (drives refresh).
    pub fn forks_since_checkpoint(&self) -> u32 {
        self.forks_since_checkpoint
    }

    /// Counts one survived fork toward the next checkpoint refresh.
    pub(crate) fn count_fork_toward_checkpoint(&mut self) {
        self.forks_since_checkpoint += 1;
    }

    /// True while this state is being reconstructed by replay.
    pub fn replaying(&self) -> bool {
        self.replay.is_some()
    }

    pub(crate) fn record_event(&mut self, ev: JournalEvent) {
        debug_assert!(self.replay.is_none(), "recording during replay");
        self.journal.record(ev);
    }

    /// Appends the variable ids a just-executed block minted (captured by
    /// the builder's thread-local hook) to the journal's side stream.
    pub(crate) fn record_var_ids(&mut self, ids: &[u64]) {
        debug_assert!(self.replay.is_none(), "recording during replay");
        self.journal.record_var_ids(ids);
    }

    /// Replay-side read of a feasibility probe; `None` when live.
    pub(crate) fn replay_feasible(&mut self) -> Option<bool> {
        self.replay.as_mut().map(ReplayCursor::expect_feasible)
    }

    pub(crate) fn record_feasible(&mut self, v: bool) {
        self.record_event(JournalEvent::Feasible(v));
    }

    /// Replay-side read of a concretization; `None` when live.
    pub(crate) fn replay_concretize(&mut self) -> Option<u64> {
        self.replay.as_mut().map(ReplayCursor::expect_concretize)
    }

    pub(crate) fn record_concretize(&mut self, v: u64) {
        self.record_event(JournalEvent::Concretize(v));
    }

    /// Replay-side read of an RC-CC edge-force decision; `None` when live.
    pub(crate) fn replay_edge_force(&mut self) -> Option<bool> {
        self.replay.as_mut().map(ReplayCursor::expect_edge_force)
    }

    pub(crate) fn record_edge_force(&mut self, v: bool) {
        self.record_event(JournalEvent::EdgeForce(v));
    }

    /// Replay-side read of a fork/curtail decision; `None` when live.
    pub(crate) fn replay_fork_decision(&mut self) -> Option<JournalEvent> {
        self.replay.as_mut().map(ReplayCursor::expect_fork_decision)
    }

    /// Arms the replay cursor over `journal` (the engine's rehydration
    /// driver owns the block loop).
    pub(crate) fn begin_replay(&mut self, journal: &Journal) {
        debug_assert!(self.replay.is_none(), "nested replay");
        self.replay = Some(ReplayCursor::new(journal));
    }

    /// Disarms the replay cursor, returning it for exhaustion checks.
    pub(crate) fn end_replay(&mut self) -> ReplayCursor {
        self.replay.take().expect("end_replay without begin_replay")
    }

    /// Evicts this state to compact `{checkpoint, journal}` form,
    /// dropping the live machine image. A state that has never been
    /// checkpointed becomes its own checkpoint first (zero-length
    /// journal). With `verify`, the compact form carries a fingerprint
    /// the rehydrated state must reproduce bit-for-bit.
    pub fn into_compact(mut self, verify: bool) -> CompactState {
        if self.checkpoint.is_none() {
            self.take_checkpoint();
        }
        CompactState {
            id: self.id,
            parent: self.parent,
            depth: self.depth,
            forks_on_path: self.forks_on_path,
            blocks_on_path: self.blocks_on_path,
            forks_since_checkpoint: self.forks_since_checkpoint,
            fingerprint: if verify { Some(self.fingerprint()) } else { None },
            journal: self.journal.clone(),
            checkpoint: self.checkpoint.clone().unwrap(),
        }
    }

    /// Restores the identity and journaling context a freshly replayed
    /// state inherits from its compact form: id, parent link, journal,
    /// refresh counter, and the checkpoint `Arc` itself. Everything else
    /// was reproduced by replay (and is asserted, not assigned).
    pub(crate) fn adopt_compact_identity(&mut self, compact: &CompactState) {
        self.id = compact.id;
        self.parent = compact.parent;
        self.journal = compact.journal.clone();
        self.forks_since_checkpoint = compact.forks_since_checkpoint;
        self.checkpoint = Some(Arc::clone(&compact.checkpoint));
    }

    /// A deterministic digest of everything replay must reproduce:
    /// registers, memory (concrete bytes and symbolic overlay), devices,
    /// virtual time, the constraint set (hard and soft), the environment
    /// stack, path counters, and per-path plugin state. Scheduler
    /// identity (`id`, `parent`) and the replay bookkeeping itself are
    /// excluded. Stable within a process, which is all replay-identity
    /// assertions need.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        format!("{:?}", self.machine.cpu).hash(&mut h);
        self.machine.mem.digest(&mut h);
        format!("{:?}", self.machine.devices).hash(&mut h);
        self.machine.vtime.hash(&mut h);
        for c in &self.constraints {
            format!("{c:?}").hash(&mut h);
        }
        self.soft_constraints.hash(&mut h);
        format!("{:?}", self.env_stack).hash(&mut h);
        self.forking_enabled.hash(&mut h);
        self.depth.hash(&mut h);
        self.forks_on_path.hash(&mut h);
        self.blocks_on_path.hash(&mut h);
        self.instrs_retired.hash(&mut h);
        self.sym_time_accum.hash(&mut h);
        let mut plugins: Vec<&&'static str> = self.plugin_state.keys().collect();
        plugins.sort_unstable();
        for name in plugins {
            name.hash(&mut h);
            format!("{:?}", self.plugin_state[*name]).hash(&mut h);
        }
        h.finish()
    }

    /// A schedule-independent digest of the *path* this state walked:
    /// its termination status, fork depth, and execution counters. All
    /// inputs are properties of the path through the guest, not of
    /// which worker (or process) happened to explore it — unlike
    /// [`ExecState::fingerprint`], no expression (and hence no
    /// worker-namespaced `VarId`) enters the hash. The sorted multiset
    /// of these digests over all terminated paths is therefore
    /// identical for any worker count, either scheduler, and the
    /// in-process vs distributed tiers — the bit-identity bar the
    /// `dist_explore` gate holds the coordinator to.
    pub fn path_digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        format!("{:?}", self.status).hash(&mut h);
        self.depth.hash(&mut h);
        self.forks_on_path.hash(&mut h);
        self.blocks_on_path.hash(&mut h);
        self.instrs_retired.hash(&mut h);
        self.sym_time_accum.hash(&mut h);
        h.finish()
    }
}

/// A state evicted to its reconstructible form: a shared checkpoint
/// `Arc` plus the journal suffix recorded since (§13). This is what sits
/// in a scheduler queue in place of a live state — and, in the
/// distributed tier, what crosses the wire.
#[derive(Clone, Debug)]
pub struct CompactState {
    /// The evicted state's id (restored verbatim on rehydration).
    pub id: StateId,
    /// Its parent link (restored verbatim on rehydration).
    pub parent: Option<StateId>,
    /// Fork depth at eviction — replay must reproduce it exactly.
    pub depth: u32,
    /// Forks survived at eviction — replay must reproduce it exactly.
    pub forks_on_path: u32,
    /// Blocks executed at eviction: replay runs until this count.
    pub blocks_on_path: u64,
    /// Fork count toward the next checkpoint refresh, restored on
    /// rehydration so refresh cadence is schedule-independent.
    pub forks_since_checkpoint: u32,
    /// Fingerprint of the live original, when verification is on.
    pub fingerprint: Option<u64>,
    /// Nondeterministic inputs consumed between checkpoint and eviction.
    pub journal: Journal,
    /// The snapshot replay starts from, shared with sibling states.
    pub checkpoint: Arc<ExecState>,
}

impl CompactState {
    /// Blocks of deterministic re-execution rehydration costs.
    pub fn checkpoint_distance(&self) -> u64 {
        self.blocks_on_path - self.checkpoint.blocks_on_path
    }

    /// Bytes this compact form keeps resident, *excluding* the shared
    /// checkpoint (amortized over every sibling holding the same `Arc`).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<CompactState>() + self.journal.byte_len()
    }
}

/// Declares a type as per-path plugin state.
///
/// ```
/// use s2e_core::impl_plugin_state;
///
/// #[derive(Clone, Debug, Default)]
/// struct Counters { blocks: u64 }
/// impl_plugin_state!(Counters);
/// ```
#[macro_export]
macro_rules! impl_plugin_state {
    ($ty:ty) => {
        impl $crate::state::PluginState for $ty {
            fn clone_box(&self) -> Box<dyn $crate::state::PluginState> {
                Box::new(self.clone())
            }

            fn as_any(&self) -> &dyn std::any::Any {
                self
            }

            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
    };
}

// States migrate between worker threads through the work-stealing
// queue (live or compact); checkpoints are shared across threads behind
// `Arc`, which needs `Sync` too. Keep these compile errors rather than
// distant trait bounds.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExecState>();
    assert_send_sync::<CompactState>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_expr::{ExprBuilder, Width};

    #[derive(Clone, Debug, Default, PartialEq)]
    struct TestState {
        count: u64,
    }
    impl_plugin_state!(TestState);

    fn state() -> ExecState {
        ExecState::initial(Machine::new())
    }

    #[test]
    fn initial_state_is_active() {
        let s = state();
        assert!(s.is_active());
        assert_eq!(s.env_depth(), 0);
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn constraints_hard_and_soft() {
        let b = ExprBuilder::new();
        let mut s = state();
        let x = b.var("x", Width::BOOL);
        s.add_constraint(x.clone());
        s.add_soft_constraint(x.clone());
        s.add_constraint(x);
        assert_eq!(s.constraints.len(), 3);
        assert_eq!(s.soft_constraints, vec![1]);
        assert_eq!(s.soft_constraint_count(), 1);
        assert_eq!(s.partition.len(), 3);
    }

    #[test]
    fn partition_tracks_constraints_and_forks() {
        let b = ExprBuilder::new();
        let mut s = state();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        s.add_constraint(b.ult(x.clone(), b.constant(5, Width::W8)));
        s.add_soft_constraint(b.eq(y.clone(), b.constant(1, Width::W8)));
        assert_eq!(s.partition.len(), s.constraints.len());
        assert_eq!(s.partition.components().len(), 2);

        // The child's partition diverges independently of the parent's.
        let mut child = s.fork_child(StateId(1));
        child.add_constraint(b.eq(x, y));
        assert_eq!(child.partition.components().len(), 1);
        assert_eq!(s.partition.components().len(), 2);
    }

    #[test]
    fn plugin_state_lazily_initialized_and_cloned() {
        let mut s = state();
        s.plugin_state_mut::<TestState>("test").count = 7;
        let child = s.fork_child(StateId(1));
        assert_eq!(child.plugin_state::<TestState>("test").unwrap().count, 7);
        // Divergence after fork.
        let mut child = child;
        child.plugin_state_mut::<TestState>("test").count = 9;
        assert_eq!(s.plugin_state::<TestState>("test").unwrap().count, 7);
    }

    #[test]
    fn fork_child_links_parent_and_depth() {
        let s = state();
        let c = s.fork_child(StateId(5));
        assert_eq!(c.parent, Some(StateId(0)));
        assert_eq!(c.depth, 1);
        assert_eq!(c.id, StateId(5));
    }

    #[test]
    fn subtree_estimate_orders_branchy_shallow_paths_first() {
        let mut hot = state();
        hot.forks_on_path = 6;
        hot.blocks_on_path = 10;
        hot.depth = 2;

        // Same forks but spread over many more blocks: lower fork rate.
        let mut cold = hot.clone();
        cold.blocks_on_path = 500;
        assert!(hot.subtree_estimate() > cold.subtree_estimate());

        // Same fork rate but much deeper: damped.
        let mut deep = hot.clone();
        deep.depth = 40;
        assert!(hot.subtree_estimate() > deep.subtree_estimate());

        // Pure function of the carried counters — identical on a clone.
        assert_eq!(hot.subtree_estimate(), hot.clone().subtree_estimate());

        // Fresh state never divides by zero.
        assert!(state().subtree_estimate() > 0);
    }

    #[test]
    fn env_stack_and_irq_detection() {
        let mut s = state();
        assert!(!s.in_irq());
        s.env_stack.push(EnvFrame::Syscall { num: 1, args: [0; 4] });
        assert!(!s.in_irq());
        s.env_stack.push(EnvFrame::Irq { line: 0 });
        assert!(s.in_irq());
        assert_eq!(s.env_depth(), 2);
    }

    #[test]
    fn checkpoint_resets_journal_and_is_shared_by_forks() {
        let mut s = state();
        s.record_feasible(true);
        s.record_concretize(7);
        assert_eq!(s.journal().event_count(), 2);
        let snap = s.take_checkpoint();
        assert!(s.journal().is_empty(), "checkpoint subsumes the journal");
        assert!(snap.journal().is_empty(), "snapshot starts a fresh segment");
        assert!(snap.checkpoint().is_none(), "no checkpoint chains");
        // Children share the parent's checkpoint by Arc.
        let child = s.fork_child(StateId(1));
        assert!(Arc::ptr_eq(child.checkpoint().unwrap(), s.checkpoint().unwrap()));
    }

    #[test]
    fn into_compact_self_checkpoints_when_fresh() {
        let mut s = state();
        s.blocks_on_path = 5;
        let c = s.clone().into_compact(true);
        assert_eq!(c.id, StateId(0));
        assert_eq!(c.checkpoint_distance(), 0, "own snapshot, empty journal");
        assert!(c.journal.is_empty());
        assert_eq!(c.fingerprint, Some(s.fingerprint()));
        assert!(c.resident_bytes() < 1024, "compact form is small");
    }

    #[test]
    fn fingerprint_sees_machine_and_constraints() {
        let b = ExprBuilder::new();
        let s = state();
        assert_eq!(s.fingerprint(), s.clone().fingerprint(), "clone-stable");
        let mut wrote = s.clone();
        wrote.machine.mem.write_u32(0x5000, 1).unwrap();
        assert_ne!(s.fingerprint(), wrote.fingerprint());
        let mut constrained = s.clone();
        constrained.add_constraint(b.var("x", Width::BOOL));
        assert_ne!(s.fingerprint(), constrained.fingerprint());
        let mut plugin = s.clone();
        plugin.plugin_state_mut::<TestState>("t").count = 3;
        assert_ne!(s.fingerprint(), plugin.fingerprint());
    }

    #[test]
    fn termination_classification() {
        assert!(TerminationReason::Fault(FaultKind::InvalidOpcode { pc: 0 }).is_crash());
        assert!(!TerminationReason::Halted(0).is_crash());
        let mut s = state();
        s.status = Some(TerminationReason::Halted(0));
        assert!(!s.is_active());
    }
}
