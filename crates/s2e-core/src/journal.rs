//! The deterministic record/replay journal (DESIGN.md §13).
//!
//! Per the rr engineering lineage (O'Callahan et al., PAPERS.md), an
//! execution state is reconstructible from `{checkpoint, log of
//! nondeterministic inputs}`: everything else the interpreter does is a
//! deterministic function of the checkpointed machine. In this engine
//! the nondeterminism sources are *solver-driven* (feasibility probes
//! and concretizations, whose results depend on query-cache and timeout
//! state) and *schedule-driven* (fork-vs-curtail decisions that consult
//! the live-state census, and RC-CC edge forcing that consults the
//! engine-global coverage set). Device reads, DMA, and interrupt timing
//! are deterministic here by construction — devices live inside the
//! copy-on-write `Machine` and tick on virtual time — so they need no
//! journal entries; the format still reserves a `PrngDraw` tag for
//! guests wired to the `s2e-prng` captured-stream API.
//!
//! One more input rides in a side stream rather than the event log:
//! the [`s2e_expr::VarId`]s a path mints while it runs (symbolic
//! hardware reads, `SymbolicReg`/`SymbolicMem` opcodes, relaxed-model
//! return conversion). The builder's counter is shared by every state
//! and worker, so the ids a replayed path would mint depend on global
//! interleaving. Their *consumption order* along one path is fully
//! deterministic, though, so they need no interleaving with the event
//! log — a flat varint list replayed front to back suffices.
//!
//! Encoding is the workspace's hand-rolled std-only style (no serde):
//! one tag byte per event followed by LEB128 varint payloads, ~2 bytes
//! per event in practice.

use std::fmt;

/// One recorded nondeterministic input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalEvent {
    /// Result of a solver feasibility probe (`may_be_true_in`), after
    /// any timeout fallback the call site applies.
    Feasible(bool),
    /// Value returned by a solver-driven concretization.
    Concretize(u64),
    /// A fork decision at a fork request: `taken = true` is the
    /// then-side (the forking parent), `false` the else-side (the
    /// child). Recorded because forking at all depends on the live
    /// state census (`max_states`) — a schedule artifact.
    Fork {
        /// Which side of the fork this state's path continued on.
        taken: bool,
    },
    /// The engine curtailed a fork request (state or depth budget
    /// exhausted) instead of forking.
    Curtail,
    /// RC-CC edge forcing: whether a concrete branch was forked anyway
    /// because the untaken edge was globally unseen. Depends on the
    /// engine-global coverage set, hence schedule-dependent.
    EdgeForce(bool),
    /// One draw from a captured `s2e-prng` stream.
    PrngDraw(u64),
}

const TAG_FEASIBLE: u8 = 1;
const TAG_CONCRETIZE: u8 = 2;
const TAG_FORK: u8 = 3;
const TAG_CURTAIL: u8 = 4;
const TAG_EDGE_FORCE: u8 = 5;
const TAG_PRNG_DRAW: u8 = 6;

/// LEB128 varint append.
fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// LEB128 varint read; panics on truncation (a truncated journal is a
/// corrupt compact state — never recoverable).
fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = buf[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

impl JournalEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            JournalEvent::Feasible(v) => {
                buf.push(TAG_FEASIBLE);
                buf.push(v as u8);
            }
            JournalEvent::Concretize(v) => {
                buf.push(TAG_CONCRETIZE);
                write_varint(buf, v);
            }
            JournalEvent::Fork { taken } => {
                buf.push(TAG_FORK);
                buf.push(taken as u8);
            }
            JournalEvent::Curtail => buf.push(TAG_CURTAIL),
            JournalEvent::EdgeForce(v) => {
                buf.push(TAG_EDGE_FORCE);
                buf.push(v as u8);
            }
            JournalEvent::PrngDraw(v) => {
                buf.push(TAG_PRNG_DRAW);
                write_varint(buf, v);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> JournalEvent {
        let tag = buf[*pos];
        *pos += 1;
        match tag {
            TAG_FEASIBLE => {
                let v = buf[*pos] != 0;
                *pos += 1;
                JournalEvent::Feasible(v)
            }
            TAG_CONCRETIZE => JournalEvent::Concretize(read_varint(buf, pos)),
            TAG_FORK => {
                let taken = buf[*pos] != 0;
                *pos += 1;
                JournalEvent::Fork { taken }
            }
            TAG_CURTAIL => JournalEvent::Curtail,
            TAG_EDGE_FORCE => {
                let v = buf[*pos] != 0;
                *pos += 1;
                JournalEvent::EdgeForce(v)
            }
            TAG_PRNG_DRAW => JournalEvent::PrngDraw(read_varint(buf, pos)),
            other => panic!("corrupt journal: unknown tag {other}"),
        }
    }

    /// Stable name for reports and the `journal-dump` tool.
    pub fn name(&self) -> &'static str {
        match self {
            JournalEvent::Feasible(_) => "feasible",
            JournalEvent::Concretize(_) => "concretize",
            JournalEvent::Fork { .. } => "fork",
            JournalEvent::Curtail => "curtail",
            JournalEvent::EdgeForce(_) => "edge_force",
            JournalEvent::PrngDraw(_) => "prng_draw",
        }
    }
}

/// An append-only log of the nondeterministic inputs one path consumed
/// since its last checkpoint.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Journal {
    buf: Vec<u8>,
    events: u32,
    var_buf: Vec<u8>,
    var_count: u32,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Appends one event.
    pub fn record(&mut self, ev: JournalEvent) {
        ev.encode(&mut self.buf);
        self.events += 1;
    }

    /// Appends minted variable ids to the side stream.
    pub fn record_var_ids(&mut self, ids: &[u64]) {
        for &id in ids {
            write_varint(&mut self.var_buf, id);
        }
        self.var_count += ids.len() as u32;
    }

    /// Decodes the variable-id side stream, in mint order.
    pub fn var_ids(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.var_count as usize);
        let mut pos = 0;
        while pos < self.var_buf.len() {
            out.push(read_varint(&self.var_buf, &mut pos));
        }
        out
    }

    /// Number of variable ids recorded.
    pub fn var_count(&self) -> u32 {
        self.var_count
    }

    /// Encoded size in bytes — what a compact state pays to retain this
    /// journal.
    pub fn byte_len(&self) -> usize {
        self.buf.len() + self.var_buf.len()
    }

    /// Number of events recorded.
    pub fn event_count(&self) -> u32 {
        self.events
    }

    /// True if nothing has been recorded since the last checkpoint.
    pub fn is_empty(&self) -> bool {
        self.events == 0 && self.var_count == 0
    }

    /// Forgets everything (taken when a fresh checkpoint subsumes the
    /// recorded history).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.events = 0;
        self.var_buf.clear();
        self.var_count = 0;
    }

    /// Decodes the journal front to back.
    pub fn iter(&self) -> JournalIter<'_> {
        JournalIter {
            buf: &self.buf,
            pos: 0,
        }
    }

    /// Appends a portable encoding of the journal — both the event log
    /// and the variable-id side stream — for cross-process state
    /// shipping (DESIGN.md §17). Lives here because the buffers are
    /// private to this module.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        use s2e_expr::wire::write_varint;
        write_varint(out, u64::from(self.events));
        write_varint(out, self.buf.len() as u64);
        out.extend_from_slice(&self.buf);
        write_varint(out, u64::from(self.var_count));
        write_varint(out, self.var_buf.len() as u64);
        out.extend_from_slice(&self.var_buf);
    }

    /// Decodes a journal written by [`Journal::encode_wire`].
    ///
    /// Unlike replay (which panics on corruption, because a corrupt
    /// *local* journal is an engine bug), wire decoding fully validates
    /// both streams up front and returns a clean error — bytes from
    /// another process are untrusted input. A journal this returns is
    /// safe to hand to [`ReplayCursor`] and [`Journal::var_ids`].
    pub fn decode_wire(r: &mut s2e_expr::wire::WireReader<'_>) -> std::io::Result<Journal> {
        use s2e_expr::wire::{bad_data, WireReader};
        let events = r.read_len(u64::from(u32::MAX), "journal event count")? as u32;
        let buf_len = r.read_len(1 << 28, "journal event log")?;
        let buf = r.read_bytes(buf_len)?.to_vec();
        let var_count = r.read_len(u64::from(u32::MAX), "journal var count")? as u32;
        let var_len = r.read_len(1 << 28, "journal var stream")?;
        let var_buf = r.read_bytes(var_len)?.to_vec();

        let mut v = WireReader::new(&buf);
        for _ in 0..events {
            match v.read_u8()? {
                TAG_FEASIBLE | TAG_FORK | TAG_EDGE_FORCE => {
                    let b = v.read_u8()?;
                    if b > 1 {
                        return Err(bad_data(format!("journal flag byte {b} is not 0/1")));
                    }
                }
                TAG_CONCRETIZE | TAG_PRNG_DRAW => {
                    v.read_varint()?;
                }
                TAG_CURTAIL => {}
                t => return Err(bad_data(format!("unknown journal event tag {t}"))),
            }
        }
        if !v.is_empty() {
            return Err(bad_data("journal event log has trailing bytes"));
        }
        let mut v = WireReader::new(&var_buf);
        for _ in 0..var_count {
            v.read_varint()?;
        }
        if !v.is_empty() {
            return Err(bad_data("journal var stream has trailing bytes"));
        }
        Ok(Journal { buf, events, var_buf, var_count })
    }
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Journal({} events, {} vars, {} bytes)",
            self.events,
            self.var_count,
            self.byte_len()
        )
    }
}

/// Iterator over a journal's decoded events.
pub struct JournalIter<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Iterator for JournalIter<'_> {
    type Item = JournalEvent;

    fn next(&mut self) -> Option<JournalEvent> {
        if self.pos >= self.buf.len() {
            return None;
        }
        Some(JournalEvent::decode(self.buf, &mut self.pos))
    }
}

/// A consuming cursor over a journal, used while replaying: each
/// nondeterminism site pops the event it expects and panics loudly on
/// any mismatch — a divergence means replay is not deterministic, which
/// is a bug, never a recoverable condition.
#[derive(Clone, Debug)]
pub struct ReplayCursor {
    buf: Vec<u8>,
    pos: usize,
    consumed: u32,
    total: u32,
}

impl ReplayCursor {
    /// A cursor over `journal`'s events.
    pub fn new(journal: &Journal) -> ReplayCursor {
        ReplayCursor {
            buf: journal.buf.clone(),
            pos: 0,
            consumed: 0,
            total: journal.events,
        }
    }

    fn next(&mut self, expected: &str) -> JournalEvent {
        assert!(
            self.pos < self.buf.len(),
            "replay diverged: journal exhausted after {} events, wanted {expected}",
            self.consumed
        );
        let ev = JournalEvent::decode(&self.buf, &mut self.pos);
        self.consumed += 1;
        ev
    }

    fn mismatch(&self, expected: &str, got: JournalEvent) -> ! {
        panic!(
            "replay diverged at event {}/{}: expected {expected}, journal has {got:?}",
            self.consumed, self.total
        );
    }

    /// Pops a [`JournalEvent::Feasible`].
    pub fn expect_feasible(&mut self) -> bool {
        match self.next("feasible") {
            JournalEvent::Feasible(v) => v,
            other => self.mismatch("feasible", other),
        }
    }

    /// Pops a [`JournalEvent::Concretize`].
    pub fn expect_concretize(&mut self) -> u64 {
        match self.next("concretize") {
            JournalEvent::Concretize(v) => v,
            other => self.mismatch("concretize", other),
        }
    }

    /// Pops a [`JournalEvent::EdgeForce`].
    pub fn expect_edge_force(&mut self) -> bool {
        match self.next("edge_force") {
            JournalEvent::EdgeForce(v) => v,
            other => self.mismatch("edge_force", other),
        }
    }

    /// Pops the decision recorded at a fork request: either
    /// [`JournalEvent::Fork`] or [`JournalEvent::Curtail`].
    pub fn expect_fork_decision(&mut self) -> JournalEvent {
        match self.next("fork or curtail") {
            ev @ (JournalEvent::Fork { .. } | JournalEvent::Curtail) => ev,
            other => self.mismatch("fork or curtail", other),
        }
    }

    /// Events consumed so far.
    pub fn consumed(&self) -> u32 {
        self.consumed
    }

    /// True once every recorded event has been consumed — required when
    /// a replay segment completes.
    pub fn finished(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_prng::SplitMix64;

    fn arbitrary_event(rng: &mut SplitMix64) -> JournalEvent {
        match rng.below(6) {
            0 => JournalEvent::Feasible(rng.next_bool()),
            1 => JournalEvent::Concretize(rng.next_u64() >> rng.below(64)),
            2 => JournalEvent::Fork {
                taken: rng.next_bool(),
            },
            3 => JournalEvent::Curtail,
            4 => JournalEvent::EdgeForce(rng.next_bool()),
            _ => JournalEvent::PrngDraw(rng.next_u64() >> rng.below(64)),
        }
    }

    #[test]
    fn round_trip_random_event_streams() {
        for seed in 0..64u64 {
            let mut rng = SplitMix64::new(0x10c0 ^ seed);
            let events: Vec<JournalEvent> =
                (0..rng.below(200)).map(|_| arbitrary_event(&mut rng)).collect();
            let mut j = Journal::new();
            for ev in &events {
                j.record(*ev);
            }
            assert_eq!(j.event_count() as usize, events.len());
            assert_eq!(j.iter().collect::<Vec<_>>(), events);
        }
    }

    #[test]
    fn encoding_is_compact() {
        let mut j = Journal::new();
        for _ in 0..100 {
            j.record(JournalEvent::Feasible(true));
        }
        assert_eq!(j.byte_len(), 200, "2 bytes per boolean event");
        let mut k = Journal::new();
        k.record(JournalEvent::Concretize(0x7f));
        k.record(JournalEvent::Concretize(u64::MAX));
        assert_eq!(k.byte_len(), 2 + 11, "varint: 1 byte small, 10 max");
    }

    #[test]
    fn varint_boundaries() {
        for v in [0, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn cursor_consumes_in_order() {
        let mut j = Journal::new();
        j.record(JournalEvent::Feasible(true));
        j.record(JournalEvent::Concretize(42));
        j.record(JournalEvent::Fork { taken: false });
        j.record(JournalEvent::Curtail);
        let mut c = ReplayCursor::new(&j);
        assert!(c.expect_feasible());
        assert_eq!(c.expect_concretize(), 42);
        assert_eq!(c.expect_fork_decision(), JournalEvent::Fork { taken: false });
        assert!(!c.finished());
        assert_eq!(c.expect_fork_decision(), JournalEvent::Curtail);
        assert!(c.finished());
        assert_eq!(c.consumed(), 4);
    }

    #[test]
    #[should_panic(expected = "replay diverged")]
    fn cursor_panics_on_kind_mismatch() {
        let mut j = Journal::new();
        j.record(JournalEvent::Concretize(1));
        ReplayCursor::new(&j).expect_feasible();
    }

    #[test]
    #[should_panic(expected = "journal exhausted")]
    fn cursor_panics_on_exhaustion() {
        ReplayCursor::new(&Journal::new()).expect_concretize();
    }

    #[test]
    fn clear_resets() {
        let mut j = Journal::new();
        j.record(JournalEvent::Curtail);
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.byte_len(), 0);
        assert!(j.iter().next().is_none());
    }
}
