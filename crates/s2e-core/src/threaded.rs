//! Direct-threaded dispatch for concrete-only blocks.
//!
//! The legacy executor walks a translation block through a match on the
//! opcode, with a `touches_symbolic` operand scan and plugin/fuel checks
//! per instruction. For blocks the static pre-pass proved `concrete_only`
//! (DESIGN.md §10) none of that can fire, so at first execution the block
//! is *lowered* once into a table of per-op function pointers over a
//! compact micro-instruction layout ([`MicroInstr`]), and subsequent runs
//! execute `fn`-pointer to `fn`-pointer with no dispatch match, no operand
//! scan, and a single fuel check for the whole block (DESIGN.md §14).
//!
//! The cardinal rule is **exact deoptimization**: a micro-op either
//! performs the instruction's complete architectural effect and returns
//! [`MicroFlow::Next`]/[`MicroFlow::Jump`], or it mutates *nothing* and
//! returns [`MicroFlow::Exit`]. On `Exit` the caller re-enters the legacy
//! loop at the same instruction index, which re-executes it with full
//! machinery (symbolic operands, faults, memory events, SMC
//! invalidation). Exploration is therefore bit-identical whether a block
//! runs threaded, legacy, or half-and-half.
//!
//! Micro-ops bail (`Exit`) on: any non-concrete operand the legacy
//! concrete path would special-case (defensive — the `concrete_only`
//! annotation should preclude it), memory faults (the legacy loop
//! re-executes the access and raises the fault), stores into pages that
//! ever held translated code (the legacy store path owns SMC
//! invalidation), and every environment-crossing opcode (`In`/`Out`/
//! `Syscall`/`Iret`/`Halt`/`S2eOp`, indirect jumps).

use crate::state::ExecState;
use s2e_dbt::{CodePageFilter, TranslationBlock};
use s2e_expr::{BinOp, ExprBuilder, Width};
use s2e_vm::interp::{alu_binop, branch_taken, mem_width};
use s2e_vm::isa::{reg, Opcode, INSTR_SIZE};
use s2e_vm::value::Value;

/// What a micro-op did with control flow.
pub enum MicroFlow {
    /// Instruction fully executed; continue with the next micro-op.
    Next,
    /// Instruction fully executed and transferred control (the caller
    /// stores the target into `cpu.pc`).
    Jump(u32),
    /// Nothing was executed: deoptimize to the legacy loop at this index.
    Exit,
}

/// Read-only services a micro-op may need.
pub struct MicroCtx<'a> {
    /// Expression factory (memory reads can surface symbolic bytes).
    pub builder: &'a ExprBuilder,
    /// Lock-free code-page bitmap: stores that might hit translated code
    /// bail to the legacy path, which owns invalidation.
    pub filter: &'a CodePageFilter,
}

type MicroFn = fn(&mut ExecState, &MicroInstr, &MicroCtx) -> MicroFlow;

/// One lowered instruction: a function pointer plus the operands it
/// needs, pre-decoded so the hot loop never touches the `Instr` again.
pub struct MicroInstr {
    exec: MicroFn,
    rd: u8,
    rs1: u8,
    rs2: u8,
    width: u8,
    op: Opcode,
    bop: BinOp,
    imm: u32,
    next_pc: u32,
}

/// A `concrete_only` block lowered to micro-ops.
pub struct ThreadedBlock {
    micro: Vec<MicroInstr>,
    /// True if any micro-op reads or writes guest memory; such a block
    /// may only run threaded when no plugin wants memory events.
    pub has_mem_ops: bool,
    /// PC after the last instruction (fall-through target).
    pub end_pc: u32,
}

impl std::fmt::Debug for ThreadedBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedBlock")
            .field("micro_ops", &self.micro.len())
            .field("has_mem_ops", &self.has_mem_ops)
            .field("end_pc", &self.end_pc)
            .finish()
    }
}

/// Result of a threaded run over a block.
pub enum ThreadedRun {
    /// The whole block executed; `cpu.pc` holds the next block start and
    /// `executed` instructions retired.
    Completed {
        /// Instructions fully executed (to be bulk-retired by the caller).
        executed: u64,
    },
    /// A micro-op deoptimized. `executed` instructions before it ran to
    /// completion; the instruction at `resume_idx` did NOT execute and
    /// must be re-dispatched by the legacy loop.
    Bail {
        /// Instructions fully executed before the bail.
        executed: u64,
        /// Index of the first unexecuted instruction.
        resume_idx: usize,
    },
}

/// Lowers a translation block. Only called for `concrete_only` blocks;
/// opcodes the threaded engine does not model lower to an
/// unconditional-bail micro-op.
pub fn lower(tb: &TranslationBlock) -> ThreadedBlock {
    let mut micro = Vec::with_capacity(tb.instrs.len());
    let mut has_mem_ops = false;
    for (idx, i) in tb.instrs.iter().enumerate() {
        let mut width = 0u8;
        let exec: MicroFn = match i.op {
            Opcode::Nop => mi_nop,
            Opcode::MovI => mi_movi,
            Opcode::Mov => mi_mov,
            Opcode::Not => mi_not,
            Opcode::Jmp => mi_jmp,
            Opcode::Call => mi_call,
            Opcode::Cli => mi_cli,
            Opcode::Sti => mi_sti,
            Opcode::Push => {
                has_mem_ops = true;
                width = 4;
                mi_push
            }
            Opcode::Pop => {
                has_mem_ops = true;
                width = 4;
                mi_pop
            }
            Opcode::Ld8 | Opcode::Ld16 | Opcode::Ld32 => {
                has_mem_ops = true;
                width = mem_width(i.op) as u8;
                mi_load
            }
            Opcode::St8 | Opcode::St16 | Opcode::St32 => {
                has_mem_ops = true;
                width = mem_width(i.op) as u8;
                mi_store
            }
            op if op.is_conditional_branch() => mi_branch,
            op if alu_binop(op).is_some() => {
                if crate::exec::uses_imm(op) {
                    mi_alu_imm
                } else {
                    mi_alu_reg
                }
            }
            // JmpR/CallR/Ret/Syscall/Iret/In/Out/Halt/S2eOp/invalid: the
            // legacy loop owns these (solver consultation, env-boundary
            // conversions, termination); a completed threaded run thus
            // always ends on a *direct* edge.
            _ => mi_exit,
        };
        micro.push(MicroInstr {
            exec,
            rd: i.rd,
            rs1: i.rs1,
            rs2: i.rs2,
            width,
            op: i.op,
            bop: alu_binop(i.op).unwrap_or(BinOp::Add),
            imm: i.imm,
            next_pc: tb.pc_of(idx).wrapping_add(INSTR_SIZE),
        });
    }
    ThreadedBlock {
        micro,
        has_mem_ops,
        end_pc: tb.end(),
    }
}

/// Runs a lowered block from its first instruction. The caller has
/// already verified fuel for the whole block, that no instruction is
/// marked, and that no plugin wants per-instruction or (if
/// `has_mem_ops`) memory events — so the loop is pure dispatch.
pub fn run(tb: &ThreadedBlock, state: &mut ExecState, cx: &MicroCtx) -> ThreadedRun {
    let n = tb.micro.len();
    let mut idx = 0usize;
    while idx < n {
        let mi = &tb.micro[idx];
        match (mi.exec)(state, mi, cx) {
            MicroFlow::Next => idx += 1,
            MicroFlow::Jump(target) => {
                state.machine.cpu.pc = target;
                return ThreadedRun::Completed {
                    executed: (idx + 1) as u64,
                };
            }
            MicroFlow::Exit => {
                return ThreadedRun::Bail {
                    executed: idx as u64,
                    resume_idx: idx,
                }
            }
        }
    }
    // Fall-through off the end of the block.
    state.machine.cpu.pc = tb.end_pc;
    ThreadedRun::Completed { executed: n as u64 }
}

fn mi_nop(_s: &mut ExecState, _mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    MicroFlow::Next
}

fn mi_movi(s: &mut ExecState, mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    s.machine.cpu.set_reg(mi.rd, Value::Concrete(mi.imm));
    MicroFlow::Next
}

fn mi_mov(s: &mut ExecState, mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    // The legacy path clones whatever is in rs1, symbolic or not — a
    // register-to-register move never *observes* the value.
    let v = s.machine.cpu.reg(mi.rs1).clone();
    s.machine.cpu.set_reg(mi.rd, v);
    MicroFlow::Next
}

fn mi_not(s: &mut ExecState, mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    match s.machine.cpu.reg(mi.rs1).as_concrete() {
        Some(v) => {
            s.machine.cpu.set_reg(mi.rd, Value::Concrete(!v));
            MicroFlow::Next
        }
        None => MicroFlow::Exit,
    }
}

fn mi_alu_reg(s: &mut ExecState, mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    let cpu = &s.machine.cpu;
    match (cpu.reg(mi.rs1).as_concrete(), cpu.reg(mi.rs2).as_concrete()) {
        (Some(x), Some(y)) => {
            let r = s2e_expr::fold::apply_binop(mi.bop, x as u64, y as u64, Width::W32) as u32;
            s.machine.cpu.set_reg(mi.rd, Value::Concrete(r));
            MicroFlow::Next
        }
        _ => MicroFlow::Exit,
    }
}

fn mi_alu_imm(s: &mut ExecState, mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    match s.machine.cpu.reg(mi.rs1).as_concrete() {
        Some(x) => {
            let r =
                s2e_expr::fold::apply_binop(mi.bop, x as u64, mi.imm as u64, Width::W32) as u32;
            s.machine.cpu.set_reg(mi.rd, Value::Concrete(r));
            MicroFlow::Next
        }
        None => MicroFlow::Exit,
    }
}

fn mi_load(s: &mut ExecState, mi: &MicroInstr, cx: &MicroCtx) -> MicroFlow {
    let Some(base) = s.machine.cpu.reg(mi.rs1).as_concrete() else {
        return MicroFlow::Exit;
    };
    let addr = base.wrapping_add(mi.imm);
    match s.machine.mem.read(addr, mi.width as u32, cx.builder) {
        // The loaded value may be symbolic (symbolic *memory* is
        // discovered at the access, not by the operand scan) — storing it
        // into rd matches the legacy load exactly.
        Ok(v) => {
            s.machine.cpu.set_reg(mi.rd, v);
            MicroFlow::Next
        }
        Err(_) => MicroFlow::Exit,
    }
}

fn mi_store(s: &mut ExecState, mi: &MicroInstr, cx: &MicroCtx) -> MicroFlow {
    let Some(base) = s.machine.cpu.reg(mi.rs1).as_concrete() else {
        return MicroFlow::Exit;
    };
    let addr = base.wrapping_add(mi.imm);
    let Value::Concrete(val) = *s.machine.cpu.reg(mi.rs2) else {
        return MicroFlow::Exit;
    };
    if cx.filter.page_has_code(addr) {
        return MicroFlow::Exit;
    }
    match s.machine.mem.write(addr, mi.width as u32, &Value::Concrete(val), cx.builder) {
        Ok(()) => MicroFlow::Next,
        // A failed write mutated nothing the legacy retry won't rewrite
        // identically before raising the same fault.
        Err(_) => MicroFlow::Exit,
    }
}

fn mi_push(s: &mut ExecState, mi: &MicroInstr, cx: &MicroCtx) -> MicroFlow {
    let Some(sp) = s.machine.cpu.reg(reg::SP).as_concrete() else {
        return MicroFlow::Exit;
    };
    let Value::Concrete(val) = *s.machine.cpu.reg(mi.rs1) else {
        return MicroFlow::Exit;
    };
    let sp = sp.wrapping_sub(4);
    match s.machine.mem.write(sp, 4, &Value::Concrete(val), cx.builder) {
        Ok(()) => {
            s.machine.cpu.set_reg(reg::SP, Value::Concrete(sp));
            MicroFlow::Next
        }
        Err(_) => MicroFlow::Exit,
    }
}

fn mi_pop(s: &mut ExecState, mi: &MicroInstr, cx: &MicroCtx) -> MicroFlow {
    let Some(sp) = s.machine.cpu.reg(reg::SP).as_concrete() else {
        return MicroFlow::Exit;
    };
    match s.machine.mem.read(sp, 4, cx.builder) {
        Ok(v) => {
            // Same write order as the legacy pop: rd first, then SP.
            s.machine.cpu.set_reg(mi.rd, v);
            s.machine.cpu.set_reg(reg::SP, Value::Concrete(sp.wrapping_add(4)));
            MicroFlow::Next
        }
        Err(_) => MicroFlow::Exit,
    }
}

fn mi_jmp(_s: &mut ExecState, mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    MicroFlow::Jump(mi.imm)
}

fn mi_call(s: &mut ExecState, mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    s.machine.cpu.set_reg(reg::LR, Value::Concrete(mi.next_pc));
    MicroFlow::Jump(mi.imm)
}

fn mi_branch(s: &mut ExecState, mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    let cpu = &s.machine.cpu;
    match (cpu.reg(mi.rs1).as_concrete(), cpu.reg(mi.rs2).as_concrete()) {
        (Some(x), Some(y)) => {
            if branch_taken(mi.op, x, y) {
                MicroFlow::Jump(mi.imm)
            } else {
                MicroFlow::Jump(mi.next_pc)
            }
        }
        _ => MicroFlow::Exit,
    }
}

fn mi_cli(s: &mut ExecState, _mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    s.machine.cpu.interrupts_enabled = false;
    MicroFlow::Next
}

fn mi_sti(s: &mut ExecState, _mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    s.machine.cpu.interrupts_enabled = true;
    MicroFlow::Next
}

fn mi_exit(_s: &mut ExecState, _mi: &MicroInstr, _cx: &MicroCtx) -> MicroFlow {
    MicroFlow::Exit
}
