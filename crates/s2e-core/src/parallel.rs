//! Parallel path exploration with work stealing.
//!
//! The original S2E parallelized exploration the simple way: N engine
//! instances, each statically owning a slice of the input space. That
//! architecture (kept here as [`explore_static`] for comparison) has the
//! load-imbalance problem the S2E/Cloud9 lineage ran into — whichever
//! worker's slice contains the deep subtree finishes last while the rest
//! idle, and every worker pays for its own cold solver and translation
//! caches.
//!
//! [`explore_parallel`] replaces that with dynamic state migration:
//!
//! - a shared **injector queue** of transferable [`ExecState`]s — workers
//!   export fork-overflow states instead of hoarding them, and idle
//!   workers steal;
//! - one shared [`ExprBuilder`] so variable ids stay globally unique as
//!   states migrate;
//! - one shared solver **query cache** (`s2e-solver`) and the shared
//!   translation-block cache (`s2e-dbt`), so a stolen state never re-pays
//!   solver or translation work its previous owner already did.
//!
//! Exploration remains deterministic in outcome: the set of feasible
//! paths is a property of the guest, not of the schedule, so any worker
//! count yields the same total path count and the same bug set (see
//! `tests/parallel_determinism.rs`).
//!
//! ```
//! use s2e_core::parallel::{explore_parallel, ParallelConfig};
//! use s2e_core::selectors::make_reg_symbolic;
//! use s2e_core::{ConsistencyModel, EngineConfig};
//! use s2e_vm::asm::Assembler;
//! use s2e_vm::isa::reg;
//! use s2e_vm::machine::Machine;
//!
//! let report = explore_parallel(&ParallelConfig::new(2, 10_000), |ctx| {
//!     let mut a = Assembler::new(0x2000);
//!     a.movi(reg::R1, 128);
//!     a.bltu(reg::R0, reg::R1, "low");
//!     a.halt_code(1);
//!     a.label("low");
//!     a.halt_code(2);
//!     let mut m = Machine::new();
//!     m.load(&a.finish());
//!     let mut e = ctx.engine(m, EngineConfig::with_model(ConsistencyModel::ScSe));
//!     let id = e.sole_state().unwrap();
//!     let b = e.builder_arc();
//!     make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R0, "x");
//!     e
//! });
//! assert_eq!(report.total_paths, 2);
//! ```

use crate::config::EngineConfig;
use crate::engine::{Engine, SharedEngineContext};
use crate::plugin::BugReport;
use crate::state::ExecState;
use crate::stats::EngineStats;
use s2e_dbt::DbtStats;
use s2e_expr::{ExprBuilder, ExprRef, Width};
use s2e_obs::{EventKind, ObsConfig, Phase, Recorder, WorkerTimeline};
use s2e_solver::{SharedCacheStats, SolverStats};
use s2e_vm::machine::Machine;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What one worker produced.
#[derive(Debug)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Paths terminated by this worker.
    pub paths: usize,
    /// Bugs found by this worker's analyzers.
    pub bugs: Vec<BugReport>,
    /// Block-start addresses this worker executed.
    pub covered_blocks: HashSet<u32>,
    /// This worker's engine statistics.
    pub stats: EngineStats,
    /// States this worker pulled from the shared queue.
    pub steals: u64,
    /// States this worker exported to the shared queue.
    pub exports: u64,
    /// Solver queries this worker answered from the cross-worker shared
    /// cache (each one is a solve another worker paid for).
    pub shared_query_hits: u64,
    /// Solver queries this worker issued in total.
    pub solver_queries: u64,
    /// Queries (or query components) that reached this worker's SAT
    /// core — missed every cache layer, including the shared one.
    pub solver_core_solves: u64,
    /// This worker's full solver statistics (per-kind breakdown, cache
    /// eviction counters, query timing).
    pub solver: SolverStats,
    /// This worker's observability timeline (empty unless
    /// [`ParallelConfig::obs`] enabled recording).
    pub timeline: WorkerTimeline,
}

/// Tunables for [`explore_parallel`].
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Worker thread count.
    pub workers: usize,
    /// Global step budget shared by all workers (an engine step is one
    /// translation block).
    pub max_steps: u64,
    /// Steps a worker claims from the global budget per scheduler
    /// interaction; the granularity of budget accounting and of export
    /// checks.
    pub batch: u64,
    /// A worker exports surplus states beyond this many even when nobody
    /// is idle, keeping the shared queue warm.
    pub max_local_states: usize,
    /// Observability: when enabled, every worker records phase timers
    /// and an event timeline (disabled by default; DESIGN.md §11).
    pub obs: ObsConfig,
}

impl ParallelConfig {
    /// Config with default batch size and local-state cap.
    pub fn new(workers: usize, max_steps: u64) -> ParallelConfig {
        ParallelConfig {
            workers,
            max_steps,
            batch: 64,
            max_local_states: 8,
            obs: ObsConfig::default(),
        }
    }
}

/// Merged result of a work-stealing exploration.
#[derive(Debug)]
pub struct ParallelReport {
    /// Per-worker breakdown.
    pub workers: Vec<WorkerReport>,
    /// All workers' engine stats merged ([`EngineStats::merge`]).
    pub stats: EngineStats,
    /// All bugs, in worker order.
    pub bugs: Vec<BugReport>,
    /// Union of covered blocks.
    pub covered_blocks: HashSet<u32>,
    /// Total paths terminated.
    pub total_paths: usize,
    /// Total states migrated through the shared queue.
    pub steals: u64,
    /// Total states exported to the shared queue.
    pub exports: u64,
    /// Shared solver query-cache counters (cross-worker hits).
    pub shared_cache: SharedCacheStats,
    /// Shared translation-block cache counters.
    pub dbt: DbtStats,
    /// All workers' solver stats merged ([`SolverStats::merge`]).
    pub solver: SolverStats,
    /// End-to-end wall-clock time of the exploration, distinct from the
    /// summed per-worker CPU time in [`EngineStats::cpu_time`].
    pub wall_time: Duration,
}

/// Per-worker handle passed to the engine-builder closure of
/// [`explore_parallel`].
pub struct WorkerContext<'a> {
    /// This worker's index.
    pub worker: usize,
    /// Total worker count.
    pub workers: usize,
    shared: &'a SharedEngineContext,
}

impl WorkerContext<'_> {
    /// Builds an engine wired to the exploration's shared builder,
    /// translation cache, and solver cache, with this worker's state-id
    /// namespace. Always construct worker engines through this — a plain
    /// [`Engine::new`] would use private caches and colliding state ids.
    pub fn engine(&self, machine: Machine, config: EngineConfig) -> Engine {
        let mut engine = Engine::with_shared(machine, config, self.shared);
        engine.set_state_id_namespace(self.worker);
        engine
    }

    /// The shared expression builder.
    pub fn builder(&self) -> Arc<ExprBuilder> {
        Arc::clone(&self.shared.builder)
    }
}

/// The work-stealing scheduler shared by all workers.
struct Scheduler {
    sched: Mutex<SchedState>,
    cv: Condvar,
    /// Steps claimed from the global budget so far.
    steps: AtomicU64,
    /// Mirror of `SchedState::idle` readable without the lock, used by
    /// busy workers deciding whether to export.
    hungry: AtomicUsize,
    /// Mirror of `SchedState::done` readable without the lock.
    done: AtomicBool,
    steals: AtomicU64,
    exports: AtomicU64,
}

struct SchedState {
    queue: VecDeque<ExecState>,
    idle: usize,
    done: bool,
}

impl Scheduler {
    fn new() -> Scheduler {
        Scheduler {
            sched: Mutex::new(SchedState {
                queue: VecDeque::new(),
                idle: 0,
                done: false,
            }),
            cv: Condvar::new(),
            steps: AtomicU64::new(0),
            hungry: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            exports: AtomicU64::new(0),
        }
    }

    /// Claims up to `batch` steps from the global budget; 0 means the
    /// budget is spent.
    fn claim(&self, max_steps: u64, batch: u64) -> u64 {
        let mut cur = self.steps.load(Ordering::Relaxed);
        loop {
            if cur >= max_steps {
                return 0;
            }
            let take = batch.min(max_steps - cur);
            match self.steps.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns unused claimed steps to the budget.
    fn refund(&self, unused: u64) {
        if unused > 0 {
            self.steps.fetch_sub(unused, Ordering::Relaxed);
        }
    }

    fn export(&self, states: Vec<ExecState>) {
        if states.is_empty() {
            return;
        }
        self.exports.fetch_add(states.len() as u64, Ordering::Relaxed);
        let mut g = self.sched.lock().unwrap();
        g.queue.extend(states);
        drop(g);
        self.cv.notify_all();
    }

    /// Ends the exploration for everyone (budget exhausted).
    fn finish_all(&self) {
        let mut g = self.sched.lock().unwrap();
        g.done = true;
        self.done.store(true, Ordering::Relaxed);
        drop(g);
        self.cv.notify_all();
    }
}

/// Batches between [`EventKind::CacheSnapshot`] events when recording.
const SNAPSHOT_EVERY_BATCHES: u64 = 16;

fn worker_loop<F>(w: usize, cfg: &ParallelConfig, sched: &Scheduler, shared: &SharedEngineContext, build: &F) -> WorkerReport
where
    F: Fn(&WorkerContext) -> Engine + Sync,
{
    let ctx = WorkerContext {
        worker: w,
        workers: cfg.workers,
        shared,
    };
    let mut engine = build(&ctx);
    if cfg.obs.enabled {
        engine.set_recorder(Recorder::new(w, &cfg.obs));
    }
    if w != 0 {
        // Every worker builds the same root; only worker 0's is explored.
        // The rest start empty and pull their first state from the queue.
        engine.drain_states();
    }
    let mut steals = 0u64;
    let mut exports = 0u64;
    let mut batches = 0u64;

    'outer: loop {
        // Phase 1: run local work, batch by batch.
        while engine.live_count() > 0 {
            if sched.done.load(Ordering::Relaxed) {
                break 'outer;
            }
            let claimed = sched.claim(cfg.max_steps, cfg.batch);
            if claimed == 0 {
                sched.finish_all();
                break 'outer;
            }
            let mut used = 0;
            while used < claimed {
                if engine.step().is_none() {
                    break;
                }
                used += 1;
            }
            sched.refund(claimed - used);
            batches += 1;

            // Periodic cache-effectiveness snapshot (cumulative counters;
            // deltas between snapshots show warm-up). Throttled because
            // reading the shared translation-cache counters takes the
            // cache lock — per batch that contends with workers
            // translating.
            if engine.recorder().is_enabled() && batches % SNAPSHOT_EVERY_BATCHES == 0 {
                let dbt = engine.dbt_stats();
                let sv = engine.solver_stats();
                let snapshot = EventKind::CacheSnapshot {
                    tb_hits: dbt.hits,
                    tb_translations: dbt.translations,
                    query_cache_hits: sv.cache_hits + sv.shared_hits,
                    queries: sv.queries,
                };
                engine.recorder_mut().note(snapshot);
            }

            // Phase 2: export fork overflow instead of hoarding it.
            let live = engine.live_count();
            let hungry = sched.hungry.load(Ordering::Relaxed) > 0;
            let keep = if hungry && live > 1 {
                // Someone is starving: hand off half our frontier.
                (live + 1) / 2
            } else if live > cfg.max_local_states {
                cfg.max_local_states
            } else {
                live
            };
            if keep < live {
                engine.recorder_mut().enter(Phase::Migrate);
                let surplus = engine.detach_overflow(keep);
                let count = surplus.len();
                exports += count as u64;
                sched.export(surplus);
                engine.recorder_mut().note(EventKind::Export { count: count as u32 });
                engine.recorder_mut().exit(Phase::Migrate);
            }
        }

        // Phase 3: local frontier is dry — steal, or detect completion.
        // The whole scheduler interaction is one Migrate span, with the
        // time parked on the condvar carved out as Idle.
        engine.recorder_mut().enter(Phase::Migrate);
        let mut g = sched.sched.lock().unwrap();
        loop {
            if g.done {
                engine.recorder_mut().exit(Phase::Migrate);
                break 'outer;
            }
            if let Some(state) = g.queue.pop_front() {
                let depth = g.queue.len() as u32;
                drop(g);
                steals += 1;
                let obs = engine.recorder_mut();
                obs.note(EventKind::QueueDepth { depth });
                obs.note(EventKind::Steal { state: state.id.0 });
                obs.exit(Phase::Migrate);
                engine.attach_state(state);
                continue 'outer;
            }
            g.idle += 1;
            sched.hungry.fetch_add(1, Ordering::Relaxed);
            if g.idle == cfg.workers {
                // Every worker is idle and the queue is empty: done.
                g.done = true;
                sched.done.store(true, Ordering::Relaxed);
                drop(g);
                sched.cv.notify_all();
                engine.recorder_mut().exit(Phase::Migrate);
                break 'outer;
            }
            engine.recorder_mut().enter(Phase::Idle);
            g = sched.cv.wait(g).unwrap();
            engine.recorder_mut().exit(Phase::Idle);
            g.idle -= 1;
            sched.hungry.fetch_sub(1, Ordering::Relaxed);
        }
    }

    sched.steals.fetch_add(steals, Ordering::Relaxed);
    let solver = engine.solver_stats().clone();
    WorkerReport {
        worker: w,
        paths: engine.terminated().len(),
        shared_query_hits: solver.shared_hits,
        solver_queries: solver.queries,
        solver_core_solves: solver.core_solves,
        bugs: engine.bugs().to_vec(),
        covered_blocks: engine.seen_blocks().clone(),
        stats: engine.stats().clone(),
        solver,
        steals,
        exports,
        timeline: engine.take_timeline(),
    }
}

/// Runs a work-stealing exploration: `build(ctx)` constructs each
/// worker's engine (load the image, inject symbolic inputs, register
/// plugins) through [`WorkerContext::engine`] so all workers share one
/// expression builder, one translation-block cache, and one solver query
/// cache. Worker 0's initial state seeds the exploration; all other
/// initial states are discarded and those workers steal.
pub fn explore_parallel<F>(cfg: &ParallelConfig, build: F) -> ParallelReport
where
    F: Fn(&WorkerContext) -> Engine + Sync,
{
    assert!(cfg.workers > 0 && cfg.batch > 0 && cfg.max_local_states > 0);
    let shared = SharedEngineContext::new();
    let sched = Scheduler::new();
    let build = &build;
    let shared_ref = &shared;
    let sched_ref = &sched;
    let started = Instant::now();
    let mut workers: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|w| scope.spawn(move || worker_loop(w, cfg, sched_ref, shared_ref, build)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let wall_time = started.elapsed();
    workers.sort_by_key(|r| r.worker);

    let mut stats = EngineStats::default();
    let mut solver = SolverStats::default();
    let mut bugs = Vec::new();
    let mut covered_blocks = HashSet::new();
    let mut total_paths = 0;
    for r in &workers {
        stats.merge(&r.stats);
        solver.merge(&r.solver);
        bugs.extend(r.bugs.iter().cloned());
        covered_blocks.extend(r.covered_blocks.iter().copied());
        total_paths += r.paths;
    }
    ParallelReport {
        stats,
        solver,
        bugs,
        covered_blocks,
        total_paths,
        steals: sched.steals.load(Ordering::Relaxed),
        exports: sched.exports.load(Ordering::Relaxed),
        shared_cache: shared.query_cache.stats(),
        dbt: shared.tb_cache.stats(),
        wall_time,
        workers,
    }
}

/// Constrains `input` to worker `i`'s slice of the 32-bit value space —
/// the static partitioning used by [`explore_static`] and kept as the
/// baseline the work-stealing explorer is benchmarked against.
pub fn partition_constraint(
    state: &mut ExecState,
    builder: &ExprBuilder,
    input: &ExprRef,
    worker: usize,
    workers: usize,
) {
    assert!(workers > 0 && worker < workers, "bad partition {worker}/{workers}");
    let span = (u32::MAX / workers as u32).saturating_add(1);
    let lo = span.saturating_mul(worker as u32);
    if worker > 0 {
        state.add_constraint(builder.ule(
            builder.constant(lo as u64, Width::W32),
            input.clone(),
        ));
    }
    if worker + 1 < workers {
        let hi = lo.saturating_add(span - 1);
        state.add_constraint(builder.ule(
            input.clone(),
            builder.constant(hi as u64, Width::W32),
        ));
    }
}

/// The original static-partition explorer: `workers` fully independent
/// engines (cold private caches, no migration), each given `max_steps`
/// of budget. `setup(i, n)` builds worker `i`'s engine — typically
/// loading the same image and applying [`partition_constraint`].
///
/// Kept as the load-imbalance baseline; new code should use
/// [`explore_parallel`].
pub fn explore_static<F>(workers: usize, max_steps: u64, setup: F) -> Vec<WorkerReport>
where
    F: Fn(usize, usize) -> Engine + Sync,
{
    assert!(workers > 0);
    let setup = &setup;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut engine = setup(w, workers);
                    engine.run(max_steps);
                    let solver = engine.solver_stats().clone();
                    WorkerReport {
                        worker: w,
                        paths: engine.terminated().len(),
                        shared_query_hits: solver.shared_hits,
                        solver_queries: solver.queries,
                        solver_core_solves: solver.core_solves,
                        bugs: engine.bugs().to_vec(),
                        covered_blocks: engine.seen_blocks().clone(),
                        stats: engine.stats().clone(),
                        solver,
                        steals: 0,
                        exports: 0,
                        timeline: engine.take_timeline(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Merges worker coverage into one set.
pub fn merge_coverage(reports: &[WorkerReport]) -> HashSet<u32> {
    let mut out = HashSet::new();
    for r in reports {
        out.extend(r.covered_blocks.iter().copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConsistencyModel, EngineConfig};
    use crate::selectors::make_reg_symbolic;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::reg;
    use s2e_vm::machine::Machine;

    /// Two nested branches on x: 3 leaf outcomes, 4+ blocks.
    fn branchy_machine() -> Machine {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 0x4000_0000);
        a.bltu(reg::R0, reg::R1, "q1");
        a.movi(reg::R1, 0xc000_0000);
        a.bltu(reg::R0, reg::R1, "mid");
        a.halt_code(3);
        a.label("mid");
        a.halt_code(2);
        a.label("q1");
        a.halt_code(1);
        let mut m = Machine::new();
        m.load(&a.finish());
        m
    }

    fn branchy_worker(ctx: &WorkerContext) -> Engine {
        let mut e = ctx.engine(
            branchy_machine(),
            EngineConfig::with_model(ConsistencyModel::ScSe),
        );
        let id = e.sole_state().unwrap();
        let b = e.builder_arc();
        make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R0, "x");
        e
    }

    fn static_worker(worker: usize, workers: usize) -> Engine {
        let mut e = Engine::new(
            branchy_machine(),
            EngineConfig::with_model(ConsistencyModel::ScSe),
        );
        let id = e.sole_state().unwrap();
        let b = e.builder_arc();
        let x = make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R0, "x");
        partition_constraint(e.state_mut(id).unwrap(), &b, &x, worker, workers);
        e
    }

    #[test]
    fn work_stealing_explores_all_paths() {
        let report = explore_parallel(&ParallelConfig::new(4, 10_000), branchy_worker);
        assert_eq!(report.workers.len(), 4);
        // Work stealing explores each feasible path exactly once — no
        // duplicated outcomes across workers, unlike static partitions.
        assert_eq!(report.total_paths, 3, "{report:?}");
        assert!(report.stats.blocks_executed > 0);
        assert!(report.covered_blocks.len() >= 4);
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let par = explore_parallel(&ParallelConfig::new(1, 10_000), branchy_worker);
        assert_eq!(par.workers.len(), 1);
        assert_eq!(par.steals, 0);
        let mut seq = static_worker(0, 1);
        seq.run(10_000);
        assert_eq!(par.total_paths, seq.terminated().len());
    }

    #[test]
    fn stealing_matches_sequential_path_count() {
        let seq = explore_parallel(&ParallelConfig::new(1, 10_000), branchy_worker);
        // A tiny export threshold forces migration even on a small tree.
        let mut cfg = ParallelConfig::new(4, 10_000);
        cfg.batch = 1;
        cfg.max_local_states = 1;
        let par = explore_parallel(&cfg, branchy_worker);
        assert_eq!(par.total_paths, seq.total_paths);
        assert_eq!(par.exports, par.steals + queued_leftover(&par), "states conserved");
    }

    /// Exported-but-never-stolen states only exist if the run ended on
    /// budget; with exhaustive runs the queue drains completely.
    fn queued_leftover(_r: &ParallelReport) -> u64 {
        0
    }

    #[test]
    fn static_baseline_still_works() {
        let reports = explore_static(4, 10_000, static_worker);
        assert_eq!(reports.len(), 4);
        let total: usize = reports.iter().map(|r| r.paths).sum();
        // Static slices duplicate boundary outcomes; together they cover
        // at least the 3 real paths.
        assert!(total >= 3, "{total}");
        let merged = merge_coverage(&reports);
        assert!(merged.len() >= 4, "merged coverage {merged:?}");
    }

    #[test]
    fn budget_stops_all_workers() {
        // A budget far too small to finish: the run must still terminate
        // and report at most that many steps.
        let mut cfg = ParallelConfig::new(4, 8);
        cfg.batch = 2;
        let report = explore_parallel(&cfg, branchy_worker);
        assert!(report.stats.blocks_executed <= 8, "{report:?}");
    }

    #[test]
    fn partition_constraints_disjoint() {
        // A worker's partition excludes values owned by other workers.
        let b = ExprBuilder::new();
        let mut st = ExecState::initial(Machine::new());
        let x = b.var("x", Width::W32);
        partition_constraint(&mut st, &b, &x, 1, 4);
        let mut solver = s2e_solver::Solver::new();
        // 0 belongs to worker 0, not worker 1.
        let is_zero = b.eq(x.clone(), b.constant(0, Width::W32));
        assert_eq!(solver.may_be_true(&st.constraints, &is_zero), Some(false));
        // 0x5000_0000 belongs to worker 1.
        let in_slice = b.eq(x, b.constant(0x5000_0000, Width::W32));
        assert_eq!(solver.may_be_true(&st.constraints, &in_slice), Some(true));
    }

    #[test]
    #[should_panic(expected = "bad partition")]
    fn partition_validates_indices() {
        let b = ExprBuilder::new();
        let mut st = ExecState::initial(Machine::new());
        let x = b.var("x", Width::W32);
        partition_constraint(&mut st, &b, &x, 4, 4);
    }
}
