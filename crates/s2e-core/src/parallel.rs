//! Parallel path exploration.
//!
//! The S2E project parallelizes exploration by running multiple engine
//! instances over a *partitioned* input space (each node owns a slice of
//! the first symbolic input and explores the subtree it induces). This
//! module reproduces that architecture in-process: N workers each build
//! an engine, constrain their state to partition `i` of `n`, explore
//! independently — no shared mutable state, so scaling is embarrassing —
//! and the reports are merged afterwards.
//!
//! ```
//! use s2e_core::parallel::{explore_parallel, partition_constraint};
//! use s2e_core::selectors::make_reg_symbolic;
//! use s2e_core::{ConsistencyModel, Engine, EngineConfig};
//! use s2e_vm::asm::Assembler;
//! use s2e_vm::isa::reg;
//! use s2e_vm::machine::Machine;
//!
//! let reports = explore_parallel(2, 10_000, |worker, workers| {
//!     let mut a = Assembler::new(0x2000);
//!     a.movi(reg::R1, 128);
//!     a.bltu(reg::R0, reg::R1, "low");
//!     a.halt_code(1);
//!     a.label("low");
//!     a.halt_code(2);
//!     let mut m = Machine::new();
//!     m.load(&a.finish());
//!     let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScSe));
//!     let id = e.sole_state().unwrap();
//!     let b = e.builder_arc();
//!     let x = make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R0, "x");
//!     partition_constraint(e.state_mut(id).unwrap(), &b, &x, worker, workers);
//!     e
//! });
//! let total: usize = reports.iter().map(|r| r.paths).sum();
//! assert!(total >= 2);
//! ```

use crate::engine::Engine;
use crate::plugin::BugReport;
use crate::state::ExecState;
use crate::stats::EngineStats;
use s2e_expr::{ExprBuilder, ExprRef, Width};
use std::collections::HashSet;

/// What one worker produced.
#[derive(Debug)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Paths terminated by this worker.
    pub paths: usize,
    /// Bugs found by this worker's analyzers.
    pub bugs: Vec<BugReport>,
    /// Block-start addresses this worker executed.
    pub covered_blocks: HashSet<u32>,
    /// This worker's engine statistics.
    pub stats: EngineStats,
}

/// Constrains `input` to worker `i`'s slice of the 32-bit value space,
/// the standard way to partition an exploration across workers.
pub fn partition_constraint(
    state: &mut ExecState,
    builder: &ExprBuilder,
    input: &ExprRef,
    worker: usize,
    workers: usize,
) {
    assert!(workers > 0 && worker < workers, "bad partition {worker}/{workers}");
    let span = (u32::MAX / workers as u32).saturating_add(1);
    let lo = span.saturating_mul(worker as u32);
    if worker > 0 {
        state.add_constraint(builder.ule(
            builder.constant(lo as u64, Width::W32),
            input.clone(),
        ));
    }
    if worker + 1 < workers {
        let hi = lo.saturating_add(span - 1);
        state.add_constraint(builder.ule(
            input.clone(),
            builder.constant(hi as u64, Width::W32),
        ));
    }
}

/// Runs `workers` independent engines in parallel. `setup(i, n)` builds
/// worker `i`'s engine (typically: load the same image, inject the same
/// symbolic inputs, then apply [`partition_constraint`]).
pub fn explore_parallel<F>(workers: usize, max_steps: u64, setup: F) -> Vec<WorkerReport>
where
    F: Fn(usize, usize) -> Engine + Sync,
{
    assert!(workers > 0);
    let setup = &setup;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move |_| {
                    let mut engine = setup(w, workers);
                    engine.run(max_steps);
                    WorkerReport {
                        worker: w,
                        paths: engine.terminated().len(),
                        bugs: engine.bugs().to_vec(),
                        covered_blocks: engine.seen_blocks().clone(),
                        stats: engine.stats().clone(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope panicked")
}

/// Merges worker coverage into one set.
pub fn merge_coverage(reports: &[WorkerReport]) -> HashSet<u32> {
    let mut out = HashSet::new();
    for r in reports {
        out.extend(r.covered_blocks.iter().copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConsistencyModel, EngineConfig};
    use crate::selectors::make_reg_symbolic;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::reg;
    use s2e_vm::machine::Machine;

    fn branchy_engine(worker: usize, workers: usize) -> Engine {
        let mut a = Assembler::new(0x2000);
        // Two nested branches on x: 4 leaf outcomes.
        a.movi(reg::R1, 0x4000_0000);
        a.bltu(reg::R0, reg::R1, "q1");
        a.movi(reg::R1, 0xc000_0000);
        a.bltu(reg::R0, reg::R1, "mid");
        a.halt_code(3);
        a.label("mid");
        a.halt_code(2);
        a.label("q1");
        a.halt_code(1);
        let mut m = Machine::new();
        m.load(&a.finish());
        let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScSe));
        let id = e.sole_state().unwrap();
        let b = e.builder_arc();
        let x = make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R0, "x");
        partition_constraint(e.state_mut(id).unwrap(), &b, &x, worker, workers);
        e
    }

    #[test]
    fn workers_cover_the_whole_space_together() {
        let reports = explore_parallel(4, 10_000, branchy_engine);
        assert_eq!(reports.len(), 4);
        // Each worker's slice admits at most 2 of the 3 outcomes; jointly
        // they admit all 3 (some outcomes found by several workers).
        let total_paths: usize = reports.iter().map(|r| r.paths).sum();
        assert!(total_paths >= 3, "{total_paths}");
        for r in &reports {
            assert!(r.paths >= 1, "worker {} found nothing", r.worker);
            assert!(r.stats.blocks_executed > 0);
        }
        let merged = merge_coverage(&reports);
        assert!(merged.len() >= 4, "merged coverage {merged:?}");
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let par = explore_parallel(1, 10_000, branchy_engine);
        assert_eq!(par.len(), 1);
        let mut seq = branchy_engine(0, 1);
        seq.run(10_000);
        assert_eq!(par[0].paths, seq.terminated().len());
    }

    #[test]
    fn partition_constraints_disjoint() {
        // A worker's partition excludes values owned by other workers.
        let b = ExprBuilder::new();
        let mut st = ExecState::initial(Machine::new());
        let x = b.var("x", Width::W32);
        partition_constraint(&mut st, &b, &x, 1, 4);
        let mut solver = s2e_solver::Solver::new();
        // 0 belongs to worker 0, not worker 1.
        let is_zero = b.eq(x.clone(), b.constant(0, Width::W32));
        assert_eq!(solver.may_be_true(&st.constraints, &is_zero), Some(false));
        // 0x5000_0000 belongs to worker 1.
        let in_slice = b.eq(x, b.constant(0x5000_0000, Width::W32));
        assert_eq!(solver.may_be_true(&st.constraints, &in_slice), Some(true));
    }

    #[test]
    #[should_panic(expected = "bad partition")]
    fn partition_validates_indices() {
        let b = ExprBuilder::new();
        let mut st = ExecState::initial(Machine::new());
        let x = b.var("x", Width::W32);
        partition_constraint(&mut st, &b, &x, 4, 4);
    }
}
