//! Parallel path exploration with work stealing.
//!
//! The original S2E parallelized exploration the simple way: N engine
//! instances, each statically owning a slice of the input space. That
//! architecture (kept here as [`explore_static`] for comparison) has the
//! load-imbalance problem the S2E/Cloud9 lineage ran into — whichever
//! worker's slice contains the deep subtree finishes last while the rest
//! idle, and every worker pays for its own cold solver and translation
//! caches.
//!
//! [`explore_parallel`] replaces that with dynamic state migration. Two
//! schedulers implement it ([`SchedulerKind`]):
//!
//! - **[`SchedulerKind::Deque`]** (default): each worker owns a
//!   Chase–Lev deque ([`crate::deque`]) and pushes/pops fork-overflow
//!   states on its own bottom lock-free; idle workers steal single
//!   states off victims' tops with one CAS, scanning victims in an
//!   order shuffled per worker by a seeded [`s2e_prng::SplitMix64`].
//!   The only mutex guards the park path — taken when every deque is
//!   observed empty, never on the data path. Workers observed parking
//!   feed an *idle pressure* signal back into the export decision
//!   (DESIGN.md §12), so exports get eager exactly while starvation is
//!   being observed.
//! - **[`SchedulerKind::Injector`]**: the PR-1 baseline — one shared
//!   injector queue behind a `Mutex` + `Condvar`. Kept as the ablation
//!   arm `bench --bin parallel_scaling` compares against.
//!
//! Both share one [`ExprBuilder`] so variable ids stay globally unique
//! as states migrate, one solver query cache (`s2e-solver`), and the
//! shared translation-block cache (`s2e-dbt`), so a stolen state never
//! re-pays solver or translation work its previous owner already did.
//!
//! Every migrated state is accounted: `exports == steals + reclaims +
//! queue_leftover` ([`ParallelReport`]), asserted after every run —
//! states are exported exactly once and then either stolen by another
//! worker, reclaimed by their exporter, or counted as leftover when the
//! step budget ends the run first.
//!
//! Under an [`EvictionPolicy`], exported states may ride the queues in
//! compact `{checkpoint, journal}` form (§13) instead of as full live
//! states: the exporter evicts ([`Engine::evict_state`]), the taker
//! rehydrates by deterministic replay ([`Engine::rehydrate`]), and the
//! conservation invariant extends to `evictions == rehydrations +
//! evicted_leftover` — every compact state is either reconstructed or
//! counted when the budget strands it.
//!
//! Exploration remains deterministic in outcome: the set of feasible
//! paths is a property of the guest, not of the schedule, so any worker
//! count and either scheduler yields the same total path count and the
//! same bug set (see `tests/parallel_determinism.rs`).
//!
//! ```
//! use s2e_core::parallel::{explore_parallel, ParallelConfig};
//! use s2e_core::selectors::make_reg_symbolic;
//! use s2e_core::{ConsistencyModel, EngineConfig};
//! use s2e_vm::asm::Assembler;
//! use s2e_vm::isa::reg;
//! use s2e_vm::machine::Machine;
//!
//! let report = explore_parallel(&ParallelConfig::new(2, 10_000), |ctx| {
//!     let mut a = Assembler::new(0x2000);
//!     a.movi(reg::R1, 128);
//!     a.bltu(reg::R0, reg::R1, "low");
//!     a.halt_code(1);
//!     a.label("low");
//!     a.halt_code(2);
//!     let mut m = Machine::new();
//!     m.load(&a.finish());
//!     let mut e = ctx.engine(m, EngineConfig::with_model(ConsistencyModel::ScSe));
//!     let id = e.sole_state().unwrap();
//!     let b = e.builder_arc();
//!     make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R0, "x");
//!     e
//! });
//! assert_eq!(report.total_paths, 2);
//! ```

use crate::config::EngineConfig;
use crate::deque::{self, Steal, Stealer};
use crate::engine::{Engine, SharedEngineContext};
use crate::plugin::BugReport;
use crate::state::{CompactState, ExecState, StateId};
use crate::stats::EngineStats;
use s2e_dbt::DbtStats;
use s2e_expr::{ExprBuilder, ExprRef, Width};
use crate::telemetry::publish_shared_cache_stats;
use s2e_obs::{
    Counter, EventKind, Gauge, Hist, LiveTelemetry, ObsConfig, Phase, Recorder, TelemetryHandle,
    WorkerTimeline,
};
use s2e_prng::SplitMix64;
use s2e_solver::{SharedCacheStats, SolverStats};
use s2e_vm::machine::Machine;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What one worker produced.
#[derive(Debug)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Paths terminated by this worker.
    pub paths: usize,
    /// Sorted [`ExecState::path_digest`] values of this worker's
    /// terminated paths — nonempty only when the engine-builder closure
    /// enabled [`Engine::set_retain_terminated`]. The distributed tier
    /// compares the merged multiset against its own (DESIGN.md §17).
    pub path_digests: Vec<u64>,
    /// Bugs found by this worker's analyzers.
    pub bugs: Vec<BugReport>,
    /// Block-start addresses this worker executed.
    pub covered_blocks: HashSet<u32>,
    /// This worker's engine statistics.
    pub stats: EngineStats,
    /// States this worker took that *another* worker exported (injector
    /// pops, or cross-worker deque steals).
    pub steals: u64,
    /// States this worker popped back off its *own* deque after
    /// exporting them (always 0 in injector mode, where exports go to
    /// the shared queue and never return to their exporter directly).
    pub reclaims: u64,
    /// States this worker exported (shared queue or own deque).
    pub exports: u64,
    /// Solver queries this worker answered from the cross-worker shared
    /// cache (each one is a solve another worker paid for).
    pub shared_query_hits: u64,
    /// Solver queries this worker issued in total.
    pub solver_queries: u64,
    /// Queries (or query components) that reached this worker's SAT
    /// core — missed every cache layer, including the shared one.
    pub solver_core_solves: u64,
    /// This worker's full solver statistics (per-kind breakdown, cache
    /// eviction counters, query timing).
    pub solver: SolverStats,
    /// This worker's observability timeline (empty unless
    /// [`ParallelConfig::obs`] enabled recording).
    pub timeline: WorkerTimeline,
    /// This worker's private DBT counters (L1 hits, chain entries/exits)
    /// — the shared-cache counters live in [`ParallelReport::dbt`]
    /// alongside these, merged.
    pub dbt: DbtStats,
}

/// What sits in a scheduler queue: a live state, or one evicted to its
/// compact `{checkpoint, journal}` form under the [`EvictionPolicy`].
#[derive(Debug)]
pub enum QueuedState {
    /// A full live state, attached directly on take.
    Live(ExecState),
    /// A compact state, rehydrated by deterministic replay on take.
    Compact(CompactState),
}

impl QueuedState {
    /// The queued state's id, whichever form it rides in.
    pub fn id(&self) -> StateId {
        match self {
            QueuedState::Live(s) => s.id,
            QueuedState::Compact(c) => c.id,
        }
    }

    /// Bytes this entry keeps resident while queued — the quantity the
    /// eviction policy caps and `queue_bytes_peak` watermarks. Live
    /// states count their private machine memory; compact states count
    /// their journal plus header (the shared checkpoint `Arc` is
    /// amortized across siblings).
    pub fn resident_bytes(&self) -> usize {
        match self {
            QueuedState::Live(s) => s.machine.private_state_bytes(),
            QueuedState::Compact(c) => c.resident_bytes(),
        }
    }
}

/// When exported states are evicted to compact form (§13).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Never evict: queues hold live states (the pre-§13 behavior).
    Off,
    /// Evict an export when the bytes already resident in the queues
    /// plus the candidate's own would exceed this many.
    Cap(usize),
    /// Evict every export — the stress and verification mode, and the
    /// fig8 checkpointed arm.
    Aggressive,
}

/// Which migration scheduler [`explore_parallel`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Per-worker Chase–Lev deques, lock-free on the data path
    /// (default; DESIGN.md §12).
    Deque,
    /// The PR-1 single shared injector queue (`Mutex` + `Condvar`),
    /// kept as the ablation baseline.
    Injector,
}

/// Tunables for [`explore_parallel`].
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Worker thread count.
    pub workers: usize,
    /// Global step budget shared by all workers (an engine step is one
    /// translation block).
    pub max_steps: u64,
    /// Steps a worker claims from the global budget per scheduler
    /// interaction; the granularity of budget accounting and of export
    /// checks.
    pub batch: u64,
    /// A worker exports surplus states beyond this many even when nobody
    /// is idle, keeping migratable work visible (halved while idle
    /// pressure is observed in deque mode).
    pub max_local_states: usize,
    /// Which migration scheduler to use.
    pub scheduler: SchedulerKind,
    /// When exported states are shipped compact instead of live (§13).
    pub eviction: EvictionPolicy,
    /// Embed a fingerprint in every evicted state and assert the
    /// rehydrated reconstruction is bit-identical (replay-identity
    /// checking; costs a full-state digest per eviction and per
    /// rehydration).
    pub verify_replay: bool,
    /// Observability: when enabled, every worker records phase timers
    /// and an event timeline (disabled by default; DESIGN.md §11).
    pub obs: ObsConfig,
}

impl ParallelConfig {
    /// Config with default batch size, local-state cap, and the deque
    /// scheduler.
    pub fn new(workers: usize, max_steps: u64) -> ParallelConfig {
        ParallelConfig {
            workers,
            max_steps,
            batch: 64,
            max_local_states: 8,
            scheduler: SchedulerKind::Deque,
            eviction: EvictionPolicy::Off,
            verify_replay: false,
            obs: ObsConfig::default(),
        }
    }

    /// The same config running the injector baseline.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> ParallelConfig {
        self.scheduler = scheduler;
        self
    }
}

/// Merged result of a work-stealing exploration.
#[derive(Debug)]
pub struct ParallelReport {
    /// Per-worker breakdown.
    pub workers: Vec<WorkerReport>,
    /// All workers' engine stats merged ([`EngineStats::merge`]).
    pub stats: EngineStats,
    /// All bugs, in worker order.
    pub bugs: Vec<BugReport>,
    /// Union of covered blocks.
    pub covered_blocks: HashSet<u32>,
    /// Total paths terminated.
    pub total_paths: usize,
    /// All workers' [`WorkerReport::path_digests`], merged and sorted —
    /// the schedule-independent identity of the explored path set.
    pub path_digests: Vec<u64>,
    /// Total exported states taken by a *different* worker.
    pub steals: u64,
    /// Total exported states popped back by their own exporter (deque
    /// mode only).
    pub reclaims: u64,
    /// Total states exported for migration.
    pub exports: u64,
    /// Exported states never taken before the run ended — nonzero only
    /// when the step budget truncated exploration. Every export is
    /// accounted: `exports == steals + reclaims + queue_leftover`.
    pub queue_leftover: u64,
    /// Evicted states stranded compact in a queue when the run ended —
    /// the compact-form share of `queue_leftover`. Every eviction is
    /// accounted: `stats.evictions == stats.rehydrations +
    /// evicted_leftover`.
    pub evicted_leftover: u64,
    /// High-watermark of bytes resident in scheduler queues across the
    /// run — the quantity eviction exists to cap, and the metric the
    /// fig8 checkpointed arm reports.
    pub queue_bytes_peak: usize,
    /// Shared solver query-cache counters (cross-worker hits).
    pub shared_cache: SharedCacheStats,
    /// Translation-block cache counters: the shared cache's totals
    /// merged with every worker's private L1/chain counters, so `hits`
    /// counts L1 and shared hits consistently.
    pub dbt: DbtStats,
    /// All workers' solver stats merged ([`SolverStats::merge`]).
    pub solver: SolverStats,
    /// End-to-end wall-clock time of the exploration, distinct from the
    /// summed per-worker CPU time in [`EngineStats::cpu_time`].
    pub wall_time: Duration,
}

/// Per-worker handle passed to the engine-builder closure of
/// [`explore_parallel`].
pub struct WorkerContext<'a> {
    /// This worker's index.
    pub worker: usize,
    /// Total worker count.
    pub workers: usize,
    shared: &'a SharedEngineContext,
}

impl WorkerContext<'_> {
    /// Builds an engine wired to the exploration's shared builder,
    /// translation cache, and solver cache, with this worker's state-id
    /// namespace. Always construct worker engines through this — a plain
    /// [`Engine::new`] would use private caches and colliding state ids.
    pub fn engine(&self, machine: Machine, config: EngineConfig) -> Engine {
        let mut engine = Engine::with_shared(machine, config, self.shared);
        engine.set_state_id_namespace(self.worker);
        engine
    }

    /// The shared expression builder.
    pub fn builder(&self) -> Arc<ExprBuilder> {
        Arc::clone(&self.shared.builder)
    }
}

/// The global step budget, claimed batch-wise by workers.
struct StepBudget {
    steps: AtomicU64,
}

impl StepBudget {
    fn new() -> StepBudget {
        StepBudget {
            steps: AtomicU64::new(0),
        }
    }

    /// Claims up to `batch` steps from the global budget; 0 means the
    /// budget is spent.
    fn claim(&self, max_steps: u64, batch: u64) -> u64 {
        let mut cur = self.steps.load(Ordering::Relaxed);
        loop {
            if cur >= max_steps {
                return 0;
            }
            let take = batch.min(max_steps - cur);
            match self.steps.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns unused claimed steps to the budget.
    fn refund(&self, unused: u64) {
        if unused > 0 {
            self.steps.fetch_sub(unused, Ordering::Relaxed);
        }
    }
}

/// Queue-resident byte accounting shared by both schedulers: `add` on
/// export (before the state becomes takeable), `sub` on take. The peak
/// is the run's queue-memory high-watermark.
struct QueueBytes {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl QueueBytes {
    fn new() -> QueueBytes {
        QueueBytes {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    fn add(&self, n: usize) {
        let now = self.current.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn sub(&self, n: usize) {
        self.current.fetch_sub(n, Ordering::Relaxed);
    }

    fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }
}

/// The PR-1 injector scheduler: one shared queue behind a mutex, kept
/// as the ablation baseline ([`SchedulerKind::Injector`]).
struct InjectorScheduler {
    sched: Mutex<InjectorState>,
    cv: Condvar,
    budget: StepBudget,
    bytes: QueueBytes,
    /// Mirror of `InjectorState::idle` readable without the lock, used
    /// by busy workers deciding whether to export. Balanced on every
    /// worker exit path — asserted 0 after join.
    hungry: AtomicUsize,
    /// Mirror of `InjectorState::done` readable without the lock.
    done: AtomicBool,
    steals: AtomicU64,
    exports: AtomicU64,
}

struct InjectorState {
    queue: VecDeque<QueuedState>,
    idle: usize,
    done: bool,
}

impl InjectorScheduler {
    fn new() -> InjectorScheduler {
        InjectorScheduler {
            sched: Mutex::new(InjectorState {
                queue: VecDeque::new(),
                idle: 0,
                done: false,
            }),
            cv: Condvar::new(),
            budget: StepBudget::new(),
            bytes: QueueBytes::new(),
            hungry: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            exports: AtomicU64::new(0),
        }
    }

    fn export(&self, states: Vec<QueuedState>) {
        if states.is_empty() {
            return;
        }
        self.exports.fetch_add(states.len() as u64, Ordering::Relaxed);
        self.bytes.add(states.iter().map(QueuedState::resident_bytes).sum());
        let mut g = self.sched.lock().unwrap();
        g.queue.extend(states);
        drop(g);
        self.cv.notify_all();
    }

    /// Ends the exploration for everyone (budget exhausted).
    fn finish_all(&self) {
        let mut g = self.sched.lock().unwrap();
        g.done = true;
        self.done.store(true, Ordering::Relaxed);
        drop(g);
        self.cv.notify_all();
    }
}

/// Batches between [`EventKind::CacheSnapshot`] events when recording.
const SNAPSHOT_EVERY_BATCHES: u64 = 16;

/// Idle-pressure bookkeeping (deque scheduler): each observed park adds
/// [`IDLE_PRESSURE_BUMP`], capped at [`IDLE_PRESSURE_CAP`]; every export
/// decision decays the signal by 1/8 (at least 1). While nonzero, the
/// local-state cap is halved so starving workers find exports sooner.
const IDLE_PRESSURE_BUMP: u32 = 256;
const IDLE_PRESSURE_CAP: u32 = 4096;

/// The deque scheduler: per-worker Chase–Lev deques, a lock only for
/// parking, and cross-worker termination detection (DESIGN.md §12).
struct DequeScheduler {
    /// Stealer handles for every worker's deque, indexed by worker.
    stealers: Vec<Stealer<QueuedState>>,
    budget: StepBudget,
    bytes: QueueBytes,
    /// Workers currently in the steal phase (no local work). The
    /// lock-free starvation hint: exporters notify the condvar and halve
    /// their keep threshold only when it is nonzero. Balanced on every
    /// exit path — asserted 0 after join.
    hungry: AtomicUsize,
    /// Exported states not yet taken (incremented *before* the push,
    /// decremented *after* a successful take, so 0 proves no state is
    /// resident in or in flight toward any deque).
    pending: AtomicU64,
    done: AtomicBool,
    /// Decayed park-frequency signal fed back into export decisions.
    idle_pressure: AtomicU32,
    /// Workers inside the park section. Guarded by `park` — the only
    /// lock, never touched while any deque has work.
    park: Mutex<usize>,
    cv: Condvar,
    steals: AtomicU64,
    reclaims: AtomicU64,
    exports: AtomicU64,
}

impl DequeScheduler {
    fn new(stealers: Vec<Stealer<QueuedState>>) -> DequeScheduler {
        DequeScheduler {
            stealers,
            budget: StepBudget::new(),
            bytes: QueueBytes::new(),
            hungry: AtomicUsize::new(0),
            pending: AtomicU64::new(0),
            done: AtomicBool::new(false),
            idle_pressure: AtomicU32::new(0),
            park: Mutex::new(0),
            cv: Condvar::new(),
            steals: AtomicU64::new(0),
            reclaims: AtomicU64::new(0),
            exports: AtomicU64::new(0),
        }
    }

    /// Publishes surplus states on the exporting worker's own deque and
    /// wakes parked workers if anyone is starving.
    fn export(&self, own: &deque::Worker<QueuedState>, states: Vec<QueuedState>) {
        if states.is_empty() {
            return;
        }
        let n = states.len() as u64;
        self.exports.fetch_add(n, Ordering::Relaxed);
        self.bytes.add(states.iter().map(QueuedState::resident_bytes).sum());
        // Raise `pending` before the states become stealable: a parker
        // that misses the pushes in its scan still sees pending > 0 in
        // its under-lock recheck and rescans instead of sleeping.
        self.pending.fetch_add(n, Ordering::SeqCst);
        for s in states {
            own.push(s);
        }
        // SeqCst pairing with the parker (hungry increment → scan):
        // if we read hungry == 0 here, the parker's increment is later
        // in the total order, so its pending recheck is later than our
        // fetch_add above and it will not sleep — skipping the notify
        // (and the lock) is safe.
        if self.hungry.load(Ordering::SeqCst) > 0 {
            // Empty critical section: the notify must not land between
            // a parker's predicate check and its wait.
            drop(self.park.lock().unwrap());
            self.cv.notify_all();
        }
    }

    /// Ends the exploration for everyone (budget exhausted, or all
    /// workers parked with nothing pending).
    fn finish_all(&self) {
        self.done.store(true, Ordering::SeqCst);
        drop(self.park.lock().unwrap());
        self.cv.notify_all();
    }

    fn bump_idle_pressure(&self) {
        let _ = self.idle_pressure.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| {
            Some((p + IDLE_PRESSURE_BUMP).min(IDLE_PRESSURE_CAP))
        });
    }

    /// Decays the pressure signal and returns its pre-decay value.
    fn decay_idle_pressure(&self) -> u32 {
        match self.idle_pressure.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| {
            if p == 0 {
                None
            } else {
                Some(p - (p / 8).max(1))
            }
        }) {
            Ok(prev) => prev,
            Err(_) => 0,
        }
    }
}

/// Emits a cumulative cache-effectiveness snapshot (throttled by the
/// caller — reading the shared translation-cache counters takes its
/// lock).
fn note_cache_snapshot(engine: &mut Engine) {
    let dbt = engine.dbt_stats();
    let sv = engine.solver_stats();
    let snapshot = EventKind::CacheSnapshot {
        tb_hits: dbt.hits,
        tb_translations: dbt.translations,
        query_cache_hits: sv.cache_hits + sv.shared_hits,
        queries: sv.queries,
    };
    engine.recorder_mut().note(snapshot);
}

/// Publishes the migration-loop counters this worker owns. Cumulative
/// stores into the worker's shard, `Sum`-merged on read: after every
/// worker's final flush the merged values equal the scheduler's own
/// atomic totals (the `parallel.*` RunReport twins).
fn publish_loop_counters(t: &TelemetryHandle, steals: u64, reclaims: u64, exports: u64) {
    t.set_counter(Counter::ParallelSteals, steals);
    t.set_counter(Counter::ParallelReclaims, reclaims);
    t.set_counter(Counter::ParallelExports, exports);
}

/// Converts detached surplus states to queue form, evicting to compact
/// per the configured policy. Under `Cap`, a state ships compact when
/// the bytes already queued plus its own would break the cap — an
/// advisory read of a racing counter, so the cap is a target, not a
/// hard bound.
fn pack_exports(
    engine: &mut Engine,
    cfg: &ParallelConfig,
    bytes: &QueueBytes,
    surplus: Vec<ExecState>,
) -> Vec<QueuedState> {
    surplus
        .into_iter()
        .map(|s| {
            let evict = match cfg.eviction {
                EvictionPolicy::Off => false,
                EvictionPolicy::Aggressive => true,
                EvictionPolicy::Cap(cap) => {
                    bytes.current() + s.machine.private_state_bytes() > cap
                }
            };
            if evict {
                QueuedState::Compact(engine.evict_state(s, cfg.verify_replay))
            } else {
                QueuedState::Live(s)
            }
        })
        .collect()
}

/// Takes a queued state into live form, rehydrating compact ones by
/// deterministic replay on the taking worker's engine.
fn take_queued(engine: &mut Engine, qs: QueuedState) -> ExecState {
    match qs {
        QueuedState::Live(s) => s,
        QueuedState::Compact(c) => engine.rehydrate(c),
    }
}

fn injector_worker_loop<F>(
    w: usize,
    cfg: &ParallelConfig,
    sched: &InjectorScheduler,
    shared: &SharedEngineContext,
    live: Option<&LiveTelemetry>,
    build: &F,
) -> WorkerReport
where
    F: Fn(&WorkerContext) -> Engine + Sync,
{
    let ctx = WorkerContext {
        worker: w,
        workers: cfg.workers,
        shared,
    };
    let mut engine = build(&ctx);
    if cfg.obs.enabled {
        engine.set_recorder(Recorder::new(w, &cfg.obs));
    }
    let tel = live.map(|lt| lt.handle(w));
    if tel.is_some() {
        engine.set_telemetry(tel.clone());
    }
    if w != 0 {
        // Every worker builds the same root; only worker 0's is explored.
        // The rest start empty and pull their first state from the queue.
        engine.drain_states();
    }
    let mut steals = 0u64;
    let mut exports = 0u64;
    let mut batches = 0u64;

    'outer: loop {
        // Phase 1: run local work, batch by batch.
        while engine.live_count() > 0 {
            if sched.done.load(Ordering::Relaxed) {
                break 'outer;
            }
            let claimed = sched.budget.claim(cfg.max_steps, cfg.batch);
            if claimed == 0 {
                sched.finish_all();
                break 'outer;
            }
            let mut used = 0;
            while used < claimed {
                if engine.step().is_none() {
                    break;
                }
                used += 1;
            }
            sched.budget.refund(claimed - used);
            batches += 1;

            // Periodic cache-effectiveness snapshot (cumulative counters;
            // deltas between snapshots show warm-up).
            if engine.recorder().is_enabled() && batches % SNAPSHOT_EVERY_BATCHES == 0 {
                note_cache_snapshot(&mut engine);
            }

            if let Some(t) = &tel {
                engine.publish_telemetry();
                publish_loop_counters(t, steals, 0, exports);
                t.set_gauge(Gauge::GaugeQueueBytes, sched.bytes.current() as u64);
                t.set_gauge(
                    Gauge::GaugeHungryWorkers,
                    sched.hungry.load(Ordering::Relaxed) as u64,
                );
                // The shared query cache snapshot takes its lock; ride
                // the existing recorder throttle cadence.
                if batches % SNAPSHOT_EVERY_BATCHES == 0 {
                    publish_shared_cache_stats(t, &shared.query_cache.stats());
                }
            }

            // Phase 2: export fork overflow instead of hoarding it.
            let live = engine.live_count();
            let hungry = sched.hungry.load(Ordering::Relaxed) > 0;
            let keep = if hungry && live > 1 {
                // Someone is starving: hand off half our frontier.
                (live + 1) / 2
            } else if live > cfg.max_local_states {
                cfg.max_local_states
            } else {
                live
            };
            if keep < live {
                engine.recorder_mut().enter(Phase::Migrate);
                let surplus = engine.detach_overflow(keep);
                let count = surplus.len();
                exports += count as u64;
                let packed = pack_exports(&mut engine, cfg, &sched.bytes, surplus);
                sched.export(packed);
                engine.recorder_mut().note(EventKind::Export { count: count as u32 });
                engine.recorder_mut().exit(Phase::Migrate);
            }
        }

        // Phase 3: local frontier is dry — steal, or detect completion.
        // The whole scheduler interaction is one Migrate span, with the
        // time parked on the condvar carved out as Idle.
        engine.recorder_mut().enter(Phase::Migrate);
        // Steal latency is dry-to-fed: from the moment this worker ran
        // out of local work until it holds a queued state (parks
        // included; the rehydration replay is accounted separately).
        let dry_started = tel.as_ref().map(|_| Instant::now());
        let mut g = sched.sched.lock().unwrap();
        loop {
            if g.done {
                engine.recorder_mut().exit(Phase::Migrate);
                break 'outer;
            }
            if let Some(qs) = g.queue.pop_front() {
                let depth = g.queue.len() as u32;
                drop(g);
                steals += 1;
                sched.bytes.sub(qs.resident_bytes());
                if let (Some(t), Some(started)) = (&tel, dry_started) {
                    t.observe_duration(Hist::HistSteal, started.elapsed());
                    t.set_gauge(Gauge::GaugeQueueDepth, depth as u64);
                }
                let obs = engine.recorder_mut();
                obs.note(EventKind::QueueDepth { depth });
                obs.note(EventKind::Steal { state: qs.id().0 });
                obs.exit(Phase::Migrate);
                let state = take_queued(&mut engine, qs);
                engine.attach_state(state);
                continue 'outer;
            }
            g.idle += 1;
            sched.hungry.fetch_add(1, Ordering::Relaxed);
            if g.idle == cfg.workers {
                // Every worker is idle and the queue is empty: done.
                // Balance our own idle/hungry increment before leaving so
                // the mirrors read 0 after join.
                g.idle -= 1;
                sched.hungry.fetch_sub(1, Ordering::Relaxed);
                g.done = true;
                sched.done.store(true, Ordering::Relaxed);
                drop(g);
                sched.cv.notify_all();
                engine.recorder_mut().exit(Phase::Migrate);
                break 'outer;
            }
            engine.recorder_mut().enter(Phase::Idle);
            let park_started = tel.as_ref().map(|_| Instant::now());
            g = sched.cv.wait(g).unwrap();
            if let (Some(t), Some(started)) = (&tel, park_started) {
                t.observe_duration(Hist::HistPark, started.elapsed());
            }
            engine.recorder_mut().exit(Phase::Idle);
            g.idle -= 1;
            sched.hungry.fetch_sub(1, Ordering::Relaxed);
        }
    }

    sched.steals.fetch_add(steals, Ordering::Relaxed);
    if let Some(t) = &tel {
        // Final flush: pins every cumulative counter at its end-of-run
        // value so the merged registry matches the RunReport exactly.
        engine.publish_telemetry();
        publish_loop_counters(t, steals, 0, exports);
        publish_shared_cache_stats(t, &shared.query_cache.stats());
        t.set_gauge(Gauge::GaugeQueueBytes, sched.bytes.current() as u64);
    }
    finish_worker_report(w, engine, steals, 0, exports)
}

fn deque_worker_loop<F>(
    w: usize,
    cfg: &ParallelConfig,
    sched: &DequeScheduler,
    shared: &SharedEngineContext,
    live: Option<&LiveTelemetry>,
    own: deque::Worker<QueuedState>,
    build: &F,
) -> WorkerReport
where
    F: Fn(&WorkerContext) -> Engine + Sync,
{
    let ctx = WorkerContext {
        worker: w,
        workers: cfg.workers,
        shared,
    };
    let mut engine = build(&ctx);
    if cfg.obs.enabled {
        engine.set_recorder(Recorder::new(w, &cfg.obs));
    }
    let tel = live.map(|lt| lt.handle(w));
    if tel.is_some() {
        engine.set_telemetry(tel.clone());
    }
    if w != 0 {
        engine.drain_states();
    }
    // Victim scan order is reshuffled per scan with a per-worker seeded
    // generator: workers don't all hammer the same victim, runs with the
    // same schedule reproduce, and the *outcome* never depends on the
    // order (every state is explored wherever it lands).
    let mut rng = SplitMix64::new(0x5_2e5_7ea1 ^ ((w as u64 + 1) << 32));
    let mut victims: Vec<usize> = (0..cfg.workers).filter(|&v| v != w).collect();
    let mut steals = 0u64;
    let mut reclaims = 0u64;
    let mut exports = 0u64;
    let mut batches = 0u64;

    'outer: loop {
        // Phase 1: run local work, batch by batch.
        while engine.live_count() > 0 {
            if sched.done.load(Ordering::Relaxed) {
                break 'outer;
            }
            let claimed = sched.budget.claim(cfg.max_steps, cfg.batch);
            if claimed == 0 {
                sched.finish_all();
                break 'outer;
            }
            let mut used = 0;
            while used < claimed {
                if engine.step().is_none() {
                    break;
                }
                used += 1;
            }
            sched.budget.refund(claimed - used);
            batches += 1;

            if engine.recorder().is_enabled() && batches % SNAPSHOT_EVERY_BATCHES == 0 {
                note_cache_snapshot(&mut engine);
            }

            if let Some(t) = &tel {
                engine.publish_telemetry();
                publish_loop_counters(t, steals, reclaims, exports);
                t.set_gauge(Gauge::GaugeQueueDepth, sched.pending.load(Ordering::Relaxed));
                t.set_gauge(Gauge::GaugeQueueBytes, sched.bytes.current() as u64);
                t.set_gauge(
                    Gauge::GaugeHungryWorkers,
                    sched.hungry.load(Ordering::Relaxed) as u64,
                );
                t.set_gauge(
                    Gauge::GaugeIdlePressure,
                    sched.idle_pressure.load(Ordering::Relaxed) as u64,
                );
                if batches % SNAPSHOT_EVERY_BATCHES == 0 {
                    publish_shared_cache_stats(t, &shared.query_cache.stats());
                }
            }

            // Phase 2: export fork overflow onto our own deque bottom.
            // Eagerness is observability-fed: instantaneous starvation
            // (`hungry`) halves the frontier outright; decayed park
            // pressure halves the keep cap. Neither changes the outcome,
            // only how soon surplus becomes stealable.
            let live = engine.live_count();
            let hungry_now = sched.hungry.load(Ordering::Relaxed);
            let pressure = sched.decay_idle_pressure();
            let keep = if hungry_now > 0 && live > 1 {
                (live + 1) / 2
            } else if pressure > 0 {
                (cfg.max_local_states / 2).max(1).min(live)
            } else if live > cfg.max_local_states {
                cfg.max_local_states
            } else {
                live
            };
            if keep < live {
                let obs = engine.recorder_mut();
                obs.enter(Phase::Migrate);
                obs.note(EventKind::ExportDecision {
                    keep: keep as u32,
                    idle_pressure: pressure,
                    hungry: hungry_now as u32,
                });
                let surplus = engine.detach_overflow(keep);
                let count = surplus.len();
                exports += count as u64;
                let packed = pack_exports(&mut engine, cfg, &sched.bytes, surplus);
                sched.export(&own, packed);
                engine.recorder_mut().note(EventKind::Export { count: count as u32 });
                engine.recorder_mut().exit(Phase::Migrate);
            }
        }

        // Phase 3: local frontier dry. Reclaim our own overflow first
        // (newest first — depth-first locality, no contention), then
        // steal from victims, then park.
        engine.recorder_mut().enter(Phase::Migrate);
        // Dry-to-fed latency: reclaim hits make the fast-path samples,
        // cross-worker steals (parks included) the slow tail.
        let dry_started = tel.as_ref().map(|_| Instant::now());
        if let Some(qs) = own.pop() {
            sched.pending.fetch_sub(1, Ordering::SeqCst);
            sched.bytes.sub(qs.resident_bytes());
            reclaims += 1;
            if let (Some(t), Some(started)) = (&tel, dry_started) {
                t.observe_duration(Hist::HistSteal, started.elapsed());
            }
            engine.recorder_mut().exit(Phase::Migrate);
            let state = take_queued(&mut engine, qs);
            engine.attach_state(state);
            continue 'outer;
        }
        sched.hungry.fetch_add(1, Ordering::SeqCst);
        loop {
            if sched.done.load(Ordering::SeqCst) {
                sched.hungry.fetch_sub(1, Ordering::SeqCst);
                engine.recorder_mut().exit(Phase::Migrate);
                break 'outer;
            }
            // Our own deque cannot refill (only its owner pushes), so
            // scan the victims. A Retry means we raced another thief on
            // a non-empty deque — spin and rescan rather than park.
            let mut saw_retry = false;
            rng.shuffle(&mut victims);
            for &v in &victims {
                match sched.stealers[v].steal() {
                    Steal::Success(qs) => {
                        // Leave the steal phase *before* lowering
                        // `pending`: the park-section completion check
                        // reads pending under the lock, and this order
                        // guarantees a worker holding a just-taken state
                        // is never counted as parked.
                        sched.hungry.fetch_sub(1, Ordering::SeqCst);
                        sched.pending.fetch_sub(1, Ordering::SeqCst);
                        sched.bytes.sub(qs.resident_bytes());
                        steals += 1;
                        if let (Some(t), Some(started)) = (&tel, dry_started) {
                            t.observe_duration(Hist::HistSteal, started.elapsed());
                            t.set_gauge(
                                Gauge::GaugeQueueDepth,
                                sched.pending.load(Ordering::Relaxed),
                            );
                        }
                        let obs = engine.recorder_mut();
                        obs.note(EventKind::QueueDepth {
                            depth: sched.stealers[v].len() as u32,
                        });
                        obs.note(EventKind::Steal { state: qs.id().0 });
                        obs.exit(Phase::Migrate);
                        let state = take_queued(&mut engine, qs);
                        engine.attach_state(state);
                        continue 'outer;
                    }
                    Steal::Retry => saw_retry = true,
                    Steal::Empty => {}
                }
            }
            if saw_retry {
                std::hint::spin_loop();
                continue;
            }
            // Every deque observed empty: enter the park section.
            let mut idle = sched.park.lock().unwrap();
            // Recheck under the lock — an exporter raises `pending`
            // before its pushes and notifies while holding this lock,
            // so a true wait predicate here cannot lose a wakeup.
            if sched.done.load(Ordering::SeqCst) || sched.pending.load(Ordering::SeqCst) > 0 {
                drop(idle);
                continue;
            }
            *idle += 1;
            if *idle == cfg.workers {
                // All workers are inside the park section and nothing is
                // pending: exploration is complete. `pending` cannot
                // rise while idle == workers — an exporter is by
                // definition a worker outside this section.
                *idle -= 1;
                drop(idle);
                sched.finish_all();
                continue; // loop top observes done and exits
            }
            // We are about to sleep: that observation *is* the idle
            // signal the export heuristic feeds on.
            sched.bump_idle_pressure();
            engine.recorder_mut().enter(Phase::Idle);
            let park_started = tel.as_ref().map(|_| Instant::now());
            while !sched.done.load(Ordering::SeqCst)
                && sched.pending.load(Ordering::SeqCst) == 0
            {
                idle = sched.cv.wait(idle).unwrap();
            }
            if let (Some(t), Some(started)) = (&tel, park_started) {
                t.observe_duration(Hist::HistPark, started.elapsed());
            }
            engine.recorder_mut().exit(Phase::Idle);
            *idle -= 1;
            drop(idle);
        }
    }

    sched.steals.fetch_add(steals, Ordering::Relaxed);
    sched.reclaims.fetch_add(reclaims, Ordering::Relaxed);
    if let Some(t) = &tel {
        // Final flush: pins every cumulative counter at its end-of-run
        // value so the merged registry matches the RunReport exactly.
        engine.publish_telemetry();
        publish_loop_counters(t, steals, reclaims, exports);
        publish_shared_cache_stats(t, &shared.query_cache.stats());
        t.set_gauge(Gauge::GaugeQueueDepth, sched.pending.load(Ordering::Relaxed));
        t.set_gauge(Gauge::GaugeQueueBytes, sched.bytes.current() as u64);
    }
    finish_worker_report(w, engine, steals, reclaims, exports)
}

fn finish_worker_report(
    w: usize,
    mut engine: Engine,
    steals: u64,
    reclaims: u64,
    exports: u64,
) -> WorkerReport {
    let solver = engine.solver_stats().clone();
    let mut path_digests: Vec<u64> =
        engine.terminated_states().iter().map(ExecState::path_digest).collect();
    path_digests.sort_unstable();
    WorkerReport {
        worker: w,
        paths: engine.terminated().len(),
        path_digests,
        shared_query_hits: solver.shared_hits,
        solver_queries: solver.queries,
        solver_core_solves: solver.core_solves,
        bugs: engine.bugs().to_vec(),
        covered_blocks: engine.seen_blocks().clone(),
        stats: engine.stats().clone(),
        solver,
        steals,
        reclaims,
        exports,
        timeline: engine.take_timeline(),
        dbt: engine.local_dbt_stats(),
    }
}

struct MigrationTotals {
    steals: u64,
    reclaims: u64,
    exports: u64,
    queue_leftover: u64,
    evicted_leftover: u64,
    queue_bytes_peak: usize,
}

fn merge_reports(
    mut workers: Vec<WorkerReport>,
    shared: &SharedEngineContext,
    totals: MigrationTotals,
    wall_time: Duration,
) -> ParallelReport {
    workers.sort_by_key(|r| r.worker);
    // Every exported state must be accounted for: taken by another
    // worker, reclaimed by its exporter, or left in a queue when the
    // budget ended the run.
    assert_eq!(
        totals.exports,
        totals.steals + totals.reclaims + totals.queue_leftover,
        "state conservation violated"
    );
    let mut stats = EngineStats::default();
    let mut solver = SolverStats::default();
    let mut bugs = Vec::new();
    let mut covered_blocks = HashSet::new();
    let mut total_paths = 0;
    let mut path_digests = Vec::new();
    for r in &workers {
        stats.merge(&r.stats);
        solver.merge(&r.solver);
        bugs.extend(r.bugs.iter().cloned());
        covered_blocks.extend(r.covered_blocks.iter().copied());
        total_paths += r.paths;
        path_digests.extend(r.path_digests.iter().copied());
    }
    path_digests.sort_unstable();
    // Same discipline for evictions: every compact state was either
    // rehydrated by some worker or stranded in a queue at budget end.
    assert_eq!(
        stats.evictions,
        stats.rehydrations + totals.evicted_leftover,
        "eviction conservation violated"
    );
    ParallelReport {
        stats,
        solver,
        bugs,
        covered_blocks,
        total_paths,
        path_digests,
        steals: totals.steals,
        reclaims: totals.reclaims,
        exports: totals.exports,
        queue_leftover: totals.queue_leftover,
        evicted_leftover: totals.evicted_leftover,
        queue_bytes_peak: totals.queue_bytes_peak,
        shared_cache: shared.query_cache.stats(),
        dbt: {
            // Shared-cache counters (translations, invalidations, shared
            // hits) plus every worker's private L1/chain counters.
            let mut dbt = shared.tb_cache.stats();
            for r in &workers {
                dbt.merge(&r.dbt);
            }
            dbt
        },
        wall_time,
        workers,
    }
}

/// Runs a work-stealing exploration: `build(ctx)` constructs each
/// worker's engine (load the image, inject symbolic inputs, register
/// plugins) through [`WorkerContext::engine`] so all workers share one
/// expression builder, one translation-block cache, and one solver query
/// cache. Worker 0's initial state seeds the exploration; all other
/// initial states are discarded and those workers steal.
///
/// [`ParallelConfig::scheduler`] picks the migration scheduler; the
/// outcome (paths, bugs, coverage) is identical either way.
pub fn explore_parallel<F>(cfg: &ParallelConfig, build: F) -> ParallelReport
where
    F: Fn(&WorkerContext) -> Engine + Sync,
{
    explore_parallel_live(cfg, None, build)
}

/// [`explore_parallel`] with a live telemetry registry attached
/// (DESIGN.md §16). Each worker publishes its cumulative stats into its
/// own registry shard at batch boundaries, records steal/park/replay/
/// solve/translate latencies into the shared histograms, and flushes
/// once more on exit — so the registry's merged view converges on the
/// end-of-run [`ParallelReport`] exactly. `live` must have been started
/// with at least `cfg.workers` shards; `None` runs telemetry-free with
/// zero overhead.
pub fn explore_parallel_live<F>(
    cfg: &ParallelConfig,
    live: Option<&LiveTelemetry>,
    build: F,
) -> ParallelReport
where
    F: Fn(&WorkerContext) -> Engine + Sync,
{
    assert!(cfg.workers > 0 && cfg.batch > 0 && cfg.max_local_states > 0);
    match cfg.scheduler {
        SchedulerKind::Deque => explore_deque(cfg, live, build),
        SchedulerKind::Injector => explore_injector(cfg, live, build),
    }
}

fn explore_injector<F>(
    cfg: &ParallelConfig,
    live: Option<&LiveTelemetry>,
    build: F,
) -> ParallelReport
where
    F: Fn(&WorkerContext) -> Engine + Sync,
{
    let shared = SharedEngineContext::new();
    let sched = InjectorScheduler::new();
    let build = &build;
    let shared_ref = &shared;
    let sched_ref = &sched;
    let started = Instant::now();
    let workers: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|w| {
                scope.spawn(move || {
                    injector_worker_loop(w, cfg, sched_ref, shared_ref, live, build)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let wall_time = started.elapsed();
    assert_eq!(
        sched.hungry.load(Ordering::Relaxed),
        0,
        "hungry accounting unbalanced after join"
    );
    // Whatever is still in the queue was exported but never stolen —
    // possible only on budget-truncated runs.
    let (queue_leftover, evicted_leftover) = {
        let g = sched.sched.lock().unwrap();
        let compact = g
            .queue
            .iter()
            .filter(|qs| matches!(qs, QueuedState::Compact(_)))
            .count() as u64;
        (g.queue.len() as u64, compact)
    };
    merge_reports(
        workers,
        &shared,
        MigrationTotals {
            steals: sched.steals.load(Ordering::Relaxed),
            reclaims: 0,
            exports: sched.exports.load(Ordering::Relaxed),
            queue_leftover,
            evicted_leftover,
            queue_bytes_peak: sched.bytes.peak.load(Ordering::Relaxed),
        },
        wall_time,
    )
}

fn explore_deque<F>(cfg: &ParallelConfig, live: Option<&LiveTelemetry>, build: F) -> ParallelReport
where
    F: Fn(&WorkerContext) -> Engine + Sync,
{
    let shared = SharedEngineContext::new();
    let mut owners = Vec::with_capacity(cfg.workers);
    let mut stealers = Vec::with_capacity(cfg.workers);
    for _ in 0..cfg.workers {
        let (worker, stealer) = deque::deque::<QueuedState>();
        owners.push(worker);
        stealers.push(stealer);
    }
    let sched = DequeScheduler::new(stealers);
    let build = &build;
    let shared_ref = &shared;
    let sched_ref = &sched;
    let started = Instant::now();
    let workers: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = owners
            .into_iter()
            .enumerate()
            .map(|(w, own)| {
                scope.spawn(move || {
                    deque_worker_loop(w, cfg, sched_ref, shared_ref, live, own, build)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let wall_time = started.elapsed();
    assert_eq!(
        sched.hungry.load(Ordering::Relaxed),
        0,
        "hungry accounting unbalanced after join"
    );
    // Drain what the budget stranded in the deques; workers are joined,
    // so steals cannot race and Retry cannot occur.
    let mut queue_leftover = 0u64;
    let mut evicted_leftover = 0u64;
    for s in &sched.stealers {
        loop {
            match s.steal() {
                Steal::Success(qs) => {
                    queue_leftover += 1;
                    if matches!(qs, QueuedState::Compact(_)) {
                        evicted_leftover += 1;
                    }
                }
                Steal::Retry => std::hint::spin_loop(),
                Steal::Empty => break,
            }
        }
    }
    assert_eq!(
        queue_leftover,
        sched.pending.load(Ordering::Relaxed),
        "pending counter out of sync with resident states"
    );
    merge_reports(
        workers,
        &shared,
        MigrationTotals {
            steals: sched.steals.load(Ordering::Relaxed),
            reclaims: sched.reclaims.load(Ordering::Relaxed),
            exports: sched.exports.load(Ordering::Relaxed),
            queue_leftover,
            evicted_leftover,
            queue_bytes_peak: sched.bytes.peak.load(Ordering::Relaxed),
        },
        wall_time,
    )
}

/// Constrains `input` to worker `i`'s slice of the 32-bit value space —
/// the static partitioning used by [`explore_static`] and kept as the
/// baseline the work-stealing explorer is benchmarked against.
pub fn partition_constraint(
    state: &mut ExecState,
    builder: &ExprBuilder,
    input: &ExprRef,
    worker: usize,
    workers: usize,
) {
    assert!(workers > 0 && worker < workers, "bad partition {worker}/{workers}");
    let span = (u32::MAX / workers as u32).saturating_add(1);
    let lo = span.saturating_mul(worker as u32);
    if worker > 0 {
        state.add_constraint(builder.ule(
            builder.constant(lo as u64, Width::W32),
            input.clone(),
        ));
    }
    if worker + 1 < workers {
        let hi = lo.saturating_add(span - 1);
        state.add_constraint(builder.ule(
            input.clone(),
            builder.constant(hi as u64, Width::W32),
        ));
    }
}

/// The original static-partition explorer: `workers` fully independent
/// engines (cold private caches, no migration), each given `max_steps`
/// of budget. `setup(i, n)` builds worker `i`'s engine — typically
/// loading the same image and applying [`partition_constraint`].
///
/// Kept as the load-imbalance baseline; new code should use
/// [`explore_parallel`].
pub fn explore_static<F>(workers: usize, max_steps: u64, setup: F) -> Vec<WorkerReport>
where
    F: Fn(usize, usize) -> Engine + Sync,
{
    assert!(workers > 0);
    let setup = &setup;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut engine = setup(w, workers);
                    engine.run(max_steps);
                    finish_worker_report(w, engine, 0, 0, 0)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Merges worker coverage into one set.
pub fn merge_coverage(reports: &[WorkerReport]) -> HashSet<u32> {
    let mut out = HashSet::new();
    for r in reports {
        out.extend(r.covered_blocks.iter().copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConsistencyModel, EngineConfig};
    use crate::selectors::make_reg_symbolic;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::reg;
    use s2e_vm::machine::Machine;

    /// Two nested branches on x: 3 leaf outcomes, 4+ blocks.
    fn branchy_machine() -> Machine {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 0x4000_0000);
        a.bltu(reg::R0, reg::R1, "q1");
        a.movi(reg::R1, 0xc000_0000);
        a.bltu(reg::R0, reg::R1, "mid");
        a.halt_code(3);
        a.label("mid");
        a.halt_code(2);
        a.label("q1");
        a.halt_code(1);
        let mut m = Machine::new();
        m.load(&a.finish());
        m
    }

    fn branchy_worker(ctx: &WorkerContext) -> Engine {
        let mut e = ctx.engine(
            branchy_machine(),
            EngineConfig::with_model(ConsistencyModel::ScSe),
        );
        let id = e.sole_state().unwrap();
        let b = e.builder_arc();
        make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R0, "x");
        e
    }

    fn static_worker(worker: usize, workers: usize) -> Engine {
        let mut e = Engine::new(
            branchy_machine(),
            EngineConfig::with_model(ConsistencyModel::ScSe),
        );
        let id = e.sole_state().unwrap();
        let b = e.builder_arc();
        let x = make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R0, "x");
        partition_constraint(e.state_mut(id).unwrap(), &b, &x, worker, workers);
        e
    }

    #[test]
    fn work_stealing_explores_all_paths() {
        let report = explore_parallel(&ParallelConfig::new(4, 10_000), branchy_worker);
        assert_eq!(report.workers.len(), 4);
        // Work stealing explores each feasible path exactly once — no
        // duplicated outcomes across workers, unlike static partitions.
        assert_eq!(report.total_paths, 3, "{report:?}");
        assert!(report.stats.blocks_executed > 0);
        assert!(report.covered_blocks.len() >= 4);
    }

    #[test]
    fn injector_baseline_explores_all_paths() {
        let cfg = ParallelConfig::new(4, 10_000).with_scheduler(SchedulerKind::Injector);
        let report = explore_parallel(&cfg, branchy_worker);
        assert_eq!(report.total_paths, 3, "{report:?}");
        assert_eq!(report.reclaims, 0, "injector never reclaims");
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let par = explore_parallel(&ParallelConfig::new(1, 10_000), branchy_worker);
        assert_eq!(par.workers.len(), 1);
        assert_eq!(par.steals, 0, "one worker has no one to steal from");
        let mut seq = static_worker(0, 1);
        seq.run(10_000);
        assert_eq!(par.total_paths, seq.terminated().len());
    }

    #[test]
    fn stealing_matches_sequential_path_count() {
        let seq = explore_parallel(&ParallelConfig::new(1, 10_000), branchy_worker);
        for scheduler in [SchedulerKind::Deque, SchedulerKind::Injector] {
            // A tiny export threshold forces migration even on a small
            // tree.
            let mut cfg = ParallelConfig::new(4, 10_000).with_scheduler(scheduler);
            cfg.batch = 1;
            cfg.max_local_states = 1;
            let par = explore_parallel(&cfg, branchy_worker);
            assert_eq!(par.total_paths, seq.total_paths, "{scheduler:?}");
            // Exhaustive run: nothing may be stranded.
            assert_eq!(par.queue_leftover, 0, "{scheduler:?}");
            assert_eq!(
                par.exports,
                par.steals + par.reclaims + par.queue_leftover,
                "{scheduler:?}: states conserved"
            );
        }
    }

    /// Aggressive eviction ships every export compact; rehydration by
    /// replay must reproduce the same outcome, and the eviction ledger
    /// must balance.
    #[test]
    fn aggressive_eviction_matches_live_shipping() {
        let base = explore_parallel(&ParallelConfig::new(1, 10_000), branchy_worker);
        for scheduler in [SchedulerKind::Deque, SchedulerKind::Injector] {
            let mut cfg = ParallelConfig::new(3, 10_000).with_scheduler(scheduler);
            cfg.batch = 1;
            cfg.max_local_states = 1;
            cfg.eviction = EvictionPolicy::Aggressive;
            cfg.verify_replay = true;
            let r = explore_parallel(&cfg, branchy_worker);
            assert_eq!(r.total_paths, base.total_paths, "{scheduler:?}");
            assert_eq!(r.bugs.len(), base.bugs.len(), "{scheduler:?}");
            assert!(r.stats.evictions > 0, "{scheduler:?}: nothing was evicted");
            assert_eq!(
                r.stats.evictions,
                r.stats.rehydrations + r.evicted_leftover,
                "{scheduler:?}: evictions conserved"
            );
            assert!(r.queue_bytes_peak > 0, "{scheduler:?}");
        }
    }

    /// Budget-truncated runs strand exported states; they must be
    /// counted, not silently dropped — and conservation must hold at
    /// every truncation point, not just on exhaustive runs.
    #[test]
    fn truncated_budget_reports_nonzero_leftover() {
        for scheduler in [SchedulerKind::Deque, SchedulerKind::Injector] {
            let mut saw_leftover = false;
            for budget in 1..=12u64 {
                // Single worker, single-state cap: every fork surplus is
                // exported, and nobody else can drain it when the budget
                // dies first. Deterministic, so the sweep is stable.
                let mut cfg = ParallelConfig::new(1, budget).with_scheduler(scheduler);
                cfg.batch = 1;
                cfg.max_local_states = 1;
                let r = explore_parallel(&cfg, branchy_worker);
                assert_eq!(
                    r.exports,
                    r.steals + r.reclaims + r.queue_leftover,
                    "{scheduler:?} budget {budget}: states conserved"
                );
                if r.queue_leftover > 0 {
                    saw_leftover = true;
                }
            }
            assert!(
                saw_leftover,
                "{scheduler:?}: no truncation point stranded a state — \
                 the leftover accounting is untested"
            );
        }
    }

    #[test]
    fn deque_and_injector_agree() {
        let mut deque_cfg = ParallelConfig::new(3, 10_000);
        deque_cfg.batch = 1;
        deque_cfg.max_local_states = 1;
        let injector_cfg = deque_cfg.with_scheduler(SchedulerKind::Injector);
        let a = explore_parallel(&deque_cfg, branchy_worker);
        let b = explore_parallel(&injector_cfg, branchy_worker);
        assert_eq!(a.total_paths, b.total_paths);
        assert_eq!(a.covered_blocks, b.covered_blocks);
    }

    #[test]
    fn static_baseline_still_works() {
        let reports = explore_static(4, 10_000, static_worker);
        assert_eq!(reports.len(), 4);
        let total: usize = reports.iter().map(|r| r.paths).sum();
        // Static slices duplicate boundary outcomes; together they cover
        // at least the 3 real paths.
        assert!(total >= 3, "{total}");
        let merged = merge_coverage(&reports);
        assert!(merged.len() >= 4, "merged coverage {merged:?}");
    }

    #[test]
    fn budget_stops_all_workers() {
        for scheduler in [SchedulerKind::Deque, SchedulerKind::Injector] {
            // A budget far too small to finish: the run must still
            // terminate and report at most that many steps.
            let mut cfg = ParallelConfig::new(4, 8).with_scheduler(scheduler);
            cfg.batch = 2;
            let report = explore_parallel(&cfg, branchy_worker);
            assert!(report.stats.blocks_executed <= 8, "{report:?}");
        }
    }

    #[test]
    fn partition_constraints_disjoint() {
        // A worker's partition excludes values owned by other workers.
        let b = ExprBuilder::new();
        let mut st = ExecState::initial(Machine::new());
        let x = b.var("x", Width::W32);
        partition_constraint(&mut st, &b, &x, 1, 4);
        let mut solver = s2e_solver::Solver::new();
        // 0 belongs to worker 0, not worker 1.
        let is_zero = b.eq(x.clone(), b.constant(0, Width::W32));
        assert_eq!(solver.may_be_true(&st.constraints, &is_zero), Some(false));
        // 0x5000_0000 belongs to worker 1.
        let in_slice = b.eq(x, b.constant(0x5000_0000, Width::W32));
        assert_eq!(solver.may_be_true(&st.constraints, &in_slice), Some(true));
    }

    #[test]
    #[should_panic(expected = "bad partition")]
    fn partition_validates_indices() {
        let b = ExprBuilder::new();
        let mut st = ExecState::initial(Machine::new());
        let x = b.var("x", Width::W32);
        partition_constraint(&mut st, &b, &x, 4, 4);
    }
}
