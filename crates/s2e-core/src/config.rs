//! Engine configuration: consistency models, code selection, limits.

use std::ops::Range;

/// The paper's six execution consistency models (§3).
///
/// The model dictates how the engine converts data at the unit/environment
/// boundary and how it treats branches inside environment code; see the
/// per-variant docs and Table 1 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConsistencyModel {
    /// Strictly-consistent concrete execution: no symbolic data at all.
    /// Single path; classic fuzzing territory.
    ScCe,
    /// Strictly-consistent unit-level execution: symbolic data is
    /// concretized whenever it would escape into the environment, and the
    /// concretization is a *hard* constraint. Environment constraints are
    /// not tracked.
    ScUe,
    /// Strictly-consistent system-level execution: symbolic data flows
    /// everywhere, the environment executes symbolically too.
    /// Concretizations are *soft* constraints. Complete but expensive.
    ScSe,
    /// Local consistency: the environment runs concretely; its results are
    /// re-symbolified within the API contract via annotations. Paths where
    /// the environment branches on unit-injected symbolic data are
    /// aborted.
    Lc,
    /// Overapproximate consistency: environment call results become
    /// completely unconstrained symbolic values; API contracts are
    /// ignored. Complete, fast, admits locally-infeasible paths.
    RcOc,
    /// CFG consistency: all branch outcomes inside the unit are pursued
    /// without consulting the solver (dynamic-disassembly mode).
    RcCc,
}

impl ConsistencyModel {
    /// All models, strongest first.
    pub const ALL: [ConsistencyModel; 6] = [
        ConsistencyModel::ScCe,
        ConsistencyModel::ScUe,
        ConsistencyModel::ScSe,
        ConsistencyModel::Lc,
        ConsistencyModel::RcOc,
        ConsistencyModel::RcCc,
    ];

    /// Display name matching the paper's abbreviations.
    pub fn name(self) -> &'static str {
        match self {
            ConsistencyModel::ScCe => "SC-CE",
            ConsistencyModel::ScUe => "SC-UE",
            ConsistencyModel::ScSe => "SC-SE",
            ConsistencyModel::Lc => "LC",
            ConsistencyModel::RcOc => "RC-OC",
            ConsistencyModel::RcCc => "RC-CC",
        }
    }

    /// True if the environment executes symbolically under this model.
    pub fn env_symbolic(self) -> bool {
        matches!(self, ConsistencyModel::ScSe)
    }
}

impl std::fmt::Display for ConsistencyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Code-based path selection (the `CodeSelector` plugin of §4.1): address
/// ranges where multi-path execution is allowed.
///
/// An empty selector allows everywhere. Exclusion ranges override
/// inclusion ranges.
#[derive(Clone, Debug, Default)]
pub struct CodeRanges {
    include: Vec<Range<u32>>,
    exclude: Vec<Range<u32>>,
}

impl CodeRanges {
    /// Allows multi-path everywhere.
    pub fn all() -> CodeRanges {
        CodeRanges::default()
    }

    /// Adds an inclusion range.
    pub fn include(mut self, r: Range<u32>) -> CodeRanges {
        self.include.push(r);
        self
    }

    /// Adds an exclusion range.
    pub fn exclude(mut self, r: Range<u32>) -> CodeRanges {
        self.exclude.push(r);
        self
    }

    /// True if multi-path execution is allowed at `pc`.
    pub fn allows(&self, pc: u32) -> bool {
        if self.exclude.iter().any(|r| r.contains(&pc)) {
            return false;
        }
        self.include.is_empty() || self.include.iter().any(|r| r.contains(&pc))
    }
}

/// An interface annotation (paper §6.1.1): a conversion applied to the
/// machine state at the unit/environment boundary, used to implement
/// local consistency. Return annotations typically replace the syscall's
/// return value in `r0` with a symbolic value constrained by the API
/// contract; entry annotations typically concretize (softly) arguments
/// the environment will branch on.
pub type AnnotationFn = std::sync::Arc<
    dyn Fn(&mut crate::state::ExecState, &mut crate::plugin::ExecCtx) + Send + Sync,
>;

/// Annotation registered for a syscall number.
#[derive(Clone, Default)]
pub struct Annotation {
    /// Syscall this annotation applies to.
    pub syscall: u32,
    /// Applied when the unit traps into the environment (before argument
    /// snapshotting).
    pub on_entry: Option<AnnotationFn>,
    /// Applied when the environment call returns to the unit.
    pub on_return: Option<AnnotationFn>,
}

impl Annotation {
    /// A return-conversion annotation for `syscall`.
    pub fn on_return(
        syscall: u32,
        f: impl Fn(&mut crate::state::ExecState, &mut crate::plugin::ExecCtx)
            + Send
            + Sync
            + 'static,
    ) -> Annotation {
        Annotation {
            syscall,
            on_entry: None,
            on_return: Some(std::sync::Arc::new(f)),
        }
    }

    /// An entry-conversion annotation for `syscall`.
    pub fn on_entry(
        syscall: u32,
        f: impl Fn(&mut crate::state::ExecState, &mut crate::plugin::ExecCtx)
            + Send
            + Sync
            + 'static,
    ) -> Annotation {
        Annotation {
            syscall,
            on_entry: Some(std::sync::Arc::new(f)),
            on_return: None,
        }
    }

    /// Adds an entry conversion to this annotation.
    pub fn with_entry(
        mut self,
        f: impl Fn(&mut crate::state::ExecState, &mut crate::plugin::ExecCtx)
            + Send
            + Sync
            + 'static,
    ) -> Annotation {
        self.on_entry = Some(std::sync::Arc::new(f));
        self
    }
}

impl std::fmt::Debug for Annotation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Annotation")
            .field("syscall", &self.syscall)
            .finish_non_exhaustive()
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The active execution consistency model.
    pub consistency: ConsistencyModel,
    /// Where multi-path execution may happen (the *unit*, in the paper's
    /// terms, is the included region).
    pub code_ranges: CodeRanges,
    /// LC annotations, applied at environment-call returns.
    pub annotations: Vec<Annotation>,
    /// Live-state cap: forks beyond this are curtailed (the weaker side is
    /// killed).
    pub max_states: usize,
    /// Fork-depth cap per path.
    pub max_depth: u32,
    /// Per-path instruction budget.
    pub max_instrs_per_path: u64,
    /// Granularity (bytes, power of two) of the memory regions handed to
    /// the solver for symbolic-pointer accesses — the paper's
    /// configurable small pages (§5, evaluated in §6.2).
    pub symbolic_page_size: u32,
    /// Divisor applied to virtual time while executing symbolically, so
    /// timer interrupts do not overwhelm symbolic paths (§5).
    pub symbolic_time_slowdown: u64,
    /// When false, even `S2Op::EnableForking` cannot enable multi-path
    /// (used to implement SC-CE).
    pub allow_forking: bool,
    /// Forks a state survives before its checkpoint is refreshed (§13):
    /// smaller values shorten replay distance (cheap rehydration) at the
    /// cost of more frequent snapshots and less page sharing between the
    /// checkpoint and its holders.
    pub checkpoint_interval: u32,
    /// Syscalls whose return values RC-OC does *not* overapproximate.
    /// Tools exclude pointer-returning calls here: overapproximating an
    /// opaque pointer merely makes the unit scribble over arbitrary
    /// memory, whereas the paper's RC-OC use case (RevNIC) targets
    /// hardware inputs and value-typed results.
    pub rc_oc_excluded_syscalls: Vec<u32>,
    /// Chain blocks along observed direct edges into superblock runs, so
    /// straight-line regions execute many blocks per engine step
    /// (DESIGN.md §14). Exploration is bit-identical either way; off is
    /// the ablation/measurement arm. Ignored (always off) under RC-CC,
    /// whose edge forcing reads engine-global coverage per branch.
    pub chain_blocks: bool,
    /// Run `concrete_only` blocks through the direct-threaded micro-op
    /// table instead of the match-dispatch loop (DESIGN.md §14).
    /// Bit-identical to the legacy loop; off is the ablation arm.
    pub threaded_dispatch: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            consistency: ConsistencyModel::Lc,
            code_ranges: CodeRanges::all(),
            annotations: Vec::new(),
            max_states: 512,
            max_depth: 10_000,
            max_instrs_per_path: 10_000_000,
            symbolic_page_size: 256,
            symbolic_time_slowdown: 16,
            allow_forking: true,
            checkpoint_interval: 8,
            rc_oc_excluded_syscalls: Vec::new(),
            chain_blocks: true,
            threaded_dispatch: true,
        }
    }
}

impl EngineConfig {
    /// Convenience: a config with the given consistency model and defaults
    /// otherwise.
    pub fn with_model(consistency: ConsistencyModel) -> EngineConfig {
        EngineConfig {
            consistency,
            allow_forking: consistency != ConsistencyModel::ScCe,
            ..EngineConfig::default()
        }
    }

    /// The annotation registered for a syscall, if any.
    pub fn annotation_for(&self, syscall: u32) -> Option<&Annotation> {
        self.annotations.iter().find(|a| a.syscall == syscall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names() {
        assert_eq!(ConsistencyModel::ScSe.name(), "SC-SE");
        assert_eq!(ConsistencyModel::RcOc.to_string(), "RC-OC");
        assert_eq!(ConsistencyModel::ALL.len(), 6);
    }

    #[test]
    fn code_ranges_default_allows_all() {
        let r = CodeRanges::all();
        assert!(r.allows(0));
        assert!(r.allows(u32::MAX));
    }

    #[test]
    fn include_restricts() {
        let r = CodeRanges::all().include(0x1000..0x2000);
        assert!(r.allows(0x1000));
        assert!(r.allows(0x1fff));
        assert!(!r.allows(0x2000));
        assert!(!r.allows(0x500));
    }

    #[test]
    fn exclude_overrides_include() {
        let r = CodeRanges::all()
            .include(0x1000..0x3000)
            .exclude(0x1800..0x1900);
        assert!(r.allows(0x1400));
        assert!(!r.allows(0x1850));
        assert!(r.allows(0x1900));
    }

    #[test]
    fn sc_ce_disables_forking() {
        let c = EngineConfig::with_model(ConsistencyModel::ScCe);
        assert!(!c.allow_forking);
        let c = EngineConfig::with_model(ConsistencyModel::Lc);
        assert!(c.allow_forking);
    }

    #[test]
    fn annotation_lookup() {
        let mut c = EngineConfig::default();
        c.annotations.push(Annotation::on_return(7, |_, _| {}));
        assert!(c.annotation_for(7).is_some());
        assert!(c.annotation_for(8).is_none());
        assert!(c.annotation_for(7).unwrap().on_return.is_some());
        assert!(c.annotation_for(7).unwrap().on_entry.is_none());
        // Debug impl is non-empty.
        assert!(!format!("{:?}", c.annotation_for(7).unwrap()).is_empty());
    }

    #[test]
    fn annotation_with_entry_chains() {
        let a = Annotation::on_return(3, |_, _| {}).with_entry(|_, _| {});
        assert!(a.on_entry.is_some());
        assert!(a.on_return.is_some());
    }

    #[test]
    fn env_symbolic_only_under_sc_se() {
        for m in ConsistencyModel::ALL {
            assert_eq!(m.env_symbolic(), m == ConsistencyModel::ScSe);
        }
    }
}
