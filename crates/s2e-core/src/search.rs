//! Path-selection strategies (the paper's priority-based selectors, §4.1).

use crate::state::StateId;
use s2e_prng::SplitMix64;
use std::collections::{HashMap, VecDeque};

/// Chooses which live state the engine runs next.
///
/// The engine may pop ids of states that have since terminated; it skips
/// them, so strategies never need explicit removal.
pub trait SearchStrategy: Send {
    /// Offers a runnable state.
    fn push(&mut self, id: StateId);

    /// Picks the next state to run.
    fn pop(&mut self) -> Option<StateId>;

    /// Number of queued entries (may over-count dead states).
    fn len(&self) -> usize;

    /// True if nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feedback: running `id` discovered `new_blocks` never-seen blocks.
    fn notify_coverage(&mut self, id: StateId, new_blocks: u32) {
        let _ = (id, new_blocks);
    }
}

/// Depth-first search: always continue the most recently forked path.
#[derive(Debug, Default)]
pub struct Dfs {
    stack: Vec<StateId>,
}

impl Dfs {
    /// Creates an empty DFS strategy.
    pub fn new() -> Dfs {
        Dfs::default()
    }
}

impl SearchStrategy for Dfs {
    fn push(&mut self, id: StateId) {
        self.stack.push(id);
    }

    fn pop(&mut self) -> Option<StateId> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }
}

/// Breadth-first search: run all states at one depth before descending.
#[derive(Debug, Default)]
pub struct Bfs {
    queue: VecDeque<StateId>,
}

impl Bfs {
    /// Creates an empty BFS strategy.
    pub fn new() -> Bfs {
        Bfs::default()
    }
}

impl SearchStrategy for Bfs {
    fn push(&mut self, id: StateId) {
        self.queue.push_back(id);
    }

    fn pop(&mut self) -> Option<StateId> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Uniform-random state selection.
#[derive(Debug)]
pub struct RandomSearch {
    pool: Vec<StateId>,
    rng: SplitMix64,
}

impl RandomSearch {
    /// Creates the strategy with a fixed seed (deterministic runs).
    pub fn new(seed: u64) -> RandomSearch {
        RandomSearch {
            pool: Vec::new(),
            rng: SplitMix64::new(seed),
        }
    }
}

impl SearchStrategy for RandomSearch {
    fn push(&mut self, id: StateId) {
        self.pool.push(id);
    }

    fn pop(&mut self) -> Option<StateId> {
        if self.pool.is_empty() {
            return None;
        }
        let i = self.rng.index(self.pool.len());
        Some(self.pool.swap_remove(i))
    }

    fn len(&self) -> usize {
        self.pool.len()
    }
}

/// Coverage-guided selection (the `MaxCoverage` selector): states that
/// recently discovered new blocks are preferred; scores decay so stale
/// explorers lose priority.
#[derive(Debug, Default)]
pub struct MaxCoverage {
    pool: Vec<StateId>,
    scores: HashMap<StateId, f64>,
}

impl MaxCoverage {
    /// Creates an empty coverage-guided strategy.
    pub fn new() -> MaxCoverage {
        MaxCoverage::default()
    }
}

impl SearchStrategy for MaxCoverage {
    fn push(&mut self, id: StateId) {
        self.scores.entry(id).or_insert(1.0);
        self.pool.push(id);
    }

    fn pop(&mut self) -> Option<StateId> {
        if self.pool.is_empty() {
            return None;
        }
        let best = self
            .pool
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let sa = self.scores.get(a).copied().unwrap_or(0.0);
                let sb = self.scores.get(b).copied().unwrap_or(0.0);
                sa.total_cmp(&sb)
            })
            .map(|(i, _)| i)?;
        let id = self.pool.swap_remove(best);
        // Decay so a state must keep producing coverage to stay on top.
        if let Some(s) = self.scores.get_mut(&id) {
            *s *= 0.5;
        }
        Some(id)
    }

    fn len(&self) -> usize {
        self.pool.len()
    }

    fn notify_coverage(&mut self, id: StateId, new_blocks: u32) {
        *self.scores.entry(id).or_insert(0.0) += new_blocks as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<StateId> {
        v.iter().map(|&i| StateId(i)).collect()
    }

    #[test]
    fn dfs_is_lifo() {
        let mut s = Dfs::new();
        for id in ids(&[1, 2, 3]) {
            s.push(id);
        }
        assert_eq!(s.pop(), Some(StateId(3)));
        assert_eq!(s.pop(), Some(StateId(2)));
        s.push(StateId(9));
        assert_eq!(s.pop(), Some(StateId(9)));
        assert_eq!(s.pop(), Some(StateId(1)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn bfs_is_fifo() {
        let mut s = Bfs::new();
        for id in ids(&[1, 2, 3]) {
            s.push(id);
        }
        assert_eq!(s.pop(), Some(StateId(1)));
        assert_eq!(s.pop(), Some(StateId(2)));
        assert_eq!(s.pop(), Some(StateId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn random_returns_all_exactly_once() {
        let mut s = RandomSearch::new(42);
        for id in ids(&[1, 2, 3, 4, 5]) {
            s.push(id);
        }
        let mut seen: Vec<u64> = (0..5).map(|_| s.pop().unwrap().0).collect();
        seen.sort();
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let order = |seed| {
            let mut s = RandomSearch::new(seed);
            for id in ids(&[1, 2, 3, 4, 5, 6, 7, 8]) {
                s.push(id);
            }
            (0..8).map(|_| s.pop().unwrap().0).collect::<Vec<_>>()
        };
        assert_eq!(order(7), order(7));
    }

    #[test]
    fn max_coverage_prefers_productive_states() {
        let mut s = MaxCoverage::new();
        s.push(StateId(1));
        s.push(StateId(2));
        s.notify_coverage(StateId(2), 10);
        assert_eq!(s.pop(), Some(StateId(2)));
        // After decay plus no new coverage, state 1 (base score 1.0) may
        // or may not win; re-push and give 1 fresh coverage to force it.
        s.push(StateId(2));
        s.notify_coverage(StateId(1), 100);
        assert_eq!(s.pop(), Some(StateId(1)));
    }

    #[test]
    fn strategies_len() {
        let mut s = Dfs::new();
        assert!(s.is_empty());
        s.push(StateId(1));
        assert_eq!(s.len(), 1);
    }
}
