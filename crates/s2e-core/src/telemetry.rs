//! Publishing engine state into the live metrics registry
//! (DESIGN.md §16).
//!
//! The engine's hot path keeps its existing *plain* stat structs
//! ([`EngineStats`], `SolverStats`, `DbtStats`) — zero atomics per
//! block. At batch boundaries (and once more at worker exit) the
//! worker *publishes* the current cumulative values into its private
//! [`TelemetryHandle`] shard with relaxed stores; the sampler and the
//! scrape endpoint merge shards on read. Latency histograms are the
//! exception: rare events (solver queries, translations, steals,
//! parks, replays) record per-sample, one atomic add each.
//!
//! Publish rules, per source:
//!
//! * **Per-worker stats** (`EngineStats`, worker `SolverStats`,
//!   L1-local `DbtStats`, loop steal/reclaim/export counters) go to the
//!   worker's shard as `Sum`-merged counters — summed last-published
//!   values, exact after every worker's final flush.
//! * **Global mirrors** (the shared TB cache, the cross-worker query
//!   cache) are monotonic, so every worker publishes its latest *read*
//!   of the global value and the merge takes the max: the most recent
//!   read wins, and the final flush of the last-finishing worker pins
//!   the exact end-of-run value. The non-monotonic shared-cache entry
//!   count rides the stamped `Latest` gauge instead.
//!
//! [`RUNREPORT_TWINS`] is the explicit contract between the registry
//! namespace and the end-of-run `RunReport` sections; the
//! `telemetry_overhead` bench gate asserts value equality over it.

use crate::stats::EngineStats;
use s2e_dbt::DbtStats;
use s2e_obs::{Counter, Gauge, TelemetryHandle};
use s2e_solver::{QueryKind, SharedCacheStats, SolverStats};

/// Every `(counter, section, key)` pair whose merged registry value
/// must exactly equal `RunReport.section(section).get(key)` after the
/// final flush. Derived mechanically from [`Counter::runreport_twin`]
/// so a counter added to the registry can't silently skip the
/// equality gate.
pub fn runreport_twins() -> Vec<(Counter, &'static str, &'static str)> {
    Counter::ALL
        .iter()
        .filter_map(|&c| c.runreport_twin().map(|(section, key)| (c, section, key)))
        .collect()
}

/// Publishes cumulative [`EngineStats`] counters plus instantaneous
/// coverage/liveness into the worker's shard.
pub fn publish_engine_stats(
    t: &TelemetryHandle,
    s: &EngineStats,
    seen_blocks: usize,
    live_states: usize,
) {
    t.set_counter(Counter::EngineStatesCreated, s.states_created);
    t.set_counter(Counter::EngineStatesTerminated, s.states_terminated);
    t.set_counter(Counter::EngineForks, s.forks);
    t.set_counter(Counter::EngineBlocksExecuted, s.blocks_executed);
    t.set_counter(Counter::EngineInstrsConcrete, s.instrs_concrete);
    t.set_counter(Counter::EngineInstrsSymbolic, s.instrs_symbolic);
    t.set_counter(Counter::EngineConcreteOnlyBlocks, s.concrete_only_blocks);
    t.set_counter(Counter::EngineLeanInstrs, s.lean_instrs);
    t.set_counter(Counter::EngineDeadWritesSkipped, s.dead_writes_skipped);
    t.set_counter(Counter::EngineFeasibilityProbesSkipped, s.feasibility_probes_skipped);
    t.set_counter(Counter::EngineSymbolicPtrAccesses, s.symbolic_ptr_accesses);
    t.set_counter(Counter::EngineConcretizations, s.concretizations);
    t.set_counter(Counter::EngineInterruptsDelivered, s.interrupts_delivered);
    t.set_counter(Counter::EngineSyscalls, s.syscalls);
    t.set_counter(Counter::EngineIndirectRetirements, s.indirect_retirements);
    t.set_counter(Counter::EngineIndirectTargetsResolved, s.indirect_targets_resolved);
    t.set_counter(Counter::EngineIndirectTargetsEscaped, s.indirect_targets_escaped);
    t.set_counter(Counter::EngineIndirectTargetsDiscovered, s.indirect_targets_discovered);
    t.set_counter(Counter::EngineEvictions, s.evictions);
    t.set_counter(Counter::EngineRehydrations, s.rehydrations);
    t.set_counter(Counter::EngineReplayedInstrs, s.replayed_instrs);
    t.set_counter(Counter::EngineJournalBytes, s.journal_bytes);
    t.set_counter(Counter::EngineCpuTimeNs, s.cpu_time.as_nanos() as u64);
    t.set_counter(Counter::EngineMaxLiveStates, s.max_live_states as u64);
    t.set_counter(Counter::EngineMemoryWatermarkBytes, s.memory_watermark_bytes as u64);
    t.set_counter(Counter::EngineSeenBlocks, seen_blocks as u64);
    t.set_gauge(Gauge::GaugeLiveStates, live_states as u64);
}

/// Publishes cumulative worker-local [`SolverStats`] counters,
/// including the per-kind breakdown (the live Fig 9 numerators).
pub fn publish_solver_stats(t: &TelemetryHandle, s: &SolverStats) {
    t.set_counter(Counter::SolverQueries, s.queries);
    t.set_counter(Counter::SolverSat, s.sat);
    t.set_counter(Counter::SolverUnsat, s.unsat);
    t.set_counter(Counter::SolverUnknown, s.unknown);
    t.set_counter(Counter::SolverCacheHits, s.cache_hits);
    t.set_counter(Counter::SolverSharedHits, s.shared_hits);
    t.set_counter(Counter::SolverPoolHits, s.pool_hits);
    t.set_counter(Counter::SolverSubsumptionHits, s.subsumption_hits);
    t.set_counter(Counter::SolverCoreSolves, s.core_solves);
    t.set_counter(Counter::SolverSlicedQueries, s.sliced_queries);
    t.set_counter(Counter::SolverComponentsSolved, s.components_solved);
    t.set_counter(Counter::SolverCacheEvictions, s.cache_evictions);
    t.set_counter(Counter::SolverCacheEntries, s.cache_entries);
    t.set_counter(Counter::SolverTotalTimeNs, s.total_time.as_nanos() as u64);
    t.set_counter(Counter::SolverMaxQueryTimeNs, s.max_query_time.as_nanos() as u64);
    let by_kind = |k: QueryKind| &s.by_kind[k.index()];
    let f = by_kind(QueryKind::Feasibility);
    t.set_counter(Counter::SolverFeasibilityQueries, f.queries);
    t.set_counter(Counter::SolverFeasibilityTimeNs, f.time.as_nanos() as u64);
    let c = by_kind(QueryKind::Concretize);
    t.set_counter(Counter::SolverConcretizeQueries, c.queries);
    t.set_counter(Counter::SolverConcretizeTimeNs, c.time.as_nanos() as u64);
    let o = by_kind(QueryKind::Other);
    t.set_counter(Counter::SolverOtherQueries, o.queries);
    t.set_counter(Counter::SolverOtherTimeNs, o.time.as_nanos() as u64);
}

/// Publishes the translator counters: this worker's L1-local stats
/// (`Sum`-merged) and its latest read of the shared cache's global
/// counters (`Max`-merged mirrors).
pub fn publish_dbt_stats(t: &TelemetryHandle, local: &DbtStats, shared: &DbtStats) {
    t.set_counter(Counter::DbtL1Hits, local.l1_hits);
    t.set_counter(Counter::DbtLocalHits, local.hits);
    t.set_counter(Counter::DbtChainEntries, local.chain_entries);
    t.set_counter(Counter::DbtChainExits, local.chain_exits);
    t.set_counter(Counter::DbtTranslations, shared.translations);
    t.set_counter(Counter::DbtSharedHits, shared.hits);
    t.set_counter(Counter::DbtInstrsTranslated, shared.instrs_translated);
    t.set_counter(Counter::DbtInvalidations, shared.invalidations);
    t.set_counter(Counter::DbtChainsFormed, shared.chains_formed);
    t.set_counter(Counter::DbtUnlinks, shared.unlinks);
    t.set_counter(Counter::DbtTranslationTimeNs, shared.translation_time.as_nanos() as u64);
}

/// Publishes the worker's latest read of the cross-worker query cache
/// (monotonic fields as `Max` mirrors, the entry count as a stamped
/// `Latest` gauge).
pub fn publish_shared_cache_stats(t: &TelemetryHandle, s: &SharedCacheStats) {
    t.set_counter(Counter::SharedCacheHits, s.hits);
    t.set_counter(Counter::SharedCacheSubsumptionHits, s.subsumption_hits);
    t.set_counter(Counter::SharedCacheInserts, s.inserts);
    t.set_counter(Counter::SharedCacheEvictions, s.evictions);
    t.set_gauge(Gauge::GaugeSharedCacheEntries, s.entries as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_obs::MetricsRegistry;
    use std::time::Duration;

    #[test]
    fn twins_cover_the_registry() {
        let twins = runreport_twins();
        // Every counter is either a twin or one of the three documented
        // live-only exceptions.
        assert_eq!(twins.len(), Counter::ALL.len() - 3);
    }

    #[test]
    fn engine_publish_is_cumulative_stores() {
        let reg = MetricsRegistry::new(1);
        let t = reg.handle(0);
        let mut s = EngineStats::default();
        s.forks = 9;
        s.cpu_time = Duration::from_micros(3);
        publish_engine_stats(&t, &s, 17, 2);
        s.forks = 12;
        publish_engine_stats(&t, &s, 20, 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::EngineForks), 12);
        assert_eq!(snap.counter(Counter::EngineCpuTimeNs), 3_000);
        assert_eq!(snap.counter(Counter::EngineSeenBlocks), 20);
        assert_eq!(snap.gauge(Gauge::GaugeLiveStates), 1);
    }
}
